//! Shape regression tests: scaled-down versions of the paper's evaluation
//! claims, asserted as invariants so the reproduction cannot silently
//! drift. Each test states the claim it pins (see EXPERIMENTS.md for the
//! full-size numbers).

use gpu_sim::LaunchConfig;
use workloads::eigenbench::EbParams;
use workloads::ra::RaParams;
use workloads::{eigenbench, kmeans, ra, RunConfig, RunError, Variant};

fn ra_cycles(variant: Variant) -> (u64, gpu_stm::TxStats) {
    let params = RaParams {
        shared_words: 1 << 13,
        actions_per_tx: 8,
        txs_per_thread: 1,
        write_pct: 50,
        seed: 77,
    };
    let grid = LaunchConfig::new(8, 64);
    let cfg = RunConfig::with_memory(1 << 18).with_locks(1 << 10);
    let out = ra::run(&params, variant, grid, &cfg).unwrap();
    (out.cycles(), out.tx)
}

/// Figure 2 claim: GPU-STM (per-thread transactions) beats CGL by a large
/// factor on RA-like workloads.
#[test]
fn stm_beats_cgl_on_random_array() {
    let (cgl, _) = ra_cycles(Variant::Cgl);
    let (hv, _) = ra_cycles(Variant::HvSorting);
    let speedup = cgl as f64 / hv as f64;
    assert!(speedup > 3.0, "expected a clear win, got {speedup:.2}x");
}

/// Figure 2 claim: STM-VBV's single sequence lock does not scale — it
/// must be far below the lock-table designs.
#[test]
fn vbv_is_far_slower_than_hv() {
    let (vbv, _) = ra_cycles(Variant::Vbv);
    let (hv, _) = ra_cycles(Variant::HvSorting);
    assert!(vbv > 2 * hv, "VBV {vbv} should trail HV {hv} badly");
}

/// Figure 2 claim: STM-Optimized ties the better of HV/TBV on RA (where
/// shared data exceeds the lock table it must pick HV).
#[test]
fn optimized_matches_hv_on_large_shared_data() {
    let (hv, _) = ra_cycles(Variant::HvSorting);
    let (opt, _) = ra_cycles(Variant::Optimized);
    assert_eq!(opt, hv, "8K shared words > 1K locks: Optimized must select HV");
}

/// Figure 4 claim: with shared data much larger than the lock table,
/// HV's abort rate is far below TBV's (false conflicts filtered by VBV),
/// at identical lock counts.
#[test]
fn hv_abort_rate_beats_tbv_under_aliasing() {
    let params = EbParams { hot_words: 1 << 13, txs_per_thread: 3, ..EbParams::default() };
    let grid = LaunchConfig::new(4, 64);
    // 64 locks guard 8192 words: massive stripe aliasing.
    let cfg = RunConfig::with_memory(1 << 18).with_locks(1 << 6);
    let hv = eigenbench::run(&params, Variant::HvSorting, grid, &cfg).unwrap();
    let tbv = eigenbench::run(&params, Variant::TbvSorting, grid, &cfg).unwrap();
    assert!(
        hv.tx.abort_rate() * 2.0 < tbv.tx.abort_rate(),
        "HV {:.1}% vs TBV {:.1}%",
        hv.tx.abort_rate() * 100.0,
        tbv.tx.abort_rate() * 100.0
    );
    assert!(hv.tx.false_conflicts_filtered > 0);
}

/// Figure 2/5 claim: k-means gains nothing from STM parallelisation —
/// high conflict rates waste the concurrency.
#[test]
fn kmeans_does_not_benefit_from_stm() {
    let params = kmeans::KmParams { points_per_thread: 4, ..kmeans::KmParams::default() };
    let grid = LaunchConfig::new(16, 2);
    let cfg = RunConfig::with_memory(1 << 16).with_locks(1 << 8);
    let cgl = kmeans::run(&params, Variant::Cgl, grid, &cfg).unwrap();
    let stm = kmeans::run(&params, Variant::HvSorting, grid, &cfg).unwrap();
    assert!(
        stm.cycles() as f64 > 0.6 * cgl.cycles() as f64,
        "KM must not show real STM speedup: CGL {} vs STM {}",
        cgl.cycles(),
        stm.cycles()
    );
    assert!(stm.tx.abort_rate() > 0.3, "KM must be conflict-heavy");
}

/// Figure 3 claim: EGPGV "crashes" (unsupported) once the grid exceeds its
/// per-thread-block transaction capacity.
#[test]
fn egpgv_unsupported_at_scale() {
    let params = RaParams { shared_words: 1 << 10, ..RaParams::default() };
    let cfg = RunConfig::with_memory(1 << 16).with_locks(1 << 8);
    let err = ra::run(&params, Variant::Egpgv, LaunchConfig::new(128, 32), &cfg).unwrap_err();
    assert!(matches!(err, RunError::Unsupported(_)));
    // And it *works* within capacity.
    ra::run(&params, Variant::Egpgv, LaunchConfig::new(16, 32), &cfg).unwrap();
}

/// Scalability claim (Figure 3): HV-Sorting speedup over CGL grows with
/// the thread count.
#[test]
fn hv_speedup_grows_with_threads() {
    let run = |threads: u32| {
        let params = RaParams {
            shared_words: 1 << 13,
            actions_per_tx: 8,
            txs_per_thread: 1,
            write_pct: 50,
            seed: 5,
        };
        let grid = LaunchConfig::new(threads / 32, 32);
        let cfg = RunConfig::with_memory(1 << 18).with_locks(1 << 10);
        let cgl = ra::run(&params, Variant::Cgl, grid, &cfg).unwrap().cycles();
        let hv = ra::run(&params, Variant::HvSorting, grid, &cfg).unwrap().cycles();
        cgl as f64 / hv as f64
    };
    let small = run(64);
    let large = run(1024);
    assert!(large > small, "speedup must grow: {small:.2}x -> {large:.2}x");
}
