//! Telemetry invariants, checked across every STM variant on a small
//! deterministic hashtable workload:
//!
//! 1. **Well-nesting** — per warp, every `Commit` event is preceded by at
//!    least one `Begin` since the previous `Commit` (attempts never close
//!    without opening), and no warp commits before it first begins.
//! 2. **Monotone cycles** — within one kernel launch, each warp's events
//!    carry non-decreasing cycle stamps.
//! 3. **Reconciliation** — trace events and [`gpu_stm::TxStats`] agree
//!    *exactly*: Σ `Commit.committed` = `commits` and Σ `Abort.lanes` =
//!    `aborts`. The trace is not a sample; it is the same ground truth.
//! 4. **Pure observation** — attaching the sink changes no cycle count.

use gpu_sim::trace::{SimEvent, SimEventKind};
use gpu_sim::LaunchConfig;
use gpu_stm::{chrome_trace, tx_trace_sink, TxEvent, TxEventKind};
use workloads::{ht, RunConfig, RunError, Variant};

fn params() -> ht::HtParams {
    ht::HtParams { table_words: 1 << 11, inserts_per_tx: 2, txs_per_thread: 1, seed: 3 }
}

fn config() -> RunConfig {
    RunConfig::with_memory(1 << 16).with_locks(1 << 8)
}

/// Runs the workload with a trace sink and returns (events, stats, cycles);
/// `None` when the variant cannot run this grid (EGPGV capacity).
fn traced_run(v: Variant) -> Option<(Vec<TxEvent>, gpu_stm::TxStats, u64)> {
    let sink = tx_trace_sink(1 << 20);
    let cfg = config().with_trace(sink.clone());
    match ht::run(&params(), v, LaunchConfig::new(2, 64), &cfg) {
        Ok(out) => {
            assert_eq!(sink.borrow().dropped(), 0, "{v}: ring buffer overflowed");
            let cycles = out.cycles();
            Some((sink.borrow().snapshot(), out.tx, cycles))
        }
        Err(RunError::Unsupported(_)) => None,
        Err(e) => panic!("{v}: {e}"),
    }
}

#[test]
fn begin_commit_well_nested_per_warp() {
    for v in Variant::ALL {
        let Some((events, _, _)) = traced_run(v) else { continue };
        let mut warps: std::collections::BTreeMap<(u32, u32), u64> =
            std::collections::BTreeMap::new();
        for e in &events {
            let begins = warps.entry((e.block, e.warp)).or_insert(0);
            match e.kind {
                TxEventKind::Begin { lanes } => {
                    assert!(lanes > 0, "{v}: empty Begin must not be emitted");
                    *begins += 1;
                }
                TxEventKind::Commit { .. } => {
                    assert!(
                        *begins > 0,
                        "{v}: warp ({},{}) commits without an open attempt",
                        e.block,
                        e.warp
                    );
                    *begins = 0;
                }
                _ => {}
            }
        }
    }
}

#[test]
fn cycles_monotone_per_warp() {
    for v in Variant::ALL {
        let Some((events, _, _)) = traced_run(v) else { continue };
        let mut last: std::collections::BTreeMap<(u32, u32), u64> =
            std::collections::BTreeMap::new();
        for e in &events {
            let prev = last.insert((e.block, e.warp), e.cycle).unwrap_or(0);
            assert!(
                e.cycle >= prev,
                "{v}: warp ({},{}) went back in time {prev} -> {}",
                e.block,
                e.warp,
                e.cycle
            );
        }
    }
}

#[test]
fn events_reconcile_exactly_with_stats() {
    let mut checked = 0;
    for v in Variant::ALL {
        let Some((events, tx, _)) = traced_run(v) else { continue };
        let mut committed = 0u64;
        let mut aborted = 0u64;
        for e in &events {
            match e.kind {
                TxEventKind::Commit { committed: c, .. } => committed += c as u64,
                TxEventKind::Abort { lanes, .. } => aborted += lanes as u64,
                _ => {}
            }
        }
        assert_eq!(committed, tx.commits, "{v}: ΣCommit.committed != stats.commits");
        assert_eq!(aborted, tx.aborts, "{v}: ΣAbort.lanes != stats.aborts");
        assert!(tx.commits > 0, "{v}: trivial run proves nothing");
        checked += 1;
    }
    assert!(checked >= 7, "only {checked} variants ran — grid too big for the rest?");
}

/// The exporter's degenerate inputs: an empty trace must still be a
/// complete, loadable document (incident tooling renders bundles from
/// idle shards), and event-free inputs must contribute no process
/// metadata.
#[test]
fn empty_trace_exports_a_complete_document() {
    let json = chrome_trace(&[], &[]);
    assert_eq!(json, r#"{"traceEvents":[],"displayTimeUnit":"ns"}"#);
    // One-sided emptiness still works and names the block exactly once.
    let sim = vec![SimEvent { cycle: 0, block: 3, warp: 0, kind: SimEventKind::WarpStart }];
    let json = chrome_trace(&sim, &[]);
    assert_eq!(json.matches("process_name").count(), 1);
    assert!(json.contains(r#""pid":3"#), "{json}");
}

/// Zero-duration spans are legal trace events: a Begin/Commit pair on
/// the same cycle and a zero-cycle idle/backoff span must export with
/// explicit zero timestamps and durations, in input order, without
/// confusing the slice nesting.
#[test]
fn zero_duration_spans_export_cleanly() {
    let sim =
        vec![SimEvent { cycle: 7, block: 0, warp: 0, kind: SimEventKind::Idle { cycles: 0 } }];
    let txe = vec![
        TxEvent { cycle: 7, block: 0, warp: 0, kind: TxEventKind::Begin { lanes: 1 } },
        TxEvent { cycle: 7, block: 0, warp: 0, kind: TxEventKind::Backoff { cycles: 0 } },
        TxEvent {
            cycle: 7,
            block: 0,
            warp: 0,
            kind: TxEventKind::Commit { committed: 1, aborted: 0 },
        },
    ];
    let json = chrome_trace(&sim, &txe);
    // The zero-length spans carry dur 0 rather than being dropped.
    assert_eq!(json.matches(r#""dur":0"#).count(), 2, "{json}");
    // All four events share one timestamp; the B slice still precedes
    // its E slice (stable merge, sim-first on ties).
    let begin = json.find(r#""ph":"B""#).expect("begin slice");
    let end = json.find(r#""ph":"E""#).expect("end slice");
    assert!(begin < end, "{json}");
    assert_eq!(json.matches(r#""ts":7"#).count(), 4, "{json}");
}

#[test]
fn tracing_is_pure_observation() {
    for v in Variant::ALL {
        let Some((_, _, traced_cycles)) = traced_run(v) else { continue };
        let plain = ht::run(&params(), v, LaunchConfig::new(2, 64), &config())
            .unwrap_or_else(|e| panic!("{v}: {e}"));
        assert_eq!(plain.cycles(), traced_cycles, "{v}: trace sink perturbed timing");
    }
}
