//! Fault-injection stress harness: every STM variant must preserve
//! opacity and conservation under seeded adversarial perturbation of the
//! simulator — shuffled warp scheduling, memory-latency jitter, and
//! forced spurious CAS failures — and the `Robust` degradation layer
//! must keep per-transaction starvation in check while faults rage.
//!
//! All plans are seeded, so every failure here is replayable bit-for-bit.

use gpu_sim::{FaultPlan, LaunchConfig};
use gpu_stm::{
    lane_addrs, lane_vals, recorder, LockStm, Robust, RobustConfig, Stm, StmConfig, StmShared,
};
use std::rc::Rc;
use tm_check::{assert_opaque, check_final_state};
use workloads::ra::{self, RaParams};
use workloads::{RunConfig, Variant};

fn contended_params() -> (RaParams, LaunchConfig) {
    (
        RaParams {
            shared_words: 256, // tiny array: heavy conflicts
            actions_per_tx: 6,
            txs_per_thread: 2,
            write_pct: 60,
            seed: 4242,
        },
        LaunchConfig::new(2, 64),
    )
}

/// The seeded fault plans every variant is swept under.
fn fault_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("schedule-shuffle", FaultPlan::schedule_shuffle(0xfa57_0001)),
        ("latency-jitter", FaultPlan::latency_jitter(0xfa57_0002, 24)),
        ("cas-failures", FaultPlan::cas_failures(0xfa57_0003, 1, 8)),
        (
            "combined",
            FaultPlan {
                seed: 0xfa57_0004,
                shuffle_schedule: true,
                latency_jitter: 12,
                cas_fail_num: 1,
                cas_fail_den: 16,
            },
        ),
    ]
}

fn faulted_config(plan: FaultPlan) -> RunConfig {
    let mut cfg = RunConfig::with_memory(1 << 16).with_locks(1 << 6);
    // Faults stretch runs (jitter, spurious retries); give them room so
    // the only way to fail is a correctness violation, not the budget.
    cfg.sim.watchdog_cycles = 1 << 34;
    cfg.sim.fault = plan;
    cfg
}

/// Runs `variant` under `plan` and checks the full correctness story:
/// every transaction committed exactly once, the recorded history is
/// opaque (serializable with consistent reads), and replaying committed
/// writes reproduces device memory.
fn stress_variant(variant: Variant, plan_name: &str, plan: FaultPlan) {
    let (params, grid) = contended_params();
    let rec = recorder();
    let mut cfg = faulted_config(plan);
    cfg.recorder = Some(rec.clone());
    let (out, sim, data) = ra::run_with_sim(&params, variant, grid, &cfg)
        .unwrap_or_else(|e| panic!("{variant} under {plan_name}: {e}"));
    let h = rec.borrow();

    assert_eq!(
        h.commits.len() as u64,
        grid.total_threads() * params.txs_per_thread as u64,
        "{variant} under {plan_name}: every transaction must commit exactly once"
    );
    assert_eq!(
        out.tx.commits,
        h.commits.len() as u64,
        "{variant} under {plan_name}: stats and history disagree"
    );

    let report = assert_opaque(&h, |_| 0);
    assert_eq!(report.writers + report.read_only, h.commits.len());

    let addrs = (0..params.shared_words).map(|i| data.offset(i)).collect::<Vec<_>>();
    let violations = check_final_state(&h, |_| 0, |a| sim.read(a), addrs);
    assert!(
        violations.is_empty(),
        "{variant} under {plan_name}: {:?}",
        &violations[..violations.len().min(3)]
    );
}

#[test]
fn all_variants_stay_opaque_under_schedule_shuffle() {
    let (name, plan) = fault_plans()[0];
    for v in Variant::ALL {
        stress_variant(v, name, plan);
    }
}

#[test]
fn all_variants_stay_opaque_under_latency_jitter() {
    let (name, plan) = fault_plans()[1];
    for v in Variant::ALL {
        stress_variant(v, name, plan);
    }
}

#[test]
fn all_variants_stay_opaque_under_spurious_cas_failures() {
    let (name, plan) = fault_plans()[2];
    for v in Variant::ALL {
        stress_variant(v, name, plan);
    }
}

#[test]
fn all_variants_stay_opaque_under_combined_faults() {
    let (name, plan) = fault_plans()[3];
    for v in Variant::ALL {
        stress_variant(v, name, plan);
    }
}

/// Injected faults must actually fire (the sweep must not be vacuous) and
/// be visible in the run's simulator statistics.
#[test]
fn injected_faults_are_observable_in_stats() {
    let (params, grid) = contended_params();
    let cfg = faulted_config(FaultPlan::cas_failures(7, 1, 4));
    let out = ra::run(&params, Variant::HvSorting, grid, &cfg).unwrap();
    assert!(out.kernels[0].stats.spurious_cas_failures > 0);

    let cfg = faulted_config(FaultPlan::latency_jitter(7, 32));
    let out = ra::run(&params, Variant::HvSorting, grid, &cfg).unwrap();
    assert!(out.kernels[0].stats.injected_jitter_cycles > 0);
}

/// A fault plan is part of the deterministic input: the same seed must
/// reproduce a run cycle-for-cycle, and a different seed must actually
/// perturb something.
#[test]
fn faulted_runs_replay_deterministically() {
    let (params, grid) = contended_params();
    let run = |seed| {
        let cfg = faulted_config(FaultPlan {
            seed,
            shuffle_schedule: true,
            latency_jitter: 16,
            cas_fail_num: 1,
            cas_fail_den: 8,
        });
        let out = ra::run(&params, Variant::HvSorting, grid, &cfg).unwrap();
        (out.kernels[0].cycles, out.tx.commits, out.tx.aborts)
    };
    assert_eq!(run(11), run(11), "same fault seed must replay exactly");
    assert_ne!(run(11).0, run(12).0, "different fault seeds should perturb timing");
}

/// The degradation ladder under forced CAS failures: a contended counter
/// workload wrapped in `Robust` must still conserve every increment, end
/// with the fallback lock free, and record its starvation diagnostics.
#[test]
fn robust_wrapper_conserves_and_bounds_aborts_under_cas_faults() {
    let mut cfg = faulted_config(FaultPlan::cas_failures(0xfa57_0005, 1, 6));
    cfg.sim.mem_words = 1 << 16;
    let mut sim = gpu_sim::Sim::new(cfg.sim.clone());
    let stm_cfg = StmConfig::new(1 << 6);
    let shared = StmShared::init(&mut sim, &stm_cfg).unwrap();
    let counters = sim.alloc(4).unwrap();
    let robust_cfg = RobustConfig { fallback_after: 4, ..RobustConfig::default() };
    let stm =
        Rc::new(Robust::init(&mut sim, LockStm::hv_sorting(shared, stm_cfg), robust_cfg).unwrap());
    let grid = LaunchConfig::new(2, 64);
    let kstm = Rc::clone(&stm);
    let report = sim
        .launch(grid, move |ctx| {
            let stm = Rc::clone(&kstm);
            async move {
                let mut w = stm.new_warp();
                let mut remaining = [3u32; 32];
                loop {
                    let pending = ctx.id().launch_mask.filter(|l| remaining[l] > 0);
                    if pending.none() {
                        break;
                    }
                    let active = stm.begin(&mut w, &ctx, pending).await;
                    if active.none() {
                        continue;
                    }
                    let addrs = lane_addrs(active, |l| counters.offset((l % 4) as u32));
                    let vals = stm.read(&mut w, &ctx, active, &addrs).await;
                    let ok = active & stm.opaque(&w);
                    let upd = lane_vals(ok, |l| vals[l] + 1);
                    stm.write(&mut w, &ctx, ok, &addrs, &upd).await;
                    let committed = stm.commit(&mut w, &ctx, active).await;
                    for l in committed.iter() {
                        remaining[l] -= 1;
                    }
                }
            }
        })
        .unwrap();
    let total: u64 = sim.read_slice(counters, 4).iter().map(|v| *v as u64).sum();
    assert_eq!(total, grid.total_threads() * 3, "increments must be conserved");
    assert_eq!(sim.read(stm.fallback_lock_addr()), 0, "fallback lock must end free");
    assert!(report.stats.spurious_cas_failures > 0, "plan must have fired");
    let handle = stm.stats();
    let stats = handle.borrow();
    assert!(stats.max_consec_aborts > 0, "contention + faults must starve someone");
    assert_eq!(stats.fallback_commits, stats.escalations, "every escalation must drain");
}
