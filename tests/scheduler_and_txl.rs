//! Cross-crate integration: the adaptive scheduler composed with TXL
//! kernels, and weak-isolation boundary behaviour.

use gpu_sim::{LaunchConfig, Sim, SimConfig};
use gpu_stm::{LockStm, Scheduled, SchedulerConfig, Stm, StmConfig, StmShared};
use std::rc::Rc;
use txl::{compile, launch, ArrayBinding};

fn sim() -> Sim {
    let mut cfg = SimConfig::with_memory(1 << 18);
    cfg.watchdog_cycles = 1 << 33;
    Sim::new(cfg)
}

/// A TXL kernel runs unmodified under the scheduler wrapper (any `Stm`
/// composes), and the totals stay exact despite admission throttling.
#[test]
fn txl_kernel_under_adaptive_scheduler() {
    let program = compile(
        "kernel incr(c: array) {
             let k = 4;
             while k > 0 {
                 let i = rand(4);
                 atomic { c[i] = c[i] + 1; }
                 k = k - 1;
             }
         }",
    )
    .unwrap();
    let mut s = sim();
    let cfg = StmConfig::new(1 << 5);
    let shared = StmShared::init(&mut s, &cfg).unwrap();
    let counters = s.alloc(4).unwrap();
    let stm = Rc::new(Scheduled::new(
        LockStm::hv_sorting(shared, cfg),
        SchedulerConfig { window: 64, ..SchedulerConfig::default() },
    ));
    let grid = LaunchConfig::new(2, 64);
    launch(
        &mut s,
        &stm,
        program.kernel("incr").unwrap(),
        grid,
        9,
        &[ArrayBinding::new("c", counters, 4)],
    )
    .unwrap();
    let total: u64 = s.read_slice(counters, 4).iter().map(|v| *v as u64).sum();
    assert_eq!(total, grid.total_threads() * 4);
    // 4 hot words under 128 threads: the scheduler must have adapted.
    assert!(stm.adaptations() > 0);
    assert!(stm.current_limit() < 1024, "limit should have shrunk");
}

/// Weak isolation (Section 3.2.1): a non-transactional store racing with
/// transactions is NOT detected as a conflict — but transactions still
/// serialize among themselves. This documents the guarantee boundary.
#[test]
fn weak_isolation_nontransactional_race_is_undetected() {
    let mut s = sim();
    let cfg = StmConfig::new(1 << 6);
    let shared = StmShared::init(&mut s, &cfg).unwrap();
    let data = s.alloc(2).unwrap();
    let stm = Rc::new(LockStm::hv_sorting(shared, cfg));
    let k_stm = Rc::clone(&stm);
    // Lane 0 runs a transaction incrementing data[0]; lane 16 (same warp)
    // does a plain non-transactional store to data[1] concurrently. Both
    // must complete; the STM never aborts because of the plain store.
    s.launch(LaunchConfig::new(1, 32), move |ctx| {
        let stm = Rc::clone(&k_stm);
        async move {
            let mut w = stm.new_warp();
            let tx_lane = gpu_sim::LaneMask::lane(0);
            let mut pending = tx_lane;
            ctx.store_one(16, data.offset(1), 7).await; // plain write
            while pending.any() {
                let active = stm.begin(&mut w, &ctx, pending).await;
                let v = stm.read_one(&mut w, &ctx, 0, data).await;
                stm.write_one(&mut w, &ctx, 0, data, v + 1).await;
                let committed = stm.commit(&mut w, &ctx, active).await;
                pending &= !committed;
            }
            ctx.store_one(16, data.offset(1), 9).await; // plain write again
        }
    })
    .unwrap();
    assert_eq!(s.read(data), 1);
    assert_eq!(s.read(data.offset(1)), 9);
    assert_eq!(stm.stats().borrow().aborts, 0, "plain stores must not abort transactions");
}

/// The simulator's SIMT efficiency statistic reflects scheduler
/// throttling: admission-limited runs execute with partial masks.
#[test]
fn scheduler_throttling_shows_in_simt_efficiency() {
    let run = |limit: u32| {
        let mut s = sim();
        let cfg = StmConfig::new(1 << 6);
        let shared = StmShared::init(&mut s, &cfg).unwrap();
        let counters = s.alloc(1024).unwrap();
        let stm = Rc::new(Scheduled::new(
            LockStm::hv_sorting(shared, cfg),
            SchedulerConfig {
                initial_limit: limit,
                min_limit: limit,
                max_limit: limit,
                ..SchedulerConfig::default()
            },
        ));
        let kstm = Rc::clone(&stm);
        let report = s
            .launch(LaunchConfig::new(1, 64), move |ctx| {
                let stm = Rc::clone(&kstm);
                async move {
                    let mut w = stm.new_warp();
                    let mut rng = gpu_sim::WarpRng::new(4, ctx.id().thread_id(0));
                    let mut remaining = [2u32; 32];
                    loop {
                        let pending = ctx.id().launch_mask.filter(|l| remaining[l] > 0);
                        if pending.none() {
                            break;
                        }
                        let active = stm.begin(&mut w, &ctx, pending).await;
                        if active.none() {
                            continue;
                        }
                        let addrs =
                            gpu_stm::lane_addrs(active, |l| counters.offset(rng.below(l, 1024)));
                        let v = stm.read(&mut w, &ctx, active, &addrs).await;
                        let ok = active & stm.opaque(&w);
                        stm.write(&mut w, &ctx, ok, &addrs, &gpu_stm::lane_vals(ok, |l| v[l] + 1))
                            .await;
                        let committed = stm.commit(&mut w, &ctx, active).await;
                        for l in committed.iter() {
                            remaining[l] -= 1;
                        }
                    }
                }
            })
            .unwrap();
        report.stats.simt_efficiency()
    };
    let full = run(4096); // unconstrained
    let throttled = run(4); // 4 transactions at a time
    assert!(
        throttled < full,
        "throttled efficiency {throttled} should be below unconstrained {full}"
    );
}
