//! Property test: the static lint layer is sound with respect to the
//! dynamic happens-before detector on executed paths. Random TXL kernels
//! mixing transactional and plain accesses to one shared array are run on
//! the simulator with race detection; whenever the dynamic layer observes
//! a data race on the array, the static layer must have flagged a
//! weak-isolation hazard (TL001) in that kernel — no false negatives.

use gpu_sim::{race_sink, LaunchConfig, Sim, SimConfig};
use gpu_stm::{LockStm, StmConfig, StmShared};
use std::rc::Rc;
use txl::lint::{lint_source, LintConfig, Rule};
use txl::{compile, launch, ArrayBinding};

/// Deterministic case generator: splitmix64 stream.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u32) -> u32 {
        assert!(n > 0);
        ((self.next_u64() >> 32) as u32) % n
    }
}

const WORDS: u32 = 16;

fn index_expr(g: &mut Gen) -> String {
    match g.below(3) {
        0 => format!("{}", g.below(WORDS)),
        1 => format!("tid() % {WORDS}"),
        _ => format!("rand({WORDS})"),
    }
}

/// A random loop-free kernel over one shared array. Every kernel contains
/// at least one `atomic` access to the array, so any plain access is a
/// weak-isolation hazard candidate; whether it *races* depends on the
/// executed indices, which is exactly what the dynamic layer decides.
fn gen_kernel(g: &mut Gen) -> String {
    let mut body = String::new();
    body.push_str(&format!("    atomic {{ a[{0}] = a[{0}] + 1; }}\n", index_expr(g)));
    let extra = 1 + g.below(4);
    for i in 0..extra {
        let stmt = match g.below(4) {
            0 => format!("a[{}] = tid();", index_expr(g)),
            1 => format!("let r{i} = a[{}];", index_expr(g)),
            2 => format!("atomic {{ a[{0}] = a[{0}] + 2; }}", index_expr(g)),
            _ => format!("if tid() % 2 {{ a[{}] = {i}; }}", index_expr(g)),
        };
        body.push_str("    ");
        body.push_str(&stmt);
        body.push('\n');
    }
    format!("kernel p(a: array) {{\n{body}}}\n")
}

fn run_with_detector(src: &str) -> Vec<gpu_sim::DataRace> {
    let program = compile(src).unwrap();
    let sink = race_sink();
    let mut scfg = SimConfig::with_memory(1 << 16);
    scfg.watchdog_cycles = 1 << 32;
    scfg.race = Some(Rc::clone(&sink));
    let mut sim = Sim::new(scfg);
    let cfg = StmConfig::new(1 << 6);
    let shared = StmShared::init(&mut sim, &cfg).unwrap();
    let a = sim.alloc(WORDS).unwrap();
    let stm = Rc::new(LockStm::hv_sorting(shared, cfg));
    launch(
        &mut sim,
        &stm,
        program.kernel("p").unwrap(),
        LaunchConfig::new(2, 64),
        7,
        &[ArrayBinding::new("a", a, WORDS)],
    )
    .unwrap();
    let races = sink.borrow().races.clone();
    races
}

#[test]
fn dynamic_races_are_always_statically_flagged() {
    let mut racy_cases = 0usize;
    let mut clean_cases = 0usize;
    for case in 0..48u64 {
        let mut g = Gen::new(0xc0ffee ^ case);
        let src = gen_kernel(&mut g);
        let diags = lint_source(&src, &LintConfig::default()).unwrap();
        let races = run_with_detector(&src);
        if races.is_empty() {
            clean_cases += 1;
            continue;
        }
        racy_cases += 1;
        // Soundness: an executed weak-isolation race implies a static
        // TL001 verdict on this kernel.
        assert!(
            diags.iter().any(|d| d.rule == Rule::NonAtomicSharedAccess),
            "case {case}: dynamic race {} but no TL001 diagnostic.\nkernel:\n{src}\ndiags: {diags:?}",
            races[0],
        );
    }
    // The corpus must exercise both outcomes, or the property is vacuous.
    assert!(racy_cases > 0, "no generated kernel raced; generator too weak");
    assert!(clean_cases > 0, "every generated kernel raced; generator too strong");
}

/// The inverse direction is deliberately weaker (static analysis is
/// conservative), but fully-transactional kernels must be silent on both
/// layers: no TL001 and no dynamic race.
#[test]
fn fully_transactional_kernels_are_clean_on_both_layers() {
    for case in 0..16u64 {
        let mut g = Gen::new(0xface ^ case);
        let mut body = String::new();
        for _ in 0..1 + g.below(3) {
            body.push_str(&format!("    atomic {{ a[{0}] = a[{0}] + 1; }}\n", index_expr(&mut g)));
        }
        let src = format!("kernel p(a: array) {{\n{body}}}\n");
        let diags = lint_source(&src, &LintConfig::default()).unwrap();
        assert!(
            diags.iter().all(|d| d.rule != Rule::NonAtomicSharedAccess),
            "case {case}: spurious TL001 on fully-transactional kernel:\n{src}"
        );
        let races = run_with_detector(&src);
        assert!(races.is_empty(), "case {case}: race in fully-transactional kernel: {:?}", races);
    }
}
