//! Property-based tests (proptest) over the core data structures and
//! end-to-end transactional invariants.

use gpu_sim::coalesce::{atomic_conflict_depth, coalesce, SEGMENT_WORDS};
use gpu_sim::{Addr, LaneMask, LaunchConfig, Sim, SimConfig, WARP_SIZE};
use gpu_stm::locklog::LockLog;
use gpu_stm::sets::WriteSet;
use gpu_stm::{lane_addrs, lane_vals, LockStm, Stm, StmConfig, StmShared};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashSet};
use std::rc::Rc;

proptest! {
    /// Lane-mask algebra is Boolean algebra on 32-bit sets.
    #[test]
    fn lane_mask_set_algebra(a: u32, b: u32) {
        let (ma, mb) = (LaneMask::from_bits(a), LaneMask::from_bits(b));
        prop_assert_eq!((ma | mb).bits(), a | b);
        prop_assert_eq!((ma & mb).bits(), a & b);
        prop_assert_eq!((!(ma)).bits(), !a);
        prop_assert_eq!((ma & !mb) | (ma & mb), ma);
        let from_iter: LaneMask = ma.iter().collect();
        prop_assert_eq!(from_iter, ma);
    }

    /// Coalescing: the transaction count equals the number of distinct
    /// segments, is at most the active-lane count, and is at least one
    /// when any lane is active.
    #[test]
    fn coalesce_counts_distinct_segments(
        bits: u32,
        raw in proptest::collection::vec(0u32..4096, WARP_SIZE),
    ) {
        let mask = LaneMask::from_bits(bits);
        let addrs: [Addr; WARP_SIZE] = std::array::from_fn(|i| Addr(raw[i]));
        let c = coalesce(mask, &addrs);
        let distinct: HashSet<u32> =
            mask.iter().map(|l| addrs[l].0 / SEGMENT_WORDS).collect();
        prop_assert_eq!(c.transactions() as usize, distinct.len());
        prop_assert!(c.transactions() <= mask.count());
        if mask.any() {
            prop_assert!(c.transactions() >= 1);
        }
        let depth = atomic_conflict_depth(mask, &addrs);
        prop_assert!(depth <= mask.count());
    }

    /// The lock-log yields a sorted, deduplicated sequence whose contents
    /// and bits match a BTreeMap reference model, for any bucket count.
    #[test]
    fn locklog_matches_reference_model(
        ops in proptest::collection::vec((0u32..256, any::<bool>(), any::<bool>()), 0..64),
        buckets in 0u32..5,
    ) {
        let mut log = LockLog::new(1 << buckets, 256);
        let mut model: BTreeMap<u32, (bool, bool)> = BTreeMap::new();
        for (lock, rd, wr) in &ops {
            log.insert(*lock, *rd, *wr);
            let e = model.entry(*lock).or_insert((false, false));
            e.0 |= *rd;
            e.1 |= *wr;
        }
        prop_assert_eq!(log.len(), model.len());
        let got: Vec<(u32, bool, bool)> =
            log.iter_sorted().map(|e| (e.lock, e.read, e.write)).collect();
        let want: Vec<(u32, bool, bool)> =
            model.iter().map(|(k, (r, w))| (*k, *r, *w)).collect();
        prop_assert_eq!(got, want);
        // nth_sorted agrees with iteration.
        for (k, e) in log.iter_sorted().enumerate() {
            prop_assert_eq!(log.nth_sorted(k), Some(e));
        }
        prop_assert_eq!(log.nth_sorted(model.len()), None);
    }

    /// The write-set (Bloom filter + log) behaves like a per-lane map
    /// with last-write-wins semantics.
    #[test]
    fn writeset_matches_map_model(
        ops in proptest::collection::vec((0usize..4, 0u32..64, any::<u32>()), 0..100),
    ) {
        let mut ws = WriteSet::new();
        let mut model: BTreeMap<(usize, u32), u32> = BTreeMap::new();
        for (lane, addr, val) in &ops {
            ws.insert(*lane, Addr(*addr), *val);
            model.insert((*lane, *addr), *val);
        }
        for lane in 0..4 {
            for addr in 0..64u32 {
                prop_assert_eq!(
                    ws.lookup(lane, Addr(addr)),
                    model.get(&(lane, addr)).copied(),
                    "lane {} addr {}", lane, addr
                );
            }
            let expected_len = model.keys().filter(|(l, _)| *l == lane).count();
            prop_assert_eq!(ws.len(lane), expected_len);
        }
    }

    /// End-to-end conservation: random counter-increment workloads under
    /// GPU-STM never lose or duplicate increments, for arbitrary small
    /// configurations (lock-table size, counters, threads, increments).
    #[test]
    fn stm_conserves_increments(
        lock_bits in 2u32..8,
        n_counters in 1u32..32,
        warps in 1u32..3,
        incr in 1u32..4,
        seed: u64,
    ) {
        let mut cfg = SimConfig::with_memory(1 << 16);
        cfg.watchdog_cycles = 1 << 32;
        let mut sim = Sim::new(cfg);
        let stm_cfg = StmConfig { locklog_buckets: 4, ..StmConfig::new(1 << lock_bits) };
        let shared = StmShared::init(&mut sim, &stm_cfg).unwrap();
        let counters = sim.alloc(n_counters).unwrap();
        let stm = Rc::new(LockStm::hv_sorting(shared, stm_cfg));
        let kstm = Rc::clone(&stm);
        let grid = LaunchConfig::new(1, warps * 32);
        sim.launch(grid, move |ctx| {
            let stm = Rc::clone(&kstm);
            async move {
                let mut w = stm.new_warp();
                let mut rng = gpu_sim::WarpRng::new(seed, ctx.id().thread_id(0));
                let mut remaining = [incr; 32];
                let mut target = [0u32; 32];
                let mut fresh = ctx.id().launch_mask;
                loop {
                    let pending = ctx.id().launch_mask.filter(|l| remaining[l] > 0);
                    if pending.none() {
                        break;
                    }
                    for l in (pending & fresh).iter() {
                        target[l] = rng.below(l, n_counters);
                    }
                    let active = stm.begin(&mut w, &ctx, pending).await;
                    let addrs = lane_addrs(active, |l| counters.offset(target[l]));
                    let vals = stm.read(&mut w, &ctx, active, &addrs).await;
                    let ok = active & stm.opaque(&w);
                    stm.write(&mut w, &ctx, ok, &addrs, &lane_vals(ok, |l| vals[l] + 1)).await;
                    let committed = stm.commit(&mut w, &ctx, active).await;
                    for l in committed.iter() {
                        remaining[l] -= 1;
                    }
                    fresh = committed;
                }
            }
        })
        .unwrap();
        let total: u64 = sim.read_slice(counters, n_counters).iter().map(|v| *v as u64).sum();
        prop_assert_eq!(total, grid.total_threads() * incr as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The version-lock word encoding round-trips for any version that
    /// fits in 31 bits.
    #[test]
    fn version_lock_roundtrip(version in 0u32..(1 << 31)) {
        use gpu_stm::VersionLock;
        let v = VersionLock::unlocked(version);
        prop_assert!(!v.is_locked());
        prop_assert_eq!(v.version(), version);
        prop_assert!(v.locked().is_locked());
        prop_assert_eq!(v.locked().version(), version);
        prop_assert_eq!(v.locked().released(), v);
        // Algorithm 3's release-by-decrement preserves the version.
        prop_assert_eq!(VersionLock(v.locked().bits() - 1), v);
    }
}
