//! Randomised property tests over the core data structures and end-to-end
//! transactional invariants.
//!
//! The container builds offline, so these use a deterministic seeded
//! generator (splitmix64) instead of an external property-testing crate:
//! each property is exercised over a few hundred pseudo-random cases, and a
//! failing case prints its seed so it can be replayed exactly.

use gpu_sim::coalesce::{atomic_conflict_depth, coalesce, SEGMENT_WORDS};
use gpu_sim::{Addr, LaneMask, LaunchConfig, Sim, SimConfig, WARP_SIZE};
use gpu_stm::locklog::LockLog;
use gpu_stm::sets::WriteSet;
use gpu_stm::{lane_addrs, lane_vals, LockStm, Stm, StmConfig, StmShared};
use std::collections::{BTreeMap, HashSet};
use std::rc::Rc;

/// Deterministic case generator: splitmix64 stream.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn below(&mut self, n: u32) -> u32 {
        assert!(n > 0);
        self.next_u32() % n
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Lane-mask algebra is Boolean algebra on 32-bit sets.
#[test]
fn lane_mask_set_algebra() {
    let mut g = Gen::new(0xa1);
    for case in 0..512 {
        let (a, b) = (g.next_u32(), g.next_u32());
        let (ma, mb) = (LaneMask::from_bits(a), LaneMask::from_bits(b));
        assert_eq!((ma | mb).bits(), a | b, "case {case}: a={a:#x} b={b:#x}");
        assert_eq!((ma & mb).bits(), a & b, "case {case}: a={a:#x} b={b:#x}");
        assert_eq!((!(ma)).bits(), !a, "case {case}: a={a:#x}");
        assert_eq!((ma & !mb) | (ma & mb), ma, "case {case}: a={a:#x} b={b:#x}");
        let from_iter: LaneMask = ma.iter().collect();
        assert_eq!(from_iter, ma, "case {case}: a={a:#x}");
    }
}

/// Coalescing: the transaction count equals the number of distinct
/// segments, is at most the active-lane count, and is at least one when
/// any lane is active.
#[test]
fn coalesce_counts_distinct_segments() {
    let mut g = Gen::new(0xc0);
    for case in 0..512 {
        let mask = LaneMask::from_bits(g.next_u32());
        let addrs: [Addr; WARP_SIZE] = std::array::from_fn(|_| Addr(g.below(4096)));
        let c = coalesce(mask, &addrs);
        let distinct: HashSet<u32> = mask.iter().map(|l| addrs[l].0 / SEGMENT_WORDS).collect();
        assert_eq!(c.transactions() as usize, distinct.len(), "case {case}");
        assert!(c.transactions() <= mask.count(), "case {case}");
        if mask.any() {
            assert!(c.transactions() >= 1, "case {case}");
        }
        let depth = atomic_conflict_depth(mask, &addrs);
        assert!(depth <= mask.count(), "case {case}");
    }
}

/// The lock-log yields a sorted, deduplicated sequence whose contents and
/// bits match a BTreeMap reference model, for any bucket count.
#[test]
fn locklog_matches_reference_model() {
    let mut g = Gen::new(0x10c);
    for case in 0..256 {
        let buckets = g.below(5);
        let n_ops = g.below(64) as usize;
        let ops: Vec<(u32, bool, bool)> =
            (0..n_ops).map(|_| (g.below(256), g.bool(), g.bool())).collect();
        let mut log = LockLog::new(1 << buckets, 256);
        let mut model: BTreeMap<u32, (bool, bool)> = BTreeMap::new();
        for (lock, rd, wr) in &ops {
            log.insert(*lock, *rd, *wr);
            let e = model.entry(*lock).or_insert((false, false));
            e.0 |= *rd;
            e.1 |= *wr;
        }
        assert_eq!(log.len(), model.len(), "case {case}");
        let got: Vec<(u32, bool, bool)> =
            log.iter_sorted().map(|e| (e.lock, e.read, e.write)).collect();
        let want: Vec<(u32, bool, bool)> = model.iter().map(|(k, (r, w))| (*k, *r, *w)).collect();
        assert_eq!(got, want, "case {case}");
        // nth_sorted agrees with iteration.
        for (k, e) in log.iter_sorted().enumerate() {
            assert_eq!(log.nth_sorted(k), Some(e), "case {case}");
        }
        assert_eq!(log.nth_sorted(model.len()), None, "case {case}");
    }
}

/// The write-set (Bloom filter + log) behaves like a per-lane map with
/// last-write-wins semantics.
#[test]
fn writeset_matches_map_model() {
    let mut g = Gen::new(0x3e7);
    for case in 0..256 {
        let n_ops = g.below(100) as usize;
        let mut ws = WriteSet::new();
        let mut model: BTreeMap<(usize, u32), u32> = BTreeMap::new();
        for _ in 0..n_ops {
            let (lane, addr, val) = (g.below(4) as usize, g.below(64), g.next_u32());
            ws.insert(lane, Addr(addr), val);
            model.insert((lane, addr), val);
        }
        for lane in 0..4 {
            for addr in 0..64u32 {
                assert_eq!(
                    ws.lookup(lane, Addr(addr)),
                    model.get(&(lane, addr)).copied(),
                    "case {case} lane {lane} addr {addr}"
                );
            }
            let expected_len = model.keys().filter(|(l, _)| *l == lane).count();
            assert_eq!(ws.len(lane), expected_len, "case {case} lane {lane}");
        }
    }
}

/// End-to-end conservation: random counter-increment workloads under
/// GPU-STM never lose or duplicate increments, for arbitrary small
/// configurations (lock-table size, counters, threads, increments).
#[test]
fn stm_conserves_increments() {
    let mut g = Gen::new(0x57a);
    for case in 0..12 {
        let lock_bits = 2 + g.below(6);
        let n_counters = 1 + g.below(31);
        let warps = 1 + g.below(2);
        let incr = 1 + g.below(3);
        let seed = g.next_u64();
        let mut cfg = SimConfig::with_memory(1 << 16);
        cfg.watchdog_cycles = 1 << 32;
        let mut sim = Sim::new(cfg);
        let stm_cfg = StmConfig { locklog_buckets: 4, ..StmConfig::new(1 << lock_bits) };
        let shared = StmShared::init(&mut sim, &stm_cfg).unwrap();
        let counters = sim.alloc(n_counters).unwrap();
        let stm = Rc::new(LockStm::hv_sorting(shared, stm_cfg));
        let kstm = Rc::clone(&stm);
        let grid = LaunchConfig::new(1, warps * 32);
        sim.launch(grid, move |ctx| {
            let stm = Rc::clone(&kstm);
            async move {
                let mut w = stm.new_warp();
                let mut rng = gpu_sim::WarpRng::new(seed, ctx.id().thread_id(0));
                let mut remaining = [incr; 32];
                let mut target = [0u32; 32];
                let mut fresh = ctx.id().launch_mask;
                loop {
                    let pending = ctx.id().launch_mask.filter(|l| remaining[l] > 0);
                    if pending.none() {
                        break;
                    }
                    for l in (pending & fresh).iter() {
                        target[l] = rng.below(l, n_counters);
                    }
                    let active = stm.begin(&mut w, &ctx, pending).await;
                    let addrs = lane_addrs(active, |l| counters.offset(target[l]));
                    let vals = stm.read(&mut w, &ctx, active, &addrs).await;
                    let ok = active & stm.opaque(&w);
                    stm.write(&mut w, &ctx, ok, &addrs, &lane_vals(ok, |l| vals[l] + 1)).await;
                    let committed = stm.commit(&mut w, &ctx, active).await;
                    for l in committed.iter() {
                        remaining[l] -= 1;
                    }
                    fresh = committed;
                }
            }
        })
        .unwrap();
        let total: u64 = sim.read_slice(counters, n_counters).iter().map(|v| *v as u64).sum();
        assert_eq!(total, grid.total_threads() * incr as u64, "case {case} seed {seed:#x}");
    }
}

/// The version-lock word encoding round-trips for any version that fits in
/// 31 bits.
#[test]
fn version_lock_roundtrip() {
    use gpu_stm::VersionLock;
    let mut g = Gen::new(0x10c4);
    for case in 0..256 {
        let version = g.next_u32() & ((1 << 31) - 1);
        let v = VersionLock::unlocked(version);
        assert!(!v.is_locked(), "case {case}");
        assert_eq!(v.version(), version, "case {case}");
        assert!(v.locked().is_locked(), "case {case}");
        assert_eq!(v.locked().version(), version, "case {case}");
        assert_eq!(v.locked().released(), v, "case {case}");
        // Algorithm 3's release-by-decrement preserves the version.
        assert_eq!(VersionLock(v.locked().bits() - 1), v, "case {case}");
    }
}
