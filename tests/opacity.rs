//! Cross-crate opacity tests: every STM variant's recorded history must be
//! serializable with consistent reads (tm-check replay), and replaying
//! only committed writes must reproduce the simulator's final memory
//! (aborted transactions leak nothing).

use gpu_sim::{Addr, LaunchConfig};
use gpu_stm::recorder;
use tm_check::{assert_opaque, check_final_state, check_history};
use workloads::ra::{self, RaParams};
use workloads::{RunConfig, Variant};

fn contended_params() -> (RaParams, LaunchConfig) {
    (
        RaParams {
            shared_words: 256, // tiny array: heavy conflicts
            actions_per_tx: 6,
            txs_per_thread: 3,
            write_pct: 60,
            seed: 99,
        },
        LaunchConfig::new(2, 64),
    )
}

fn check_variant(variant: Variant) {
    let (params, grid) = contended_params();
    let rec = recorder();
    let mut cfg = RunConfig::with_memory(1 << 16).with_locks(1 << 6);
    cfg.recorder = Some(rec.clone());
    let (out, sim, data) = ra::run_with_sim(&params, variant, grid, &cfg).unwrap();
    let h = rec.borrow();

    assert_eq!(
        h.commits.len() as u64,
        grid.total_threads() * params.txs_per_thread as u64,
        "{variant}: history must contain every committed transaction"
    );
    // Replay-based serializability/opacity check (initial memory is zero).
    let report = assert_opaque(&h, |_| 0);
    assert_eq!(report.writers + report.read_only, h.commits.len());

    // Final-state check: committed writes alone reproduce device memory.
    let addrs = (0..params.shared_words).map(|i| data.offset(i)).collect::<Vec<_>>();
    let violations = check_final_state(&h, |_| 0, |a| sim.read(a), addrs);
    assert!(violations.is_empty(), "{variant}: {:?}", &violations[..violations.len().min(3)]);

    // Contended tiny array: this workload must actually have conflicted,
    // otherwise the test proves nothing.
    if variant != Variant::Cgl {
        assert!(out.tx.aborts > 0, "{variant}: expected conflicts in this configuration");
    }
}

#[test]
fn hv_sorting_history_is_opaque() {
    check_variant(Variant::HvSorting);
}

#[test]
fn tbv_sorting_history_is_opaque() {
    check_variant(Variant::TbvSorting);
}

#[test]
fn hv_backoff_history_is_opaque() {
    check_variant(Variant::HvBackoff);
}

#[test]
fn tbv_backoff_history_is_opaque() {
    check_variant(Variant::TbvBackoff);
}

#[test]
fn vbv_history_is_opaque() {
    check_variant(Variant::Vbv);
}

#[test]
fn optimized_history_is_opaque() {
    check_variant(Variant::Optimized);
}

#[test]
fn egpgv_history_is_opaque() {
    check_variant(Variant::Egpgv);
}

#[test]
fn cgl_history_is_opaque() {
    check_variant(Variant::Cgl);
}

/// The checker itself must not be vacuous: corrupting a recorded read
/// value must produce a violation.
#[test]
fn checker_detects_injected_inconsistency() {
    let (params, grid) = contended_params();
    let rec = recorder();
    let mut cfg = RunConfig::with_memory(1 << 16).with_locks(1 << 6);
    cfg.recorder = Some(rec.clone());
    ra::run(&params, Variant::HvSorting, grid, &cfg).unwrap();
    let mut h = rec.borrow().clone();
    // Corrupt one committed read.
    let tx = h
        .commits
        .iter_mut()
        .find(|t| !t.reads.is_empty() && t.version.is_some())
        .expect("some writer with reads");
    tx.reads[0].val ^= 0xdead_beef;
    let report = check_history(&h, |_| 0);
    assert!(!report.is_ok(), "corrupted history must fail the checker");
}

/// Weak isolation note (Section 3.2.1): conflicts between transactional
/// and non-transactional accesses are not detected. This test documents
/// the guarantee boundary: a non-transactional store is invisible to the
/// final-state replay.
#[test]
fn non_transactional_writes_are_outside_the_checker_model() {
    let (params, grid) = contended_params();
    let rec = recorder();
    let mut cfg = RunConfig::with_memory(1 << 16).with_locks(1 << 6);
    cfg.recorder = Some(rec.clone());
    let (_, mut sim, data) = ra::run_with_sim(&params, Variant::HvSorting, grid, &cfg).unwrap();
    // Host-side (non-transactional) dirty write after the kernel.
    sim.write(data, 0xffff_ffff);
    let h = rec.borrow();
    let violations = check_final_state(&h, |_| 0, |a| sim.read(a), [Addr(data.0)]);
    assert_eq!(violations.len(), 1, "the dirty word must surface as a mismatch");
}
