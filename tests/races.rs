//! Happens-before race-detection sweep: every STM variant must run every
//! workload without a single unordered conflicting access pair. The STM
//! runtimes synchronise exclusively through the simulator's atomics, so
//! the detector sees their lock/version traffic as sync edges and their
//! speculative data traffic as STM-ordered — anything left over would be
//! a real data race in the runtime itself.

use gpu_sim::{race_sink, LaunchConfig, Sim, SimConfig, WarpCtx};
use tm_check::{races_to_violations, Violation};
use workloads::{eigenbench, genome, ht, kmeans, labyrinth, ra, RunConfig, RunError, Variant};

fn race_config(mem: usize) -> (RunConfig, gpu_sim::RaceSink) {
    let sink = race_sink();
    let mut cfg = RunConfig::with_memory(mem).with_locks(1 << 8);
    cfg.sim.race = Some(std::rc::Rc::clone(&sink));
    cfg.sim.watchdog_cycles = 1 << 32;
    (cfg, sink)
}

fn assert_race_free(label: &str, sink: &gpu_sim::RaceSink) {
    let log = sink.borrow();
    assert!(log.is_empty(), "{label}: {} data race(s), first: {}", log.races.len(), log.races[0]);
}

/// Positive control: the detector is live in exactly this configuration —
/// two warps storing to the same word without synchronisation are caught,
/// and the report lifts into a tm-check violation.
#[test]
fn unsynchronised_stores_are_detected() {
    let sink = race_sink();
    let mut cfg = SimConfig::with_memory(1 << 12);
    cfg.race = Some(std::rc::Rc::clone(&sink));
    let mut sim = Sim::new(cfg);
    let target = sim.alloc(4).unwrap();
    sim.launch(LaunchConfig::new(1, 64), move |ctx: WarpCtx| async move {
        let mask = ctx.id().launch_mask;
        let vals = [ctx.id().warp_in_block + 1; 32];
        ctx.store(mask, &[target; 32], &vals).await;
    })
    .unwrap();
    let log = sink.borrow();
    assert!(!log.is_empty(), "cross-warp conflicting stores must be flagged");
    let violations = races_to_violations(&log.races);
    assert_eq!(violations.len(), log.races.len());
    assert!(matches!(violations[0], Violation::DataRace { .. }));
}

#[test]
fn ra_is_race_free_across_all_variants() {
    let params = ra::RaParams {
        shared_words: 256,
        actions_per_tx: 4,
        txs_per_thread: 2,
        write_pct: 60,
        seed: 4242,
    };
    for v in Variant::ALL {
        let (cfg, sink) = race_config(1 << 16);
        match ra::run(&params, v, LaunchConfig::new(2, 64), &cfg) {
            Ok(_) => assert_race_free(&format!("ra/{v}"), &sink),
            Err(RunError::Unsupported(_)) => continue,
            Err(e) => panic!("ra/{v}: {e}"),
        }
    }
}

#[test]
fn ht_is_race_free_across_all_variants() {
    let params =
        ht::HtParams { table_words: 1 << 11, inserts_per_tx: 2, txs_per_thread: 1, seed: 3 };
    for v in Variant::ALL {
        let (cfg, sink) = race_config(1 << 16);
        match ht::run(&params, v, LaunchConfig::new(2, 64), &cfg) {
            Ok(_) => assert_race_free(&format!("ht/{v}"), &sink),
            Err(RunError::Unsupported(_)) => continue,
            Err(e) => panic!("ht/{v}: {e}"),
        }
    }
}

#[test]
fn kmeans_is_race_free_across_all_variants() {
    let params =
        kmeans::KmParams { clusters: 4, dims: 4, points_per_thread: 2, range: 32, seed: 13 };
    for v in Variant::ALL {
        let (cfg, sink) = race_config(1 << 16);
        match kmeans::run(&params, v, LaunchConfig::new(2, 32), &cfg) {
            Ok(_) => assert_race_free(&format!("kmeans/{v}"), &sink),
            Err(RunError::Unsupported(_)) => continue,
            Err(e) => panic!("kmeans/{v}: {e}"),
        }
    }
}

#[test]
fn genome_is_race_free_across_all_variants() {
    let params =
        genome::GnParams { n_segments: 128, value_space: 64, table_words: 1 << 9, seed: 21 };
    for v in Variant::ALL {
        let (cfg, sink) = race_config(1 << 16);
        match genome::run(&params, v, LaunchConfig::new(2, 64), LaunchConfig::new(2, 32), &cfg) {
            Ok(_) => assert_race_free(&format!("genome/{v}"), &sink),
            Err(RunError::Unsupported(_)) => continue,
            Err(e) => panic!("genome/{v}: {e}"),
        }
    }
}

#[test]
fn labyrinth_is_race_free_across_all_variants() {
    let params = labyrinth::LbParams { width: 32, height: 32, n_paths: 12, max_span: 8, seed: 5 };
    for v in Variant::ALL {
        let (cfg, sink) = race_config(1 << 16);
        match labyrinth::run(&params, v, LaunchConfig::new(2, 32), &cfg) {
            Ok(_) => assert_race_free(&format!("labyrinth/{v}"), &sink),
            Err(RunError::Unsupported(_)) => continue,
            Err(e) => panic!("labyrinth/{v}: {e}"),
        }
    }
}

#[test]
fn eigenbench_is_race_free_across_all_variants() {
    let params = eigenbench::EbParams {
        hot_words: 1 << 10,
        hot_reads: 4,
        hot_writes: 2,
        mild_words: 4,
        mild_ops: 1,
        cold_words: 4,
        cold_ops: 2,
        txs_per_thread: 2,
        seed: 11,
    };
    for v in Variant::ALL {
        let (cfg, sink) = race_config(1 << 17);
        match eigenbench::run(&params, v, LaunchConfig::new(2, 64), &cfg) {
            Ok(_) => assert_race_free(&format!("eigenbench/{v}"), &sink),
            Err(RunError::Unsupported(_)) => continue,
            Err(e) => panic!("eigenbench/{v}: {e}"),
        }
    }
}

/// Turning detection on must not perturb execution: cycle counts and
/// commit totals match a detection-off run exactly (pure observation).
#[test]
fn detection_does_not_perturb_workload_timing() {
    let params = ra::RaParams {
        shared_words: 256,
        actions_per_tx: 4,
        txs_per_thread: 2,
        write_pct: 60,
        seed: 4242,
    };
    let grid = LaunchConfig::new(2, 64);
    let plain_cfg = {
        let mut c = RunConfig::with_memory(1 << 16).with_locks(1 << 8);
        c.sim.watchdog_cycles = 1 << 32;
        c
    };
    let plain = ra::run(&params, Variant::HvSorting, grid, &plain_cfg).unwrap();
    let (cfg, sink) = race_config(1 << 16);
    let traced = ra::run(&params, Variant::HvSorting, grid, &cfg).unwrap();
    assert_race_free("ra/HvSorting", &sink);
    assert_eq!(plain.cycles(), traced.cycles(), "detection changed timing");
    assert_eq!(plain.tx.commits, traced.tx.commits, "detection changed commits");
}
