//! Property test: the `txl::cost` static conflict graph is a *sound
//! over-approximation* of dynamically observed transactional conflicts.
//!
//! Every program is analyzed statically (`analyze_source`) and executed
//! on the simulator with a commit recorder attached. Whenever two
//! committed transactions from distinct threads overlap on an address
//! with at least one write — a real, observed conflict — the static
//! conflict graph must contain an edge between atomic blocks that can
//! account for those two commits. The check runs over the seeded lint
//! fixture corpus and over ≥32 generated straight-line programs (where
//! commit→block attribution is exact). TL007 is validated the same way:
//! every block the analysis classifies read-only must only ever commit
//! empty write-sets.

use gpu_sim::{LaunchConfig, Sim, SimConfig};
use gpu_stm::{recorder, CommittedTx, LockStm, StmConfig, StmShared};
use std::rc::Rc;
use txl::{analyze_source, compile, launch, ArrayBinding, CostConfig, StaticProfile};

/// Modeled and executed concurrency: 2 blocks × 32 lanes.
const THREADS: u32 = 64;
/// Shared-array words for generated programs.
const WORDS: u32 = 16;

fn cost_cfg() -> CostConfig {
    CostConfig { threads: THREADS, ..CostConfig::default() }
}

/// Deterministic case generator: splitmix64 stream.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u32) -> u32 {
        assert!(n > 0);
        ((self.next_u64() >> 32) as u32) % n
    }
}

/// One executed program: the committed history plus the array bindings
/// needed to map data addresses back to `(param, index)`.
struct RunOutcome {
    commits: Vec<CommittedTx>,
    bindings: Vec<(String, u32, u32)>, // (name, base, len)
}

/// Compiles and runs `src` (first kernel) at [`THREADS`] threads with a
/// commit recorder attached. Buggy fixtures may legitimately hang or
/// fault the simulator; those come back as `Err` and are skipped.
fn run_recorded(src: &str) -> Result<RunOutcome, txl::TxlError> {
    let program = compile(src)?;
    let kernel = program.kernels.first().expect("program has a kernel");

    let mut scfg = SimConfig::with_memory(1 << 16);
    scfg.watchdog_cycles = 1 << 26;
    scfg.stall_cycles = 1 << 20;
    let mut sim = Sim::new(scfg);
    let stm_cfg = StmConfig::new(1 << 6);
    let shared = StmShared::init(&mut sim, &stm_cfg).expect("stm init");
    let rec = recorder();
    let stm = Rc::new(LockStm::hv_sorting(shared, stm_cfg).with_recorder(rec.clone()));

    // Size each array from its declaration, falling back to the static
    // footprint hull (the same policy tm-verify witness runs use).
    let fp = txl::kernel_footprint(kernel, txl::Interval::new(0, THREADS - 1), THREADS);
    let mut bindings = Vec::new();
    let mut named = Vec::new();
    for (pi, p) in kernel.params.iter().enumerate() {
        let len = p
            .declared_len
            .or_else(|| match fp.params[pi].touched() {
                Some(hull) if !hull.is_top() && hull.hi < 4096 => Some(hull.hi + 1),
                _ => None,
            })
            .unwrap_or(THREADS)
            .max(1);
        let addr = sim.alloc(len).expect("alloc");
        bindings.push(ArrayBinding::new(p.name.clone(), addr, len));
        named.push((p.name.clone(), addr.0, len));
    }

    launch(&mut sim, &stm, kernel, LaunchConfig::new(2, 32), 7, &bindings)?;
    let commits = rec.borrow().commits.clone();
    Ok(RunOutcome { commits, bindings: named })
}

/// Maps a data address back to `(param name, index)` via the bindings.
fn locate(bindings: &[(String, u32, u32)], addr: u32) -> Option<(usize, u32)> {
    bindings
        .iter()
        .position(|(_, base, len)| addr >= *base && addr < base + len)
        .map(|pi| (pi, addr - bindings[pi].1))
}

/// All `(param, index)` cells a commit touched, reads and writes alike.
fn touched_cells(bindings: &[(String, u32, u32)], tx: &CommittedTx) -> Vec<(usize, u32)> {
    tx.reads.iter().chain(tx.writes.iter()).filter_map(|a| locate(bindings, a.addr.0)).collect()
}

/// Whether two commits from distinct threads conflict: they overlap on
/// an address and at least one side writes it.
fn dyn_conflict(a: &CommittedTx, b: &CommittedTx) -> bool {
    if a.tid == b.tid {
        return false;
    }
    let hits = |xs: &[gpu_stm::Access], ys: &[gpu_stm::Access]| {
        xs.iter().any(|x| ys.iter().any(|y| x.addr == y.addr))
    };
    hits(&a.writes, &b.writes) || hits(&a.writes, &b.reads) || hits(&a.reads, &b.writes)
}

/// Whether block `m` of the profile can account for a commit touching
/// `cells`: every touched cell lies inside the block's static hull for
/// that array. The true originating block always qualifies (that is the
/// footprint soundness the analysis guarantees), so an existential
/// search over `fits` never comes up empty for a real commit.
fn fits(
    profile: &StaticProfile,
    bindings: &[(String, u32, u32)],
    m: usize,
    cells: &[(usize, u32)],
) -> bool {
    cells.iter().all(|&(pi, idx)| {
        profile.tx[m].arrays.iter().any(|a| {
            a.name == bindings[pi].0
                && a.footprint.touched().is_some_and(|h| h.lo <= idx && idx <= h.hi)
        })
    })
}

/// The fixture-corpus half: commit→block attribution is unknown (loops,
/// branches), so the check is existential — some pair of blocks that
/// covers the two commits must be joined by a static edge.
#[test]
fn fixtures_static_graph_covers_dynamic_conflicts() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/txl/tests/fixtures");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("fixture dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "txl"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 15, "fixture corpus shrank: {}", paths.len());

    let mut conflicts_checked = 0usize;
    let mut ran = 0usize;
    for path in &paths {
        let src = std::fs::read_to_string(path).expect("fixture reads");
        let profile = analyze_source(&src, &cost_cfg()).expect("fixture analyzes");
        // Buggy fixtures may deadlock/livelock the simulator; the static
        // analysis still must not crash on them, but only clean runs
        // yield a history to compare against.
        let Ok(out) = run_recorded(&src) else { continue };
        ran += 1;
        for i in 0..out.commits.len() {
            for j in i + 1..out.commits.len() {
                let (a, b) = (&out.commits[i], &out.commits[j]);
                if !dyn_conflict(a, b) {
                    continue;
                }
                conflicts_checked += 1;
                let ca = touched_cells(&out.bindings, a);
                let cb = touched_cells(&out.bindings, b);
                let covered = (0..profile.tx.len()).any(|m| {
                    (0..profile.tx.len()).any(|n| {
                        fits(&profile, &out.bindings, m, &ca)
                            && fits(&profile, &out.bindings, n, &cb)
                            && profile.graph.has_edge(m, n)
                    })
                });
                assert!(
                    covered,
                    "{}: observed conflict (tid {} vs tid {}) has no covering static edge",
                    path.display(),
                    a.tid,
                    b.tid
                );
            }
        }
    }
    assert!(ran >= 8, "too few fixtures ran to completion: {ran}");
    assert!(conflicts_checked > 0, "no fixture produced a dynamic conflict; property vacuous");
}

/// One generated straight-line program: every atomic block is top-level
/// and unconditional, so thread `t`'s `k`-th commit comes from block `k`
/// and the conflict-graph check is exact, not existential.
fn gen_program(g: &mut Gen) -> String {
    let n_blocks = 2 + g.below(3);
    let mut body = String::new();
    for bi in 0..n_blocks {
        let arr = if g.below(2) == 0 { "a" } else { "b" };
        let stmt = match g.below(5) {
            // Hot single cell: every thread collides.
            0 => format!("atomic {{ {arr}[{0}] = {arr}[{0}] + 1; }}", g.below(4)),
            // Striped: collides across SIMT blocks only.
            1 => format!("atomic {{ {arr}[tid() % {WORDS}] = tid(); }}"),
            // Random cell: [0, WORDS) hull, data-dependent collisions.
            2 => {
                format!("atomic {{ let j{bi} = rand({WORDS}); {arr}[j{bi}] = {arr}[j{bi}] + 1; }}")
            }
            // Read-only: the TL007 shape.
            3 => format!("atomic {{ let r{bi} = {arr}[tid() % {WORDS}]; }}"),
            // Two-array transfer on a shared cell.
            _ => format!("atomic {{ a[{0}] = a[{0}] - 1; b[{0}] = b[{0}] + 1; }}", g.below(WORDS)),
        };
        body.push_str("    ");
        body.push_str(&stmt);
        body.push('\n');
    }
    format!("kernel p(a: array[{WORDS}], b: array[{WORDS}]) {{\n{body}}}\n")
}

#[test]
fn generated_conflicts_are_edges_and_tl007_blocks_stay_read_only() {
    let mut conflicts_checked = 0usize;
    let mut read_only_commits = 0usize;
    for seed in 0..40u64 {
        let mut g = Gen::new(0xa9a1 ^ (seed * 0x9e37));
        let src = gen_program(&mut g);
        let profile = analyze_source(&src, &cost_cfg()).expect("generated program analyzes");
        let out = run_recorded(&src).expect("generated program runs");

        // Exact attribution: straight-line programs commit one tx per
        // block per thread, in program order.
        for (k, tx) in profile.tx.iter().enumerate() {
            assert_eq!(tx.index, k, "seed {seed}: profile blocks out of source order");
        }
        let mut per_thread: Vec<Vec<usize>> = vec![Vec::new(); THREADS as usize];
        for (ci, c) in out.commits.iter().enumerate() {
            per_thread[c.tid as usize].push(ci);
        }
        let block_of = |ci: usize| -> usize {
            let c = &out.commits[ci];
            per_thread[c.tid as usize].iter().position(|&x| x == ci).expect("attributed")
        };
        for lane in &per_thread {
            assert_eq!(
                lane.len(),
                profile.tx.len(),
                "seed {seed}: a thread committed a different number of txs than blocks:\n{src}"
            );
        }

        // Soundness: every observed conflict is a static edge.
        for i in 0..out.commits.len() {
            for j in i + 1..out.commits.len() {
                if !dyn_conflict(&out.commits[i], &out.commits[j]) {
                    continue;
                }
                conflicts_checked += 1;
                let (m, n) = (block_of(i), block_of(j));
                assert!(
                    profile.graph.has_edge(m, n),
                    "seed {seed}: observed conflict between blocks {m} and {n} \
                     missing from the static graph:\n{src}"
                );
            }
        }

        // TL007: statically read-only blocks never commit a write, and
        // the lint rule flags exactly the blocks the profile classifies.
        let lint_cfg = txl::LintConfig { flag_read_only: true, ..txl::LintConfig::default() };
        let diags = txl::lint_source(&src, &lint_cfg).expect("generated program lints");
        let flagged: Vec<_> =
            diags.iter().filter(|d| d.rule.id() == "TL007").map(|d| d.span).collect();
        for (k, tx) in profile.tx.iter().enumerate() {
            assert_eq!(
                flagged.contains(&tx.span),
                tx.read_only,
                "seed {seed}: TL007 flags disagree with the profile on block {k}"
            );
            if !tx.read_only {
                continue;
            }
            for lane in &per_thread {
                let c = &out.commits[lane[k]];
                assert!(
                    c.is_read_only(),
                    "seed {seed}: TL007 block {k} committed a write (tid {}):\n{src}",
                    c.tid
                );
                read_only_commits += 1;
            }
        }
    }
    // The corpus must exercise both phenomena, or the property is vacuous.
    assert!(conflicts_checked > 0, "no generated program conflicted; generator too weak");
    assert!(read_only_commits > 0, "no generated program had a TL007 block; generator too weak");
}
