//! End-to-end witness provenance: a model-checker violation found by
//! `tm-verify` is minimized, saved as a `.sched` witness, and attached
//! to a `tm-serve` flight-recorder bundle — so the post-mortem a human
//! opens after a check violation links straight to the schedule that
//! reproduces it.

use tm_serve::{FlightBundle, FlightFrame, IncidentCause};
use tm_verify::{explore_case, save_witness, unsorted_locks, witness_reproduces};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gpu-stm-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale temp dir");
    }
    dir
}

fn bundle_with(frames: Vec<FlightFrame>) -> FlightBundle {
    FlightBundle {
        name: "s000-r000004-check_violation".to_string(),
        shard: 0,
        cause: IncidentCause::CheckViolation,
        epoch: 4096,
        round: 4,
        wal_seq: 0,
        store_fnv: 0,
        variant: "hv-sorting".to_string(),
        mode: "scheduled".to_string(),
        seed: 7,
        frames,
        witness: None,
    }
}

#[test]
fn violation_bundles_carry_the_minimized_witness() {
    // 1. The model checker finds the crossing-lock deadlock.
    let case = unsorted_locks();
    let report = explore_case(&case, 2, 500);
    let finding = report
        .findings
        .iter()
        .find(|f| f.violation.kind.is_progress_failure())
        .expect("explorer finds the seeded deadlock");

    // 2. The minimized witness is saved with rule provenance.
    let dir = temp_dir("obs-witness");
    let prov = save_witness(&dir, &case, finding).expect("witness saves");
    assert_eq!(prov.rule, "TL002");
    assert_eq!(prov.case, "unsorted-locks");
    let text = std::fs::read_to_string(&prov.path).expect("witness file exists");
    assert_eq!(witness_reproduces(&case, &text), Ok(true), "saved witness must replay");

    // 3. An incident bundle carries the provenance in its JSON summary
    //    and its `.sched`-style context block.
    let frame = FlightFrame {
        round: 4,
        epoch: 4096,
        seq: 0,
        cycles: 1024,
        commits: 3,
        aborts: 1,
        storm: false,
        sim_events: Vec::new(),
        tx_events: Vec::new(),
    };
    let path_str = prov.path.to_string_lossy().into_owned();
    let bundle = bundle_with(vec![frame]).with_witness(&prov.rule, &path_str);

    let json = bundle.to_json();
    assert!(json.contains("\"rule\":\"TL002\""), "summary names the rule: {json}");
    assert!(json.contains(&format!("\"path\":{:?}", path_str)), "summary carries the path");

    let ctx = bundle.context();
    assert!(ctx.contains("meta rule TL002"), "context names the rule:\n{ctx}");
    assert!(ctx.contains(&format!("meta witness {path_str}")), "context carries the path");
    assert!(ctx.contains("meta cause check_violation"));

    // 4. The dumped bundle pair round-trips through the filesystem and
    //    the trace half is a valid (if empty) Chrome trace.
    let out = bundle.write_to(&dir).expect("bundle dumps");
    let dumped = std::fs::read_to_string(&out).expect("summary file exists");
    assert!(dumped.contains("meta rule TL002"));
    let trace_path = dir.join(format!("{}.trace.json", bundle.name));
    let trace = std::fs::read_to_string(&trace_path).expect("trace file exists");
    assert!(trace.contains("traceEvents"));

    std::fs::remove_dir_all(&dir).ok();
}
