//! Quickstart: the paper's Figure 1 code example — the *random array*
//! micro-benchmark, transactified with GPU-STM.
//!
//! Every GPU thread runs transactions that read/write random elements of
//! one shared array. This mirrors the CUDA host/kernel pair of Figure 1:
//! `STM_STARTUP()` → kernel launch (with `STM_NEW_WARP()`, `TXBegin`,
//! `TXRead`/`TXWrite`, opacity checks, `TXCommit`) → `STM_SHUTDOWN()`.
//!
//! Run: `cargo run --release --example quickstart`

use gpu_sim::{LaunchConfig, Sim, SimConfig, WarpRng};
use gpu_stm::{lane_addrs, lane_vals, LockStm, Stm, StmConfig, StmShared};
use std::rc::Rc;

const ARRAY_WORDS: u32 = 1 << 16;
const ACTIONS_PER_TX: u32 = 8;
const TXS_PER_THREAD: u32 = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- CPU-host code (Figure 1, `randomarray()`) ----
    let mut sim = Sim::new(SimConfig::with_memory(1 << 20));
    let d_array = sim.alloc(ARRAY_WORDS)?; // cudaMalloc
    let stm_cfg = StmConfig::new(1 << 14);
    let shared = StmShared::init(&mut sim, &stm_cfg)?; // STM_STARTUP()
    let stm = Rc::new(LockStm::hv_sorting(shared, stm_cfg));

    let grid = LaunchConfig::new(16, 128);
    println!(
        "launching randomarray_core<<<{}, {}>>> under {} ...",
        grid.blocks,
        grid.threads_per_block,
        stm.name()
    );

    // ---- GPU-kernel code (Figure 1, `randomarray_core()`) ----
    let kernel_stm = Rc::clone(&stm);
    let report = sim.launch(grid, move |ctx| {
        let stm = Rc::clone(&kernel_stm);
        async move {
            let mut w = stm.new_warp(); // STM_NEW_WARP()
            let mut rng = WarpRng::new(42, ctx.id().thread_id(0));
            let mut remaining = [TXS_PER_THREAD; 32];
            loop {
                let pending = ctx.id().launch_mask.filter(|l| remaining[l] > 0);
                if pending.none() {
                    break;
                }
                let active = stm.begin(&mut w, &ctx, pending).await; // TXBegin
                let mut ok = active;
                for _ in 0..ACTIONS_PER_TX {
                    // "if opacity is required, check the opaque flag"
                    ok &= stm.opaque(&w);
                    if ok.none() {
                        break;
                    }
                    let addrs = lane_addrs(ok, |l| d_array.offset(rng.below(l, ARRAY_WORDS)));
                    if rng.chance(0, 1, 2) {
                        let _ = stm.read(&mut w, &ctx, ok, &addrs).await; // TXRead
                    } else {
                        let vals = lane_vals(ok, |l| rng.next_u32(l));
                        stm.write(&mut w, &ctx, ok, &addrs, &vals).await; // TXWrite
                    }
                }
                let committed = stm.commit(&mut w, &ctx, active).await; // TXCommit
                for l in committed.iter() {
                    remaining[l] -= 1;
                }
            }
        }
    })?;

    // ---- back on the host: STM_SHUTDOWN() is the drop of `stm` ----
    let st = stm.stats();
    let st = st.borrow();
    println!("simulated cycles : {}", report.cycles);
    println!("transactions     : {} committed, {} aborted", st.commits, st.aborts);
    println!("abort rate       : {:.2}%", st.abort_rate() * 100.0);
    println!("memory traffic   : {} coalesced transactions", report.stats.mem_transactions);
    assert_eq!(st.commits, grid.total_threads() * TXS_PER_THREAD as u64);
    println!("OK: every thread committed its {TXS_PER_THREAD} transactions");
    Ok(())
}
