//! Concurrent hash-table inserts — the paper's HT micro-benchmark as a
//! standalone program, comparing GPU-STM against the coarse-grained-lock
//! baseline on the same kernel.
//!
//! Run: `cargo run --release --example hashtable`

use gpu_sim::LaunchConfig;
use workloads::ht::{self, HtParams};
use workloads::{RunConfig, Variant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params =
        HtParams { table_words: 1 << 16, inserts_per_tx: 4, txs_per_thread: 1, seed: 0xf00d };
    let grid = LaunchConfig::new(16, 128);
    let cfg = RunConfig::with_memory(1 << 20).with_locks(1 << 12);

    println!(
        "{} threads inserting {} keys each into a {}-slot table\n",
        grid.total_threads(),
        params.inserts_per_tx * params.txs_per_thread,
        params.table_words
    );

    let mut baseline = None;
    for variant in [Variant::Cgl, Variant::HvSorting, Variant::Optimized] {
        let out = ht::run(&params, variant, grid, &cfg)?;
        let cycles = out.cycles();
        let speedup = baseline.map(|b: u64| b as f64 / cycles as f64);
        baseline = baseline.or(Some(cycles));
        println!(
            "{:<16} {:>12} cycles   {:>7} commits  {:>6} aborts   {}",
            variant.label(),
            cycles,
            out.tx.commits,
            out.tx.aborts,
            speedup.map_or("baseline".to_string(), |s| format!("{s:.1}x vs CGL")),
        );
    }
    println!("\nOK: every run verified the table contains exactly the inserted keys");
    Ok(())
}
