//! The bank-transfer example written in **TXL**, the transactional kernel
//! language — the paper's envisioned programming model where `atomic { }`
//! replaces explicit TXRead/TXWrite calls, opacity checks are inserted by
//! the compiler, and registers modified inside transactions are
//! checkpointed automatically (Sections 3.2.3 and 4.1).
//!
//! Run: `cargo run --release --example txl_bank`

use gpu_sim::{LaunchConfig, Sim, SimConfig};
use gpu_stm::{LockStm, Stm, StmConfig, StmShared};
use std::rc::Rc;
use txl::{compile, launch, ArrayBinding};

const SOURCE: &str = r#"
// Each thread performs `rounds` random transfers between accounts.
kernel transfer(accounts: array, done: array) {
    let rounds = 8;
    let applied = 0;
    while rounds > 0 {
        let src = rand(1024);
        let dst = rand(1024);
        if src != dst {
            atomic {
                let a = accounts[src];
                let b = accounts[dst];
                if a >= 25 {
                    accounts[src] = a - 25;
                    accounts[dst] = b + 25;
                    applied = applied + 1;   // checkpointed register
                }
            }
        }
        rounds = rounds - 1;
    }
    done[tid()] = applied;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = compile(SOURCE)?;
    let kernel = program.kernel("transfer").expect("kernel exists");

    // Show what the checkpoint analysis inferred.
    fn atomics(stmts: &[txl::ast::Stmt], out: &mut Vec<Vec<usize>>) {
        for s in stmts {
            match s {
                txl::ast::Stmt::Atomic { checkpoint, .. } => out.push(checkpoint.clone()),
                txl::ast::Stmt::If { then_blk, else_blk, .. } => {
                    atomics(then_blk, out);
                    atomics(else_blk, out);
                }
                txl::ast::Stmt::While { body, .. } => atomics(body, out),
                _ => {}
            }
        }
    }
    let mut cps = Vec::new();
    atomics(&kernel.body, &mut cps);
    println!("compiler-inferred checkpoint sets per atomic block: {cps:?}");
    println!("(slot 1 is `applied`: read-modified-written inside the transaction)\n");

    let mut sim = Sim::new(SimConfig::with_memory(1 << 20));
    let cfg = StmConfig::new(1 << 10);
    let shared = StmShared::init(&mut sim, &cfg)?;
    let accounts = sim.alloc(1024)?;
    sim.fill(accounts, 1024, 1000);
    let grid = LaunchConfig::new(16, 128);
    let done = sim.alloc(grid.total_threads() as u32)?;
    let stm = Rc::new(LockStm::hv_sorting(shared, cfg));

    let report = launch(
        &mut sim,
        &stm,
        kernel,
        grid,
        0xbeef,
        &[
            ArrayBinding::new("accounts", accounts, 1024),
            ArrayBinding::new("done", done, grid.total_threads() as u32),
        ],
    )?;

    let total: u64 = sim.read_slice(accounts, 1024).iter().map(|v| *v as u64).sum();
    let applied: u64 =
        sim.read_slice(done, grid.total_threads() as u32).iter().map(|v| *v as u64).sum();
    let st = stm.stats();
    let st = st.borrow();
    println!("simulated cycles  : {}", report.cycles);
    println!("commits / aborts  : {} / {}", st.commits, st.aborts);
    println!("transfers applied : {applied}");
    println!("total balance     : {total} (expected {})", 1024 * 1000);
    assert_eq!(total, 1024 * 1000, "conservation violated");
    println!("OK: atomic blocks + checkpointed registers preserved every invariant");
    Ok(())
}
