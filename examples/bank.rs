//! Bank transfers: the classic dynamic-data-sharing scenario the paper's
//! introduction motivates — thousands of GPU threads transferring money
//! between random accounts, each transfer an atomic read-modify-write of
//! two arbitrary locations.
//!
//! With locks this needs two-lock acquisition per transfer and livelocks
//! under lockstep execution (Section 2.2); with GPU-STM it is a
//! four-operation transaction. The invariant checked at the end — total
//! balance conserved — fails under any lost update.
//!
//! Run: `cargo run --release --example bank`

use gpu_sim::{LaunchConfig, Sim, SimConfig, WarpRng};
use gpu_stm::{lane_addrs, lane_vals, OptimizedStm, Stm, StmConfig, StmShared};
use std::rc::Rc;

const ACCOUNTS: u32 = 4096;
const INITIAL_BALANCE: u32 = 1000;
const TRANSFERS_PER_THREAD: u32 = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = Sim::new(SimConfig::with_memory(1 << 20));
    let accounts = sim.alloc(ACCOUNTS)?;
    sim.fill(accounts, ACCOUNTS, INITIAL_BALANCE);

    let cfg = StmConfig::new(1 << 12);
    let shared = StmShared::init(&mut sim, &cfg)?;
    let stm = Rc::new(OptimizedStm::new(shared, cfg, ACCOUNTS as u64));

    let grid = LaunchConfig::new(32, 128);
    let total_before: u64 = sim.read_slice(accounts, ACCOUNTS).iter().map(|v| *v as u64).sum();
    println!(
        "{} accounts × {} balance; {} threads × {} transfers under {}",
        ACCOUNTS,
        INITIAL_BALANCE,
        grid.total_threads(),
        TRANSFERS_PER_THREAD,
        stm.name()
    );

    let kstm = Rc::clone(&stm);
    let report = sim.launch(grid, move |ctx| {
        let stm = Rc::clone(&kstm);
        async move {
            let mut w = stm.new_warp();
            let mut rng = WarpRng::new(7, ctx.id().thread_id(0));
            let mut remaining = [TRANSFERS_PER_THREAD; 32];
            let mut from = [0u32; 32];
            let mut to = [0u32; 32];
            let mut amount = [0u32; 32];
            let mut fresh = ctx.id().launch_mask;
            loop {
                let pending = ctx.id().launch_mask.filter(|l| remaining[l] > 0);
                if pending.none() {
                    break;
                }
                // Pick the transfer once per logical transaction so retries
                // re-run the *same* transfer.
                for l in (pending & fresh).iter() {
                    from[l] = rng.below(l, ACCOUNTS);
                    to[l] = rng.below(l, ACCOUNTS - 1);
                    if to[l] >= from[l] {
                        to[l] += 1; // distinct accounts
                    }
                    amount[l] = rng.below(l, 100);
                }
                let active = stm.begin(&mut w, &ctx, pending).await;
                let faddr = lane_addrs(active, |l| accounts.offset(from[l]));
                let taddr = lane_addrs(active, |l| accounts.offset(to[l]));
                let fbal = stm.read(&mut w, &ctx, active, &faddr).await;
                let ok = active & stm.opaque(&w);
                let tbal = stm.read(&mut w, &ctx, ok, &taddr).await;
                let ok = ok & stm.opaque(&w);
                // Withdraw only what is available.
                let pay = lane_vals(ok, |l| amount[l].min(fbal[l]));
                stm.write(&mut w, &ctx, ok, &faddr, &lane_vals(ok, |l| fbal[l] - pay[l])).await;
                stm.write(&mut w, &ctx, ok, &taddr, &lane_vals(ok, |l| tbal[l] + pay[l])).await;
                let committed = stm.commit(&mut w, &ctx, active).await;
                for l in committed.iter() {
                    remaining[l] -= 1;
                }
                fresh = committed;
            }
        }
    })?;

    let total_after: u64 = sim.read_slice(accounts, ACCOUNTS).iter().map(|v| *v as u64).sum();
    let st = stm.stats();
    let st = st.borrow();
    println!("simulated cycles : {}", report.cycles);
    println!("commits / aborts : {} / {}", st.commits, st.aborts);
    println!("balance before   : {total_before}");
    println!("balance after    : {total_after}");
    assert_eq!(total_before, total_after, "money was created or destroyed!");
    println!("OK: total balance conserved across {} transfers", st.commits);
    Ok(())
}
