//! The pitfalls of GPU locks (paper Section 2.2, Algorithm 1), made
//! concrete on the simulator:
//!
//! 1. **Scheme #1** — a plain spinlock contended by two lanes of one warp
//!    *deadlocks* under lockstep execution (the watchdog proves it).
//! 2. **Scheme #2** — intra-warp serialisation is correct but uses 1/32 of
//!    the SIMT lanes.
//! 3. **Scheme #3** — divergent retry works for one lock, but two threads
//!    taking two locks in opposite orders *livelock* forever.
//! 4. **Lock-sorting** — imposing a global acquisition order (the idea
//!    GPU-STM builds on) fixes the livelock.
//! 5. **Weak isolation** — a non-transactional store racing with
//!    transactions is caught twice: statically by `tm-lint` (TL001) and
//!    dynamically by the simulator's happens-before race detector.
//! 6. **tm-lint** — the same static pass flags the unsorted-lock and
//!    divergent-atomic pitfalls of schemes #1–#3 from source alone.
//!
//! Run: `cargo run --release --example lock_pitfalls`

use gpu_locks::{
    spin_lock_lockstep, spin_lock_one, try_lock_multi, try_lock_sorted, unlock_one, unlock_sorted,
    unprotected_add, GpuMutex,
};
use gpu_sim::{
    race_sink, simt::serialize_lanes, LaneMask, LaunchConfig, Sim, SimConfig, SimError, WARP_SIZE,
};
use gpu_stm::{LockStm, StmConfig, StmShared};
use std::rc::Rc;

fn sim(watchdog: u64) -> Sim {
    let mut cfg = SimConfig::with_memory(1 << 16);
    cfg.watchdog_cycles = watchdog;
    Sim::new(cfg)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Scheme #1: lockstep spinlock deadlock ---
    println!("Scheme #1: two lanes of one warp spin on the same lock ...");
    let mut s = sim(300_000);
    let lock = GpuMutex::init(&mut s)?;
    match s.launch(LaunchConfig::new(1, 32), move |ctx| async move {
        spin_lock_lockstep(&ctx, LaneMask::first_n(2), lock).await;
    }) {
        Err(SimError::Deadlock { cycle, .. }) => {
            println!("  DEADLOCK diagnosed by the progress monitor at cycle {cycle} (as the paper predicts)\n")
        }
        other => panic!("expected deadlock, got {other:?}"),
    }

    // --- 2. Scheme #2: serialisation works, slowly ---
    println!("Scheme #2: serialise the warp's lanes ...");
    let mut s = sim(1 << 40);
    let lock = GpuMutex::init(&mut s)?;
    let counter = s.alloc(1)?;
    let report = s.launch(LaunchConfig::new(1, 32), move |ctx| async move {
        for turn in serialize_lanes(ctx.id().launch_mask) {
            let lane = turn.leader().unwrap();
            spin_lock_one(&ctx, lane, lock).await;
            unprotected_add(&ctx, turn, &[counter; WARP_SIZE], 1).await;
            unlock_one(&ctx, lane, lock).await;
        }
    })?;
    println!(
        "  correct (counter = {}), but SIMT efficiency was {:.1}% — one lane at a time\n",
        s.read(counter),
        report.stats.simt_efficiency() * 100.0
    );

    // --- 3. Scheme #3 with two locks in opposite orders: livelock ---
    println!("Scheme #3: lane 0 takes (A,B), lane 1 takes (B,A), lockstep retry ...");
    let mut s = sim(300_000);
    let locks = s.alloc(2)?;
    match s.launch(LaunchConfig::new(1, 32), move |ctx| async move {
        let mut pending = LaneMask::first_n(2);
        while pending.any() {
            let got =
                try_lock_multi(&ctx, pending, 2, |_| 2, |l, k| locks.offset(((l + k) % 2) as u32))
                    .await;
            pending &= !got; // (never succeeds: circular contention recurs)
        }
    }) {
        Err(SimError::Livelock { cycle, .. }) => {
            println!("  LIVELOCK diagnosed by the progress monitor at cycle {cycle} — circular locking\n")
        }
        other => panic!("expected livelock, got {other:?}"),
    }

    // --- 4. Sorted acquisition: the same contention completes ---
    println!("Lock-sorting: identical contention, ascending acquisition order ...");
    let mut s = sim(1 << 40);
    let locks = s.alloc(2)?;
    let done = s.alloc(1)?;
    let report = s.launch(LaunchConfig::new(1, 32), move |ctx| async move {
        let mut pending = LaneMask::first_n(2);
        while pending.any() {
            let got =
                try_lock_sorted(&ctx, pending, 2, |_| 2, |l, k| locks.offset(((l + k) % 2) as u32))
                    .await;
            if got.any() {
                ctx.atomic_add_uniform(got, done, 1).await;
                unlock_sorted(&ctx, got, 2, |_| 2, |l, k| locks.offset(((l + k) % 2) as u32)).await;
                pending &= !got;
            }
        }
    })?;
    println!(
        "  completed in {} cycles; both critical sections ran (count = {})",
        report.cycles,
        s.read(done)
    );
    println!("\nThis global-order idea, applied per transaction at commit time, is");
    println!("GPU-STM's encounter-time lock-sorting (paper Section 3.1).\n");

    // --- 5. Weak isolation, caught statically AND dynamically ---
    let weak_iso = "kernel weak_iso(acct: array) {
    let i = tid() % 8;
    atomic { acct[i] = acct[i] + 1; }
    acct[7] = 0;
}";
    println!("Weak isolation: a plain store races with transactions on `acct` ...");
    for d in txl::lint::lint_source(weak_iso, &txl::lint::LintConfig::default())? {
        println!("  static : {d}");
    }
    let sink = race_sink();
    let mut cfg = SimConfig::with_memory(1 << 16);
    cfg.watchdog_cycles = 1 << 40;
    cfg.race = Some(Rc::clone(&sink));
    let mut s = Sim::new(cfg);
    let stm_cfg = StmConfig::new(1 << 5);
    let shared = StmShared::init(&mut s, &stm_cfg)?;
    let acct = s.alloc(8)?;
    let stm = Rc::new(LockStm::hv_sorting(shared, stm_cfg));
    let program = txl::compile(weak_iso)?;
    txl::launch(
        &mut s,
        &stm,
        program.kernel("weak_iso").unwrap(),
        LaunchConfig::new(2, 64),
        9,
        &[txl::ArrayBinding::new("acct", acct, 8)],
    )?;
    for race in &sink.borrow().races {
        println!("  dynamic: {race}");
    }
    assert!(!sink.borrow().is_empty(), "the seeded race must be observed");

    // --- 6. The other pitfalls, flagged from source alone ---
    println!("\ntm-lint on the remaining pitfall kernels ...");
    let pitfalls = "kernel locks(lock: array, data: array) {
    let a = tid() % 4;
    let b = 3 - a;
    while lock[a] { }
    lock[a] = 1;
    while lock[b] { }
    lock[b] = 1;
    data[a] = data[a] + 1;
    lock[b] = 0;
    lock[a] = 0;
}
kernel vote(tally: array) {
    if tid() % 2 {
        atomic { tally[0] = tally[0] + 1; }
    }
}";
    for d in txl::lint::lint_source(pitfalls, &txl::lint::LintConfig::default())? {
        println!("  {d}  [{}]", d.rule.paper_ref());
    }
    Ok(())
}
