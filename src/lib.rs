//! # gpu-stm-repro — Software Transactional Memory for GPU Architectures
//!
//! A from-scratch Rust reproduction of Xu, Wang, Goswami, Li, Gao and
//! Qian, *Software Transactional Memory for GPU Architectures* (CGO 2014),
//! including every substrate the paper depends on:
//!
//! - [`sim`] — a deterministic SIMT GPU simulator (warps in lockstep,
//!   divergence masks, memory coalescing, L2 cache, atomics, Fermi-like
//!   timing model);
//! - [`locks`] — the GPU lock schemes of the paper's Algorithm 1 and
//!   their deadlock/livelock pathologies;
//! - [`stm`] — GPU-STM itself (hierarchical validation, encounter-time
//!   lock-sorting, coalesced read-/write-sets) plus every baseline STM
//!   variant of the evaluation;
//! - [`check`] — an opacity/serializability checker over recorded
//!   transactional histories;
//! - [`bench_suite`] — the six evaluation workloads, runnable under any
//!   variant.
//!
//! See `examples/` for runnable entry points and `crates/bench` for the
//! binaries that regenerate the paper's tables and figures.

/// The SIMT GPU simulator substrate.
pub use gpu_sim as sim;

/// GPU lock schemes (Algorithm 1) and their pathologies.
pub use gpu_locks as locks;

/// GPU-STM and the baseline STM variants.
pub use gpu_stm as stm;

/// Opacity/serializability history checking.
pub use tm_check as check;

/// The evaluation workloads (RA, HT, EB, GN, LB, KM).
pub use workloads as bench_suite;

/// The transactional kernel language (the paper's "compiler support").
pub use txl as lang;

/// The sharded, batched transaction service over the STM engine.
pub use tm_serve as serve;
