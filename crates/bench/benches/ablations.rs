//! Criterion ablation benches for the design choices DESIGN.md calls out:
//! lock-sorting vs backoff, read-set locking, coalesced set layout, the
//! write-set Bloom filter, the hash-table lock-log, and pre-commit VBV.
//!
//! Criterion times the host-side simulation; the `ablations` *binary*
//! prints the simulated-cycle comparison, which is the architectural
//! metric. Both run the same configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::LaunchConfig;
use gpu_stm::StmConfig;
use workloads::ra::{self, RaParams};
use workloads::{RunConfig, Variant};

fn params() -> (RaParams, LaunchConfig) {
    (
        RaParams {
            shared_words: 1 << 12,
            actions_per_tx: 8,
            txs_per_thread: 2,
            write_pct: 50,
            seed: 31,
        },
        LaunchConfig::new(8, 64),
    )
}

fn cfg_with(f: impl FnOnce(&mut StmConfig)) -> RunConfig {
    let mut cfg = RunConfig::with_memory(1 << 18).with_locks(1 << 10);
    f(&mut cfg.stm);
    cfg
}

fn bench_ablations(c: &mut Criterion) {
    let (p, grid) = params();
    let mut g = c.benchmark_group("ablations_ra");
    g.sample_size(10);

    let cases: Vec<(&str, RunConfig, Variant)> = vec![
        ("baseline-hv-sorting", cfg_with(|_| {}), Variant::HvSorting),
        ("locking-backoff", cfg_with(|_| {}), Variant::HvBackoff),
        ("write-only-locking", cfg_with(|s| s.lock_read_set = false), Variant::HvSorting),
        ("uncoalesced-sets", cfg_with(|s| s.coalesced_sets = false), Variant::HvSorting),
        ("no-bloom-filter", cfg_with(|s| s.write_set_bloom = false), Variant::HvSorting),
        ("flat-locklog", cfg_with(|s| s.locklog_buckets = 1), Variant::HvSorting),
        ("pre-commit-vbv", cfg_with(|s| s.pre_commit_vbv = true), Variant::HvSorting),
    ];
    for (name, cfg, variant) in cases {
        g.bench_with_input(BenchmarkId::from_parameter(name), &(cfg, variant), |b, (cfg, v)| {
            b.iter(|| ra::run(&p, *v, grid, cfg).unwrap());
        });
    }
    g.finish();
}

criterion_group!(ablations, bench_ablations);
criterion_main!(ablations);
