//! Ablation benches for the design choices DESIGN.md calls out:
//! lock-sorting vs backoff, read-set locking, coalesced set layout, the
//! write-set Bloom filter, the hash-table lock-log, and pre-commit VBV.
//!
//! Self-contained harness (`harness = false`, offline build): times the
//! host-side simulation with `std::time::Instant`; the `ablations`
//! *binary* prints the simulated-cycle comparison, which is the
//! architectural metric. Both run the same configurations.

use gpu_sim::LaunchConfig;
use gpu_stm::StmConfig;
use std::time::Instant;
use workloads::ra::{self, RaParams};
use workloads::{RunConfig, Variant};

fn params() -> (RaParams, LaunchConfig) {
    (
        RaParams {
            shared_words: 1 << 12,
            actions_per_tx: 8,
            txs_per_thread: 2,
            write_pct: 50,
            seed: 31,
        },
        LaunchConfig::new(8, 64),
    )
}

fn cfg_with(f: impl FnOnce(&mut StmConfig)) -> RunConfig {
    let mut cfg = RunConfig::with_memory(1 << 18).with_locks(1 << 10);
    f(&mut cfg.stm);
    cfg
}

fn main() {
    let (p, grid) = params();
    let cases: Vec<(&str, RunConfig, Variant)> = vec![
        ("baseline-hv-sorting", cfg_with(|_| {}), Variant::HvSorting),
        ("locking-backoff", cfg_with(|_| {}), Variant::HvBackoff),
        ("write-only-locking", cfg_with(|s| s.lock_read_set = false), Variant::HvSorting),
        ("uncoalesced-sets", cfg_with(|s| s.coalesced_sets = false), Variant::HvSorting),
        ("no-bloom-filter", cfg_with(|s| s.write_set_bloom = false), Variant::HvSorting),
        ("flat-locklog", cfg_with(|s| s.locklog_buckets = 1), Variant::HvSorting),
        ("pre-commit-vbv", cfg_with(|s| s.pre_commit_vbv = true), Variant::HvSorting),
    ];
    for (name, cfg, variant) in cases {
        const ITERS: u32 = 10;
        ra::run(&p, variant, grid, &cfg).unwrap(); // warm-up
        let mut samples = Vec::with_capacity(ITERS as usize);
        for _ in 0..ITERS {
            let t0 = Instant::now();
            ra::run(&p, variant, grid, &cfg).unwrap();
            samples.push(t0.elapsed());
        }
        let min = samples.iter().min().unwrap();
        let mean = samples.iter().sum::<std::time::Duration>() / ITERS;
        println!(
            "ablations_ra/{name:<20} min {:>10.1?}  mean {:>10.1?}  ({ITERS} iters)",
            min, mean
        );
    }
}
