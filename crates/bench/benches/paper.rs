//! Benches wrapping one representative configuration of every table and
//! figure in the paper's evaluation. `cargo bench -p bench` therefore
//! exercises the full reproduction pipeline; the `--bin` harnesses print
//! the complete paper-shaped tables.
//!
//! Self-contained harness (`harness = false`, offline build): measures
//! *host* time of the simulation with `std::time::Instant`; the reproduced
//! metric (simulated cycles) is printed by the harness binaries.

use bench::runner::{run_workload, Workload};
use bench::Suite;
use std::time::Instant;
use workloads::eigenbench::{self, EbParams};
use workloads::{genome, kmeans, labyrinth, RunConfig, Variant};

fn quick_suite() -> Suite {
    Suite { data_scale: 1024, thread_scale: 64, only: None }
}

fn bench(group: &str, name: &str, iters: u32, mut f: impl FnMut()) {
    f(); // warm-up
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed());
    }
    let min = samples.iter().min().unwrap();
    let mean = samples.iter().sum::<std::time::Duration>() / iters;
    println!("{group}/{name:<18} min {:>10.1?}  mean {:>10.1?}  ({iters} iters)", min, mean);
}

/// Table 1: workload characterisation run (STM-Optimized over each workload).
fn bench_table1() {
    let suite = quick_suite();
    for w in [Workload::Ra, Workload::Ht, Workload::Km] {
        bench("table1", w.label(), 10, || {
            run_workload(&suite, w, Variant::Optimized, Some(256)).unwrap();
        });
    }
}

/// Figure 2: variant comparison on the random-array workload.
fn bench_fig2() {
    let suite = quick_suite();
    for v in [
        Variant::Cgl,
        Variant::Egpgv,
        Variant::Vbv,
        Variant::TbvSorting,
        Variant::HvBackoff,
        Variant::HvSorting,
        Variant::Optimized,
    ] {
        bench("fig2_ra", v.label(), 10, || {
            run_workload(&suite, Workload::Ra, v, Some(256)).unwrap();
        });
    }
}

/// Figure 3: thread scaling of STM-HV-Sorting.
fn bench_fig3() {
    let suite = quick_suite();
    for t in [64u64, 256, 1024] {
        bench("fig3_scaling", &t.to_string(), 10, || {
            run_workload(&suite, Workload::Ht, Variant::HvSorting, Some(t)).unwrap();
        });
    }
}

/// Figure 4: HV vs TBV on EigenBench at one shared-data/lock point.
fn bench_fig4() {
    let params = EbParams { hot_words: 1 << 12, txs_per_thread: 2, ..EbParams::default() };
    let grid = gpu_sim::LaunchConfig::new(8, 32);
    for v in [Variant::HvSorting, Variant::TbvSorting] {
        bench("fig4_eigenbench", v.label(), 10, || {
            let cfg = RunConfig::with_memory(1 << 18).with_locks(1 << 8);
            eigenbench::run(&params, v, grid, &cfg).unwrap();
        });
    }
}

/// Figure 5: single-warp breakdown runs (GN, LB, KM under STM-Optimized).
fn bench_fig5() {
    bench("fig5_breakdown", "gn", 10, || {
        let params =
            genome::GnParams { n_segments: 32, value_space: 28, table_words: 1 << 9, seed: 4 };
        let grid = gpu_sim::LaunchConfig::new(1, 32);
        let cfg = RunConfig::with_memory(1 << 16).with_locks(1 << 8);
        genome::run(&params, Variant::Optimized, grid, grid, &cfg).unwrap();
    });
    bench("fig5_breakdown", "lb", 10, || {
        let params =
            labyrinth::LbParams { width: 64, height: 64, n_paths: 16, max_span: 8, seed: 4 };
        let grid = gpu_sim::LaunchConfig::new(1, 32);
        let cfg = RunConfig::with_memory(1 << 16).with_locks(1 << 8);
        labyrinth::run(&params, Variant::Optimized, grid, &cfg).unwrap();
    });
    bench("fig5_breakdown", "km", 10, || {
        let params = kmeans::KmParams::default();
        let grid = gpu_sim::LaunchConfig::new(8, 2);
        let cfg = RunConfig::with_memory(1 << 16).with_locks(1 << 8);
        kmeans::run(&params, Variant::Optimized, grid, &cfg).unwrap();
    });
}

/// Table 2: a single autotune probe (grid-shape sensitivity).
fn bench_table2() {
    let suite = quick_suite();
    for t in [64u64, 512] {
        bench("table2_autotune", &t.to_string(), 10, || {
            run_workload(&suite, Workload::Ra, Variant::Optimized, Some(t)).unwrap();
        });
    }
}

fn main() {
    bench_table1();
    bench_fig2();
    bench_fig3();
    bench_fig4();
    bench_fig5();
    bench_table2();
}
