//! Criterion benches wrapping one representative configuration of every
//! table and figure in the paper's evaluation. `cargo bench -p bench`
//! therefore exercises the full reproduction pipeline; the `--bin`
//! harnesses print the complete paper-shaped tables.
//!
//! Criterion measures *host* time of the simulation; the reproduced
//! metric (simulated cycles) is printed by the harness binaries.

use bench::runner::{run_workload, Workload};
use bench::Suite;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workloads::eigenbench::{self, EbParams};
use workloads::{genome, kmeans, labyrinth, RunConfig, Variant};

fn quick_suite() -> Suite {
    Suite { data_scale: 1024, thread_scale: 64, only: None }
}

/// Table 1: workload characterisation run (STM-Optimized over each workload).
fn bench_table1(c: &mut Criterion) {
    let suite = quick_suite();
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    for w in [Workload::Ra, Workload::Ht, Workload::Km] {
        g.bench_with_input(BenchmarkId::from_parameter(w.label()), &w, |b, w| {
            b.iter(|| run_workload(&suite, *w, Variant::Optimized, Some(256)).unwrap());
        });
    }
    g.finish();
}

/// Figure 2: variant comparison on the random-array workload.
fn bench_fig2(c: &mut Criterion) {
    let suite = quick_suite();
    let mut g = c.benchmark_group("fig2_ra");
    g.sample_size(10);
    for v in [
        Variant::Cgl,
        Variant::Egpgv,
        Variant::Vbv,
        Variant::TbvSorting,
        Variant::HvBackoff,
        Variant::HvSorting,
        Variant::Optimized,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(v.label()), &v, |b, v| {
            b.iter(|| run_workload(&suite, Workload::Ra, *v, Some(256)).unwrap());
        });
    }
    g.finish();
}

/// Figure 3: thread scaling of STM-HV-Sorting.
fn bench_fig3(c: &mut Criterion) {
    let suite = quick_suite();
    let mut g = c.benchmark_group("fig3_scaling");
    g.sample_size(10);
    for t in [64u64, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, t| {
            b.iter(|| run_workload(&suite, Workload::Ht, Variant::HvSorting, Some(*t)).unwrap());
        });
    }
    g.finish();
}

/// Figure 4: HV vs TBV on EigenBench at one shared-data/lock point.
fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_eigenbench");
    g.sample_size(10);
    let params = EbParams { hot_words: 1 << 12, txs_per_thread: 2, ..EbParams::default() };
    let grid = gpu_sim::LaunchConfig::new(8, 32);
    for v in [Variant::HvSorting, Variant::TbvSorting] {
        g.bench_with_input(BenchmarkId::from_parameter(v.label()), &v, |b, v| {
            let cfg = RunConfig::with_memory(1 << 18).with_locks(1 << 8);
            b.iter(|| eigenbench::run(&params, *v, grid, &cfg).unwrap());
        });
    }
    g.finish();
}

/// Figure 5: single-warp breakdown runs (GN, LB, KM under STM-Optimized).
fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_breakdown");
    g.sample_size(10);
    g.bench_function("gn", |b| {
        let params = genome::GnParams {
            n_segments: 32,
            value_space: 28,
            table_words: 1 << 9,
            seed: 4,
        };
        let grid = gpu_sim::LaunchConfig::new(1, 32);
        let cfg = RunConfig::with_memory(1 << 16).with_locks(1 << 8);
        b.iter(|| genome::run(&params, Variant::Optimized, grid, grid, &cfg).unwrap());
    });
    g.bench_function("lb", |b| {
        let params = labyrinth::LbParams {
            width: 64,
            height: 64,
            n_paths: 16,
            max_span: 8,
            seed: 4,
        };
        let grid = gpu_sim::LaunchConfig::new(1, 32);
        let cfg = RunConfig::with_memory(1 << 16).with_locks(1 << 8);
        b.iter(|| labyrinth::run(&params, Variant::Optimized, grid, &cfg).unwrap());
    });
    g.bench_function("km", |b| {
        let params = kmeans::KmParams::default();
        let grid = gpu_sim::LaunchConfig::new(8, 2);
        let cfg = RunConfig::with_memory(1 << 16).with_locks(1 << 8);
        b.iter(|| kmeans::run(&params, Variant::Optimized, grid, &cfg).unwrap());
    });
    g.finish();
}

/// Table 2: a single autotune probe (grid-shape sensitivity).
fn bench_table2(c: &mut Criterion) {
    let suite = quick_suite();
    let mut g = c.benchmark_group("table2_autotune");
    g.sample_size(10);
    for t in [64u64, 512] {
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, t| {
            b.iter(|| run_workload(&suite, Workload::Ra, Variant::Optimized, Some(*t)).unwrap());
        });
    }
    g.finish();
}

criterion_group!(
    paper,
    bench_table1,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_table2
);
criterion_main!(paper);
