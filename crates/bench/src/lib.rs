//! # bench — the evaluation harness
//!
//! Shared configuration and reporting utilities for the table/figure
//! binaries (`table1`, `fig2`, `fig3`, `fig4`, `fig5`, `table2`) and the
//! Criterion benches.
//!
//! ## Scaling
//!
//! The paper's experiments run 64K threads over multi-megaword arrays on a
//! real C2070; simulating that instruction-by-instruction is possible but
//! slow, so the harness scales *data* sizes by `--data-scale` (default 64)
//! and *thread* counts by `--thread-scale` (default 16), preserving every
//! ratio the paper's conclusions depend on (shared data : lock table,
//! threads : conflicts). Pass `--data-scale 1 --thread-scale 1` to run at
//! paper scale.

#![warn(missing_docs)]

pub mod runner;

use gpu_sim::LaunchConfig;
use workloads::{
    eigenbench::EbParams, genome::GnParams, ht::HtParams, kmeans::KmParams, labyrinth::LbParams,
    ra::RaParams, RunConfig,
};

/// Paper-reference sizes (before scaling).
pub mod paper {
    /// Global version locks (Section 4.2): 1M.
    pub const LOCKS: u64 = 1 << 20;
    /// RA shared array: 8M elements.
    pub const RA_SHARED: u64 = 8 << 20;
    /// LB shared grid: 1.75M cells.
    pub const LB_SHARED: u64 = 1_750_000;
    /// RA/HT launch (Table 2): 256 blocks × 256 threads.
    pub const RA_THREADS: u64 = 256 * 256;
}

/// Harness-wide scaling and filtering options.
#[derive(Clone, Debug)]
pub struct Suite {
    /// Divisor applied to array and lock-table sizes.
    pub data_scale: u64,
    /// Divisor applied to thread counts.
    pub thread_scale: u64,
    /// Optional workload filter (lower-case short name, e.g. `ra`).
    pub only: Option<String>,
}

impl Default for Suite {
    fn default() -> Self {
        Suite { data_scale: 64, thread_scale: 16, only: None }
    }
}

impl Suite {
    /// Parses `--data-scale N`, `--thread-scale N` and `--only NAME` from
    /// process arguments; unknown arguments are ignored.
    pub fn from_args() -> Suite {
        let mut suite = Suite::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--data-scale" if i + 1 < args.len() => {
                    suite.data_scale = args[i + 1].parse().expect("--data-scale wants a number");
                    i += 1;
                }
                "--thread-scale" if i + 1 < args.len() => {
                    suite.thread_scale =
                        args[i + 1].parse().expect("--thread-scale wants a number");
                    i += 1;
                }
                "--only" if i + 1 < args.len() => {
                    suite.only = Some(args[i + 1].to_lowercase());
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        suite
    }

    /// Whether workload `name` is selected.
    pub fn selected(&self, name: &str) -> bool {
        self.only.as_deref().is_none_or(|o| o == name)
    }

    fn scaled_pow2(&self, paper_value: u64) -> u32 {
        ((paper_value / self.data_scale).max(1024) as u32).next_power_of_two()
    }

    /// Scaled number of global version locks.
    pub fn n_locks(&self) -> u32 {
        self.scaled_pow2(paper::LOCKS)
    }

    fn threads(&self, paper_threads: u64) -> u64 {
        (paper_threads / self.thread_scale).max(64)
    }

    /// RA parameters and launch geometry.
    pub fn ra(&self) -> (RaParams, LaunchConfig) {
        let params =
            RaParams { shared_words: self.scaled_pow2(paper::RA_SHARED), ..RaParams::default() };
        (params, square_grid(self.threads(paper::RA_THREADS)))
    }

    /// HT parameters and launch geometry.
    pub fn ht(&self) -> (HtParams, LaunchConfig) {
        let grid = square_grid(self.threads(paper::RA_THREADS));
        let inserts = grid.total_threads() * 4;
        let params = HtParams {
            table_words: (inserts as u32 * 8).next_power_of_two(),
            inserts_per_tx: 4,
            txs_per_thread: 1,
            ..HtParams::default()
        };
        (params, grid)
    }

    /// EigenBench parameters and launch geometry (Figure 4 defaults).
    pub fn eb(&self) -> (EbParams, LaunchConfig) {
        let params = EbParams { hot_words: self.scaled_pow2(1 << 20), ..EbParams::default() };
        (params, square_grid(self.threads(16 * 1024)))
    }

    /// Genome parameters and the two kernels' launch geometries.
    pub fn gn(&self) -> (GnParams, LaunchConfig, LaunchConfig) {
        let n_segments = self.threads(paper::RA_THREADS) as u32;
        let params = GnParams {
            n_segments,
            value_space: n_segments / 2,
            table_words: (n_segments * 8).next_power_of_two(),
            ..GnParams::default()
        };
        // GN-2 runs over the unique set (roughly value_space × (1-1/e));
        // launch enough threads for the worst case.
        (params, square_grid(n_segments as u64), square_grid((n_segments / 2) as u64))
    }

    /// Labyrinth parameters and launch geometry (paper: one transactional
    /// thread per block on 14 blocks; scaled to a small router pool).
    ///
    /// Path density is kept sparse (a few percent of cells claimed), as in
    /// the paper's 1.75M-cell maze — a dense maze would measure conflict
    /// thrashing instead of claim parallelism.
    pub fn lb(&self) -> (LbParams, LaunchConfig) {
        let side = (((paper::LB_SHARED / self.data_scale) as f64).sqrt() as u32).max(128);
        let cells = side * side;
        // Bounded route spans (mean length ~ span) at ~10% cell occupancy
        // give the "modest conflicts" the paper's LB exhibits.
        let span = (side / 8).max(8);
        let params = LbParams {
            width: side,
            height: side,
            max_span: span,
            n_paths: (cells / (10 * span)).max(24),
            ..LbParams::default()
        };
        (params, LaunchConfig::new(14, 32))
    }

    /// K-means parameters and launch geometry (Table 2: 64 blocks × 2
    /// threads — conflicts cap useful concurrency).
    pub fn km(&self) -> (KmParams, LaunchConfig) {
        let params = KmParams { points_per_thread: 8, ..KmParams::default() };
        (params, LaunchConfig::new(64, 2))
    }

    /// A [`RunConfig`] with enough device memory for `data_words` plus the
    /// lock table and per-thread arrays.
    pub fn run_config(&self, data_words: u64, threads: u64) -> RunConfig {
        let mem = data_words + self.n_locks() as u64 + threads * 64 + (1 << 16);
        RunConfig::with_memory(mem as usize).with_locks(self.n_locks())
    }
}

/// Picks a roughly square `blocks × threads_per_block` decomposition of
/// `threads` with at most 256 threads per block (Table 2's shape).
pub fn square_grid(threads: u64) -> LaunchConfig {
    let threads = threads.max(32);
    let tpb = (threads as f64).sqrt() as u64;
    let tpb = tpb.clamp(32, 256).next_power_of_two().min(256) as u32;
    let blocks = threads.div_ceil(tpb as u64) as u32;
    LaunchConfig::new(blocks.max(1), tpb)
}

/// Absolute path where a `BENCH_<name>.json` artifact belongs: the
/// workspace root by default — so CI and humans find reports in one
/// stable place regardless of the invocation directory — overridable
/// with the `BENCH_OUT_DIR` environment variable.
pub fn bench_output_path(name: &str) -> std::path::PathBuf {
    artifact_output_path(&format!("BENCH_{name}.json"))
}

/// Absolute path for any non-`BENCH_`-prefixed run artifact (e.g.
/// `recovery-report.json`, flight-recorder bundles), routed through the
/// same `BENCH_OUT_DIR`-else-workspace-root rule as
/// [`bench_output_path`] so every artifact a run emits lands in one
/// place.
pub fn artifact_output_path(file_name: &str) -> std::path::PathBuf {
    let dir = std::env::var_os("BENCH_OUT_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."));
    dir.join(file_name)
}

/// Formats `value` with thousands separators.
pub fn thousands(value: u64) -> String {
    let s = value.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Prints an aligned text table: `headers`, then `rows`.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    println!("{}", fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>()));
    println!("{}", widths.iter().map(|w| "-".repeat(*w + 2)).collect::<String>());
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Speedup of `cycles` relative to the baseline, as the paper reports.
pub fn speedup(baseline_cycles: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        0.0
    } else {
        baseline_cycles as f64 / cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_grid_shapes() {
        let g = square_grid(65536);
        assert_eq!(g.total_threads(), 65536);
        assert_eq!(g.threads_per_block, 256);
        let small = square_grid(64);
        assert!(small.total_threads() >= 64);
        assert!(small.threads_per_block >= 32);
    }

    #[test]
    fn scaling_preserves_ratio() {
        let s = Suite::default();
        let (ra, _) = s.ra();
        // Paper ratio RA_SHARED : LOCKS = 8 : 1 must survive scaling.
        assert_eq!(ra.shared_words / s.n_locks(), 8);
    }

    #[test]
    fn thousands_formatting() {
        assert_eq!(thousands(1), "1");
        assert_eq!(thousands(1234), "1,234");
        assert_eq!(thousands(1234567), "1,234,567");
    }

    #[test]
    fn args_default() {
        let s = Suite::default();
        assert!(s.selected("ra"));
        assert_eq!(s.data_scale, 64);
    }

    #[test]
    fn speedup_math() {
        assert_eq!(speedup(100, 50), 2.0);
        assert_eq!(speedup(100, 0), 0.0);
    }
}
