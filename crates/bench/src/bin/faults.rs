//! Fault-injection sweep: every STM variant × every seeded fault plan on
//! the contended RA micro-benchmark, with tm-check opacity verification
//! of each run's recorded history.
//!
//! Reports per cell: cycles, abort rate, and the injected-fault counters,
//! so schedule sensitivity and retry cost are visible side by side with
//! the (always-required) correctness verdict.
//!
//! Usage: `cargo run -p bench --release --bin faults`

use bench::{print_table, thousands};
use gpu_sim::{FaultPlan, LaunchConfig};
use gpu_stm::recorder;
use tm_check::check_history;
use workloads::ra::{self, RaParams};
use workloads::{RunConfig, Variant};

fn plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::none()),
        ("shuffle", FaultPlan::schedule_shuffle(0xbe9c_0001)),
        ("jitter<=24", FaultPlan::latency_jitter(0xbe9c_0002, 24)),
        ("cas-1/8", FaultPlan::cas_failures(0xbe9c_0003, 1, 8)),
        (
            "combined",
            FaultPlan {
                seed: 0xbe9c_0004,
                shuffle_schedule: true,
                latency_jitter: 12,
                cas_fail_num: 1,
                cas_fail_den: 16,
            },
        ),
    ]
}

fn main() {
    println!("GPU-STM reproduction — fault-injection sweep (RA, contended)");
    let params = RaParams {
        shared_words: 1 << 10,
        actions_per_tx: 6,
        txs_per_thread: 2,
        write_pct: 60,
        seed: 4242,
    };
    let grid = LaunchConfig::new(4, 64);

    let mut rows = Vec::new();
    for (plan_name, plan) in plans() {
        for v in Variant::ALL {
            eprint!("[faults] {v} under {plan_name}...");
            let rec = recorder();
            let mut cfg = RunConfig::with_memory(1 << 17).with_locks(1 << 8);
            cfg.sim.watchdog_cycles = 1 << 34;
            cfg.sim.fault = plan;
            cfg.recorder = Some(rec.clone());
            let out = match ra::run(&params, v, grid, &cfg) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!(" failed: {e}");
                    rows.push(vec![
                        plan_name.to_string(),
                        v.to_string(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        format!("ERROR: {e}"),
                    ]);
                    continue;
                }
            };
            let h = rec.borrow();
            let expected = grid.total_threads() * params.txs_per_thread as u64;
            let opaque = check_history(&h, |_| 0).is_ok();
            let complete = out.tx.commits == expected;
            let verdict = match (opaque, complete) {
                (true, true) => "opaque".to_string(),
                (false, _) => "VIOLATION".to_string(),
                (true, false) => format!("LOST TXS ({}/{expected})", out.tx.commits),
            };
            eprintln!(" {} cycles, {verdict}", thousands(out.kernels[0].cycles));
            rows.push(vec![
                plan_name.to_string(),
                v.to_string(),
                thousands(out.kernels[0].cycles),
                format!("{:.1}%", out.tx.abort_rate() * 100.0),
                thousands(out.kernels[0].stats.spurious_cas_failures),
                thousands(out.kernels[0].stats.injected_jitter_cycles),
                verdict,
            ]);
        }
    }

    let headers =
        ["fault plan", "variant", "cycles", "abort rate", "spurious-cas", "jitter-cyc", "verdict"];
    print_table("Fault sweep — RA under adversarial schedules", &headers, &rows);
    let bad = rows.iter().filter(|r| r[6] != "opaque").count();
    if bad > 0 {
        println!("\n{bad} run(s) FAILED verification");
        std::process::exit(1);
    }
    println!("\nall {} runs verified opaque and complete", rows.len());
}
