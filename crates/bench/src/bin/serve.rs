//! Load sweep for the sharded transaction service (`tm-serve`).
//!
//! Runs the service over a matrix of traffic mixes × shard counts ×
//! STM variants at a **fixed total batch capacity** (so the shard axis
//! measures contention isolation, not extra hardware), then writes one
//! deterministic `BENCH_<name>.json` at the workspace root and prints a
//! console table with the wall-clock scaling figures.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin serve                  # full sweep
//! cargo run -p bench --release --bin serve -- --smoke       # CI sweep
//! cargo run -p bench --release --bin serve -- --shards 4    # single run
//! ```
//!
//! Single-run mode (`--shards N`) accepts `--mix bank|ht|mixed|blocking`
//! (`blocking` turns on parking admission with its bursty preset),
//! `--variant`, `--mode plain|scheduled|robust`, `--requests`,
//! `--workers`, `--queue-cap`, `--total-warps` and `--seed`.
//!
//! `--recovery` switches to the kill-and-restart sweep instead: it runs
//! an uncrashed durable baseline, then kills each shard worker at each
//! WAL lifecycle point (`--smoke` restricts to two points) and checks
//! the recovered run is byte-identical — report *and* blob store — to
//! the baseline, finishing with a replicated run that demotes an
//! injected divergent replica. Results land in `BENCH_recovery.json`
//! plus a standalone `recovery-report.json`, and the process exits
//! nonzero if any recovery diverges.
//!
//! Everything inside the JSON is virtual (simulated cycles, counters,
//! FNV hashes): for a fixed seed the file is byte-identical regardless
//! of worker-thread count or host speed. Wall-clock throughput is
//! printed on the console only.

use bench::{bench_output_path, print_table};
use gpu_sim::JsonWriter;
use tm_serve::{
    store_fingerprint, CrashPlan, CrashPoint, DurabilityConfig, EngineMode, MemStore, MixConfig,
    ReplicaFault, ServeConfig, ServeReport, Service,
};
use workloads::Variant;

struct Args {
    name: String,
    shards: Option<usize>,
    workers: usize,
    variant: Variant,
    mode: EngineMode,
    mix: String,
    requests: u64,
    queue_cap: usize,
    total_warps: u32,
    seed: u64,
    smoke: bool,
    recovery: bool,
    accounts: u32,
    locality_pct: Option<u32>,
    hot_pct: Option<u32>,
    hot_keys: Option<u32>,
}

impl Args {
    fn parse() -> Args {
        let argv: Vec<String> = std::env::args().collect();
        let mut a = Args {
            name: "serve".to_string(),
            shards: None,
            workers: 0,
            variant: Variant::Vbv,
            // Plain by default: the AIMD scheduler deliberately damps the
            // contention collapse this sweep measures along the shard
            // axis. `--mode scheduled` benches the production setup.
            mode: EngineMode::Plain,
            mix: "bank".to_string(),
            requests: 16384,
            queue_cap: 0,
            total_warps: 64,
            seed: 42,
            smoke: false,
            recovery: false,
            accounts: 256,
            locality_pct: None,
            hot_pct: None,
            hot_keys: None,
        };
        let mut i = 1;
        while i < argv.len() {
            let take =
                |i: usize| argv.get(i + 1).unwrap_or_else(|| panic!("{} wants a value", argv[i]));
            match argv[i].as_str() {
                "--name" => {
                    a.name = take(i).clone();
                    i += 1;
                }
                "--shards" => {
                    a.shards = Some(take(i).parse().expect("--shards wants a number"));
                    i += 1;
                }
                "--workers" => {
                    a.workers = take(i).parse().expect("--workers wants a number");
                    i += 1;
                }
                "--variant" => {
                    a.variant = Variant::parse(take(i)).expect("unknown --variant");
                    i += 1;
                }
                "--mode" => {
                    a.mode = EngineMode::parse(take(i)).expect("unknown --mode");
                    i += 1;
                }
                "--mix" => {
                    a.mix = take(i).clone();
                    i += 1;
                }
                "--requests" => {
                    a.requests = take(i).parse().expect("--requests wants a number");
                    i += 1;
                }
                "--queue-cap" => {
                    a.queue_cap = take(i).parse().expect("--queue-cap wants a number");
                    i += 1;
                }
                "--total-warps" => {
                    a.total_warps = take(i).parse().expect("--total-warps wants a number");
                    i += 1;
                }
                "--seed" => {
                    a.seed = take(i).parse().expect("--seed wants a number");
                    i += 1;
                }
                "--accounts" => {
                    a.accounts = take(i).parse().expect("--accounts wants a number");
                    i += 1;
                }
                "--locality" => {
                    a.locality_pct = Some(take(i).parse().expect("--locality wants a percent"));
                    i += 1;
                }
                "--hot-pct" => {
                    a.hot_pct = Some(take(i).parse().expect("--hot-pct wants a percent"));
                    i += 1;
                }
                "--hot-keys" => {
                    a.hot_keys = Some(take(i).parse().expect("--hot-keys wants a number"));
                    i += 1;
                }
                "--smoke" => a.smoke = true,
                "--recovery" => a.recovery = true,
                _ => {}
            }
            i += 1;
        }
        a
    }
}

/// Builds the service config for one sweep point. The total batch
/// capacity (`total_warps` × 32 lanes) is held constant across shard
/// counts: one shard runs all lanes in one conflict domain, `n` shards
/// split the same lanes into `n` independent domains.
fn config(args: &Args, mix_name: &str, variant: Variant, shards: usize) -> ServeConfig {
    let mut mix = MixConfig::parse(mix_name).expect("unknown --mix");
    mix.requests = args.requests;
    // Saturating arrivals: the sweep measures service throughput, not
    // idle time waiting for an open-loop trickle.
    mix.mean_interarrival = 4;
    if mix_name == "bank" {
        // Bench defaults for the bank mix: mostly-local traffic with a
        // light hot set — the regime where shard isolation pays most
        // (DESIGN.md §12). The service preset keeps the hotter mix.
        mix.locality_pct = 90;
        mix.hot_pct = 10;
    }
    if let Some(p) = args.locality_pct {
        mix.locality_pct = p;
    }
    if let Some(p) = args.hot_pct {
        mix.hot_pct = p;
    }
    if let Some(k) = args.hot_keys {
        mix.hot_keys = k;
    }
    // The blocking mix keeps its bursty preset arrivals and a bounded
    // queue: overflow is the point — admission parks on the capacity
    // condition instead of rejecting.
    let blocking = mix_name == "blocking";
    if blocking {
        mix.mean_interarrival = MixConfig::blocking().mean_interarrival;
    }
    let queue_cap = if args.queue_cap > 0 {
        args.queue_cap
    } else if blocking {
        ServeConfig::default().queue_capacity
    } else {
        args.requests as usize + 8
    };
    ServeConfig {
        shards,
        workers: args.workers,
        variant,
        mode: args.mode,
        mix,
        seed: args.seed,
        accounts: args.accounts,
        batch_warps: (args.total_warps / shards as u32).max(1),
        queue_capacity: queue_cap,
        blocking,
        ..ServeConfig::default()
    }
}

fn run(cfg: &ServeConfig, mix_name: &str) -> ServeReport {
    eprint!(
        "[serve] mix={} variant={} shards={} ...",
        mix_name,
        cfg.variant.short_name(),
        cfg.shards
    );
    let report = Service::run(cfg).unwrap_or_else(|e| panic!("serve run failed: {e}"));
    eprintln!(
        " {} completed in {:.2}s ({} virtual kcycles)",
        report.completed,
        report.wall_seconds,
        report.virtual_cycles / 1000
    );
    report
}

/// One durable service config for the recovery sweep. Small and hot:
/// the sweep measures healing fidelity, not throughput, so a compact
/// fixed-seed run that still crosses several snapshot boundaries is
/// ideal.
fn recovery_config(args: &Args, dur: DurabilityConfig) -> ServeConfig {
    ServeConfig {
        shards: args.shards.unwrap_or(2),
        workers: args.workers,
        mix: MixConfig { requests: 96, ..MixConfig::mixed() },
        seed: args.seed,
        accounts: 64,
        table_words: 256,
        txl_words: 16,
        batch_warps: 1,
        n_locks: 1 << 10,
        durability: Some(dur),
        ..ServeConfig::default()
    }
}

/// Kill-and-restart sweep: every (shard × crash point) cell must heal
/// back to the uncrashed baseline byte-for-byte. Writes
/// `BENCH_<name>.json` and `recovery-report.json`; exits nonzero on any
/// divergence so CI fails loudly.
fn run_recovery(args: &Args) {
    let durability = DurabilityConfig { segment_batches: 2, ..DurabilityConfig::default() };
    let points: &[CrashPoint] = if args.smoke {
        // The two most distinctive repair paths: torn-tail truncation
        // and verified replay of an already-sealed batch.
        &[CrashPoint::WalAppend, CrashPoint::PostPrepare]
    } else {
        &CrashPoint::ALL
    };

    let base_cfg = recovery_config(args, durability);
    let shards = base_cfg.shards;
    eprintln!("[recovery] baseline: {} shards, seed {} ...", shards, args.seed);
    let base_store = MemStore::shared();
    let (baseline, _) = Service::run_durable(&base_cfg, base_store.clone())
        .unwrap_or_else(|e| panic!("baseline durable run failed: {e}"));
    let baseline_json = baseline.to_json();
    let (base_fnv, base_bytes) = store_fingerprint(&base_store);

    struct Cell {
        shard: usize,
        point: CrashPoint,
        identical: bool,
        rec: tm_serve::RecoveryReport,
    }
    let mut cells: Vec<Cell> = Vec::new();
    let mut diverged_cells = 0usize;
    for shard in 0..shards {
        for &point in points {
            let dur =
                DurabilityConfig { crash: Some(CrashPlan::at(shard, point, 1)), ..durability };
            let store = MemStore::shared();
            let (report, rec) = Service::run_durable(&recovery_config(args, dur), store.clone())
                .unwrap_or_else(|e| panic!("kill shard {shard} at {point}: {e}"));
            let identical = report.to_json() == baseline_json
                && store_fingerprint(&store) == (base_fnv, base_bytes);
            if !identical {
                diverged_cells += 1;
            }
            eprintln!(
                "[recovery] shard {shard} at {point}: {}",
                if identical { "byte-identical" } else { "DIVERGED" }
            );
            cells.push(Cell { shard, point, identical, rec });
        }
    }

    // Replicated run with an injected single-commit loss: the quorum
    // must demote exactly the faulted replica and keep the rest.
    let rep_dur = DurabilityConfig {
        replicas: 2,
        replica_fault: Some(ReplicaFault { shard: 0, replica: 1, at_commit: 3 }),
        ..durability
    };
    let (rep_report, rep_rec) =
        Service::run_durable(&recovery_config(args, rep_dur), MemStore::shared())
            .unwrap_or_else(|e| panic!("replicated run failed: {e}"));
    assert!(rep_report.conserved, "replica fault must never touch the primary");

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "gpu-stm-recovery/1");
    w.field_u64("shards", shards as u64);
    w.field_u64("seed", args.seed);
    w.key("baseline");
    w.begin_object();
    w.field_str("store_fnv", &format!("{base_fnv:016x}"));
    w.field_u64("store_bytes", base_bytes);
    w.field_u64("completed", baseline.completed);
    w.field_bool("conserved", baseline.conserved);
    w.end_object();
    w.key("crashes");
    w.begin_array();
    for cell in &cells {
        w.begin_object();
        w.field_u64("shard", cell.shard as u64);
        w.field_str("point", cell.point.short_name());
        w.field_bool("byte_identical", cell.identical);
        w.key("recovery");
        cell.rec.write_json(&mut w);
        w.end_object();
    }
    w.end_array();
    w.key("replication");
    rep_rec.write_json(&mut w);
    w.end_object();
    // `--name` still overrides, but the default artifact name is
    // `recovery` here so the load sweep's BENCH_serve.json survives.
    let name = if args.name == "serve" { "recovery" } else { args.name.as_str() };
    let path = bench_output_path(name);
    let json = w.finish();
    std::fs::write(&path, &json).expect("write recovery report");

    // Standalone artifact: the replicated run's structured recovery
    // report (replica census + divergence incidents), for CI upload.
    // Routed like every other artifact so `BENCH_OUT_DIR` moves it too.
    let rec_path = bench::artifact_output_path("recovery-report.json");
    std::fs::write(&rec_path, rep_rec.to_json()).expect("write recovery-report.json");

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let s = &c.rec.recoveries[0];
            vec![
                c.shard.to_string(),
                c.point.to_string(),
                if c.identical { "yes" } else { "NO" }.to_string(),
                s.snapshot_seq.to_string(),
                s.torn_truncated.to_string(),
                s.replayed.to_string(),
                s.reexecuted.to_string(),
            ]
        })
        .collect();
    print_table(
        "tm-serve kill-and-restart sweep",
        &["shard", "point", "byte-identical", "snap-seq", "torn", "replayed", "re-exec"],
        &rows,
    );
    println!(
        "\nreplication: {}/{} replicas healthy, {} divergence incident(s)",
        rep_rec.replicas_healthy,
        rep_rec.replicas_per_shard * shards as u64,
        rep_rec.diverged.len()
    );
    println!("report written to {} ({} bytes)", path.display(), json.len());
    if diverged_cells > 0 {
        eprintln!("[recovery] {diverged_cells} cell(s) diverged from the baseline");
        std::process::exit(1);
    }
}

fn main() {
    let args = Args::parse();
    if args.recovery {
        run_recovery(&args);
        return;
    }

    // (mix, report) per sweep point, in deterministic sweep order.
    let mut runs: Vec<(String, ServeReport)> = Vec::new();
    if let Some(shards) = args.shards {
        let cfg = config(&args, &args.mix, args.variant, shards);
        runs.push((args.mix.clone(), run(&cfg, &args.mix)));
    } else {
        let mixes = ["bank", "ht"];
        let shard_axis: &[usize] = if args.smoke { &[1, 2] } else { &[1, 2, 4] };
        let variants = [Variant::Vbv, Variant::HvSorting];
        let sweep_requests = if args.smoke { args.requests.min(192) } else { args.requests };
        for mix in mixes {
            for &variant in &variants {
                for &shards in shard_axis {
                    let mut cfg = config(&args, mix, variant, shards);
                    cfg.mix.requests = sweep_requests;
                    cfg.queue_capacity = sweep_requests as usize + 8;
                    runs.push((mix.to_string(), run(&cfg, mix)));
                }
            }
        }
    }

    // Deterministic artifact: stable field order, virtual metrics only.
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "gpu-stm-serve/1");
    w.key("runs");
    w.begin_array();
    for (mix, report) in &runs {
        w.begin_object();
        w.field_str("mix", mix);
        w.key("report");
        report.write_json(&mut w);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let path = bench_output_path(&args.name);
    let json = w.finish();
    std::fs::write(&path, &json).expect("write serve report");

    // Console table: wall-clock columns live here and only here.
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (mix, r) in &runs {
        let baseline = runs
            .iter()
            .find(|(m, b)| m == mix && b.variant == r.variant && b.shards == 1)
            .map(|(_, b)| b.wall_throughput());
        let wall_x = match baseline {
            Some(base) if base > 0.0 => format!("{:.2}x", r.wall_throughput() / base),
            _ => "-".to_string(),
        };
        rows.push(vec![
            mix.clone(),
            r.variant.clone(),
            r.shards.to_string(),
            r.completed.to_string(),
            r.rejected.to_string(),
            r.shard_reports.iter().map(|s| s.aborts).sum::<u64>().to_string(),
            r.p50().to_string(),
            format!("{:.3}", r.sim_throughput()),
            format!("{:.0}", r.wall_throughput()),
            wall_x,
        ]);
    }
    print_table(
        "tm-serve load sweep",
        &[
            "mix",
            "variant",
            "shards",
            "completed",
            "rejected",
            "aborts",
            "p50(cyc)",
            "tx/kcycle",
            "tx/s",
            "wall-x",
        ],
        &rows,
    );
    println!("\nreport written to {} ({} bytes)", path.display(), json.len());
}
