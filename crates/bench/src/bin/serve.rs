//! Load sweep for the sharded transaction service (`tm-serve`).
//!
//! Runs the service over a matrix of traffic mixes × shard counts ×
//! STM variants at a **fixed total batch capacity** (so the shard axis
//! measures contention isolation, not extra hardware), then writes one
//! deterministic `BENCH_<name>.json` at the workspace root and prints a
//! console table with the wall-clock scaling figures.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin serve                  # full sweep
//! cargo run -p bench --release --bin serve -- --smoke       # CI sweep
//! cargo run -p bench --release --bin serve -- --shards 4    # single run
//! ```
//!
//! Single-run mode (`--shards N`) accepts `--mix bank|ht|mixed`,
//! `--variant`, `--mode plain|scheduled|robust`, `--requests`,
//! `--workers`, `--queue-cap`, `--total-warps` and `--seed`.
//!
//! Everything inside the JSON is virtual (simulated cycles, counters,
//! FNV hashes): for a fixed seed the file is byte-identical regardless
//! of worker-thread count or host speed. Wall-clock throughput is
//! printed on the console only.

use bench::{bench_output_path, print_table};
use gpu_sim::JsonWriter;
use tm_serve::{EngineMode, MixConfig, ServeConfig, ServeReport, Service};
use workloads::Variant;

struct Args {
    name: String,
    shards: Option<usize>,
    workers: usize,
    variant: Variant,
    mode: EngineMode,
    mix: String,
    requests: u64,
    queue_cap: usize,
    total_warps: u32,
    seed: u64,
    smoke: bool,
    accounts: u32,
    locality_pct: Option<u32>,
    hot_pct: Option<u32>,
    hot_keys: Option<u32>,
}

impl Args {
    fn parse() -> Args {
        let argv: Vec<String> = std::env::args().collect();
        let mut a = Args {
            name: "serve".to_string(),
            shards: None,
            workers: 0,
            variant: Variant::Vbv,
            // Plain by default: the AIMD scheduler deliberately damps the
            // contention collapse this sweep measures along the shard
            // axis. `--mode scheduled` benches the production setup.
            mode: EngineMode::Plain,
            mix: "bank".to_string(),
            requests: 16384,
            queue_cap: 0,
            total_warps: 64,
            seed: 42,
            smoke: false,
            accounts: 256,
            locality_pct: None,
            hot_pct: None,
            hot_keys: None,
        };
        let mut i = 1;
        while i < argv.len() {
            let take =
                |i: usize| argv.get(i + 1).unwrap_or_else(|| panic!("{} wants a value", argv[i]));
            match argv[i].as_str() {
                "--name" => {
                    a.name = take(i).clone();
                    i += 1;
                }
                "--shards" => {
                    a.shards = Some(take(i).parse().expect("--shards wants a number"));
                    i += 1;
                }
                "--workers" => {
                    a.workers = take(i).parse().expect("--workers wants a number");
                    i += 1;
                }
                "--variant" => {
                    a.variant = Variant::parse(take(i)).expect("unknown --variant");
                    i += 1;
                }
                "--mode" => {
                    a.mode = EngineMode::parse(take(i)).expect("unknown --mode");
                    i += 1;
                }
                "--mix" => {
                    a.mix = take(i).clone();
                    i += 1;
                }
                "--requests" => {
                    a.requests = take(i).parse().expect("--requests wants a number");
                    i += 1;
                }
                "--queue-cap" => {
                    a.queue_cap = take(i).parse().expect("--queue-cap wants a number");
                    i += 1;
                }
                "--total-warps" => {
                    a.total_warps = take(i).parse().expect("--total-warps wants a number");
                    i += 1;
                }
                "--seed" => {
                    a.seed = take(i).parse().expect("--seed wants a number");
                    i += 1;
                }
                "--accounts" => {
                    a.accounts = take(i).parse().expect("--accounts wants a number");
                    i += 1;
                }
                "--locality" => {
                    a.locality_pct = Some(take(i).parse().expect("--locality wants a percent"));
                    i += 1;
                }
                "--hot-pct" => {
                    a.hot_pct = Some(take(i).parse().expect("--hot-pct wants a percent"));
                    i += 1;
                }
                "--hot-keys" => {
                    a.hot_keys = Some(take(i).parse().expect("--hot-keys wants a number"));
                    i += 1;
                }
                "--smoke" => a.smoke = true,
                _ => {}
            }
            i += 1;
        }
        a
    }
}

/// Builds the service config for one sweep point. The total batch
/// capacity (`total_warps` × 32 lanes) is held constant across shard
/// counts: one shard runs all lanes in one conflict domain, `n` shards
/// split the same lanes into `n` independent domains.
fn config(args: &Args, mix_name: &str, variant: Variant, shards: usize) -> ServeConfig {
    let mut mix = MixConfig::parse(mix_name).expect("unknown --mix");
    mix.requests = args.requests;
    // Saturating arrivals: the sweep measures service throughput, not
    // idle time waiting for an open-loop trickle.
    mix.mean_interarrival = 4;
    if mix_name == "bank" {
        // Bench defaults for the bank mix: mostly-local traffic with a
        // light hot set — the regime where shard isolation pays most
        // (DESIGN.md §12). The service preset keeps the hotter mix.
        mix.locality_pct = 90;
        mix.hot_pct = 10;
    }
    if let Some(p) = args.locality_pct {
        mix.locality_pct = p;
    }
    if let Some(p) = args.hot_pct {
        mix.hot_pct = p;
    }
    if let Some(k) = args.hot_keys {
        mix.hot_keys = k;
    }
    let queue_cap = if args.queue_cap > 0 { args.queue_cap } else { args.requests as usize + 8 };
    ServeConfig {
        shards,
        workers: args.workers,
        variant,
        mode: args.mode,
        mix,
        seed: args.seed,
        accounts: args.accounts,
        batch_warps: (args.total_warps / shards as u32).max(1),
        queue_capacity: queue_cap,
        ..ServeConfig::default()
    }
}

fn run(cfg: &ServeConfig, mix_name: &str) -> ServeReport {
    eprint!(
        "[serve] mix={} variant={} shards={} ...",
        mix_name,
        cfg.variant.short_name(),
        cfg.shards
    );
    let report = Service::run(cfg).unwrap_or_else(|e| panic!("serve run failed: {e}"));
    eprintln!(
        " {} completed in {:.2}s ({} virtual kcycles)",
        report.completed,
        report.wall_seconds,
        report.virtual_cycles / 1000
    );
    report
}

fn main() {
    let args = Args::parse();

    // (mix, report) per sweep point, in deterministic sweep order.
    let mut runs: Vec<(String, ServeReport)> = Vec::new();
    if let Some(shards) = args.shards {
        let cfg = config(&args, &args.mix, args.variant, shards);
        runs.push((args.mix.clone(), run(&cfg, &args.mix)));
    } else {
        let mixes = ["bank", "ht"];
        let shard_axis: &[usize] = if args.smoke { &[1, 2] } else { &[1, 2, 4] };
        let variants = [Variant::Vbv, Variant::HvSorting];
        let sweep_requests = if args.smoke { args.requests.min(192) } else { args.requests };
        for mix in mixes {
            for &variant in &variants {
                for &shards in shard_axis {
                    let mut cfg = config(&args, mix, variant, shards);
                    cfg.mix.requests = sweep_requests;
                    cfg.queue_capacity = sweep_requests as usize + 8;
                    runs.push((mix.to_string(), run(&cfg, mix)));
                }
            }
        }
    }

    // Deterministic artifact: stable field order, virtual metrics only.
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "gpu-stm-serve/1");
    w.key("runs");
    w.begin_array();
    for (mix, report) in &runs {
        w.begin_object();
        w.field_str("mix", mix);
        w.key("report");
        report.write_json(&mut w);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let path = bench_output_path(&args.name);
    let json = w.finish();
    std::fs::write(&path, &json).expect("write serve report");

    // Console table: wall-clock columns live here and only here.
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (mix, r) in &runs {
        let baseline = runs
            .iter()
            .find(|(m, b)| m == mix && b.variant == r.variant && b.shards == 1)
            .map(|(_, b)| b.wall_throughput());
        let wall_x = match baseline {
            Some(base) if base > 0.0 => format!("{:.2}x", r.wall_throughput() / base),
            _ => "-".to_string(),
        };
        rows.push(vec![
            mix.clone(),
            r.variant.clone(),
            r.shards.to_string(),
            r.completed.to_string(),
            r.rejected.to_string(),
            r.shard_reports.iter().map(|s| s.aborts).sum::<u64>().to_string(),
            r.p50().to_string(),
            format!("{:.3}", r.sim_throughput()),
            format!("{:.0}", r.wall_throughput()),
            wall_x,
        ]);
    }
    print_table(
        "tm-serve load sweep",
        &[
            "mix",
            "variant",
            "shards",
            "completed",
            "rejected",
            "aborts",
            "p50(cyc)",
            "tx/kcycle",
            "tx/s",
            "wall-x",
        ],
        &rows,
    );
    println!("\nreport written to {} ({} bytes)", path.display(), json.len());
}
