//! Figure 5: execution-time breakdown of a single thread under
//! STM-Optimized — native code, transaction initialisation, buffering,
//! consistency checking, lock acquisition/release, commit, and time spent
//! in aborted transactions.
//!
//! The paper presents GN-1, GN-2, LB and KM (the micro-benchmarks are
//! almost entirely transactional, so their breakdown is uninformative).
//! Expected shape: GN-2 dominated by STM overhead (hard to amortise —
//! yet still ~20x faster than CGL overall); LB and KM show large
//! buffering shares (big read-/write-sets); KM loses a large share to
//! aborted work.
//!
//! Usage: `cargo run -p bench --release --bin fig5`

use bench::{print_table, Suite};
use gpu_stm::{phase_label, PHASES};
use workloads::{genome, kmeans, labyrinth, RunConfig, Variant};

fn breakdown_row(name: &str, b: &gpu_stm::Breakdown) -> Vec<String> {
    let mut row = vec![name.to_string()];
    for p in PHASES {
        row.push(format!("{:.1}%", b.percent(p)));
    }
    row
}

fn main() {
    let suite = Suite::from_args();
    println!("GPU-STM reproduction — Figure 5 (single-thread execution breakdown, STM-Optimized)");

    let mut rows = Vec::new();

    // GN-1 and GN-2 (one-warp launches; the breakdown is per-warp exact).
    {
        let (mut params, _, _) = suite.gn();
        // One warp (32 threads) processes one segment per thread; modest
        // duplicate rate, as in the paper's GN input.
        params.n_segments = 32;
        params.value_space = 28;
        params.table_words = 1 << 9;
        let g1 = gpu_sim::LaunchConfig::new(1, 32);
        let g2 = gpu_sim::LaunchConfig::new(1, 32);
        let cfg = RunConfig::with_memory(1 << 18).with_locks(suite.n_locks().min(1 << 14));
        match genome::run(&params, Variant::Optimized, g1, g2, &cfg) {
            Ok(out) => {
                rows.push(breakdown_row("GN-1", &out.k1.tx.breakdown));
                rows.push(breakdown_row("GN-2", &out.k2.tx.breakdown));
            }
            Err(e) => eprintln!("[fig5] GN failed: {e}"),
        }
    }

    // LB.
    {
        let (mut params, _) = suite.lb();
        params.n_paths = 24;
        let grid = gpu_sim::LaunchConfig::new(1, 32);
        let cells = (params.width * params.height) as u64;
        let cfg = suite.run_config(cells, 32);
        match labyrinth::run(&params, Variant::Optimized, grid, &cfg) {
            Ok(out) => rows.push(breakdown_row("LB", &out.base.tx.breakdown)),
            Err(e) => eprintln!("[fig5] LB failed: {e}"),
        }
    }

    // KM.
    {
        let (params, _) = suite.km();
        let grid = gpu_sim::LaunchConfig::new(16, 2);
        let cfg = suite.run_config(params.shared_words() as u64, 32);
        match kmeans::run(&params, Variant::Optimized, grid, &cfg) {
            Ok(out) => rows.push(breakdown_row("KM", &out.tx.breakdown)),
            Err(e) => eprintln!("[fig5] KM failed: {e}"),
        }
    }

    let mut headers = vec!["kernel"];
    headers.extend(PHASES.iter().map(|p| phase_label(*p)));
    print_table("Figure 5 — execution time breakdown", &headers, &rows);
    println!(
        "\n(native = non-transactional work; aborted = work in attempts that \
         eventually aborted; GN-2's init/buffering dominance matches the paper's \
         observation that its overhead is hard to amortise)"
    );
}
