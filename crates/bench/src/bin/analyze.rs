//! `txl analyze` sweep, in two halves.
//!
//! **Golden half:** the static profile rendered for every checked-in TXL
//! fixture must match `golden/analyze.golden` byte for byte, so any
//! drift in the abstract domain, the conflict graph, the cost
//! coefficients or the fixture corpus fails CI loudly.
//!
//! **Calibration half:** five embedded workload programs spanning the
//! contention spectrum are executed on the simulator under all 8 STM
//! variants at the analysis's modeled concurrency, and the measured
//! cycles land in `BENCH_analyze.json` next to the model's predictions.
//! The acceptance gate: the variant the analysis recommends must be
//! within 15% of the best measured variant's throughput on every
//! workload (`cycles(recommended) ≤ cycles(best) / 0.85`).
//!
//! Usage:
//! ```text
//! cargo run -p bench --release --bin analyze            # compare + gate
//! cargo run -p bench --release --bin analyze -- --bless # regenerate golden
//! ```

use gpu_sim::{JsonWriter, LaunchConfig, Sim, SimConfig};
use gpu_stm::{Stm, StmConfig};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::rc::Rc;
use txl::{analyze_source, ArrayBinding, CostConfig, StaticProfile};
use workloads::{dispatch, RunError, StmRunner, Variant};

/// Modeled and executed concurrency: 8 SIMT blocks × 32 lanes.
const THREADS: u32 = 256;
/// RNG seed for `rand()` in the workload programs.
const SEED: u64 = 7;

/// One calibration workload: a TXL program plus its array sizes.
struct Workload {
    name: &'static str,
    source: &'static str,
}

/// The five calibration points, spanning the contention spectrum the
/// cost model must rank correctly: serialized hot-spot, fully striped,
/// read-only, mixed transfer, and loop-carried scan.
const WORKLOADS: [Workload; 5] = [
    Workload {
        name: "hot",
        source: "kernel hot(c: array) {
    atomic { c[0] = c[0] + 1; }
}",
    },
    Workload {
        name: "striped",
        source: "kernel striped(c: array[256]) {
    let i = tid();
    atomic { c[i] = c[i] + 1; }
}",
    },
    Workload {
        name: "readmostly",
        source: "kernel readmostly(a: array[64], out: array[256]) {
    let i = tid();
    let acc = 0;
    atomic {
        acc = a[i % 64] + a[(i + 1) % 64];
    }
    atomic { out[i] = acc; }
}",
    },
    Workload {
        name: "mixed",
        source: "kernel mixed(src: array[32], dst: array[32]) {
    let i = tid() % 32;
    atomic {
        src[i] = src[i] - 1;
        dst[i] = dst[i] + 1;
    }
}",
    },
    Workload {
        name: "scan",
        source: "kernel scan(a: array[64], out: array[256]) {
    let i = tid();
    let acc = 0;
    let j = 0;
    atomic {
        while j < 8 {
            acc = acc + a[(i + j) % 64];
            j = j + 1;
        }
        out[i] = acc;
    }
}",
    },
];

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../txl/tests/fixtures")
}

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/analyze.golden")
}

/// The golden half: every fixture's rendered static profile.
fn render_golden() -> Result<String, String> {
    let dir = fixtures_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "txl"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .txl fixtures under {}", dir.display()));
    }

    let cfg = CostConfig { threads: THREADS, write_set_capacity: Some(32) };
    let mut out = String::new();
    for path in &files {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let profile =
            analyze_source(&src, &cfg).map_err(|e| format!("{name}: does not analyze: {e}"))?;
        let _ = writeln!(out, "=== {name}");
        out.push_str(&txl::cost::render_text(&profile));
    }
    Ok(out)
}

/// Runs the workload's first kernel under an already-instantiated STM.
struct LaunchRunner<'a> {
    kernel: &'a txl::Kernel,
    bindings: &'a [ArrayBinding],
    grid: LaunchConfig,
}

impl StmRunner for LaunchRunner<'_> {
    type Out = u64;

    fn run<S: Stm + 'static>(self, sim: &mut Sim, stm: Rc<S>) -> Result<u64, RunError> {
        match txl::launch(sim, &stm, self.kernel, self.grid, SEED, self.bindings) {
            Ok(report) => Ok(report.cycles),
            Err(txl::TxlError::Sim(e)) => Err(RunError::Sim(e)),
            Err(other) => Err(RunError::Verification(other.to_string())),
        }
    }
}

/// Measures one (workload, variant) cell: fresh simulator, arrays sized
/// from declarations, stripe count from the static recommendation (the
/// same lock-table the seeded service would run). `Ok(None)` = variant
/// cannot run this grid (EGPGV capacity).
fn measure(w: &Workload, profile: &StaticProfile, variant: Variant) -> Result<Option<u64>, String> {
    let program = txl::compile(w.source).map_err(|e| format!("{}: {e}", w.name))?;
    let kernel = program.kernels.first().expect("workload has a kernel");

    let mut sim = Sim::new(SimConfig::with_memory(1 << 20));
    let mut bindings = Vec::new();
    let mut data_words = 0u64;
    for p in &kernel.params {
        let len = p.declared_len.unwrap_or(THREADS).max(1);
        let addr = sim.alloc(len).map_err(|e| format!("{}: alloc: {e}", w.name))?;
        bindings.push(ArrayBinding::new(p.name.clone(), addr, len));
        data_words += u64::from(len);
    }

    let grid = LaunchConfig::new(8, 32);
    let runner = LaunchRunner { kernel, bindings: &bindings, grid };
    match dispatch(
        &mut sim,
        variant,
        StmConfig::new(profile.stripes),
        data_words,
        grid,
        None,
        None,
        runner,
    ) {
        Ok(cycles) => Ok(Some(cycles)),
        Err(RunError::Unsupported(_)) => Ok(None),
        Err(e) => Err(format!("{} / {}: {e}", w.name, variant.short_name())),
    }
}

struct SweepRow {
    name: &'static str,
    profile: StaticProfile,
    measured: Vec<(Variant, Option<u64>)>,
    best: Variant,
    best_cycles: u64,
    recommended_cycles: u64,
    ok: bool,
}

/// The calibration half: measure every workload × variant and gate the
/// recommendation against the best measured cell.
fn run_sweep() -> Result<Vec<SweepRow>, String> {
    let cfg = CostConfig { threads: THREADS, write_set_capacity: None };
    let mut rows = Vec::new();
    for w in &WORKLOADS {
        let profile = analyze_source(w.source, &cfg).map_err(|e| format!("{}: {e}", w.name))?;
        let mut measured = Vec::new();
        for v in Variant::ALL {
            measured.push((v, measure(w, &profile, v)?));
        }
        let (best, best_cycles) = measured
            .iter()
            .filter_map(|(v, c)| c.map(|c| (*v, c)))
            .min_by_key(|&(_, c)| c)
            .ok_or_else(|| format!("{}: no variant ran", w.name))?;
        let rec = profile.recommended().short_name();
        let recommended_cycles = measured
            .iter()
            .find(|(v, _)| v.short_name() == rec)
            .and_then(|(_, c)| *c)
            .ok_or_else(|| format!("{}: recommended variant `{rec}` did not run", w.name))?;
        // Within 15% of the best throughput: cycles ≤ best / 0.85.
        let ok = (recommended_cycles as f64) * 0.85 <= best_cycles as f64;
        rows.push(SweepRow {
            name: w.name,
            profile,
            measured,
            best,
            best_cycles,
            recommended_cycles,
            ok,
        });
    }
    Ok(rows)
}

fn render_json(rows: &[SweepRow]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("bench", "analyze");
    w.field_u64("threads", u64::from(THREADS));
    w.key("workloads");
    w.begin_array();
    for r in rows {
        w.begin_object();
        w.field_str("name", r.name);
        w.field_str("recommended", r.profile.recommended().short_name());
        w.field_u64("stripes", u64::from(r.profile.stripes));
        w.key("predicted");
        w.begin_array();
        for s in &r.profile.ranking {
            w.begin_object();
            w.field_str("variant", s.variant.short_name());
            w.field_f64("cycles", s.predicted_cycles);
            w.end_object();
        }
        w.end_array();
        w.key("measured");
        w.begin_array();
        for (v, c) in &r.measured {
            w.begin_object();
            w.field_str("variant", v.short_name());
            match c {
                Some(c) => w.field_u64("cycles", *c),
                None => w.field_bool("unsupported", true),
            }
            w.end_object();
        }
        w.end_array();
        w.field_str("best", r.best.short_name());
        w.field_u64("best_cycles", r.best_cycles);
        w.field_u64("recommended_cycles", r.recommended_cycles);
        w.field_bool("within_15pct", r.ok);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

fn main() -> ExitCode {
    let bless = std::env::args().any(|a| a == "--bless");

    // Golden half.
    let report = match render_golden() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    let golden = golden_path();
    if bless {
        if let Err(e) = std::fs::write(&golden, &report) {
            eprintln!("analyze: cannot write {}: {e}", golden.display());
            return ExitCode::FAILURE;
        }
        println!("blessed {}", golden.display());
    } else {
        match std::fs::read_to_string(&golden) {
            Ok(expected) if expected == report => {
                println!("golden: match ({})", golden.display());
            }
            Ok(expected) => {
                eprintln!("analyze: output differs from {}:", golden.display());
                for (i, (g, n)) in expected.lines().zip(report.lines()).enumerate() {
                    if g != n {
                        eprintln!("  line {}: golden `{g}`", i + 1);
                        eprintln!("  line {}: actual `{n}`", i + 1);
                    }
                }
                let (ne, nr) = (expected.lines().count(), report.lines().count());
                if ne != nr {
                    eprintln!("  line counts differ: golden {ne}, actual {nr}");
                }
                eprintln!("re-bless with: cargo run -p bench --bin analyze -- --bless");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("analyze: cannot read {}: {e}", golden.display());
                eprintln!("create it with: cargo run -p bench --bin analyze -- --bless");
                return ExitCode::FAILURE;
            }
        }
    }

    // Calibration half.
    let rows = match run_sweep() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    for r in &rows {
        let slack = r.recommended_cycles as f64 / r.best_cycles as f64;
        println!(
            "{:<11} recommended={:<11} best={:<11} rec_cycles={:<9} best_cycles={:<9} x{:.3} {}",
            r.name,
            r.profile.recommended().short_name(),
            r.best.short_name(),
            r.recommended_cycles,
            r.best_cycles,
            slack,
            if r.ok { "ok" } else { "FAIL (>15% off best)" },
        );
        failed |= !r.ok;
    }

    let json = render_json(&rows);
    let out = bench::bench_output_path("analyze");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("analyze: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out.display());

    if failed {
        eprintln!("analyze: a recommendation missed the 15% throughput window");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
