//! Figure 3: scalability of the STM variants — speedup over CGL as the
//! thread count grows.
//!
//! Expected shape: lock-table-based variants scale with threads until
//! hardware residency and conflicts saturate; STM-VBV plateaus early
//! (single-sequence-lock contention); STM-EGPGV stops running at larger
//! grids ("crashes" in the paper) because it lacks per-thread
//! transactions.
//!
//! Usage: `cargo run -p bench --release --bin fig3 [--only ra|ht|gn|lb|km]`

use bench::runner::{run_workload, Workload};
use bench::{print_table, speedup, Suite};
use workloads::Variant;

fn main() {
    let suite = Suite::from_args();
    let threads: Vec<u64> = vec![64, 256, 1024, 4096];
    println!("GPU-STM reproduction — Figure 3 (speedup over CGL vs. thread count)");

    for w in Workload::FIGURE2 {
        if !suite.selected(w.short()) {
            continue;
        }
        let mut rows = Vec::new();
        for &t in &threads {
            eprint!("[fig3] {} @ {t} threads: CGL", w.label());
            let cgl = match run_workload(&suite, w, Variant::Cgl, Some(t)) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!(" failed: {e}");
                    continue;
                }
            };
            let mut row = vec![t.to_string()];
            for v in Variant::FIGURE2 {
                eprint!(" {v}");
                match run_workload(&suite, w, v, Some(t)) {
                    Ok(out) => row.push(format!("{:.2}", speedup(cgl.cycles, out.cycles))),
                    Err(workloads::RunError::Unsupported(_)) => row.push("✗".to_string()),
                    Err(_) => row.push("err".to_string()),
                }
            }
            eprintln!();
            rows.push(row);
        }
        let headers = ["threads", "EGPGV", "VBV", "TBV-Sort", "HV-Backoff", "HV-Sort", "Optimized"];
        print_table(
            &format!("Figure 3 — {} scalability (speedup over CGL)", w.label()),
            &headers,
            &rows,
        );
    }
    println!("\n(✗ = unsupported: STM-EGPGV does not support per-thread transactions at scale)");
}
