//! Figure 2: performance comparison between STM variants and
//! coarse-grained locking (CGL) on the GPU.
//!
//! For each workload, every STM variant's transaction-kernel cycles are
//! reported as a speedup over CGL. Expected shape (paper Section 4.2):
//! STM-Optimized fastest or tied; STM-EGPGV limited by per-block
//! concurrency; STM-VBV poor on many-transaction workloads; HV beats TBV
//! where shared data exceeds the lock table (RA, LB); KM gains nothing.
//!
//! Usage: `cargo run -p bench --release --bin fig2 [--data-scale N]
//! [--thread-scale N] [--only ra|ht|gn|lb|km]`

use bench::runner::{run_workload, Workload};
use bench::{print_table, speedup, thousands, Suite};
use workloads::Variant;

fn main() {
    let suite = Suite::from_args();
    println!(
        "GPU-STM reproduction — Figure 2 (speedup over CGL)\n\
         data-scale 1/{}, thread-scale 1/{}, {} global version locks",
        suite.data_scale,
        suite.thread_scale,
        thousands(suite.n_locks() as u64)
    );

    let mut rows = Vec::new();
    for w in Workload::FIGURE2 {
        if !suite.selected(w.short()) {
            continue;
        }
        eprint!("[fig2] {} CGL...", w.label());
        let cgl = match run_workload(&suite, w, Variant::Cgl, None) {
            Ok(out) => out,
            Err(e) => {
                eprintln!(" failed: {e}");
                continue;
            }
        };
        eprintln!(" {} cycles", thousands(cgl.cycles));
        let mut row = vec![
            w.label().to_string(),
            format!("{}x{}", cgl.grid.blocks, cgl.grid.threads_per_block),
            thousands(cgl.cycles),
        ];
        for v in Variant::FIGURE2 {
            eprint!("[fig2] {} {}...", w.label(), v);
            match run_workload(&suite, w, v, None) {
                Ok(out) => {
                    eprintln!(" {} cycles", thousands(out.cycles));
                    row.push(format!("{:.2}", speedup(cgl.cycles, out.cycles)));
                }
                Err(workloads::RunError::Unsupported(_)) => {
                    eprintln!(" unsupported");
                    row.push("✗".to_string());
                }
                Err(e) => {
                    eprintln!(" failed: {e}");
                    row.push("err".to_string());
                }
            }
        }
        rows.push(row);
    }

    let headers = [
        "workload",
        "grid",
        "CGL cycles",
        "EGPGV",
        "VBV",
        "TBV-Sort",
        "HV-Backoff",
        "HV-Sort",
        "Optimized",
    ];
    print_table("Figure 2 — speedup over CGL (higher is better)", &headers, &rows);
    println!(
        "\n(✗ = configuration unsupported by the variant, as the paper reports for \
         STM-EGPGV beyond per-block-transaction capacity)"
    );
}
