//! Table 1: transactional characteristics of the evaluation workloads —
//! shared data size, reads/writes per transaction, transactions per
//! kernel, proportion of time spent in transactions, and conflict level.
//!
//! Measured by running each workload under STM-Optimized with its default
//! (scaled) configuration.
//!
//! Usage: `cargo run -p bench --release --bin table1`

use bench::runner::{run_workload, Workload};
use bench::{print_table, thousands, Suite};
use gpu_stm::Phase;
use workloads::Variant;

fn main() {
    let suite = Suite::from_args();
    println!(
        "GPU-STM reproduction — Table 1 (workload characteristics, measured under \
         STM-Optimized; sizes scaled 1/{})",
        suite.data_scale
    );

    let mut rows = Vec::new();
    let all = [Workload::Ra, Workload::Ht, Workload::Eb, Workload::Gn, Workload::Lb, Workload::Km];
    for w in all {
        if !suite.selected(w.short()) {
            continue;
        }
        eprintln!("[table1] {}...", w.label());
        let shared: u64 = match w {
            Workload::Ra => suite.ra().0.shared_words as u64,
            Workload::Ht => suite.ht().0.table_words as u64,
            Workload::Eb => suite.eb().0.hot_words as u64,
            Workload::Gn => suite.gn().0.table_words as u64,
            Workload::Lb => {
                let (p, _) = suite.lb();
                (p.width * p.height) as u64
            }
            Workload::Km => suite.km().0.shared_words() as u64,
        };
        match run_workload(&suite, w, Variant::Optimized, None) {
            Ok(out) => {
                let commits = out.tx.commits.max(1);
                let b = &out.tx.breakdown;
                let tx_time = 100.0 - b.percent(Phase::Native);
                rows.push(vec![
                    w.label().to_string(),
                    thousands(shared),
                    format!("{:.1}", out.tx.reads_committed as f64 / commits as f64),
                    format!("{:.1}", out.tx.writes_committed as f64 / commits as f64),
                    thousands(out.tx.commits),
                    format!("{tx_time:.0}%"),
                    conflict_level(out.tx.abort_rate()),
                ]);
            }
            Err(e) => eprintln!("[table1] {} failed: {e}", w.label()),
        }
    }

    let headers =
        ["workload", "shared data", "RD/TX", "WR/TX", "TX/kernel", "TX time", "conflicts"];
    print_table("Table 1 — workload transactional characteristics", &headers, &rows);
    println!("\n(conflicts: measured abort probability; GN rows aggregate both kernels)");
}

fn conflict_level(abort_rate: f64) -> String {
    let label = if abort_rate < 0.02 {
        "low"
    } else if abort_rate < 0.25 {
        "moderate"
    } else {
        "high"
    };
    format!("{label} ({:.1}%)", abort_rate * 100.0)
}
