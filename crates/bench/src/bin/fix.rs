//! `txl fix` sweep over the seeded-bug fixture corpus, with golden-file
//! comparison: the applied patches, residual counts, twin matches and
//! dynamic-gate verdicts for every `*_bug.txl` fixture must match
//! `golden/fix.golden` byte for byte, so any drift in the repair engine
//! or the corpus fails CI loudly. Fixtures whose findings are
//! residual-by-design (rules with no mechanical repair, e.g. TL008)
//! must instead come back byte-identical with no committed twin.
//! `--json PATH` additionally writes the machine-readable patch
//! records CI uploads as an artifact.
//!
//! Usage:
//! ```text
//! cargo run -p bench --release --bin fix                    # compare
//! cargo run -p bench --release --bin fix -- --bless        # regenerate golden
//! cargo run -p bench --release --bin fix -- --json out.json
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use txl::fix::dynamic_check;
use txl::lint::LintConfig;
use txl::{fix_source, FixConfig};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../txl/tests/fixtures")
}

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/fix.golden")
}

struct Sweep {
    report: String,
    json: String,
}

fn render() -> Result<Sweep, String> {
    let dir = fixtures_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.to_string_lossy().ends_with("_bug.txl"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no *_bug.txl fixtures under {}", dir.display()));
    }

    let cfg = FixConfig {
        lint: LintConfig { write_set_capacity: Some(32), ..LintConfig::default() },
        ..FixConfig::default()
    };
    let mut out = String::new();
    let mut w = gpu_sim::JsonWriter::new();
    w.begin_object();
    w.field_str("tool", "bench-fix");
    w.key("files");
    w.begin_array();
    let mut patches = 0usize;
    for path in &files {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let r = fix_source(&src, &cfg).map_err(|e| format!("{name}: {e}"))?;
        if !r.is_clean() {
            // Residual-by-design fixtures: some rules have no mechanical
            // repair (TL008 — the intended wake condition exists only in
            // the author's head). The contract for these is the inverse
            // of the repair contract: no twin is committed, the source
            // must come back byte-identical, and the dynamic gate is
            // skipped (an unwakeable retry spins into the watchdog).
            if r.fixed != src {
                return Err(format!(
                    "{name}: repair left residuals yet modified the source: {:?}",
                    r.residual
                ));
            }
            if !r.applied.is_empty() {
                return Err(format!(
                    "{name}: applied {} patch(es) but still residual: {:?}",
                    r.applied.len(),
                    r.residual
                ));
            }
            let twin_name = name.replace("_bug.txl", "_fixed.txl");
            if dir.join(&twin_name).exists() {
                return Err(format!(
                    "{name}: has residual-only findings but a committed twin {twin_name}; \
                     either the rule gained a repair or the twin is stale"
                ));
            }
            let mut rules: Vec<&str> = r.residual.iter().map(|d| d.rule.id()).collect();
            rules.sort_unstable();
            rules.dedup();
            let _ =
                writeln!(out, "{name}: residual by design ({}), source untouched", rules.join(","));
            w.begin_object();
            w.field_str("file", &name);
            w.key("residual");
            w.begin_array();
            for rule in &rules {
                w.string(rule);
            }
            w.end_array();
            w.end_object();
            continue;
        }
        patches += r.applied.len();
        let _ = writeln!(
            out,
            "{name}: {} patch(es) in {} round(s), {} residual",
            r.applied.len(),
            r.rounds,
            r.residual.len()
        );
        for a in &r.applied {
            let _ = writeln!(out, "{name}:   round {} {}", a.round, a.patch);
        }

        // Byte-exact agreement with the committed post-fix twin.
        let twin_name = name.replace("_bug.txl", "_fixed.txl");
        let twin = std::fs::read_to_string(dir.join(&twin_name))
            .map_err(|e| format!("{name}: missing twin {twin_name}: {e}"))?;
        if r.fixed != twin {
            return Err(format!("{name}: repair does not match {twin_name} byte for byte"));
        }
        let _ = writeln!(out, "{name}: matches {twin_name}");

        // The repaired program must run race- and opacity-clean.
        let gate = dynamic_check(&r.fixed, 7).map_err(|e| format!("{name}: gate: {e}"))?;
        if !gate.is_clean() {
            return Err(format!("{name}: dynamic gate violations: {:?}", gate.violations));
        }
        let _ = writeln!(out, "{name}: dynamic gate clean ({} kernel(s))", gate.kernels);

        w.begin_object();
        w.field_str("file", &name);
        w.field_str("twin", &twin_name);
        w.field_u64("rounds", u64::from(r.rounds));
        w.field_bool("gate_clean", gate.is_clean());
        w.key("applied");
        w.begin_array();
        for a in &r.applied {
            w.begin_object();
            w.field_u64("round", u64::from(a.round));
            w.field_str("rule", a.patch.rule.id());
            w.field_str("kernel", &a.patch.kernel);
            w.field_str("title", &a.patch.title);
            w.key("edits");
            w.begin_array();
            for e in &a.patch.edits {
                w.begin_object();
                w.field_u64("start", u64::from(e.start));
                w.field_u64("end", u64::from(e.end));
                w.field_str("replacement", &e.replacement);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    let _ = writeln!(out, "total: {} fixture(s), {patches} patch(es)", files.len());
    w.end_array();
    w.end_object();
    Ok(Sweep { report: out, json: w.finish() })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bless = args.iter().any(|a| a == "--bless");
    let json_path = args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();

    let sweep = match render() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fix: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", sweep.report);
    if let Some(p) = json_path {
        if let Err(e) = std::fs::write(&p, &sweep.json) {
            eprintln!("fix: cannot write {p}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {p}");
    }

    let golden = golden_path();
    if bless {
        if let Err(e) = std::fs::write(&golden, &sweep.report) {
            eprintln!("fix: cannot write {}: {e}", golden.display());
            return ExitCode::FAILURE;
        }
        println!("blessed {}", golden.display());
        return ExitCode::SUCCESS;
    }
    match std::fs::read_to_string(&golden) {
        Ok(expected) if expected == sweep.report => {
            println!("golden: match ({})", golden.display());
            ExitCode::SUCCESS
        }
        Ok(expected) => {
            eprintln!("fix: output differs from {}:", golden.display());
            for (i, (g, n)) in expected.lines().zip(sweep.report.lines()).enumerate() {
                if g != n {
                    eprintln!("  line {}: golden `{g}`", i + 1);
                    eprintln!("  line {}: actual `{n}`", i + 1);
                }
            }
            let (ne, nr) = (expected.lines().count(), sweep.report.lines().count());
            if ne != nr {
                eprintln!("  line counts differ: golden {ne}, actual {nr}");
            }
            eprintln!("re-bless with: cargo run -p bench --bin fix -- --bless");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("fix: cannot read {}: {e}", golden.display());
            eprintln!("create it with: cargo run -p bench --bin fix -- --bless");
            ExitCode::FAILURE
        }
    }
}
