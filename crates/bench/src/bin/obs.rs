//! Load-and-fault sweep for the live-observability subsystem
//! (`tm-serve::obs`).
//!
//! Drives the service through three deterministic scenarios and records
//! what the metrics registry, health state machines and flight recorder
//! saw:
//!
//! 1. **load** — a hot, contended mix under the AIMD scheduler, sized
//!    to push shards through abort-storm incidents and several metric
//!    windows.
//! 2. **crash** — a durable run with a seeded worker kill and an
//!    asynchronous recovery window (`recovery_rounds > 0`): the shard
//!    must pass Healthy → Recovering → Healthy and cut a crash bundle.
//! 3. **divergence** — a replicated run with a seeded single-commit
//!    drop in one replica: the quorum demotes it and the shard degrades.
//!
//! The artifact (`BENCH_obs.json` by default) embeds each scenario's
//! final `MetricsSnapshot`, its incident log and bundle summaries, plus
//! an FNV-64 of the Prometheus text exposition — the full scrape is
//! checked by hash rather than inlined. Everything is virtual, so the
//! file is byte-identical for any worker count and any host.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin obs                    # full sweep
//! cargo run -p bench --release --bin obs -- --smoke         # CI sweep
//! cargo run -p bench --release --bin obs -- --bundles DIR   # dump bundles
//! cargo run -p bench --release --bin obs -- --prom          # print scrape
//! ```

use bench::{artifact_output_path, bench_output_path, print_table};
use gpu_sim::JsonWriter;
use tm_serve::{
    CrashPlan, CrashPoint, DurabilityConfig, EngineMode, MemStore, MixConfig, ObsConfig,
    RecoveryReport, ReplicaFault, ServeConfig, ServeReport, Service,
};
use workloads::Variant;

struct Args {
    name: String,
    seed: u64,
    workers: usize,
    smoke: bool,
    prom: bool,
    bundles: Option<std::path::PathBuf>,
}

impl Args {
    fn parse() -> Args {
        let argv: Vec<String> = std::env::args().collect();
        let mut a = Args {
            name: "obs".to_string(),
            seed: 42,
            workers: 0,
            smoke: false,
            prom: false,
            bundles: None,
        };
        let mut i = 1;
        while i < argv.len() {
            let take =
                |i: usize| argv.get(i + 1).unwrap_or_else(|| panic!("{} wants a value", argv[i]));
            match argv[i].as_str() {
                "--name" => {
                    a.name = take(i).clone();
                    i += 1;
                }
                "--seed" => {
                    a.seed = take(i).parse().expect("--seed wants a number");
                    i += 1;
                }
                "--workers" => {
                    a.workers = take(i).parse().expect("--workers wants a number");
                    i += 1;
                }
                "--bundles" => {
                    a.bundles = Some(std::path::PathBuf::from(take(i)));
                    i += 1;
                }
                "--smoke" => a.smoke = true,
                "--prom" => a.prom = true,
                _ => {}
            }
            i += 1;
        }
        a
    }
}

/// Observability knobs shared by every scenario: a window narrow enough
/// that short runs cross several boundaries, event capture on so
/// bundles carry replayable traces, and `storm_open: 1` so a single
/// storming batch is incident-worthy — the AIMD scheduler damps storms
/// quickly, so waiting for consecutive ones would miss most of them.
fn obs_cfg() -> ObsConfig {
    ObsConfig {
        window_cycles: 1 << 14,
        flight_epochs: 4,
        flight_events: 4096,
        storm_open: 1,
        ..ObsConfig::default()
    }
}

/// Scenario 1: hot contended load under the AIMD scheduler. Few
/// accounts, a dense hot set and saturating arrivals — the regime where
/// abort storms fire and the storm hysteresis has work to do.
fn load_config(args: &Args, requests: u64) -> ServeConfig {
    ServeConfig {
        shards: 2,
        workers: args.workers,
        variant: Variant::Vbv,
        mode: EngineMode::Scheduled,
        mix: MixConfig {
            requests,
            mean_interarrival: 2,
            locality_pct: 100,
            hot_pct: 80,
            hot_keys: 4,
            ..MixConfig::bank()
        },
        seed: args.seed,
        accounts: 16,
        batch_warps: 4,
        queue_capacity: requests as usize / 2,
        obs: obs_cfg(),
        ..ServeConfig::default()
    }
}

/// Scenarios 2 and 3: the compact durable mix from the recovery sweep,
/// with observability on.
fn fault_config(args: &Args, dur: DurabilityConfig) -> ServeConfig {
    ServeConfig {
        shards: 2,
        workers: args.workers,
        mix: MixConfig { requests: 96, ..MixConfig::mixed() },
        seed: args.seed,
        accounts: 64,
        table_words: 256,
        txl_words: 16,
        batch_warps: 1,
        n_locks: 1 << 10,
        durability: Some(dur),
        obs: obs_cfg(),
        ..ServeConfig::default()
    }
}

/// FNV-64 of a text exposition — lets the artifact pin the whole
/// Prometheus scrape without inlining kilobytes of text.
fn fnv_text(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Scenario {
    name: &'static str,
    report: ServeReport,
    rec: Option<RecoveryReport>,
}

fn write_scenario(w: &mut JsonWriter, sc: &Scenario) {
    w.begin_object();
    w.field_str("scenario", sc.name);
    w.key("snapshot");
    sc.report.obs.snapshot.write_json(w);
    w.key("incidents");
    w.begin_array();
    for inc in &sc.report.obs.incidents {
        inc.write_json(w);
    }
    if let Some(rec) = &sc.rec {
        for inc in &rec.incidents {
            inc.write_json(w);
        }
    }
    w.end_array();
    w.key("bundles");
    w.begin_array();
    for b in &sc.report.obs.bundles {
        b.write_json(w);
    }
    if let Some(rec) = &sc.rec {
        for b in &rec.bundles {
            b.write_json(w);
        }
    }
    w.end_array();
    w.field_str(
        "prometheus_fnv",
        &format!("{:016x}", fnv_text(&sc.report.obs.snapshot.to_prometheus())),
    );
    w.end_object();
}

fn main() {
    let args = Args::parse();
    let requests = if args.smoke { 192 } else { 768 };

    eprintln!("[obs] load: hot bank mix, scheduled mode, seed {} ...", args.seed);
    let load = Service::run(&load_config(&args, requests))
        .unwrap_or_else(|e| panic!("load scenario failed: {e}"));

    eprintln!("[obs] crash: seeded kill + async recovery window ...");
    let crash_dur = DurabilityConfig {
        segment_batches: 2,
        recovery_rounds: 2,
        crash: Some(CrashPlan::at(0, CrashPoint::PostPrepare, 1)),
        ..DurabilityConfig::default()
    };
    let (crash_report, crash_rec) =
        Service::run_durable(&fault_config(&args, crash_dur), MemStore::shared())
            .unwrap_or_else(|e| panic!("crash scenario failed: {e}"));

    eprintln!("[obs] divergence: seeded replica corruption ...");
    let div_dur = DurabilityConfig {
        segment_batches: 2,
        replicas: 2,
        replica_fault: Some(ReplicaFault { shard: 0, replica: 1, at_commit: 3 }),
        ..DurabilityConfig::default()
    };
    let (div_report, div_rec) =
        Service::run_durable(&fault_config(&args, div_dur), MemStore::shared())
            .unwrap_or_else(|e| panic!("divergence scenario failed: {e}"));

    let scenarios = [
        Scenario { name: "load", report: load, rec: None },
        Scenario { name: "crash", report: crash_report, rec: Some(crash_rec) },
        Scenario { name: "divergence", report: div_report, rec: Some(div_rec) },
    ];

    // The crash scenario must actually exercise the state machine.
    let crash_sc = &scenarios[1];
    let rec = crash_sc.rec.as_ref().expect("crash scenario is durable");
    assert!(
        crash_sc.report.obs.incidents.iter().any(|i| i.close_epoch.is_some()),
        "crash scenario must open and close a recovery incident"
    );
    assert!(!rec.bundles.is_empty(), "crash scenario must cut a flight-recorder bundle");

    // Deterministic artifact: stable field order, virtual metrics only.
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "gpu-stm-obs/1");
    w.field_u64("seed", args.seed);
    w.key("scenarios");
    w.begin_array();
    for sc in &scenarios {
        write_scenario(&mut w, sc);
    }
    w.end_array();
    w.end_object();
    let path = bench_output_path(&args.name);
    let json = w.finish();
    std::fs::write(&path, &json).expect("write obs report");

    // Optional bundle dump: every flight-recorder bundle the scenarios
    // cut, as replayable `<name>.json` + `<name>.trace.json` pairs.
    if let Some(dir) = &args.bundles {
        let dir = if dir.is_absolute() { dir.clone() } else { artifact_output_path(".").join(dir) };
        std::fs::create_dir_all(&dir).expect("create bundle dir");
        let mut written = 0usize;
        for sc in &scenarios {
            for b in sc.report.obs.bundles.iter().chain(sc.rec.iter().flat_map(|r| &r.bundles)) {
                b.write_to(&dir).expect("write bundle");
                written += 1;
            }
        }
        eprintln!("[obs] {written} bundle(s) written to {}", dir.display());
    }

    // Optional scrape dump: the load scenario's final exposition, as a
    // Prometheus endpoint would serve it.
    if args.prom {
        print!("{}", scenarios[0].report.obs.snapshot.to_prometheus());
    }

    let rows: Vec<Vec<String>> = scenarios
        .iter()
        .map(|sc| {
            let snap = &sc.report.obs.snapshot;
            let incidents =
                sc.report.obs.incidents.len() + sc.rec.as_ref().map_or(0, |r| r.incidents.len());
            let bundles =
                sc.report.obs.bundles.len() + sc.rec.as_ref().map_or(0, |r| r.bundles.len());
            let health: Vec<String> =
                snap.shards.iter().map(|s| s.health.label().to_string()).collect();
            vec![
                sc.name.to_string(),
                snap.window.to_string(),
                incidents.to_string(),
                bundles.to_string(),
                health.join(","),
            ]
        })
        .collect();
    print_table(
        "tm-serve observability sweep",
        &["scenario", "windows", "incidents", "bundles", "final health"],
        &rows,
    );
    println!("report written to {} ({} bytes)", path.display(), json.len());
}
