//! Table 2: launch configurations at which STM-Optimized achieves its best
//! performance, found by searching over `blocks × threads-per-block`.
//!
//! The paper reports 256×256 for RA/HT/GN-1, smaller grids for GN-2 and
//! LB, and a tiny 64×2 grid for KM (high conflict rates make extra SIMT
//! lanes useless). The same qualitative pattern should emerge here at the
//! harness's scaled sizes.
//!
//! Usage: `cargo run -p bench --release --bin table2`

use bench::runner::{run_workload, Workload};
use bench::{print_table, thousands, Suite};
use workloads::Variant;

fn main() {
    let suite = Suite::from_args();
    println!("GPU-STM reproduction — Table 2 (autotuned launch configurations, STM-Optimized)");

    let mut rows = Vec::new();
    for w in Workload::FIGURE2 {
        if !suite.selected(w.short()) {
            continue;
        }
        // Candidate thread counts; the runner picks the block shape.
        let candidates: Vec<u64> = match w {
            Workload::Km => vec![32, 64, 128, 512],
            Workload::Lb => vec![32, 64, 128, 448],
            _ => vec![256, 1024, 4096, 8192],
        };
        // Work scales with the grid for most workloads, so rank on
        // throughput: cycles per committed transaction.
        let mut best: Option<(f64, u64, gpu_sim::LaunchConfig)> = None;
        for &t in &candidates {
            eprint!("[table2] {} @ {t} threads...", w.label());
            match run_workload(&suite, w, Variant::Optimized, Some(t)) {
                Ok(out) => {
                    let per_tx = out.cycles as f64 / out.tx.commits.max(1) as f64;
                    eprintln!(" {} cycles, {per_tx:.0} cyc/tx", thousands(out.cycles));
                    if best.as_ref().is_none_or(|(c, _, _)| per_tx < *c) {
                        best = Some((per_tx, t, out.grid));
                    }
                }
                Err(e) => eprintln!(" failed: {e}"),
            }
        }
        if let Some((per_tx, threads, grid)) = best {
            rows.push(vec![
                w.label().to_string(),
                grid.blocks.to_string(),
                grid.threads_per_block.to_string(),
                thousands(threads),
                format!("{per_tx:.0}"),
            ]);
        }
    }

    let headers = ["workload", "thread-blocks", "threads/block", "total threads", "cycles/tx"];
    print_table("Table 2 — optimal launch configurations", &headers, &rows);
    println!(
        "\n(expected shape: RA/HT/GN favour the largest grids; KM and LB favour \
         small ones because conflicts/serial routing cap useful concurrency)"
    );
}
