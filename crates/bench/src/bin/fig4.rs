//! Figure 4: hierarchical validation (HV) vs. timestamp-based validation
//! (TBV) on EigenBench, sweeping the number of global version locks, the
//! amount of shared data, and the thread count.
//!
//! Expected shape: with small shared data the two match; with large shared
//! data TBV needs many locks to shed false conflicts while HV reaches
//! near-optimal throughput (and much lower abort rates) with a fraction of
//! the locks.
//!
//! Usage: `cargo run -p bench --release --bin fig4 [--data-scale N]`

use bench::{print_table, square_grid, thousands, Suite};
use workloads::eigenbench::{self, EbParams};
use workloads::{RunConfig, Variant};

fn main() {
    let suite = Suite::from_args();
    // Paper sweep: shared data 1M–64M, locks 1M–64M (scaled).
    let shared_sizes: Vec<u32> =
        [1u64 << 20, 4 << 20, 16 << 20, 64 << 20].iter().map(|s| scale(&suite, *s)).collect();
    let lock_counts: Vec<u32> =
        [1u64 << 20, 4 << 20, 16 << 20, 64 << 20].iter().map(|s| scale(&suite, *s)).collect();
    let thread_counts = [1024u64, 4096];

    println!(
        "GPU-STM reproduction — Figure 4 (HV vs TBV on EigenBench)\n\
         shared data and lock counts scaled 1/{} from the paper's 1M-64M sweep",
        suite.data_scale
    );

    for (panel, &shared) in shared_sizes.iter().enumerate() {
        let mut rows = Vec::new();
        for &threads in &thread_counts {
            for &locks in &lock_counts {
                let params =
                    EbParams { hot_words: shared, txs_per_thread: 2, ..EbParams::default() };
                let grid = square_grid(threads);
                let mut cells = vec![thousands(threads), thousands(locks as u64)];
                for v in [Variant::HvSorting, Variant::TbvSorting] {
                    let data = shared as u64
                        + grid.total_threads() * (params.mild_words + params.cold_words) as u64;
                    let mem = data + locks as u64 + (1 << 16);
                    let cfg = RunConfig::with_memory(mem as usize).with_locks(locks);
                    match eigenbench::run(&params, v, grid, &cfg) {
                        Ok(out) => {
                            let cycles = out.cycles().max(1);
                            let tput = out.tx.commits as f64 * 1e6 / cycles as f64;
                            cells.push(format!("{tput:.1}"));
                            cells.push(format!("{:.1}%", out.tx.abort_rate() * 100.0));
                        }
                        Err(e) => {
                            eprintln!("[fig4] {v} failed: {e}");
                            cells.push("err".into());
                            cells.push("err".into());
                        }
                    }
                }
                rows.push(cells);
            }
        }
        let headers = ["threads", "locks", "HV tx/Mcyc", "HV abort", "TBV tx/Mcyc", "TBV abort"];
        print_table(
            &format!(
                "Figure 4({}) — shared data = {} words",
                (b'a' + panel as u8) as char,
                thousands(shared as u64)
            ),
            &headers,
            &rows,
        );
    }
}

fn scale(suite: &Suite, paper_words: u64) -> u32 {
    ((paper_words / suite.data_scale).max(1024) as u32).next_power_of_two()
}
