//! tm-trace: capture a cycle-accurate trace of one workload × variant run
//! and export it as Chrome-trace JSON (loadable in Perfetto / `chrome://
//! tracing`) plus a contention profile.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin trace -- \
//!     --workload ht --variant hv-sorting --threads 256 \
//!     --out trace.json --profile contention.json
//! ```
//!
//! All flags are optional: the default is the hashtable workload under
//! STM-HV-Sorting at a small deterministic scale, writing `trace.json`.
//! `--capacity N` bounds both ring buffers (default 1 << 20 events each);
//! when a buffer overflows the *oldest* events are dropped and the drop
//! count is reported. The suite scaling flags (`--data-scale`,
//! `--thread-scale`) apply as in every other bench binary.

use bench::runner::{run_workload_traced, TraceHooks, Workload};
use bench::{thousands, Suite};
use gpu_sim::trace_sink;
use gpu_stm::{chrome_trace, tx_trace_sink, ContentionProfile};
use workloads::Variant;

struct Args {
    workload: Workload,
    variant: Variant,
    threads: Option<u64>,
    out: String,
    profile: Option<String>,
    capacity: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: Workload::Ht,
        variant: Variant::HvSorting,
        threads: Some(256),
        out: "trace.json".to_string(),
        profile: None,
        capacity: 1 << 20,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--workload" if i + 1 < argv.len() => {
                args.workload = Workload::parse(&argv[i + 1])
                    .unwrap_or_else(|| die(&format!("unknown workload `{}`", argv[i + 1])));
                i += 1;
            }
            "--variant" if i + 1 < argv.len() => {
                args.variant = Variant::parse(&argv[i + 1])
                    .unwrap_or_else(|| die(&format!("unknown variant `{}`", argv[i + 1])));
                i += 1;
            }
            "--threads" if i + 1 < argv.len() => {
                args.threads = Some(argv[i + 1].parse().expect("--threads wants a number"));
                i += 1;
            }
            "--out" if i + 1 < argv.len() => {
                args.out = argv[i + 1].clone();
                i += 1;
            }
            "--profile" if i + 1 < argv.len() => {
                args.profile = Some(argv[i + 1].clone());
                i += 1;
            }
            "--capacity" if i + 1 < argv.len() => {
                args.capacity = argv[i + 1].parse().expect("--capacity wants a number");
                i += 1;
            }
            "--help" | "-h" => {
                eprintln!(
                    "tm-trace: --workload ra|ht|eb|gn|lb|km --variant <short-name> \
                     --threads N --out FILE --profile FILE --capacity N \
                     [--data-scale N --thread-scale N]"
                );
                std::process::exit(0);
            }
            _ => {}
        }
        i += 1;
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("tm-trace: {msg}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    let suite = Suite::from_args();

    let sim_sink = trace_sink(args.capacity);
    let tx_sink = tx_trace_sink(args.capacity);
    let hooks = TraceHooks { sim: Some(sim_sink.clone()), tx: Some(tx_sink.clone()) };

    eprintln!("[tm-trace] {} under {} ...", args.workload.label(), args.variant.label());
    let out = match run_workload_traced(&suite, args.workload, args.variant, args.threads, &hooks) {
        Ok(out) => out,
        Err(e) => die(&format!("run failed: {e}")),
    };

    let sim_events = sim_sink.borrow().snapshot();
    let tx_events = tx_sink.borrow().snapshot();
    let json = chrome_trace(&sim_events, &tx_events);
    if let Err(e) = std::fs::write(&args.out, &json) {
        die(&format!("cannot write {}: {e}", args.out));
    }

    let profile = ContentionProfile::from_events(&tx_events);
    println!(
        "{} under {}: {} cycles, {} commits, {} aborts (rate {:.3})",
        args.workload.label(),
        args.variant.label(),
        thousands(out.cycles),
        thousands(out.tx.commits),
        thousands(out.tx.aborts),
        out.tx.abort_rate()
    );
    println!(
        "events: {} machine ({} dropped), {} transaction ({} dropped)",
        sim_sink.borrow().emitted(),
        sim_sink.borrow().dropped(),
        tx_sink.borrow().emitted(),
        tx_sink.borrow().dropped()
    );
    println!(
        "trace written to {} ({} bytes) — open in Perfetto or chrome://tracing",
        args.out,
        json.len()
    );

    if profile.total_conflicts() > 0 || profile.total_aborts() > 0 {
        println!("\ncontention heatmap (stripes × time, '@' = hottest):");
        print!("{}", profile.heatmap(8));
        let hot = profile.hottest_stripes(5);
        if !hot.is_empty() {
            println!("hottest stripes:");
            for (stripe, count) in hot {
                println!("  stripe {stripe:>8}: {} conflicts", thousands(count));
            }
        }
    } else {
        println!("\nno lock conflicts or aborts observed — contention heatmap omitted");
    }
    if let Some(path) = &args.profile {
        if let Err(e) = std::fs::write(path, profile.to_json()) {
            die(&format!("cannot write {path}: {e}"));
        }
        println!("contention report written to {path}");
    }
}
