//! Bounded model checking of the STM variants: DPOR schedule exploration
//! over the tm-verify litmus workloads, with machine-readable exploration
//! stats and `.sched` repro files for any violation found.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin verify                 # full matrix
//! cargo run -p bench --release --bin verify -- \
//!     --workload bank --variant hv-sorting --bound 2        # one cell
//! cargo run -p bench --release --bin verify -- \
//!     --mutant unsorted_locks --variant hv-sorting          # witness hunt
//! cargo run -p bench --release --bin verify -- \
//!     --replay witness.sched                                # reproduce
//! ```
//!
//! Exit status is nonzero when any violation is found (or a `--replay`
//! does not reproduce one), so the bin doubles as a CI gate.

use bench::print_table;
use gpu_sim::json::JsonWriter;
use gpu_stm::Mutation;
use std::process::ExitCode;
use tm_verify::{
    finding_to_sched, minimize_finding, parse, replay, verify, ExploreStats, Litmus, VerifyConfig,
    Workload,
};
use workloads::Variant;

struct Args {
    workloads: Vec<Workload>,
    variants: Vec<Variant>,
    blocks: u32,
    warps: u32,
    bound: u32,
    max_schedules: u64,
    mutant: Option<(&'static str, Mutation)>,
    json: Option<String>,
    sched_dir: String,
    replay: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: verify [--workload bank|hashtable|stripes|all] [--variant <name>|all]\n\
         \x20             [--blocks N] [--warps N] [--bound N] [--max-schedules N]\n\
         \x20             [--mutant skip_validation|unsorted_locks|late_writeback]\n\
         \x20             [--json FILE] [--sched-dir DIR] [--replay FILE.sched]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        workloads: Workload::ALL.to_vec(),
        variants: Variant::ALL.to_vec(),
        blocks: 1,
        warps: 2,
        bound: 2,
        max_schedules: 3000,
        mutant: None,
        json: None,
        sched_dir: ".".into(),
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--workload" => {
                let v = val();
                args.workloads = match v.as_str() {
                    "all" => Workload::ALL.to_vec(),
                    w => vec![Workload::parse(w).unwrap_or_else(|| usage())],
                };
            }
            "--variant" => {
                let v = val();
                args.variants = match v.as_str() {
                    "all" => Variant::ALL.to_vec(),
                    s => vec![Variant::parse(s).unwrap_or_else(|| usage())],
                };
            }
            "--blocks" => args.blocks = val().parse().unwrap_or_else(|_| usage()),
            "--warps" => args.warps = val().parse().unwrap_or_else(|_| usage()),
            "--bound" => args.bound = val().parse().unwrap_or_else(|_| usage()),
            "--max-schedules" => args.max_schedules = val().parse().unwrap_or_else(|_| usage()),
            "--mutant" => args.mutant = Some(parse_mutant(&val()).unwrap_or_else(|| usage())),
            "--json" => args.json = Some(val()),
            "--sched-dir" => args.sched_dir = val(),
            "--replay" => args.replay = Some(val()),
            _ => usage(),
        }
    }
    args
}

fn parse_mutant(s: &str) -> Option<(&'static str, Mutation)> {
    match s {
        "skip_validation" => {
            Some(("skip_validation", Mutation { skip_validation: true, ..Default::default() }))
        }
        "unsorted_locks" => {
            Some(("unsorted_locks", Mutation { unsorted_locks: true, ..Default::default() }))
        }
        "late_writeback" => {
            Some(("late_writeback", Mutation { late_writeback: true, ..Default::default() }))
        }
        _ => None,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(path) = &args.replay {
        return replay_file(path);
    }

    println!("GPU-STM reproduction — bounded DPOR model checking");
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    let mut violations = 0u64;

    for &wl in &args.workloads {
        for &variant in &args.variants {
            let mut litmus = Litmus::new(wl, variant, args.blocks, args.warps);
            if let Some((_, m)) = args.mutant {
                if !matches!(
                    variant,
                    Variant::TbvSorting
                        | Variant::HvSorting
                        | Variant::HvBackoff
                        | Variant::TbvBackoff
                ) {
                    continue; // mutations exist only in the lock-based runtime
                }
                litmus.mutation = m;
            }
            let cfg = VerifyConfig {
                litmus,
                max_preemptions: args.bound,
                max_schedules: args.max_schedules,
                stop_on_finding: args.mutant.is_some(),
            };
            eprint!("[verify] {wl}/{variant} bound={}...", args.bound);
            let t = std::time::Instant::now();
            let report = verify(&cfg);
            let dt = t.elapsed();
            eprintln!(" {} schedules in {dt:?}", report.stats.schedules_run);

            let verdict = if let Some(u) = &report.unsupported {
                format!("unsupported: {u}")
            } else if report.is_clean() {
                if report.stats.cap_hit {
                    "clean (capped)".into()
                } else {
                    "clean".into()
                }
            } else {
                violations += report.findings.len() as u64;
                let f = &report.findings[0];
                let min = minimize_finding(&litmus, f);
                let file = format!(
                    "{}/{}-{}-{}.sched",
                    args.sched_dir,
                    wl.name(),
                    variant.short_name(),
                    f.violation.kind
                );
                let text = finding_to_sched(&litmus, f, &min);
                if let Err(e) = std::fs::write(&file, text) {
                    eprintln!("[verify] cannot write {file}: {e}");
                }
                format!("{} ({} choices) -> {file}", f.violation.kind, min.choices.len())
            };
            rows.push(vec![
                wl.name().to_string(),
                variant.short_name().to_string(),
                report.stats.schedules_run.to_string(),
                report.stats.backtracks_queued.to_string(),
                report.stats.sleep_pruned.to_string(),
                (report.stats.traces_deduped + report.stats.states_deduped).to_string(),
                report.stats.footprint_invisible_events.to_string(),
                verdict.clone(),
            ]);
            cells.push((wl, variant, report.stats.clone(), verdict));
        }
    }

    print_table(
        &format!(
            "schedule exploration (bound {}, {}x{} warps{})",
            args.bound,
            args.blocks,
            args.warps,
            args.mutant.map(|(n, _)| format!(", mutant {n}")).unwrap_or_default()
        ),
        &[
            "workload",
            "variant",
            "schedules",
            "backtracks",
            "pruned",
            "deduped",
            "fp-invis",
            "verdict",
        ],
        &rows,
    );

    if let Some(path) = &args.json {
        let json = stats_json(&args, &cells);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("[verify] cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }

    if violations > 0 {
        println!("\n{violations} violation(s) found");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn stats_json(args: &Args, cells: &[(Workload, Variant, ExploreStats, String)]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_u64("bound", u64::from(args.bound));
    w.field_u64("blocks", u64::from(args.blocks));
    w.field_u64("warps_per_block", u64::from(args.warps));
    w.field_u64("max_schedules", args.max_schedules);
    w.key("cells");
    w.begin_array();
    for (wl, variant, s, verdict) in cells {
        w.begin_object();
        w.field_str("workload", wl.name());
        w.field_str("variant", variant.short_name());
        w.field_str("verdict", verdict);
        w.field_u64("schedules_run", s.schedules_run);
        w.field_u64("traces_deduped", s.traces_deduped);
        w.field_u64("states_deduped", s.states_deduped);
        w.field_u64("backtracks_queued", s.backtracks_queued);
        w.field_u64("backtracks_deferred", s.backtracks_deferred);
        w.field_u64("sleep_pruned", s.sleep_pruned);
        w.field_u64("schedules_deduped", s.schedules_deduped);
        w.field_u64("footprint_invisible_events", s.footprint_invisible_events);
        w.field_u64("max_trace_len", s.max_trace_len as u64);
        w.field_bool("cap_hit", s.cap_hit);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

fn replay_file(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let (schedule, meta) = match parse(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    let litmus = match litmus_from_meta(&meta) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying {path}: {}/{} {}x{} warps, {} forced choices",
        litmus.workload,
        litmus.variant,
        litmus.blocks,
        litmus.warps_per_block,
        schedule.choices.len()
    );
    let out = replay(&litmus, &schedule);
    if out.violations.is_empty() {
        println!("no violation reproduced");
        return ExitCode::FAILURE;
    }
    for v in &out.violations {
        println!("reproduced: {} {}", v.kind, v.message);
    }
    ExitCode::SUCCESS
}

fn litmus_from_meta(meta: &[(String, String)]) -> Result<Litmus, String> {
    let get = |k: &str| {
        meta.iter()
            .find(|(mk, _)| mk == k)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| format!("missing `meta {k}` (was this .sched written by tm-verify?)"))
    };
    let workload =
        Workload::parse(get("workload")?).ok_or_else(|| "unknown workload".to_string())?;
    let variant = Variant::parse(get("variant")?).ok_or_else(|| "unknown variant".to_string())?;
    let blocks: u32 = get("blocks")?.parse().map_err(|_| "bad blocks".to_string())?;
    let warps: u32 = get("warps_per_block")?.parse().map_err(|_| "bad warps".to_string())?;
    let mut litmus = Litmus::new(workload, variant, blocks, warps);
    if let Ok(m) = get("mutation") {
        for tok in m.split_whitespace() {
            match tok.split_once('=') {
                Some(("skip_validation", v)) => litmus.mutation.skip_validation = v == "true",
                Some(("unsorted_locks", v)) => litmus.mutation.unsorted_locks = v == "true",
                Some(("late_writeback", v)) => litmus.mutation.late_writeback = v == "true",
                _ => return Err(format!("bad mutation token {tok:?}")),
            }
        }
    }
    Ok(litmus)
}
