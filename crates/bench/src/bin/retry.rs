//! Park-versus-respin golden sweep for the blocking-transaction
//! subsystem (`gpu_stm::park` + the queue-shaped workloads).
//!
//! Runs every sweep shape twice through the *same* kernels: once with
//! `park: true` (waiters call `retry()`, register their validated read
//! set in the waker registry and deschedule) and once with
//! `park: false` (the abort-and-respin baseline: the identical wait
//! loop, minus parking). The pair isolates what blocking buys:
//!
//! * the parked run's waiters burn ~0 cycles — wait time shows up in
//!   the `parked` phase of the breakdown, not as instructions or
//!   aborted-phase cycles;
//! * the respin baseline burns the same wait as live instructions and
//!   failed validation (`aborted` phase) instead.
//!
//! One shape additionally injects spurious wakes
//! (`spurious_wake_rate`) so the revalidate-and-re-park path is pinned
//! by the golden, not just the happy path.
//!
//! The artifact (`BENCH_retry.json` by default) holds only virtual
//! metrics — simulated cycles, instruction counts, park/wake counters,
//! phase breakdowns — so a fixed-seed sweep reproduces it
//! byte-for-byte on any machine; CI regenerates it with `--smoke` and
//! diffs against the committed copy.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin retry             # full sweep
//! cargo run -p bench --release --bin retry -- --smoke  # CI sweep (golden)
//! ```

use bench::{bench_output_path, print_table, thousands};
use gpu_sim::JsonWriter;
use gpu_stm::Phase;
use workloads::queue::{run_deque, run_queue, DequeParams, QueueParams};
use workloads::{mix64, RunConfig, RunOutcome, Variant};

struct Args {
    name: String,
    seed: u64,
    smoke: bool,
}

impl Args {
    fn parse() -> Args {
        let argv: Vec<String> = std::env::args().collect();
        let mut a = Args { name: "retry".to_string(), seed: 42, smoke: false };
        let mut i = 1;
        while i < argv.len() {
            let take =
                |i: usize| argv.get(i + 1).unwrap_or_else(|| panic!("{} wants a value", argv[i]));
            match argv[i].as_str() {
                "--name" => {
                    a.name = take(i).clone();
                    i += 1;
                }
                "--seed" => {
                    a.seed = take(i).parse().expect("--seed wants a number");
                    i += 1;
                }
                "--smoke" => a.smoke = true,
                _ => {}
            }
            i += 1;
        }
        a
    }
}

/// One sweep entry: a workload shape plus the spurious-wake injection
/// rate (per mille) for its run configuration.
enum Shape {
    Queue(QueueParams, u32),
    Deque(DequeParams, u32),
}

impl Shape {
    fn kind(&self) -> &'static str {
        match self {
            Shape::Queue(..) => "queue",
            Shape::Deque(..) => "deque",
        }
    }

    fn tag(&self) -> String {
        match self {
            Shape::Queue(q, s) => format!(
                "cap={} items={} prod={} cons={}{}",
                q.capacity,
                q.items,
                q.producers,
                q.consumers,
                if *s > 0 { " spurious" } else { "" }
            ),
            Shape::Deque(d, _) => {
                format!("cap={} items={} thieves={}", d.capacity, d.items, d.thieves)
            }
        }
    }
}

/// The sweep: fixed shapes covering empty-ring parks (consumer-heavy),
/// full-ring parks (producer-heavy), symmetric contention, spurious
/// wakes and work-stealing, plus one seed-derived fuzz shape. `--smoke`
/// scales item counts down; the committed golden is the smoke sweep.
fn shapes(seed: u64, smoke: bool) -> Vec<Shape> {
    let scale = if smoke { 1 } else { 4 };
    let r = |k: u64, span: u64| (mix64(seed ^ (k << 32)) % span) as u32;
    vec![
        Shape::Queue(
            QueueParams { capacity: 4, items: 64 * scale, producers: 2, consumers: 2, park: true },
            0,
        ),
        Shape::Queue(
            QueueParams { capacity: 2, items: 48 * scale, producers: 1, consumers: 3, park: true },
            0,
        ),
        Shape::Queue(
            QueueParams { capacity: 2, items: 48 * scale, producers: 3, consumers: 1, park: true },
            0,
        ),
        Shape::Queue(
            QueueParams { capacity: 4, items: 48 * scale, producers: 2, consumers: 2, park: true },
            200,
        ),
        Shape::Queue(
            QueueParams {
                capacity: 1 + r(1, 4),
                items: (16 + r(2, 33)) * scale,
                producers: 1 + r(3, 3),
                consumers: 1 + r(4, 3),
                park: true,
            },
            0,
        ),
        Shape::Deque(
            DequeParams { capacity: 8, items: 64 * scale, thieves: 2, stagger: 8000, park: true },
            0,
        ),
    ]
}

fn cfg(spurious_permille: u32) -> RunConfig {
    let mut cfg = RunConfig::with_memory(1 << 16).with_locks(1 << 8);
    cfg.stm.spurious_wake_rate = spurious_permille;
    cfg
}

/// The metrics recorded per run (one park run + one respin baseline per
/// shape); everything is virtual and deterministic.
struct Metrics {
    cycles: u64,
    instructions: u64,
    commits: u64,
    aborts: u64,
    parks: u64,
    wakes: u64,
    spurious_wakes: u64,
    parked_cycles: f64,
    aborted_cycles: f64,
}

impl Metrics {
    fn from(out: &RunOutcome) -> Metrics {
        Metrics {
            cycles: out.cycles(),
            instructions: out.kernels.iter().map(|k| k.stats.instructions).sum(),
            commits: out.tx.commits,
            aborts: out.tx.aborts,
            parks: out.tx.parks,
            wakes: out.tx.wakes,
            spurious_wakes: out.tx.spurious_wakes,
            parked_cycles: out.tx.breakdown.get(Phase::Parked),
            aborted_cycles: out.tx.breakdown.get(Phase::Aborted),
        }
    }

    fn write_json(&self, w: &mut JsonWriter, key: &str) {
        w.key(key);
        w.begin_object();
        w.field_u64("cycles", self.cycles);
        w.field_u64("instructions", self.instructions);
        w.field_u64("commits", self.commits);
        w.field_u64("aborts", self.aborts);
        w.field_u64("parks", self.parks);
        w.field_u64("wakes", self.wakes);
        w.field_u64("spurious_wakes", self.spurious_wakes);
        w.field_f64("parked_cycles", self.parked_cycles);
        w.field_f64("aborted_cycles", self.aborted_cycles);
        w.end_object();
    }
}

struct Row {
    kind: &'static str,
    tag: String,
    variant: Variant,
    spurious_permille: u32,
    park: Metrics,
    respin: Metrics,
}

impl Row {
    /// Instructions the baseline burns per instruction the parked run
    /// burns, in per-mille — the headline "waiters burn ~0 cycles"
    /// number (e.g. 2417 = the respin baseline executes 2.417x more).
    fn respin_over_park_permille(&self) -> u64 {
        self.respin.instructions * 1000 / self.park.instructions.max(1)
    }
}

fn run_shape(shape: &Shape, variant: Variant, args: &Args) -> Row {
    let (park, respin, spurious) = match shape {
        Shape::Queue(q, s) => {
            let park = run_queue(q, variant, &cfg(*s)).unwrap_or_else(|e| {
                panic!("queue park ({}, {}): {e}", shape.tag(), variant.short_name())
            });
            let base = run_queue(&QueueParams { park: false, ..*q }, variant, &cfg(*s))
                .unwrap_or_else(|e| {
                    panic!("queue respin ({}, {}): {e}", shape.tag(), variant.short_name())
                });
            (park, base, *s)
        }
        Shape::Deque(d, s) => {
            let park = run_deque(d, variant, &cfg(*s)).unwrap_or_else(|e| {
                panic!("deque park ({}, {}): {e}", shape.tag(), variant.short_name())
            });
            let base = run_deque(&DequeParams { park: false, ..*d }, variant, &cfg(*s))
                .unwrap_or_else(|e| {
                    panic!("deque respin ({}, {}): {e}", shape.tag(), variant.short_name())
                });
            (park, base, *s)
        }
    };
    let _ = args;
    let row = Row {
        kind: shape.kind(),
        tag: shape.tag(),
        variant,
        spurious_permille: spurious,
        park: Metrics::from(&park),
        respin: Metrics::from(&respin),
    };

    // The claims the golden exists to pin. Fail loudly here rather than
    // committing an artifact that no longer demonstrates them.
    assert!(row.park.parks >= 1, "{}: no transaction ever parked", row.tag);
    assert_eq!(
        row.park.parks, row.park.wakes,
        "{}: a parked transaction was lost (parks != wakes)",
        row.tag
    );
    assert_eq!(row.respin.parks, 0, "{}: the respin baseline must never park", row.tag);
    assert_eq!(
        row.park.commits, row.respin.commits,
        "{}: both modes must deliver the same items",
        row.tag
    );
    assert!(
        row.respin.instructions > row.park.instructions,
        "{}: respin must burn more instructions: respin={} park={}",
        row.tag,
        row.respin.instructions,
        row.park.instructions
    );
    assert!(
        row.park.parked_cycles > 0.0,
        "{}: parked run attributed no time to the parked phase",
        row.tag
    );
    assert!(
        row.respin.aborted_cycles > row.park.aborted_cycles,
        "{}: waiting must show up as aborted-phase cycles only under respin",
        row.tag
    );
    if spurious == 0 {
        assert_eq!(row.park.spurious_wakes, 0, "{}: uninjected spurious wake", row.tag);
    } else {
        assert!(row.park.spurious_wakes >= 1, "{}: injection produced no spurious wake", row.tag);
    }
    row
}

fn main() {
    let args = Args::parse();
    // Blocking wraps the per-thread-lock variants; one sorting and one
    // backoff flavor keeps the sweep representative without bloating it.
    let variants = [Variant::HvSorting, Variant::TbvBackoff];
    let mut rows = Vec::new();
    for shape in shapes(args.seed, args.smoke) {
        for v in variants {
            eprintln!("[retry] {} {} under {}", shape.kind(), shape.tag(), v.short_name());
            rows.push(run_shape(&shape, v, &args));
        }
    }

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "gpu-stm-retry/1");
    w.field_u64("seed", args.seed);
    w.field_bool("smoke", args.smoke);
    w.key("scenarios");
    w.begin_array();
    for row in &rows {
        w.begin_object();
        w.field_str("workload", row.kind);
        w.field_str("shape", &row.tag);
        w.field_str("variant", row.variant.short_name());
        w.field_u64("spurious_permille", u64::from(row.spurious_permille));
        row.park.write_json(&mut w, "park");
        row.respin.write_json(&mut w, "respin");
        w.field_u64("respin_over_park_permille", row.respin_over_park_permille());
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let json = w.finish();

    let path = bench_output_path(&args.name);
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{} {}", r.kind, r.tag),
                r.variant.short_name().to_string(),
                thousands(r.respin.instructions),
                thousands(r.park.instructions),
                format!("{:.2}x", r.respin_over_park_permille() as f64 / 1000.0),
                r.park.parks.to_string(),
                r.park.wakes.to_string(),
                r.park.spurious_wakes.to_string(),
            ]
        })
        .collect();
    print_table(
        "blocking retry: park vs abort-respin",
        &["shape", "variant", "respin instr", "park instr", "ratio", "parks", "wakes", "spurious"],
        &table,
    );
    println!("\nwrote {}", path.display());
}
