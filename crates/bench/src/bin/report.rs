//! Machine-readable run reports: executes a matrix of workloads ×
//! variants and writes one `BENCH_<name>.json` file with per-variant
//! cycles, abort rates, cycle breakdowns and simulator counters — the
//! telemetry consumed by CI artifacts and offline analysis.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin report -- \
//!     --name paper --threads 256 [--only ht] [--data-scale N]
//! ```
//!
//! Writes `BENCH_<name>.json` (default name `report`) at the workspace
//! root (override with `BENCH_OUT_DIR`). The default matrix covers RA
//! and HT (the paper's two microbenchmarks) under every variant;
//! `--full` adds GN, LB and KM.

use bench::runner::{run_workload, Workload};
use bench::Suite;
use gpu_sim::JsonWriter;
use workloads::Variant;

fn main() {
    let suite = Suite::from_args();
    let argv: Vec<String> = std::env::args().collect();
    let mut name = "report".to_string();
    let mut threads: Option<u64> = Some(256);
    let mut full = false;
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--name" if i + 1 < argv.len() => {
                name = argv[i + 1].clone();
                i += 1;
            }
            "--threads" if i + 1 < argv.len() => {
                threads = Some(argv[i + 1].parse().expect("--threads wants a number"));
                i += 1;
            }
            "--full" => full = true,
            _ => {}
        }
        i += 1;
    }

    let workloads: &[Workload] = if full {
        &[Workload::Ra, Workload::Ht, Workload::Gn, Workload::Lb, Workload::Km]
    } else {
        &[Workload::Ra, Workload::Ht]
    };

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "gpu-stm-bench-report/1");
    w.key("suite");
    w.begin_object();
    w.field_u64("data_scale", suite.data_scale);
    w.field_u64("thread_scale", suite.thread_scale);
    w.field_u64("n_locks", suite.n_locks() as u64);
    w.end_object();
    w.key("timing");
    gpu_sim::SimConfig::default().timing.write_json(&mut w);
    w.key("workloads");
    w.begin_array();
    for &wl in workloads {
        if !suite.selected(wl.short()) {
            continue;
        }
        w.begin_object();
        w.field_str("workload", wl.short());
        w.field_str("label", wl.label());
        w.key("variants");
        w.begin_array();
        for variant in Variant::ALL {
            eprint!("[report] {} under {} ...", wl.label(), variant.label());
            w.begin_object();
            w.field_str("variant", variant.short_name());
            w.field_str("label", variant.label());
            match run_workload(&suite, wl, variant, threads) {
                Ok(out) => {
                    eprintln!(" {} cycles", out.cycles);
                    w.field_bool("ok", true);
                    w.field_u64("cycles", out.cycles);
                    w.key("kernel_cycles");
                    w.begin_array();
                    for c in &out.kernel_cycles {
                        w.u64(*c);
                    }
                    w.end_array();
                    w.key("grid");
                    w.begin_object();
                    w.field_u64("blocks", out.grid.blocks as u64);
                    w.field_u64("threads_per_block", out.grid.threads_per_block as u64);
                    w.end_object();
                    w.key("tx");
                    out.tx.write_json(&mut w);
                    w.key("sim");
                    out.sim.write_json(&mut w);
                }
                Err(e) => {
                    eprintln!(" failed: {e}");
                    w.field_bool("ok", false);
                    w.field_str("error", &e.to_string());
                }
            }
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();

    let path = bench::bench_output_path(&name);
    let json = w.finish();
    std::fs::write(&path, &json).expect("write report");
    println!("report written to {} ({} bytes)", path.display(), json.len());
}
