//! Ablation study (simulated cycles) for GPU-STM's design choices on the
//! random-array workload:
//!
//! - **encounter-time lock-sorting vs backoff locking** (Section 3.1);
//! - **locking the read-set at commit** vs TL2-style write-only locking
//!   (Section 3.2.2 — write-only locking *starves* on cross read/write
//!   contention; on this low-pathology workload it merely changes cost);
//! - **coalesced read-/write-set layout** vs per-thread layout;
//! - **write-set Bloom filter** on/off;
//! - **order-preserving hash-table lock-log** vs flat O(n²) sorted list;
//! - **pre-commit value validation** (Algorithm 3 line 71) on/off.
//!
//! Usage: `cargo run -p bench --release --bin ablations`

use bench::{print_table, thousands, Suite};
use gpu_sim::LaunchConfig;
use gpu_stm::StmConfig;
use workloads::ra::{self, RaParams};
use workloads::{RunConfig, Variant};

fn main() {
    let suite = Suite::from_args();
    let params = RaParams {
        shared_words: suite.n_locks() * 8,
        actions_per_tx: 8,
        txs_per_thread: 2,
        write_pct: 50,
        seed: 31,
    };
    let grid = LaunchConfig::new(64, 64);
    println!(
        "GPU-STM reproduction — ablation study (RA, {} threads, {} shared words)",
        grid.total_threads(),
        thousands(params.shared_words as u64)
    );

    let base_cfg = |f: &dyn Fn(&mut StmConfig)| {
        let mut cfg =
            RunConfig::with_memory((params.shared_words + suite.n_locks() + (1 << 16)) as usize)
                .with_locks(suite.n_locks());
        f(&mut cfg.stm);
        cfg
    };

    let cases: Vec<(&str, RunConfig, Variant)> = vec![
        ("baseline (HV + sorting)", base_cfg(&|_| {}), Variant::HvSorting),
        ("locking: backoff", base_cfg(&|_| {}), Variant::HvBackoff),
        ("locking: write-set only", base_cfg(&|s| s.lock_read_set = false), Variant::HvSorting),
        ("sets: uncoalesced layout", base_cfg(&|s| s.coalesced_sets = false), Variant::HvSorting),
        (
            "write-set: no Bloom filter",
            base_cfg(&|s| s.write_set_bloom = false),
            Variant::HvSorting,
        ),
        ("lock-log: flat sorted list", base_cfg(&|s| s.locklog_buckets = 1), Variant::HvSorting),
        ("commit: pre-locking VBV", base_cfg(&|s| s.pre_commit_vbv = true), Variant::HvSorting),
        ("validation: pure TBV", base_cfg(&|_| {}), Variant::TbvSorting),
    ];

    let mut rows = Vec::new();
    let mut baseline_cycles = None;
    for (name, cfg, variant) in cases {
        eprint!("[ablations] {name}...");
        match ra::run(&params, variant, grid, &cfg) {
            Ok(out) => {
                let cycles = out.cycles();
                eprintln!(" {} cycles", thousands(cycles));
                let base = *baseline_cycles.get_or_insert(cycles);
                rows.push(vec![
                    name.to_string(),
                    thousands(cycles),
                    format!("{:+.1}%", (cycles as f64 / base as f64 - 1.0) * 100.0),
                    format!("{:.1}%", out.tx.abort_rate() * 100.0),
                    thousands(out.tx.lock_retries),
                ]);
            }
            Err(e) => eprintln!(" failed: {e}"),
        }
    }

    let headers = ["configuration", "cycles", "vs baseline", "abort rate", "lock retries"];
    print_table("Ablations — RA under GPU-STM design variations", &headers, &rows);
    println!(
        "\n(write-only locking works on this low-pathology workload but starves on\n\
         cross read/write warps — see gpu-stm's `write_only_locking_starves_on_cross_readwrite` test)"
    );
}
