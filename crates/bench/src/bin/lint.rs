//! tm-lint sweep over the checked-in TXL fixture corpus, with golden-file
//! comparison: the full diagnostic output (rule IDs, positions, messages)
//! for every fixture must match `golden/lint.golden` byte for byte, so any
//! drift in the lint rules, spans, or fixture corpus fails CI loudly.
//!
//! Usage:
//! ```text
//! cargo run -p bench --release --bin lint            # compare
//! cargo run -p bench --release --bin lint -- --bless # regenerate golden
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use txl::lint::{lint_source, LintConfig};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../txl/tests/fixtures")
}

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/lint.golden")
}

fn render_report() -> Result<String, String> {
    let dir = fixtures_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "txl"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .txl fixtures under {}", dir.display()));
    }

    let cfg = LintConfig { write_set_capacity: Some(32), ..LintConfig::default() };
    let mut out = String::new();
    let mut findings = 0usize;
    for path in &files {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let diags =
            lint_source(&src, &cfg).map_err(|e| format!("{name}: does not compile: {e}"))?;
        if diags.is_empty() {
            let _ = writeln!(out, "{name}: clean");
        } else {
            for d in &diags {
                findings += 1;
                let _ = writeln!(out, "{name}: {d}");
            }
        }
        // Convention check: seeded-bug fixtures must be flagged, clean
        // twins must not — enforced here so the corpus cannot rot.
        let buggy = name.ends_with("_bug.txl");
        if buggy && diags.is_empty() {
            return Err(format!("{name}: seeded-bug fixture produced no diagnostics"));
        }
        if !buggy && !diags.is_empty() {
            return Err(format!("{name}: clean twin produced diagnostics: {:?}", diags[0]));
        }
    }
    let _ = writeln!(out, "total: {} fixture(s), {findings} finding(s)", files.len());
    Ok(out)
}

fn main() -> ExitCode {
    let bless = std::env::args().any(|a| a == "--bless");
    let report = match render_report() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{report}");

    let golden = golden_path();
    if bless {
        if let Err(e) = std::fs::write(&golden, &report) {
            eprintln!("lint: cannot write {}: {e}", golden.display());
            return ExitCode::FAILURE;
        }
        println!("blessed {}", golden.display());
        return ExitCode::SUCCESS;
    }
    match std::fs::read_to_string(&golden) {
        Ok(expected) if expected == report => {
            println!("golden: match ({})", golden.display());
            ExitCode::SUCCESS
        }
        Ok(expected) => {
            eprintln!("lint: output differs from {}:", golden.display());
            for (i, (g, n)) in expected.lines().zip(report.lines()).enumerate() {
                if g != n {
                    eprintln!("  line {}: golden `{g}`", i + 1);
                    eprintln!("  line {}: actual `{n}`", i + 1);
                }
            }
            let (ne, nr) = (expected.lines().count(), report.lines().count());
            if ne != nr {
                eprintln!("  line counts differ: golden {ne}, actual {nr}");
            }
            eprintln!("re-bless with: cargo run -p bench --bin lint -- --bless");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lint: cannot read {}: {e}", golden.display());
            eprintln!("create it with: cargo run -p bench --bin lint -- --bless");
            ExitCode::FAILURE
        }
    }
}
