//! Extension experiment: the adaptive transaction scheduler the paper
//! leaves as future work (Section 4.2).
//!
//! Compares raw STM-HV-Sorting against the same runtime wrapped in the
//! [`Scheduled`](gpu_stm::Scheduled) admission controller, on a
//! high-conflict k-means-style accumulator workload and on the
//! low-conflict random-array workload. Expected shape: throttling wins
//! where aborts thrash (KM-style), and costs nothing measurable where they
//! don't (RA-style), because the limit ramps back up.
//!
//! Usage: `cargo run -p bench --release --bin ext_scheduler`

use bench::{print_table, thousands, Suite};
use gpu_sim::{LaunchConfig, Sim, SimConfig, WarpRng};
use gpu_stm::{
    lane_addrs, lane_vals, LockStm, Scheduled, SchedulerConfig, Stm, StmConfig, StmShared,
};
use std::rc::Rc;

/// Shared-counter accumulator: each thread adds into `n_counters` hot
/// words, `incr` transactions each.
fn run_counters<S: Stm + 'static>(
    make: impl FnOnce(&mut Sim, StmShared, StmConfig) -> S,
    n_counters: u32,
    grid: LaunchConfig,
    incr: u32,
) -> (u64, gpu_stm::TxStats, Rc<S>) {
    let mut simcfg = SimConfig::with_memory(1 << 20);
    simcfg.watchdog_cycles = 1 << 36;
    let mut sim = Sim::new(simcfg);
    let cfg = StmConfig::new(1 << 12);
    let shared = StmShared::init(&mut sim, &cfg).unwrap();
    let counters = sim.alloc(n_counters).unwrap();
    let stm = Rc::new(make(&mut sim, shared, cfg));
    let kstm = Rc::clone(&stm);
    let report = sim
        .launch(grid, move |ctx| {
            let stm = Rc::clone(&kstm);
            async move {
                let mut w = stm.new_warp();
                let mut rng = WarpRng::new(2, ctx.id().thread_id(0));
                let mut remaining = [incr; 32];
                loop {
                    let pending = ctx.id().launch_mask.filter(|l| remaining[l] > 0);
                    if pending.none() {
                        break;
                    }
                    let active = stm.begin(&mut w, &ctx, pending).await;
                    if active.none() {
                        continue;
                    }
                    let addrs = lane_addrs(active, |l| counters.offset(rng.below(l, n_counters)));
                    let vals = stm.read(&mut w, &ctx, active, &addrs).await;
                    let ok = active & stm.opaque(&w);
                    stm.write(&mut w, &ctx, ok, &addrs, &lane_vals(ok, |l| vals[l] + 1)).await;
                    let committed = stm.commit(&mut w, &ctx, active).await;
                    for l in committed.iter() {
                        remaining[l] -= 1;
                    }
                }
            }
        })
        .unwrap();
    let total: u64 = sim.read_slice(counters, n_counters).iter().map(|v| *v as u64).sum();
    assert_eq!(total, grid.total_threads() * incr as u64, "lost updates");
    let stats = stm.stats().borrow().clone();
    (report.cycles, stats, stm)
}

fn main() {
    let _ = Suite::from_args();
    println!(
        "GPU-STM reproduction — extension: adaptive transaction scheduler (paper future work)"
    );

    let mut rows = Vec::new();
    // (label, hot counters, grid, incr) — KM-like vs RA-like contention.
    let scenarios: [(&str, u32, LaunchConfig, u32); 3] = [
        ("high conflict (8 hot words)", 8, LaunchConfig::new(32, 64), 4),
        ("medium conflict (256 words)", 256, LaunchConfig::new(32, 64), 4),
        ("low conflict (64K words)", 1 << 16, LaunchConfig::new(32, 64), 4),
    ];

    for (label, counters, grid, incr) in scenarios {
        eprintln!("[ext_scheduler] {label}...");
        let (raw_cycles, raw_stats, _) =
            run_counters(|_, sh, cfg| LockStm::hv_sorting(sh, cfg), counters, grid, incr);
        let (sched_cycles, sched_stats, sched) = run_counters(
            |_, sh, cfg| {
                Scheduled::new(
                    LockStm::hv_sorting(sh, cfg),
                    SchedulerConfig { window: 256, ..SchedulerConfig::default() },
                )
            },
            counters,
            grid,
            incr,
        );
        rows.push(vec![
            label.to_string(),
            thousands(raw_cycles),
            format!("{:.1}%", raw_stats.abort_rate() * 100.0),
            thousands(sched_cycles),
            format!("{:.1}%", sched_stats.abort_rate() * 100.0),
            format!("{:.2}x", raw_cycles as f64 / sched_cycles as f64),
            sched.current_limit().to_string(),
        ]);
    }

    let headers = [
        "scenario",
        "raw cycles",
        "raw aborts",
        "sched cycles",
        "sched aborts",
        "speedup",
        "final limit",
    ];
    print_table("Adaptive scheduler vs raw STM-HV-Sorting", &headers, &rows);
    println!(
        "\n(the scheduler should win where aborts thrash and be ~neutral where they\n\
         don't; `final limit` shows the concurrency it converged to)"
    );
}
