//! Uniform workload execution used by the table/figure binaries.

use crate::{square_grid, Suite};
use gpu_sim::{LaunchConfig, RunReport, SimStats, TraceSink};
use gpu_stm::{TxStats, TxTraceSink};
use workloads::{eigenbench, genome, ht, kmeans, labyrinth, ra, RunConfig, RunError, Variant};

/// The five figure-2 workloads plus EigenBench.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Random array.
    Ra,
    /// Hashtable.
    Ht,
    /// EigenBench.
    Eb,
    /// Genome (two kernels).
    Gn,
    /// Labyrinth.
    Lb,
    /// K-means.
    Km,
}

impl Workload {
    /// The paper's Figure 2 workloads, in its order.
    pub const FIGURE2: [Workload; 5] =
        [Workload::Ra, Workload::Ht, Workload::Gn, Workload::Lb, Workload::Km];

    /// Short lower-case name for `--only` filtering.
    pub fn short(self) -> &'static str {
        match self {
            Workload::Ra => "ra",
            Workload::Ht => "ht",
            Workload::Eb => "eb",
            Workload::Gn => "gn",
            Workload::Lb => "lb",
            Workload::Km => "km",
        }
    }

    /// Paper display name.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Ra => "RA",
            Workload::Ht => "HT",
            Workload::Eb => "EB",
            Workload::Gn => "GN",
            Workload::Lb => "LB",
            Workload::Km => "KM",
        }
    }

    /// Every workload, in Figure 2 order plus EigenBench.
    pub const ALL: [Workload; 6] =
        [Workload::Ra, Workload::Ht, Workload::Gn, Workload::Lb, Workload::Km, Workload::Eb];

    /// Parses a workload from its short name or paper label
    /// (case-insensitive).
    pub fn parse(s: &str) -> Option<Workload> {
        let lower = s.to_ascii_lowercase();
        Workload::ALL.into_iter().find(|w| w.short() == lower)
    }
}

/// Metrics from one workload × variant execution.
#[derive(Clone, Debug)]
pub struct WlOutcome {
    /// Total simulated cycles (sum over kernels).
    pub cycles: u64,
    /// Per-kernel cycles (genome has two).
    pub kernel_cycles: Vec<u64>,
    /// Aggregate transactional statistics (genome: both kernels).
    pub tx: TxStats,
    /// Aggregate simulator counters, merged over all kernels.
    pub sim: SimStats,
    /// The launch geometry used.
    pub grid: LaunchConfig,
}

/// Optional observation sinks threaded into a run ([`run_workload_traced`]).
///
/// Both sinks are pure observers: attaching them changes no simulated
/// cycle count (verified by tests in `gpu-sim` and `tests/trace_invariants`).
#[derive(Clone, Default)]
pub struct TraceHooks {
    /// Simulator-side machine events (warp scheduling, memory, fences).
    pub sim: Option<TraceSink>,
    /// STM-side transaction-lifecycle events (begin/commit/abort/…).
    pub tx: Option<TxTraceSink>,
}

fn apply_hooks(mut cfg: RunConfig, hooks: &TraceHooks) -> RunConfig {
    cfg.sim.trace = hooks.sim.clone();
    cfg.trace = hooks.tx.clone();
    cfg
}

fn merge_sim(kernels: &[RunReport]) -> SimStats {
    let mut out = SimStats::new();
    for k in kernels {
        out.merge(&k.stats);
    }
    out
}

fn merge_tx(a: &TxStats, b: &TxStats) -> TxStats {
    let mut out = a.clone();
    out.commits += b.commits;
    out.read_only_commits += b.read_only_commits;
    out.aborts += b.aborts;
    out.aborts_read_validation += b.aborts_read_validation;
    out.aborts_commit_tbv += b.aborts_commit_tbv;
    out.aborts_commit_vbv += b.aborts_commit_vbv;
    out.aborts_pre_vbv += b.aborts_pre_vbv;
    out.aborts_lock_busy += b.aborts_lock_busy;
    out.lock_retries += b.lock_retries;
    out.false_conflicts_filtered += b.false_conflicts_filtered;
    out.reads_committed += b.reads_committed;
    out.writes_committed += b.writes_committed;
    out.max_consec_aborts = out.max_consec_aborts.max(b.max_consec_aborts);
    out.escalations += b.escalations;
    out.fallback_commits += b.fallback_commits;
    out.breakdown.merge(&b.breakdown);
    out
}

/// Runs `workload` under `variant` with roughly `threads` threads, using
/// the suite's scaled data sizes.
///
/// # Errors
///
/// Propagates workload errors ([`RunError::Unsupported`] marks
/// configurations a variant cannot run, e.g. EGPGV at scale).
pub fn run_workload(
    suite: &Suite,
    workload: Workload,
    variant: Variant,
    threads: Option<u64>,
) -> Result<WlOutcome, RunError> {
    run_workload_traced(suite, workload, variant, threads, &TraceHooks::default())
}

/// [`run_workload`] with optional trace sinks attached to the simulator
/// and the STM ([`TraceHooks`]). Used by the `trace` binary and the
/// telemetry tests; passing default hooks is identical to `run_workload`.
///
/// # Errors
///
/// Propagates workload errors exactly as [`run_workload`] does.
pub fn run_workload_traced(
    suite: &Suite,
    workload: Workload,
    variant: Variant,
    threads: Option<u64>,
    hooks: &TraceHooks,
) -> Result<WlOutcome, RunError> {
    match workload {
        Workload::Ra => {
            let (params, grid) = suite.ra();
            let grid = threads.map_or(grid, square_grid);
            let cfg = suite.run_config(params.shared_words as u64, grid.total_threads());
            let cfg = apply_hooks(cfg, hooks);
            let out = ra::run(&params, variant, grid, &cfg)?;
            Ok(WlOutcome {
                cycles: out.cycles(),
                kernel_cycles: out.kernel_cycles(),
                sim: merge_sim(&out.kernels),
                tx: out.tx,
                grid,
            })
        }
        Workload::Ht => {
            let (mut params, mut grid) = suite.ht();
            if let Some(t) = threads {
                grid = square_grid(t);
                params.table_words = ((grid.total_threads() * params.inserts_per_tx as u64 * 8)
                    as u32)
                    .next_power_of_two();
            }
            let cfg = suite.run_config(params.table_words as u64, grid.total_threads());
            let cfg = apply_hooks(cfg, hooks);
            let out = ht::run(&params, variant, grid, &cfg)?;
            Ok(WlOutcome {
                cycles: out.cycles(),
                kernel_cycles: out.kernel_cycles(),
                sim: merge_sim(&out.kernels),
                tx: out.tx,
                grid,
            })
        }
        Workload::Eb => {
            let (params, grid) = suite.eb();
            let grid = threads.map_or(grid, square_grid);
            let data = params.hot_words as u64
                + grid.total_threads() * (params.mild_words + params.cold_words) as u64;
            let cfg = suite.run_config(data, grid.total_threads());
            let cfg = apply_hooks(cfg, hooks);
            let out = eigenbench::run(&params, variant, grid, &cfg)?;
            Ok(WlOutcome {
                cycles: out.cycles(),
                kernel_cycles: out.kernel_cycles(),
                sim: merge_sim(&out.kernels),
                tx: out.tx,
                grid,
            })
        }
        Workload::Gn => {
            let (mut params, mut g1, mut g2) = suite.gn();
            if let Some(t) = threads {
                g1 = square_grid(t);
                params.n_segments = g1.total_threads() as u32;
                params.value_space = (params.n_segments / 2).max(32);
                params.table_words = (params.n_segments * 8).next_power_of_two();
                g2 = square_grid((params.n_segments / 2).max(32) as u64);
            }
            let cfg = suite.run_config(params.table_words as u64, g1.total_threads());
            let cfg = apply_hooks(cfg, hooks);
            let out = genome::run(&params, variant, g1, g2, &cfg)?;
            let mut sim = merge_sim(&out.k1.kernels);
            sim.merge(&merge_sim(&out.k2.kernels));
            Ok(WlOutcome {
                cycles: out.k1.cycles() + out.k2.cycles(),
                kernel_cycles: vec![out.k1.cycles(), out.k2.cycles()],
                sim,
                tx: merge_tx(&out.k1.tx, &out.k2.tx),
                grid: g1,
            })
        }
        Workload::Lb => {
            let (params, grid) = suite.lb();
            let grid = threads.map_or(grid, |t| LaunchConfig::new((t as u32 / 32).max(1), 32));
            let cells = (params.width * params.height) as u64;
            let cfg = suite.run_config(cells, grid.total_threads());
            let cfg = apply_hooks(cfg, hooks);
            let out = labyrinth::run(&params, variant, grid, &cfg)?;
            Ok(WlOutcome {
                cycles: out.base.cycles(),
                kernel_cycles: out.base.kernel_cycles(),
                sim: merge_sim(&out.base.kernels),
                tx: out.base.tx,
                grid,
            })
        }
        Workload::Km => {
            let (params, grid) = suite.km();
            let grid = threads.map_or(grid, |t| LaunchConfig::new((t as u32 / 2).max(1), 2));
            let cfg = suite.run_config(params.shared_words() as u64, grid.total_threads());
            let cfg = apply_hooks(cfg, hooks);
            let out = kmeans::run(&params, variant, grid, &cfg)?;
            Ok(WlOutcome {
                cycles: out.cycles(),
                kernel_cycles: out.kernel_cycles(),
                sim: merge_sim(&out.kernels),
                tx: out.tx,
                grid,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_suite() -> Suite {
        Suite { data_scale: 1024, thread_scale: 256, only: None }
    }

    #[test]
    fn every_workload_runs_hv_sorting() {
        let suite = quick_suite();
        for w in
            [Workload::Ra, Workload::Ht, Workload::Eb, Workload::Gn, Workload::Lb, Workload::Km]
        {
            let out = run_workload(&suite, w, Variant::HvSorting, Some(64)).unwrap();
            assert!(out.tx.commits > 0, "{w:?}");
            assert!(out.cycles > 0, "{w:?}");
        }
    }

    #[test]
    fn workload_parse_round_trips() {
        for w in Workload::ALL {
            assert_eq!(Workload::parse(w.short()), Some(w));
            assert_eq!(Workload::parse(w.label()), Some(w));
        }
        assert_eq!(Workload::parse("no-such-workload"), None);
    }

    #[test]
    fn outcome_carries_merged_sim_stats() {
        let suite = quick_suite();
        let out = run_workload(&suite, Workload::Gn, Variant::HvSorting, Some(64)).unwrap();
        // Two kernels merged: instruction and lane counters must be live.
        assert!(out.sim.instructions > 0);
        assert!(out.sim.lane_slots >= out.sim.active_lanes);
        assert!(out.sim.blocks_completed > 0);
    }

    #[test]
    fn genome_reports_two_kernels() {
        let suite = quick_suite();
        let out = run_workload(&suite, Workload::Gn, Variant::TbvSorting, Some(64)).unwrap();
        assert_eq!(out.kernel_cycles.len(), 2);
    }
}
