//! Golden-file test for the telemetry layer: the Chrome-trace export of a
//! small deterministic workload must be byte-identical run-over-run and
//! match the checked-in golden, and attaching the trace sinks must not
//! change a single simulated cycle.
//!
//! Regenerate the golden after an intentional format change with:
//!
//! ```text
//! TRACE_GOLDEN_UPDATE=1 cargo test -p bench --test trace_golden
//! ```

use bench::runner::{run_workload, run_workload_traced, TraceHooks, Workload};
use bench::Suite;
use gpu_sim::trace_sink;
use gpu_stm::{chrome_trace, tx_trace_sink};
use workloads::Variant;

fn tiny_suite() -> Suite {
    Suite { data_scale: 1024, thread_scale: 256, only: None }
}

/// Runs the golden workload (HT under STM-HV-Sorting, 64 threads — a
/// single kernel, so cycle timestamps are monotone) with both sinks
/// attached and returns the Chrome-trace JSON plus total cycles.
fn capture() -> (String, u64) {
    let sim_sink = trace_sink(1 << 20);
    let tx_sink = tx_trace_sink(1 << 20);
    let hooks = TraceHooks { sim: Some(sim_sink.clone()), tx: Some(tx_sink.clone()) };
    let out =
        run_workload_traced(&tiny_suite(), Workload::Ht, Variant::HvSorting, Some(64), &hooks)
            .expect("golden workload runs");
    assert_eq!(sim_sink.borrow().dropped(), 0, "sim ring buffer overflowed");
    assert_eq!(tx_sink.borrow().dropped(), 0, "tx ring buffer overflowed");
    let json = chrome_trace(&sim_sink.borrow().snapshot(), &tx_sink.borrow().snapshot());
    (json, out.cycles)
}

/// Points at the first byte where two strings diverge, with context —
/// `assert_eq!` on a 50 KB string would flood the test log.
fn assert_same(actual: &str, expected: &str) {
    if actual == expected {
        return;
    }
    let diff = actual
        .bytes()
        .zip(expected.bytes())
        .position(|(a, b)| a != b)
        .unwrap_or(actual.len().min(expected.len()));
    let lo = diff.saturating_sub(60);
    panic!(
        "trace differs from golden at byte {diff} (lengths {} vs {}):\n  actual:   …{}\n  \
         expected: …{}\nregenerate intentionally with TRACE_GOLDEN_UPDATE=1",
        actual.len(),
        expected.len(),
        &actual[lo..(diff + 60).min(actual.len())],
        &expected[lo..(diff + 60).min(expected.len())],
    );
}

#[test]
fn chrome_trace_matches_golden_byte_for_byte() {
    let (json, _) = capture();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/trace.golden");
    if std::env::var("TRACE_GOLDEN_UPDATE").is_ok() {
        std::fs::write(path, &json).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden/trace.golden missing — regenerate with TRACE_GOLDEN_UPDATE=1");
    assert_same(&json, &golden);
}

#[test]
fn chrome_trace_is_deterministic_run_over_run() {
    let (a, _) = capture();
    let (b, _) = capture();
    assert_same(&a, &b);
}

#[test]
fn tracing_does_not_change_workload_cycles() {
    let (_, traced_cycles) = capture();
    let plain = run_workload(&tiny_suite(), Workload::Ht, Variant::HvSorting, Some(64))
        .expect("plain workload runs");
    assert_eq!(plain.cycles, traced_cycles, "trace sinks must be pure observers");
}

#[test]
fn chrome_trace_is_valid_shape() {
    let (json, _) = capture();
    assert!(json.starts_with(r#"{"traceEvents":["#));
    assert!(json.ends_with(r#"],"displayTimeUnit":"ns"}"#));
    // Every event object opens with a name field; the stream is non-trivial.
    assert!(json.matches(r#"{"name":"#).count() > 100);
    // Both thread blocks of the 2×32 grid appear as Chrome processes.
    assert!(json.contains(r#""process_name","ph":"M","pid":0"#));
    assert!(json.contains(r#""process_name","ph":"M","pid":1"#));
}
