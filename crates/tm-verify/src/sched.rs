//! `.sched` repro files: serialization, parsing and ddmin-style
//! minimization of forced-choice schedules.
//!
//! Format (line-oriented text, `v1`):
//!
//! ```text
//! # tm-verify schedule v1
//! meta workload bank
//! meta variant hv-sort
//! choice 0 0 1
//! choice 412 0 0
//! ```
//!
//! `meta` lines carry free-form key/value context (workload, variant,
//! mutation, violation kind…); `choice <decision> <block> <warp>` lines
//! are the [`ForcedChoice`]s in ascending decision order. Everything
//! else starting with `#` is a comment.

use crate::controller::{ForcedChoice, Schedule};

/// Header line identifying the format version.
pub const HEADER: &str = "# tm-verify schedule v1";

/// Renders a schedule plus metadata to `.sched` text.
pub fn serialize(schedule: &Schedule, meta: &[(String, String)]) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for (k, v) in meta {
        out.push_str(&format!("meta {k} {v}\n"));
    }
    for c in &schedule.choices {
        out.push_str(&format!("choice {} {} {}\n", c.decision, c.warp.0, c.warp.1));
    }
    out
}

/// Parses `.sched` text back into a schedule and its metadata.
///
/// # Errors
///
/// A human-readable message for a missing/unknown header or a malformed
/// line.
pub fn parse(text: &str) -> Result<(Schedule, Vec<(String, String)>), String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h.trim() == HEADER => {}
        other => return Err(format!("bad header: expected {HEADER:?}, got {other:?}")),
    }
    let mut meta = Vec::new();
    let mut choices = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("meta") => {
                let k =
                    parts.next().ok_or_else(|| format!("line {}: meta needs a key", lineno + 2))?;
                let v: Vec<&str> = parts.collect();
                meta.push((k.to_string(), v.join(" ")));
            }
            Some("choice") => {
                let mut num = |what: &str| -> Result<u64, String> {
                    parts
                        .next()
                        .and_then(|s| s.parse::<u64>().ok())
                        .ok_or_else(|| format!("line {}: bad {what}", lineno + 2))
                };
                let decision = num("decision")?;
                let block = num("block")? as u32;
                let warp = num("warp")? as u32;
                choices.push(ForcedChoice { decision, warp: (block, warp) });
            }
            Some(other) => return Err(format!("line {}: unknown directive {other:?}", lineno + 2)),
            None => {}
        }
    }
    choices.sort_by_key(|c| c.decision);
    Ok((Schedule { choices }, meta))
}

/// Greedy delta-debugging minimizer: repeatedly removes chunks of forced
/// choices (halving the chunk size down to 1) while `reproduces` still
/// accepts the shrunken schedule.
///
/// The result is 1-minimal with respect to single-choice removal: every
/// remaining choice is necessary for reproduction.
pub fn minimize(schedule: &Schedule, mut reproduces: impl FnMut(&Schedule) -> bool) -> Schedule {
    let mut choices = schedule.choices.clone();
    let mut chunk = choices.len().max(1);
    while chunk >= 1 {
        let mut i = 0;
        while i < choices.len() {
            let end = (i + chunk).min(choices.len());
            let mut trial: Vec<ForcedChoice> = choices.clone();
            trial.drain(i..end);
            if reproduces(&Schedule { choices: trial.clone() }) {
                choices = trial;
                // Re-test from the same position: the next chunk slid in.
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    Schedule { choices }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(decisions: &[u64]) -> Schedule {
        Schedule {
            choices: decisions
                .iter()
                .map(|&d| ForcedChoice { decision: d, warp: (0, 1) })
                .collect(),
        }
    }

    #[test]
    fn round_trips() {
        let s = sched(&[0, 7, 42]);
        let meta = vec![
            ("workload".to_string(), "bank".to_string()),
            ("note".to_string(), "two words here".to_string()),
        ];
        let text = serialize(&s, &meta);
        let (back, meta2) = parse(&text).expect("parses");
        assert_eq!(back, s);
        assert_eq!(meta2, meta);
    }

    #[test]
    fn rejects_bad_header_and_bad_choice() {
        assert!(parse("not a schedule\n").is_err());
        assert!(parse(&format!("{HEADER}\nchoice 1 x 0\n")).is_err());
        assert!(parse(&format!("{HEADER}\nfrobnicate\n")).is_err());
    }

    #[test]
    fn minimize_keeps_only_needed_choices() {
        // "Reproduces" iff decisions 7 and 42 are both present.
        let full = sched(&[0, 3, 7, 19, 42, 55]);
        let min = minimize(&full, |s| {
            let ds: Vec<u64> = s.choices.iter().map(|c| c.decision).collect();
            ds.contains(&7) && ds.contains(&42)
        });
        let ds: Vec<u64> = min.choices.iter().map(|c| c.decision).collect();
        assert_eq!(ds, vec![7, 42]);
    }

    #[test]
    fn minimize_can_reach_empty() {
        let full = sched(&[1, 2, 3]);
        let min = minimize(&full, |_| true);
        assert!(min.choices.is_empty());
    }
}
