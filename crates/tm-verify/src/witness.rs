//! TXL witness cases: schedule exploration of TXL programs, mapping
//! model-checker findings back to lint rules, and replaying serialized
//! `.sched` witnesses against (possibly repaired) sources.
//!
//! The litmus workloads ([`crate::litmus`]) exercise the STM *runtime*;
//! a [`TxlCase`] instead explores a buggy TXL *program* — the same
//! programs `txl lint` flags statically and `txl fix` repairs. Each case
//! is tagged with the lint rule its seeded bug corresponds to, so a
//! minimized schedule serializes to a `.sched` witness carrying
//! `meta rule TLnnn` provenance. The repair loop closes the circle:
//! after `txl fix` rewrites the source, [`witness_reproduces`] replays
//! the witness against the repaired program and must come back `false`.

use crate::controller::Controller;
use crate::explore::{
    explore, ExploreConfig, ExploreReport, Finding, Fnv, ModelOutcome, ModelViolation,
    ViolationKind,
};
use crate::{sched, Schedule};
use gpu_sim::{race_sink, PolicyHandle, Sim, SimConfig, SimError};
use gpu_stm::Mutation;
use std::cell::RefCell;
use std::rc::Rc;

/// Simulated-cycle budget per explored run.
const WATCHDOG_CYCLES: u64 = 20_000_000;
/// No-progress limit: spinning-on-a-dead-lock classifies as a
/// deadlock/livelock after this many quiescent cycles.
const STALL_CYCLES: u64 = 150_000;
/// Device words allocated for witness runs.
const MEM_WORDS: usize = 1 << 16;
/// Version locks configured for witness runs.
const N_LOCKS: u32 = 64;
/// RNG seed for `rand()` in explored TXL programs (fixed: runs must be
/// deterministic given the schedule).
const SEED: u64 = 7;

/// A TXL program under schedule exploration, tagged with the lint rule
/// its seeded bug corresponds to.
#[derive(Clone, Debug)]
pub struct TxlCase {
    /// Stable case name (serialized as `meta case`).
    pub name: String,
    /// TXL source; the first kernel is explored.
    pub source: String,
    /// Lint rule id the seeded bug maps to (serialized as `meta rule`),
    /// e.g. `TL002`.
    pub rule: String,
    /// TXL threads. The case runs one single-thread block per TXL thread
    /// so thread ids map 1:1 onto `(block, 0)` warp keys.
    pub threads: u32,
    /// Seeded STM [`Mutation`] the case runs under (all-off for cases
    /// whose bug lives in the program itself, like [`unsorted_locks`]).
    /// Cases whose lint rule guards against a *weakened* STM — TL005's
    /// footprint-order inversion only deadlocks when lock sorting is
    /// disabled — seed the corresponding mutant here.
    pub mutation: Mutation,
}

impl TxlCase {
    /// Returns `self` with a different source — how the repair loop
    /// builds the post-fix replay case.
    pub fn with_source(&self, source: impl Into<String>) -> TxlCase {
        TxlCase { source: source.into(), ..self.clone() }
    }
}

/// The crossing-lock-acquisition case: a two-thread rendition of the
/// `unsorted_locks_bug.txl` fixture. Thread 0 acquires `lock[0]` then
/// `lock[1]`; thread 1 acquires them in the opposite order — the classic
/// deadlock shape rule `TL002` flags statically (paper §2: lock sorting
/// exists precisely to forbid this).
pub fn unsorted_locks() -> TxlCase {
    TxlCase {
        name: "unsorted-locks".to_string(),
        source: "kernel locks(lock: array[2], data: array[2]) {
    let a = tid() % 2;
    let b = 1 - a;
    while lock[a] { }
    lock[a] = 1;
    while lock[b] { }
    lock[b] = 1;
    data[a] = data[a] + 1;
    lock[b] = 0;
    lock[a] = 0;
}"
        .to_string(),
        rule: "TL002".to_string(),
        threads: 2,
        mutation: Mutation::default(),
    }
}

/// The conflicting-footprint-order case: two transfer transactions whose
/// footprints overlap on both arrays but first-touch them in inverted
/// order — the shape rule `TL005` flags statically. A sorting STM
/// tolerates it; under the `unsorted_locks` mutant (blocking
/// encounter-order commit locking, the discipline the paper's lock
/// sorting exists to forbid) the crossed orders deadlock. `txl fix`
/// reorders the second block's body, after which even the mutant STM
/// acquires both stripes in one order and the witness dies.
pub fn footprint_order() -> TxlCase {
    TxlCase {
        name: "footprint-order".to_string(),
        source: "kernel transfer(from: array, into: array) {
    atomic {
        from[0] = from[0] - 1;
        into[0] = into[0] + 1;
    }
    atomic {
        into[0] = into[0] - 1;
        from[0] = from[0] + 1;
    }
}"
        .to_string(),
        rule: "TL005".to_string(),
        threads: 2,
        mutation: Mutation { unsorted_locks: true, ..Mutation::default() },
    }
}

/// Executes one complete run of the case under an optional schedule
/// policy and returns the checked outcome (progress failures, opacity of
/// the recorded history, happens-before races, terminal-state hash).
pub fn run_case(case: &TxlCase, policy: Option<PolicyHandle>) -> ModelOutcome {
    let program = match txl::compile(&case.source) {
        Ok(p) => p,
        Err(e) => {
            return outcome_for_error(ViolationKind::Sim, format!("case does not compile: {e}"))
        }
    };
    let Some(kernel) = program.kernels.first() else {
        return outcome_for_error(ViolationKind::Sim, "case has no kernels".to_string());
    };

    let mut sim_cfg = SimConfig::with_memory(MEM_WORDS);
    sim_cfg.watchdog_cycles = WATCHDOG_CYCLES;
    sim_cfg.stall_cycles = STALL_CYCLES;
    let sink = race_sink();
    sim_cfg.race = Some(sink.clone());
    sim_cfg.schedule = policy;
    let mut sim = Sim::new(sim_cfg);

    let stm_cfg = gpu_stm::StmConfig::new(N_LOCKS);
    let shared = match gpu_stm::StmShared::init(&mut sim, &stm_cfg) {
        Ok(s) => s,
        Err(e) => return outcome_for_error(ViolationKind::Sim, e.to_string()),
    };
    let rec = gpu_stm::recorder();
    let stm = Rc::new(
        gpu_stm::LockStm::hv_sorting(shared, stm_cfg)
            .with_mutation(case.mutation)
            .with_recorder(rec.clone()),
    );

    let fp = txl::kernel_footprint(
        kernel,
        txl::Interval::new(0, case.threads.saturating_sub(1)),
        case.threads,
    );
    let mut bindings = Vec::new();
    let mut data = Vec::new();
    for (pi, p) in kernel.params.iter().enumerate() {
        let len = p
            .declared_len
            .or_else(|| match fp.params[pi].touched() {
                Some(hull) if !hull.is_top() && hull.hi < 4096 => Some(hull.hi + 1),
                _ => None,
            })
            .unwrap_or(case.threads.max(1))
            .max(1);
        let addr = match sim.alloc(len) {
            Ok(a) => a,
            Err(e) => return outcome_for_error(ViolationKind::Sim, e.to_string()),
        };
        bindings.push(txl::ArrayBinding::new(p.name.clone(), addr, len));
        data.push((addr, len));
    }

    let grid = gpu_sim::LaunchConfig::new(case.threads.max(1), 1);
    let mut violations = Vec::new();
    match txl::launch(&mut sim, &stm, kernel, grid, SEED, &bindings) {
        Ok(_) => {
            for v in tm_check::check_history(&rec.borrow(), |_| 0).violations {
                violations
                    .push(ModelViolation { kind: ViolationKind::Opacity, message: v.to_string() });
            }
        }
        Err(txl::TxlError::Sim(e)) => {
            let kind = match &e {
                SimError::Deadlock { .. } => ViolationKind::Deadlock,
                SimError::Livelock { .. } => ViolationKind::Livelock,
                _ => ViolationKind::Sim,
            };
            violations.push(ModelViolation { kind, message: e.to_string() });
        }
        Err(other) => {
            violations
                .push(ModelViolation { kind: ViolationKind::Sim, message: other.to_string() });
        }
    }
    for v in tm_check::races_to_violations(&sink.borrow().races) {
        violations.push(ModelViolation { kind: ViolationKind::Race, message: v.to_string() });
    }

    let mut h = Fnv::new();
    for &(addr, len) in &data {
        for i in 0..len {
            h.u32(sim.read(addr.offset(i)));
        }
    }
    for v in &violations {
        h.str(&v.message);
    }
    ModelOutcome { violations, state_hash: h.finish(), unsupported: None }
}

fn outcome_for_error(kind: ViolationKind, message: String) -> ModelOutcome {
    let mut h = Fnv::new();
    h.str(&message);
    ModelOutcome {
        violations: vec![ModelViolation { kind, message }],
        state_hash: h.finish(),
        unsupported: None,
    }
}

/// Explores the case's schedule space under iterative preemption
/// bounding. No footprint filter: witness cases are conflicting by
/// construction.
pub fn explore_case(case: &TxlCase, max_preemptions: u32, max_schedules: u64) -> ExploreReport {
    let cfg =
        ExploreConfig { max_preemptions, max_schedules, stop_on_finding: false, footprints: None };
    let c = case.clone();
    explore(&cfg, move |policy| run_case(&c, Some(policy)))
}

/// Replays one schedule against the case — the consumer of witness
/// `.sched` files.
pub fn replay_case(case: &TxlCase, schedule: &Schedule) -> ModelOutcome {
    let ctl = Rc::new(RefCell::new(Controller::new(schedule.clone(), None)));
    run_case(case, Some(PolicyHandle::shared(ctl)))
}

/// Shrinks a finding's schedule to a 1-minimal reproduction (per
/// [`ViolationKind::matches`], so deadlock/livelock reclassification
/// under shrinking does not block progress).
pub fn minimize_case_finding(case: &TxlCase, finding: &Finding) -> Schedule {
    let kind = finding.violation.kind;
    sched::minimize(&finding.schedule, |s| {
        replay_case(case, s).violations.iter().any(|v| kind.matches(v.kind))
    })
}

/// Renders a finding as `.sched` witness text carrying the case name and
/// the lint rule the bug maps to.
pub fn finding_to_witness(case: &TxlCase, finding: &Finding, schedule: &Schedule) -> String {
    let meta = vec![
        ("case".to_string(), case.name.clone()),
        ("rule".to_string(), case.rule.clone()),
        ("threads".to_string(), case.threads.to_string()),
        ("violation".to_string(), finding.violation.kind.to_string()),
        ("preemptions".to_string(), finding.preemptions.to_string()),
    ];
    sched::serialize(schedule, &meta)
}

/// Extracts the `rule` metadata a witness carries, if any.
pub fn witness_rule(meta: &[(String, String)]) -> Option<&str> {
    meta.iter().find(|(k, _)| k == "rule").map(|(_, v)| v.as_str())
}

/// Provenance of a saved `.sched` witness: what it proves and where it
/// lives. Observability layers attach this to incident bundles so a
/// model-checker violation in a post-mortem links straight back to its
/// minimized reproduction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WitnessProvenance {
    /// Case name (`meta case` in the witness file).
    pub case: String,
    /// Lint rule the seeded bug maps to (`meta rule`).
    pub rule: String,
    /// Path of the written witness file.
    pub path: std::path::PathBuf,
}

/// Minimizes `finding`, renders it as witness text and writes it to
/// `<dir>/<case-name>.sched`, returning the provenance record to thread
/// into incident bundles.
///
/// # Errors
///
/// Propagates directory-creation and file-write failures.
pub fn save_witness(
    dir: &std::path::Path,
    case: &TxlCase,
    finding: &Finding,
) -> std::io::Result<WitnessProvenance> {
    let min = minimize_case_finding(case, finding);
    let text = finding_to_witness(case, finding, &min);
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.sched", case.name));
    std::fs::write(&path, text)?;
    Ok(WitnessProvenance { case: case.name.clone(), rule: case.rule.clone(), path })
}

/// Parses a [`ViolationKind`] from its `Display` name.
fn parse_kind(s: &str) -> Option<ViolationKind> {
    let all = [
        ViolationKind::Opacity,
        ViolationKind::Race,
        ViolationKind::FinalState,
        ViolationKind::Invariant,
        ViolationKind::Deadlock,
        ViolationKind::Livelock,
        ViolationKind::Sim,
    ];
    all.into_iter().find(|k| k.to_string() == s)
}

/// Replays `.sched` witness text against the case and reports whether
/// the recorded violation still reproduces.
///
/// A witness that names a `violation` kind reproduces when any replayed
/// violation [`matches`](ViolationKind::matches) it; a witness without
/// one reproduces when the replay has any violation at all. Replaying
/// against a *repaired* source (see [`TxlCase::with_source`]) must
/// return `false` — that is the model-checking half of the fix gate.
///
/// # Errors
///
/// A human-readable message when the witness text does not parse.
pub fn witness_reproduces(case: &TxlCase, witness: &str) -> Result<bool, String> {
    let (schedule, meta) = sched::parse(witness)?;
    let outcome = replay_case(case, &schedule);
    let want = meta.iter().find(|(k, _)| k == "violation").and_then(|(_, v)| parse_kind(v));
    Ok(match want {
        Some(kind) => outcome.violations.iter().any(|v| kind.matches(v.kind)),
        None => !outcome.violations.is_empty(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsorted_locks_compiles_and_lints_as_tl002() {
        let case = unsorted_locks();
        let diags =
            txl::lint_source(&case.source, &txl::LintConfig::default()).expect("case compiles");
        assert!(
            diags.iter().any(|d| d.rule.id() == case.rule),
            "expected a {} finding, got {diags:?}",
            case.rule
        );
    }

    #[test]
    fn footprint_order_compiles_and_lints_as_tl005() {
        let case = footprint_order();
        let diags =
            txl::lint_source(&case.source, &txl::LintConfig::default()).expect("case compiles");
        assert!(
            diags.iter().any(|d| d.rule.id() == case.rule),
            "expected a {} finding, got {diags:?}",
            case.rule
        );
    }

    #[test]
    fn explorer_finds_the_footprint_order_deadlock() {
        let case = footprint_order();
        let report = explore_case(&case, 2, 500);
        let finding = report
            .findings
            .iter()
            .find(|f| f.violation.kind.is_progress_failure())
            .unwrap_or_else(|| panic!("no deadlock among {} findings", report.findings.len()));
        let outcome = replay_case(&case, &finding.schedule);
        assert!(
            outcome.violations.iter().any(|v| finding.violation.kind.matches(v.kind)),
            "witness schedule does not replay: {outcome:?}"
        );
    }

    #[test]
    fn default_schedule_runs_the_case() {
        // The default controller-free run must produce *an* outcome
        // deterministically (violations allowed: the case is buggy).
        let case = unsorted_locks();
        let a = run_case(&case, None);
        let b = run_case(&case, None);
        assert_eq!(a.state_hash, b.state_hash);
    }

    #[test]
    fn explorer_finds_the_crossing_deadlock() {
        let case = unsorted_locks();
        let report = explore_case(&case, 2, 500);
        let finding = report
            .findings
            .iter()
            .find(|f| f.violation.kind.is_progress_failure())
            .unwrap_or_else(|| panic!("no deadlock among {} findings", report.findings.len()));
        // The witness replays.
        let outcome = replay_case(&case, &finding.schedule);
        assert!(
            outcome.violations.iter().any(|v| finding.violation.kind.matches(v.kind)),
            "witness schedule does not replay: {outcome:?}"
        );
    }

    #[test]
    fn witness_round_trips_with_rule_provenance() {
        let case = unsorted_locks();
        let report = explore_case(&case, 2, 500);
        let finding = report
            .findings
            .iter()
            .find(|f| f.violation.kind.is_progress_failure())
            .expect("deadlock finding");
        let min = minimize_case_finding(&case, finding);
        assert!(min.choices.len() <= finding.schedule.choices.len());
        let text = finding_to_witness(&case, finding, &min);
        let (_, meta) = sched::parse(&text).expect("witness parses");
        assert_eq!(witness_rule(&meta), Some("TL002"));
        assert_eq!(witness_reproduces(&case, &text), Ok(true));
    }
}
