//! # tm-verify — stateless model checking of the GPU-STM runtime
//!
//! The rest of the workspace tests the STM variants under the simulator's
//! *default* schedule (plus fault-injection shuffles). This crate asks
//! the stronger question: does a property hold under **every** relevantly
//! different warp interleaving?
//!
//! It drives the simulator through the
//! [`SchedulePolicy`](gpu_sim::SchedulePolicy) hook with a
//! forced-choice [`Schedule`], explores the schedule space with **dynamic
//! partial-order reduction** (happens-before race analysis over the
//! visible memory trace, done-set pruning, trace/state dedup) under
//! **iterative preemption bounding**, and checks every explored terminal
//! state with the `tm-check` opacity replayer, the simulator's
//! happens-before race detector, and per-workload invariants. The TXL
//! footprint analysis ([`txl::thread_footprint`]) supplies provably
//! private address regions whose accesses the explorer never branches
//! on. Violating schedules serialize to replayable `.sched` files and
//! shrink with a ddmin-style minimizer.
//!
//! ## Quick start
//!
//! ```
//! use tm_verify::{verify, VerifyConfig, Workload};
//! use workloads::Variant;
//!
//! let cfg = VerifyConfig {
//!     litmus: tm_verify::Litmus::new(Workload::Stripes, Variant::HvSorting, 2, 1),
//!     max_preemptions: 1,
//!     max_schedules: 200,
//!     stop_on_finding: false,
//! };
//! let report = verify(&cfg);
//! assert!(report.is_clean());
//! assert!(report.stats.schedules_run >= 1);
//! ```

#![warn(missing_docs)]

pub mod controller;
pub mod explore;
pub mod litmus;
pub mod sched;
pub mod witness;

pub use controller::{
    Controller, DecisionRecord, Event, FootprintFilter, ForcedChoice, Schedule, WarpKey,
    SPIN_YIELD_STEPS,
};
pub use explore::{
    explore, ExploreConfig, ExploreReport, ExploreStats, Finding, Fnv, ModelOutcome,
    ModelViolation, ViolationKind,
};
pub use litmus::{footprint_filter, model, run_once, Litmus, Workload, STRIPES_SRC};
pub use sched::{minimize, parse, serialize, HEADER};
pub use witness::{
    explore_case, finding_to_witness, footprint_order, minimize_case_finding, replay_case,
    run_case, save_witness, unsorted_locks, witness_reproduces, witness_rule, TxlCase,
    WitnessProvenance,
};

use gpu_sim::PolicyHandle;
use std::cell::RefCell;
use std::rc::Rc;

/// A complete verification request: a litmus instance plus exploration
/// limits.
#[derive(Copy, Clone, Debug)]
pub struct VerifyConfig {
    /// The workload/variant/geometry/mutation under test.
    pub litmus: Litmus,
    /// Preemption bound (CHESS-style iterative bounding).
    pub max_preemptions: u32,
    /// Hard cap on schedules run (0 = unlimited).
    pub max_schedules: u64,
    /// Return on the first finding instead of exploring everything.
    pub stop_on_finding: bool,
}

/// Explores the litmus instance's schedule space and reports findings
/// and exploration statistics. The footprint filter is attached
/// automatically whenever the workload's TXL analysis proves per-actor
/// disjointness.
pub fn verify(cfg: &VerifyConfig) -> ExploreReport {
    let ecfg = ExploreConfig {
        max_preemptions: cfg.max_preemptions,
        max_schedules: cfg.max_schedules,
        stop_on_finding: cfg.stop_on_finding,
        footprints: footprint_filter(&cfg.litmus),
    };
    explore(&ecfg, model(cfg.litmus))
}

/// Replays one schedule against the litmus instance and returns the
/// checked outcome — the consumer of `.sched` repro files.
pub fn replay(litmus: &Litmus, schedule: &Schedule) -> ModelOutcome {
    let ctl = Rc::new(RefCell::new(Controller::new(schedule.clone(), footprint_filter(litmus))));
    run_once(litmus, Some(PolicyHandle::shared(ctl)))
}

/// Shrinks a finding's schedule to a 1-minimal reproduction: a forced
/// choice survives only if removing it loses the violation kind (per
/// [`ViolationKind::matches`], so deadlock/livelock reclassification
/// under shrinking does not block progress).
pub fn minimize_finding(litmus: &Litmus, finding: &Finding) -> Schedule {
    let kind = finding.violation.kind;
    sched::minimize(&finding.schedule, |s| {
        replay(litmus, s).violations.iter().any(|v| kind.matches(v.kind))
    })
}

/// Renders a finding as `.sched` text with full provenance metadata.
pub fn finding_to_sched(litmus: &Litmus, finding: &Finding, schedule: &Schedule) -> String {
    let m = litmus.mutation;
    let meta = vec![
        ("workload".to_string(), litmus.workload.name().to_string()),
        ("variant".to_string(), litmus.variant.short_name().to_string()),
        ("blocks".to_string(), litmus.blocks.to_string()),
        ("warps_per_block".to_string(), litmus.warps_per_block.to_string()),
        (
            "mutation".to_string(),
            format!(
                "skip_validation={} unsorted_locks={} late_writeback={}",
                m.skip_validation, m.unsorted_locks, m.late_writeback
            ),
        ),
        ("blocking".to_string(), format!("lost_wakeup={}", litmus.blocking.lost_wakeup)),
        ("violation".to_string(), finding.violation.kind.to_string()),
        ("preemptions".to_string(), finding.preemptions.to_string()),
    ];
    sched::serialize(schedule, &meta)
}
