//! Litmus workloads for schedule exploration: small, fully-deterministic
//! kernels with machine-checkable invariants.
//!
//! Each run builds a **fresh** simulator with identical allocation order,
//! so device addresses (and hence traces) are comparable across runs —
//! the property the explorer's replay and dedup machinery relies on.
//! Three workloads:
//!
//! - **bank** — each actor (one lane per warp) transfers one unit around
//!   a ring of accounts; the wrapping sum must stay 0. Two actors with
//!   two accounts produce *opposite* lock-encounter orders, the classic
//!   deadlock shape the paper's lock-sorting prevents.
//! - **hashtable** — open-addressing inserts of distinct keys; every key
//!   must appear exactly once.
//! - **stripes** — a TXL kernel whose threads increment disjoint stripes;
//!   the TXL footprint analysis proves the disjointness, letting the
//!   explorer demote all data traffic to invisible.
//! - **queue** — the blocking-transactions wakeup litmus: one producer
//!   feeds a counter that consumers drain with `retry()`/`or_else`
//!   blocking ([`gpu_stm::Blocking`]). Explored schedules cover
//!   park/commit races, wake-before-park, and multi-waiter single-wake;
//!   a lost wakeup surfaces as an all-parked deadlock.

use crate::controller::FootprintFilter;
use crate::explore::{Fnv, ModelOutcome, ModelViolation, ViolationKind};
use gpu_sim::{
    race_sink, Addr, LaneMask, LaunchConfig, PolicyHandle, Sim, SimConfig, SimError, WarpCtx,
};
use gpu_stm::{
    recorder, Blocking, BlockingMutation, LockStm, Mutation, Recorder, Stm, StmConfig, StmShared,
};
use std::rc::Rc;
use workloads::{dispatch, RunError, StmRunner, Variant};

/// Simulated-cycle budget per explored run (generous: litmus runs finish
/// in well under a million cycles unless genuinely stuck).
const WATCHDOG_CYCLES: u64 = 20_000_000;
/// No-progress limit: a genuine deadlock/livelock is classified after
/// this many quiescent cycles instead of burning the whole budget.
const STALL_CYCLES: u64 = 150_000;
/// Per-actor start stagger, applied only under the *default* simulator
/// scheduler: it serialises the actors' transactions so seeded mutants
/// stay latent in single-schedule baseline runs. Controlled runs drop it
/// — the controller's cycle-bounded quantum would otherwise spend a whole
/// quantum on the stagger idle and collapse every forced interleaving
/// back to the sequential trace.
const STAGGER_CYCLES: u64 = 40_000;
/// Device words allocated for litmus runs.
const MEM_WORDS: usize = 1 << 16;
/// Version locks configured for litmus runs (word-granularity stripes for
/// small litmus data, so distinct accounts map to distinct locks).
const N_LOCKS: u32 = 64;

/// The TXL stripes kernel: thread `t` increments words `4t..4t+3` once
/// each inside per-element transactions, leaving word `4t+3` untouched.
///
/// The accesses are unrolled rather than looped: the interval analysis
/// widens loop counters to `⊤`, and a `⊤` footprint would disable the
/// explorer's disjointness pruning (the thing this litmus exists to
/// exercise).
pub const STRIPES_SRC: &str = "kernel stripes(data: array) {
    let base = tid() * 4;
    atomic { data[base] = data[base] + 1; }
    atomic { data[base + 1] = data[base + 1] + 1; }
    atomic { data[base + 2] = data[base + 2] + 1; }
}";

/// Which litmus workload to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Ring transfers over shared accounts (conflicting; wrapping sum 0).
    Bank,
    /// Open-addressing inserts of distinct keys (conflicting probes).
    Hashtable,
    /// TXL kernel over provably-disjoint stripes (footprint-prunable).
    Stripes,
    /// Blocking wakeup litmus: producer/consumers over a counter with
    /// `retry()`/`or_else` parking (lock-based variants only).
    Queue,
}

impl Workload {
    /// All litmus workloads.
    pub const ALL: [Workload; 4] =
        [Workload::Bank, Workload::Hashtable, Workload::Stripes, Workload::Queue];

    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Bank => "bank",
            Workload::Hashtable => "hashtable",
            Workload::Stripes => "stripes",
            Workload::Queue => "queue",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Workload> {
        Workload::ALL.into_iter().find(|w| w.name() == s)
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One fully-specified litmus instance.
#[derive(Copy, Clone, Debug)]
pub struct Litmus {
    /// The workload.
    pub workload: Workload,
    /// The STM variant under test.
    pub variant: Variant,
    /// Thread blocks.
    pub blocks: u32,
    /// Warps per block (one actor per warp).
    pub warps_per_block: u32,
    /// Seeded correctness mutation (all-off = the real runtime).
    pub mutation: Mutation,
    /// Seeded blocking-subsystem mutation (queue litmus only).
    pub blocking: BlockingMutation,
}

impl Litmus {
    /// A litmus with the given geometry and no mutation.
    pub fn new(workload: Workload, variant: Variant, blocks: u32, warps_per_block: u32) -> Self {
        Litmus {
            workload,
            variant,
            blocks,
            warps_per_block,
            mutation: Mutation::default(),
            blocking: BlockingMutation::default(),
        }
    }

    /// Total actors (one per warp; stripes: one per TXL thread).
    pub fn actors(&self) -> u32 {
        self.blocks * self.warps_per_block
    }

    /// The launch geometry. Bank/hashtable run one actor-lane per warp;
    /// stripes runs one single-thread block per actor so TXL thread ids
    /// map 1:1 onto `(block, 0)` warp keys.
    pub fn grid(&self) -> LaunchConfig {
        match self.workload {
            Workload::Stripes => LaunchConfig::new(self.actors(), 1),
            _ => LaunchConfig::new(self.blocks, self.warps_per_block * 32),
        }
    }

    /// Words of litmus data the workload needs.
    pub fn data_words(&self) -> u32 {
        match self.workload {
            Workload::Bank => self.actors().max(2),
            Workload::Hashtable => (2 * self.actors()).next_power_of_two().max(8),
            Workload::Stripes => 4 * self.actors(),
            // available-count, done flag, one claim counter per consumer.
            Workload::Queue => 2 + self.actors().saturating_sub(1).max(1),
        }
    }

    /// The device address litmus data will get — the first allocation of
    /// every run, so it is a pure function of the configuration.
    pub fn data_addr(&self) -> Addr {
        let mut sim = Sim::new(SimConfig::with_memory(MEM_WORDS));
        sim.alloc(self.data_words()).expect("litmus data fits")
    }
}

/// Executes one complete run under an optional schedule policy and
/// returns the checked outcome. `None` runs the default simulator
/// scheduler (the "single-schedule" baseline the mutants must survive).
pub fn run_once(l: &Litmus, policy: Option<PolicyHandle>) -> ModelOutcome {
    let stagger = if policy.is_some() { 0 } else { STAGGER_CYCLES };
    let mut sim_cfg = SimConfig::with_memory(MEM_WORDS);
    sim_cfg.watchdog_cycles = WATCHDOG_CYCLES;
    sim_cfg.stall_cycles = STALL_CYCLES;
    let sink = race_sink();
    sim_cfg.race = Some(sink.clone());
    sim_cfg.schedule = policy;
    let mut sim = Sim::new(sim_cfg);

    let data_words = l.data_words();
    let data = match sim.alloc(data_words) {
        Ok(a) => a,
        Err(e) => return sim_failure(&e),
    };
    let rec = recorder();
    let stm_cfg = StmConfig::new(N_LOCKS);

    let result: Result<(), RunError> = if l.workload == Workload::Queue {
        // The queue litmus always builds its own Blocking<LockStm>: the
        // wrapper needs to own the runtime (and &mut Sim for its registry
        // anchors), which the generic dispatch cannot provide.
        run_queue_blocking(l, &mut sim, stm_cfg, rec.clone(), data, stagger)
    } else if l.mutation.any() {
        run_mutated(l, &mut sim, stm_cfg, rec.clone(), data, stagger)
    } else {
        dispatch(
            &mut sim,
            l.variant,
            stm_cfg,
            u64::from(data_words),
            l.grid(),
            Some(rec.clone()),
            None,
            LitmusRunner { litmus: *l, data, stagger },
        )
    };

    let mut violations = Vec::new();
    match result {
        Err(RunError::Unsupported(msg)) => {
            return ModelOutcome {
                violations: Vec::new(),
                state_hash: 0,
                unsupported: Some(msg.to_string()),
            }
        }
        Err(RunError::Sim(e)) => {
            let kind = match &e {
                SimError::Deadlock { .. } => ViolationKind::Deadlock,
                SimError::Livelock { .. } => ViolationKind::Livelock,
                _ => ViolationKind::Sim,
            };
            // Fold the per-warp progress lines into the message: for a
            // blocked run the warp state (including any parked watch
            // addresses) is the actionable part of the diagnosis.
            let mut message = e.to_string();
            for w in e.unfinished_warps() {
                message.push_str("; ");
                message.push_str(&w.to_string());
            }
            violations.push(ModelViolation { kind, message });
            // The run is partial: history/final-state checks would report
            // spurious mismatches, so only the progress failure counts.
        }
        Err(RunError::Verification(msg)) => {
            violations.push(ModelViolation { kind: ViolationKind::Invariant, message: msg });
        }
        Err(other) => {
            violations
                .push(ModelViolation { kind: ViolationKind::Sim, message: other.to_string() });
        }
        Ok(()) => {
            let hist = rec.borrow();
            for v in tm_check::check_history(&hist, |_| 0).violations {
                violations
                    .push(ModelViolation { kind: ViolationKind::Opacity, message: v.to_string() });
            }
            let finals = tm_check::check_final_state(
                &hist,
                |_| 0,
                |a| sim.read(a),
                (0..data_words).map(|i| data.offset(i)),
            );
            for v in finals {
                violations.push(ModelViolation {
                    kind: ViolationKind::FinalState,
                    message: v.to_string(),
                });
            }
            if let Some(msg) = check_invariant(l, &sim, data) {
                violations.push(ModelViolation { kind: ViolationKind::Invariant, message: msg });
            }
        }
    }
    for v in tm_check::races_to_violations(&sink.borrow().races) {
        violations.push(ModelViolation { kind: ViolationKind::Race, message: v.to_string() });
    }

    let mut h = Fnv::new();
    for i in 0..data_words {
        h.u32(sim.read(data.offset(i)));
    }
    for v in &violations {
        h.str(&v.message);
    }
    ModelOutcome { violations, state_hash: h.finish(), unsupported: None }
}

/// The model closure the explorer drives: one fresh run per schedule.
pub fn model(l: Litmus) -> impl FnMut(PolicyHandle) -> ModelOutcome {
    move |policy| run_once(&l, Some(policy))
}

/// Builds the footprint filter for workloads whose TXL analysis proves
/// per-actor disjointness (currently: stripes). `None` for conflicting
/// workloads or whenever the hulls overlap.
pub fn footprint_filter(l: &Litmus) -> Option<FootprintFilter> {
    if l.workload != Workload::Stripes {
        return None;
    }
    let program = txl::compile(STRIPES_SRC).ok()?;
    let kernel = program.kernel("stripes")?;
    let data = l.data_addr();
    let n = l.actors();
    let mut regions = Vec::new();
    for t in 0..n {
        let fp = txl::thread_footprint(kernel, t, n);
        let iv = fp.first().and_then(|p| p.touched())?;
        if iv.is_top() || iv.hi >= l.data_words() {
            return None;
        }
        regions.push(((t, 0), vec![(data.offset(iv.lo), data.offset(iv.hi))]));
    }
    FootprintFilter::new(regions)
}

fn sim_failure(e: &SimError) -> ModelOutcome {
    let mut h = Fnv::new();
    h.str(&e.to_string());
    ModelOutcome {
        violations: vec![ModelViolation { kind: ViolationKind::Sim, message: e.to_string() }],
        state_hash: h.finish(),
        unsupported: None,
    }
}

/// Runs the litmus under a directly-constructed [`LockStm`] carrying the
/// seeded mutation (only the four lock-based variants have mutants).
fn run_mutated(
    l: &Litmus,
    sim: &mut Sim,
    stm_cfg: StmConfig,
    rec: Recorder,
    data: Addr,
    stagger: u64,
) -> Result<(), RunError> {
    let shared = StmShared::init(sim, &stm_cfg).map_err(RunError::Sim)?;
    let stm = match l.variant {
        Variant::TbvSorting => LockStm::tbv_sorting(shared, stm_cfg),
        Variant::HvSorting => LockStm::hv_sorting(shared, stm_cfg),
        Variant::HvBackoff => LockStm::hv_backoff(shared, stm_cfg),
        Variant::TbvBackoff => LockStm::tbv_backoff(shared, stm_cfg),
        other => panic!("mutations only apply to lock-based variants, not {other}"),
    }
    .with_mutation(l.mutation)
    .with_recorder(rec);
    run_workload(l, sim, Rc::new(stm), data, stagger)
}

/// The blocking wakeup litmus. Actor 0 produces `actors - 1` items by
/// incrementing `data[0]` one commit at a time, then raises the done
/// flag `data[1]`. Every other actor is a consumer: it claims items
/// (decrementing `data[0]`, bumping its own claim counter) and, on
/// finding the counter empty, calls `retry()` — falling through to an
/// `or_else` alternative that exits once the done flag is up. A consumer
/// parked on `{avail, done}` is woken either by a push or by the final
/// done-flag commit; losing that last wakeup strands it forever, which
/// the executor reports as an all-parked deadlock.
///
/// Under the default (staggered) scheduler the producer finishes before
/// any consumer starts, so consumers drain without parking and seeded
/// blocking mutants stay latent — parking only happens in controlled
/// (explored) interleavings, exactly where the checker is looking.
fn run_queue_blocking(
    l: &Litmus,
    sim: &mut Sim,
    stm_cfg: StmConfig,
    rec: Recorder,
    data: Addr,
    stagger: u64,
) -> Result<(), RunError> {
    let shared = StmShared::init(sim, &stm_cfg).map_err(RunError::Sim)?;
    let inner = match l.variant {
        Variant::TbvSorting => LockStm::tbv_sorting(shared, stm_cfg),
        Variant::HvSorting => LockStm::hv_sorting(shared, stm_cfg),
        Variant::HvBackoff => LockStm::hv_backoff(shared, stm_cfg),
        Variant::TbvBackoff => LockStm::tbv_backoff(shared, stm_cfg),
        _ => {
            return Err(RunError::Unsupported(
                "the blocking queue litmus requires a per-thread lock-based STM variant",
            ))
        }
    }
    .with_mutation(l.mutation)
    .with_recorder(rec);
    let stm = Blocking::new(sim, inner, &stm_cfg).map_err(RunError::Sim)?.with_mutation(l.blocking);

    let items = l.actors().saturating_sub(1).max(1);
    let avail = data;
    let done = data.offset(1);
    let claims = data.offset(2);
    let wpb = l.warps_per_block;
    let kstm = stm.clone();
    sim.launch(l.grid(), move |ctx: WarpCtx| {
        let stm = kstm.clone();
        async move {
            let id = ctx.id();
            let actor = id.block * wpb + id.warp_in_block;
            ctx.idle(u64::from(actor) * stagger + 1).await;
            let m = LaneMask::lane(0);
            let mut w = stm.new_warp();
            ctx.set_speculative(true);
            if actor == 0 {
                // Producer: one item per commit, then the done flag.
                for _ in 0..items {
                    loop {
                        let active = stm.begin(&mut w, &ctx, m).await;
                        let a = stm.read_one(&mut w, &ctx, 0, avail).await;
                        if stm.opaque(&w).any() {
                            stm.write_one(&mut w, &ctx, 0, avail, a.wrapping_add(1)).await;
                        }
                        if stm.commit(&mut w, &ctx, active).await.any() {
                            break;
                        }
                    }
                }
                loop {
                    let active = stm.begin(&mut w, &ctx, m).await;
                    stm.write_one(&mut w, &ctx, 0, done, 1).await;
                    if stm.commit(&mut w, &ctx, active).await.any() {
                        break;
                    }
                }
            } else {
                let my_claims = claims.offset(actor - 1);
                loop {
                    let active = stm.begin(&mut w, &ctx, m).await;
                    let a = stm.read_one(&mut w, &ctx, 0, avail).await;
                    let mut finished = false;
                    if stm.opaque(&w).any() {
                        if a > 0 {
                            stm.write_one(&mut w, &ctx, 0, avail, a - 1).await;
                            let k = stm.read_one(&mut w, &ctx, 0, my_claims).await;
                            if stm.opaque(&w).any() {
                                stm.write_one(&mut w, &ctx, 0, my_claims, k.wrapping_add(1)).await;
                            }
                        } else {
                            // Empty: block until a push — unless the done
                            // flag says no push will ever come.
                            stm.retry(&mut w, m);
                            let d = stm.read_one(&mut w, &ctx, 0, done).await;
                            if stm.opaque(&w).any() && d == 1 {
                                stm.or_else(&mut w, m);
                                finished = true;
                            }
                        }
                    }
                    let o = stm.commit_or_park(&mut w, &ctx, active).await;
                    if o.committed.any() && finished {
                        break;
                    }
                }
            }
            ctx.set_speculative(false);
        }
    })
    .map(|_| ())
    .map_err(RunError::Sim)
}

struct LitmusRunner {
    litmus: Litmus,
    data: Addr,
    stagger: u64,
}

impl StmRunner for LitmusRunner {
    type Out = ();

    fn run<S: Stm + 'static>(self, sim: &mut Sim, stm: Rc<S>) -> Result<(), RunError> {
        run_workload(&self.litmus, sim, stm, self.data, self.stagger)
    }
}

fn run_workload<S: Stm + 'static>(
    l: &Litmus,
    sim: &mut Sim,
    stm: Rc<S>,
    data: Addr,
    stagger: u64,
) -> Result<(), RunError> {
    match l.workload {
        Workload::Bank => run_bank(l, sim, stm, data, stagger),
        Workload::Hashtable => run_hashtable(l, sim, stm, data, stagger),
        Workload::Stripes => run_stripes(l, sim, stm, data),
        // Handled by `run_queue_blocking` before dispatch ever runs.
        Workload::Queue => unreachable!("queue litmus bypasses the generic dispatch"),
    }
}

/// Ring transfer: actor `a` moves one unit from account `a` to account
/// `a+1 (mod n)`. With two actors the *encounter* orders are opposite —
/// the shape that deadlocks unsorted encounter-order locking.
fn run_bank<S: Stm + 'static>(
    l: &Litmus,
    sim: &mut Sim,
    stm: Rc<S>,
    data: Addr,
    stagger: u64,
) -> Result<(), RunError> {
    let n = l.data_words();
    let wpb = l.warps_per_block;
    sim.launch(l.grid(), move |ctx: WarpCtx| {
        let stm = Rc::clone(&stm);
        async move {
            let id = ctx.id();
            let actor = id.block * wpb + id.warp_in_block;
            ctx.idle(u64::from(actor) * stagger + 1).await;
            let from = data.offset(actor % n);
            let to = data.offset((actor + 1) % n);
            let lane0 = LaneMask::lane(0);
            let mut w = stm.new_warp();
            ctx.set_speculative(true);
            loop {
                let active = stm.begin(&mut w, &ctx, lane0).await;
                if active.none() {
                    continue;
                }
                let a = stm.read_one(&mut w, &ctx, 0, from).await;
                if stm.opaque(&w).any() {
                    let b = stm.read_one(&mut w, &ctx, 0, to).await;
                    if stm.opaque(&w).any() {
                        stm.write_one(&mut w, &ctx, 0, from, a.wrapping_sub(1)).await;
                        if stm.opaque(&w).any() {
                            stm.write_one(&mut w, &ctx, 0, to, b.wrapping_add(1)).await;
                        }
                    }
                }
                if stm.commit(&mut w, &ctx, active).await.any() {
                    break;
                }
            }
            ctx.set_speculative(false);
        }
    })
    .map(|_| ())
    .map_err(RunError::Sim)
}

/// Open-addressing insert of key `actor + 1` by linear probing inside one
/// transaction.
fn run_hashtable<S: Stm + 'static>(
    l: &Litmus,
    sim: &mut Sim,
    stm: Rc<S>,
    data: Addr,
    stagger: u64,
) -> Result<(), RunError> {
    let cap = l.data_words();
    let wpb = l.warps_per_block;
    sim.launch(l.grid(), move |ctx: WarpCtx| {
        let stm = Rc::clone(&stm);
        async move {
            let id = ctx.id();
            let actor = id.block * wpb + id.warp_in_block;
            ctx.idle(u64::from(actor) * stagger + 1).await;
            let key = actor + 1;
            let home = key.wrapping_mul(7) % cap;
            let lane0 = LaneMask::lane(0);
            let mut w = stm.new_warp();
            ctx.set_speculative(true);
            'tx: loop {
                let active = stm.begin(&mut w, &ctx, lane0).await;
                if active.none() {
                    continue;
                }
                let mut placed = false;
                for i in 0..cap {
                    let slot = data.offset((home + i) % cap);
                    let v = stm.read_one(&mut w, &ctx, 0, slot).await;
                    if stm.opaque(&w).none() {
                        break;
                    }
                    if v == 0 {
                        stm.write_one(&mut w, &ctx, 0, slot, key).await;
                        placed = true;
                        break;
                    }
                    if v == key {
                        placed = true; // duplicate insert: already present
                        break;
                    }
                }
                if stm.commit(&mut w, &ctx, active).await.any() {
                    // `placed == false` means the table was full; the
                    // invariant checker reports the missing key.
                    let _ = placed;
                    break 'tx;
                }
            }
            ctx.set_speculative(false);
        }
    })
    .map(|_| ())
    .map_err(RunError::Sim)
}

/// The TXL stripes kernel, interpreted over the STM under test.
fn run_stripes<S: Stm + 'static>(
    l: &Litmus,
    sim: &mut Sim,
    stm: Rc<S>,
    data: Addr,
) -> Result<(), RunError> {
    let program = txl::compile(STRIPES_SRC)
        .map_err(|e| RunError::Verification(format!("stripes kernel does not compile: {e}")))?;
    let kernel = program
        .kernel("stripes")
        .ok_or_else(|| RunError::Verification("stripes kernel missing".into()))?;
    let bindings = [txl::ArrayBinding::new("data", data, l.data_words())];
    match txl::launch(sim, &stm, kernel, l.grid(), 7, &bindings) {
        Ok(_) => Ok(()),
        Err(txl::TxlError::Sim(e)) => Err(RunError::Sim(e)),
        Err(other) => Err(RunError::Verification(other.to_string())),
    }
}

/// Workload invariant over final device memory; `Some(message)` on
/// violation.
fn check_invariant(l: &Litmus, sim: &Sim, data: Addr) -> Option<String> {
    let words: Vec<u32> = sim.read_slice(data, l.data_words());
    match l.workload {
        Workload::Bank => {
            let sum = words.iter().fold(0u32, |s, &v| s.wrapping_add(v));
            (sum != 0).then(|| format!("bank ring sum is {sum}, expected 0 (accounts {words:?})"))
        }
        Workload::Hashtable => {
            let mut present: Vec<u32> = words.iter().copied().filter(|&v| v != 0).collect();
            present.sort_unstable();
            let expect: Vec<u32> = (1..=l.actors()).collect();
            (present != expect).then(|| format!("hashtable holds {present:?}, expected {expect:?}"))
        }
        Workload::Stripes => {
            for t in 0..l.actors() {
                for k in 0..4 {
                    let got = words[(4 * t + k) as usize];
                    let want = if k < 3 { 1 } else { 0 };
                    if got != want {
                        return Some(format!(
                            "stripe word {} of thread {t} is {got}, expected {want}",
                            4 * t + k
                        ));
                    }
                }
            }
            None
        }
        Workload::Queue => {
            let items = l.actors().saturating_sub(1).max(1);
            let claimed: u32 = words[2..].iter().fold(0, |s, &v| s.wrapping_add(v));
            if words[0] != 0 {
                Some(format!("{} items left unclaimed (avail={})", words[0], words[0]))
            } else if words[1] != 1 {
                Some(format!("done flag is {}, expected 1", words[1]))
            } else if claimed != items {
                Some(format!(
                    "consumers claimed {claimed} items, expected {items} (claims {:?})",
                    &words[2..]
                ))
            } else {
                None
            }
        }
    }
}
