//! Dynamic partial-order reduction over the schedule space.
//!
//! The explorer repeatedly runs a *model* — a closure that executes one
//! complete simulation under a given [`PolicyHandle`] and reports the
//! checked outcome — under different [`Schedule`]s. After each run it
//! performs a happens-before analysis of the visible memory trace
//! (program order + conflict edges, per the independence relation of
//! [`StepEffect::conflicts`](gpu_sim::StepEffect::conflicts)) and, for
//! every *racing pair* of events whose order is not already forced,
//! queues a backtrack schedule that flips the pair. Done-sets (the
//! persistent-set bookkeeping) and schedule/trace hashing keep the search
//! from revisiting equivalent interleavings; iterative preemption
//! bounding (CHESS) explores all 0-preemption schedules, then 1, then 2…
//! so the cheapest witnesses surface first.

use crate::controller::{Controller, Event, FootprintFilter, ForcedChoice, Schedule, WarpKey};
use gpu_sim::PolicyHandle;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

/// Classification of a property violation found in one explored run.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// The recorded transaction history is not opaque-serializable.
    Opacity,
    /// The happens-before race detector flagged unordered conflicting
    /// non-speculative accesses.
    Race,
    /// Final device memory disagrees with the committed history.
    FinalState,
    /// The workload's own invariant did not hold.
    Invariant,
    /// The run deadlocked (no progress, memory quiescent).
    Deadlock,
    /// The run livelocked (no progress, memory still churning).
    Livelock,
    /// Any other simulator-level failure.
    Sim,
}

impl ViolationKind {
    /// Whether this is a progress failure (deadlock or livelock). The two
    /// are a heuristic split of the same watchdog signal — "was device
    /// memory still churning when the stall fired" — and can flip into
    /// each other under small schedule perturbations.
    pub fn is_progress_failure(self) -> bool {
        matches!(self, ViolationKind::Deadlock | ViolationKind::Livelock)
    }

    /// Whether a violation of kind `other` counts as reproducing this
    /// one: exact match, except the two progress-failure kinds are
    /// interchangeable.
    pub fn matches(self, other: ViolationKind) -> bool {
        self == other || (self.is_progress_failure() && other.is_progress_failure())
    }
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ViolationKind::Opacity => "opacity",
            ViolationKind::Race => "race",
            ViolationKind::FinalState => "final-state",
            ViolationKind::Invariant => "invariant",
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::Livelock => "livelock",
            ViolationKind::Sim => "sim",
        };
        f.write_str(s)
    }
}

/// One violation reported by the model for one run.
#[derive(Clone, Debug)]
pub struct ModelViolation {
    /// What property failed.
    pub kind: ViolationKind,
    /// Human-readable detail.
    pub message: String,
}

/// The checked outcome of one complete run of the model.
#[derive(Clone, Debug, Default)]
pub struct ModelOutcome {
    /// Violations found by the end-of-run checkers.
    pub violations: Vec<ModelViolation>,
    /// Hash of the observable terminal state (for state dedup).
    pub state_hash: u64,
    /// Set when the variant cannot run this configuration at all.
    pub unsupported: Option<String>,
}

/// A violation together with the schedule that produced it.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The violation.
    pub violation: ModelViolation,
    /// The forced-choice schedule reproducing it.
    pub schedule: Schedule,
    /// Preemptions that schedule charges.
    pub preemptions: u32,
}

/// Exploration limits and options.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Preemption bound: schedules charging more are not run.
    pub max_preemptions: u32,
    /// Hard cap on runs (0 = unlimited); exceeding it sets
    /// [`ExploreStats::cap_hit`].
    pub max_schedules: u64,
    /// Stop as soon as the first finding is recorded (witness hunting).
    pub stop_on_finding: bool,
    /// Optional per-warp private-region filter from the TXL footprint
    /// analysis.
    pub footprints: Option<FootprintFilter>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_preemptions: 2,
            max_schedules: 10_000,
            stop_on_finding: false,
            footprints: None,
        }
    }
}

/// Counters describing one exploration.
#[derive(Clone, Debug, Default)]
pub struct ExploreStats {
    /// Schedules actually executed.
    pub schedules_run: u64,
    /// Runs whose visible trace had been seen before (checks skipped).
    pub traces_deduped: u64,
    /// Distinct traces that still reached an already-seen terminal state.
    pub states_deduped: u64,
    /// Backtrack schedules queued for execution.
    pub backtracks_queued: u64,
    /// Backtracks dropped for exceeding the preemption bound.
    pub backtracks_deferred: u64,
    /// Backtrack candidates pruned by done-sets (sleep-set analogue).
    pub sleep_pruned: u64,
    /// Backtracks dropped because the schedule itself was already seen.
    pub schedules_deduped: u64,
    /// Memory events demoted to invisible by the footprint filter.
    pub footprint_invisible_events: u64,
    /// Runs where a forced choice failed to replay (should stay 0).
    pub diverged: u64,
    /// Longest visible trace observed.
    pub max_trace_len: usize,
    /// Whether `max_schedules` stopped the search early.
    pub cap_hit: bool,
}

/// The result of an exploration.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Search counters.
    pub stats: ExploreStats,
    /// Violations found, each with its reproducing schedule. Deduped by
    /// terminal state: one representative schedule per distinct bad state.
    pub findings: Vec<Finding>,
    /// Set when the very first run reported the configuration unsupported.
    pub unsupported: Option<String>,
}

impl ExploreReport {
    /// Whether the explored space is violation-free.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// FNV-1a, used for all exploration-internal hashing (deterministic
/// across runs and platforms, unlike `DefaultHasher` in spirit — and with
/// no dependency on hasher seeding).
#[derive(Clone, Copy, Debug)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv::default()
    }

    /// Absorbs one byte.
    pub fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    /// Absorbs a `u32`.
    pub fn u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// Absorbs a `u64`.
    pub fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// Absorbs a string (length-prefixed).
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.byte(b);
        }
    }

    /// The digest.
    pub fn finish(self) -> u64 {
        self.0
    }
}

fn effect_tag(e: &gpu_sim::StepEffect) -> u32 {
    use gpu_sim::StepEffect::*;
    match e {
        Local => 0,
        Load(_) => 1,
        Store(_) => 2,
        Atomic(_) => 3,
        Fence => 4,
        Retire => 5,
    }
}

fn trace_hash(trace: &[Event]) -> u64 {
    let mut h = Fnv::new();
    for e in trace {
        h.u32(e.warp.0);
        h.u32(e.warp.1);
        h.u32(effect_tag(&e.effect));
        for a in e.effect.addrs() {
            h.u32(a.0);
        }
    }
    h.finish()
}

fn schedule_hash(choices: &[ForcedChoice]) -> u64 {
    let mut h = Fnv::new();
    for c in choices {
        h.u64(c.decision);
        h.u32(c.warp.0);
        h.u32(c.warp.1);
    }
    h.finish()
}

/// A vector clock counting, per warp index, how many of that warp's
/// visible events happen-before the point it describes.
type Clock = Vec<u64>;

fn clock_le(a: &Clock, b: &Clock) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

fn clock_join(into: &mut Clock, from: &Clock) {
    for (x, y) in into.iter_mut().zip(from) {
        *x = (*x).max(*y);
    }
}

/// Explores the model's schedule space and reports findings + statistics.
///
/// `run` executes one full simulation under the given policy handle and
/// returns its checked outcome; it must be deterministic given the
/// schedule (fresh simulator per call, same allocation order).
pub fn explore(
    cfg: &ExploreConfig,
    mut run: impl FnMut(PolicyHandle) -> ModelOutcome,
) -> ExploreReport {
    let mut stats = ExploreStats::default();
    let mut findings: Vec<Finding> = Vec::new();
    let mut unsupported = None;

    let nbounds = cfg.max_preemptions as usize + 1;
    // One queue per preemption count; the bucket index is the charge.
    let mut pending: Vec<VecDeque<Schedule>> = (0..nbounds).map(|_| VecDeque::new()).collect();
    pending[0].push_back(Schedule::default());

    let mut seen_schedules: HashSet<u64> = HashSet::new();
    seen_schedules.insert(schedule_hash(&[]));
    let mut seen_traces: HashSet<u64> = HashSet::new();
    let mut seen_states: HashSet<u64> = HashSet::new();
    // Persistent-set bookkeeping: for each (forced prefix, decision)
    // pair, the warps already scheduled there.
    let mut done_sets: HashMap<u64, HashSet<WarpKey>> = HashMap::new();

    'bounds: for bound in 0..nbounds {
        while let Some(p) = pending[bound].pop_front() {
            if cfg.max_schedules > 0 && stats.schedules_run >= cfg.max_schedules {
                stats.cap_hit = true;
                break 'bounds;
            }
            let ctl = Rc::new(RefCell::new(Controller::new(p, cfg.footprints.clone())));
            let outcome = run(PolicyHandle::shared(ctl.clone()));
            stats.schedules_run += 1;

            let ctl = ctl.borrow();
            stats.footprint_invisible_events += ctl.invisible_pruned;
            stats.max_trace_len = stats.max_trace_len.max(ctl.trace.len());
            if ctl.diverged {
                stats.diverged += 1;
            }
            if let Some(u) = outcome.unsupported {
                // The model cannot run this configuration at all; the
                // very first run already tells us.
                unsupported = Some(u);
                break 'bounds;
            }

            if !seen_traces.insert(trace_hash(&ctl.trace)) {
                stats.traces_deduped += 1;
                continue;
            }
            if seen_states.insert(outcome.state_hash) {
                for v in outcome.violations {
                    // Witness with the canonical (diverging-only) choice
                    // list: it replays identically and is far shorter
                    // than the raw accumulated schedule.
                    findings.push(Finding {
                        violation: v,
                        schedule: Schedule { choices: ctl.effective.clone() },
                        preemptions: ctl.preemptions(),
                    });
                }
                if cfg.stop_on_finding && !findings.is_empty() {
                    break 'bounds;
                }
            } else {
                stats.states_deduped += 1;
            }

            generate_backtracks(
                &ctl,
                &mut stats,
                &mut pending,
                &mut seen_schedules,
                &mut done_sets,
            );
        }
    }

    ExploreReport { stats, findings, unsupported }
}

/// Happens-before analysis of one executed trace; every racing pair
/// spawns a backtrack schedule flipping it.
fn generate_backtracks(
    ctl: &Controller,
    stats: &mut ExploreStats,
    pending: &mut [VecDeque<Schedule>],
    seen_schedules: &mut HashSet<u64>,
    done_sets: &mut HashMap<u64, HashSet<WarpKey>>,
) {
    let trace = &ctl.trace;
    if trace.is_empty() {
        return;
    }

    // Warp index assignment for vector clocks.
    let mut warp_ix: HashMap<WarpKey, usize> = HashMap::new();
    for e in trace {
        let n = warp_ix.len();
        warp_ix.entry(e.warp).or_insert(n);
    }
    let nwarps = warp_ix.len();

    // `warp_clock[w]`: the HB clock inherited by w's next event (program
    // order). `post[j]`: event j's HB clock including j itself.
    let mut warp_clock: Vec<Clock> = vec![vec![0; nwarps]; nwarps];
    let mut post: Vec<Clock> = Vec::with_capacity(trace.len());
    let mut races: Vec<(usize, usize)> = Vec::new();

    for j in 0..trace.len() {
        let wj = warp_ix[&trace[j].warp];
        // Scan earlier conflicting events newest-first, accumulating
        // their clocks: an event already covered by the accumulated
        // clock is HB-ordered (possibly through an intermediary) and is
        // not a race.
        let mut acc = warp_clock[wj].clone();
        for i in (0..j).rev() {
            if trace[i].warp == trace[j].warp || !trace[i].effect.conflicts(&trace[j].effect) {
                continue;
            }
            if !clock_le(&post[i], &acc) {
                races.push((i, j));
            }
            clock_join(&mut acc, &post[i]);
        }
        acc[wj] += 1;
        warp_clock[wj] = acc.clone();
        post.push(acc);
    }

    for (i, j) in races {
        let d = trace[i].decision;
        let rec = &ctl.decisions[d as usize];
        let wj = trace[j].warp;
        // Schedule the second event's warp at the first event's decision
        // point; if it was somehow not runnable there, fall back to every
        // alternative (classic DPOR's pessimistic backtrack set).
        let candidates: Vec<WarpKey> = if rec.runnable.contains(&wj) {
            vec![wj]
        } else {
            rec.runnable.iter().copied().filter(|&k| k != rec.chosen).collect()
        };
        let prefix: Vec<ForcedChoice> =
            ctl.effective.iter().copied().filter(|c| c.decision < d).collect();
        let done_key = {
            let mut h = Fnv::new();
            h.u64(schedule_hash(&prefix));
            h.u64(d);
            h.finish()
        };
        let done = done_sets.entry(done_key).or_insert_with(|| HashSet::from([rec.chosen]));
        for w in candidates {
            if !done.insert(w) {
                stats.sleep_pruned += 1;
                continue;
            }
            let mut choices = prefix.clone();
            choices.push(ForcedChoice { decision: d, warp: w });
            if !seen_schedules.insert(schedule_hash(&choices)) {
                stats.schedules_deduped += 1;
                continue;
            }
            // Mirrors the controller's charging rule: a switch away from
            // a runnable current warp, or any deviation from the
            // round-robin target at an involuntary yield (the fairness
            // charge), costs one.
            let extra = match rec.current_before {
                Some(c) if !rec.spin_yield => u32::from(c != w && rec.runnable.contains(&c)),
                Some(_) => u32::from(w != rec.default_choice),
                None => 0,
            };
            let preemptions = rec.preemptions_before + extra;
            if (preemptions as usize) < pending.len() {
                pending[preemptions as usize].push_back(Schedule { choices });
                stats.backtracks_queued += 1;
            } else {
                stats.backtracks_deferred += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::StepEffect;

    #[test]
    fn fnv_is_deterministic_and_order_sensitive() {
        let mut a = Fnv::new();
        a.u32(1);
        a.u32(2);
        let mut b = Fnv::new();
        b.u32(2);
        b.u32(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv::new();
        c.u32(1);
        c.u32(2);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn trace_hash_distinguishes_orders() {
        let load = |w: u32| Event {
            warp: (0, w),
            effect: StepEffect::Store(vec![gpu_sim::Addr(5)]),
            decision: 0,
        };
        let t1 = [load(0), load(1)];
        let t2 = [load(1), load(0)];
        assert_ne!(trace_hash(&t1), trace_hash(&t2));
    }

    #[test]
    fn clock_ops() {
        let a = vec![1, 2, 0];
        let b = vec![1, 3, 0];
        assert!(clock_le(&a, &b));
        assert!(!clock_le(&b, &a));
        let mut c = a.clone();
        clock_join(&mut c, &b);
        assert_eq!(c, vec![1, 3, 0]);
    }
}
