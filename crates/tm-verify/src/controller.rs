//! The schedule controller: a [`SchedulePolicy`] that replays a *forced
//! prefix* of scheduling choices and then follows a deterministic default
//! continuation, recording per-decision state for the explorer's
//! backtrack generation.
//!
//! A schedule is identified not by the full pick sequence (which can run
//! to tens of thousands of decisions) but by the short list of
//! [`ForcedChoice`]s where it deviates from the default continuation.
//! Because the default continuation is a pure function of the decision
//! history, `(forced choices, model) → execution` is deterministic, which
//! is what makes stateless replay — and `.sched` repro files — possible.

use gpu_sim::{RunnableWarp, SchedulePolicy, StepEffect, StepRecord};

/// Identity of a warp: `(block, warp_in_block)`.
pub type WarpKey = (u32, u32);

/// After this many consecutive picks of the same warp the default
/// continuation involuntarily yields to the next warp (round-robin).
///
/// This is what rescues benign spins — a transaction polling a lock held
/// by a suspended warp — without counting a preemption: the switch is
/// part of the *default* policy, so CHESS-style preemption bounding only
/// charges for forced mid-run switches.
pub const SPIN_YIELD_STEPS: u32 = 256;

/// The default continuation also yields once the current warp has held
/// the simulator clock for this many cycles, even before
/// [`SPIN_YIELD_STEPS`] instructions.
///
/// Spin loops with exponential backoff advance the clock by thousands of
/// cycles per instruction; a purely step-counted quantum would let a
/// single spinning warp monopolise hundreds of thousands of cycles while
/// the lock holder sits unscheduled, tripping the simulator's stall
/// watchdog on perfectly healthy code. Cycle-bounding the quantum keeps
/// every warp's scheduling latency well inside the stall window, so the
/// watchdog only fires on genuine deadlock/livelock.
pub const SPIN_YIELD_CYCLES: u64 = 10_000;

/// One deviation from the default continuation: at decision index
/// `decision`, pick `warp` instead of whatever the default would pick.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct ForcedChoice {
    /// Zero-based index into the run's sequence of scheduling decisions.
    pub decision: u64,
    /// The warp to force at that decision.
    pub warp: WarpKey,
}

/// A complete schedule: the forced choices (sorted by decision index)
/// plus the implicit default continuation everywhere else.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Schedule {
    /// Deviations from the default continuation, sorted by `decision`.
    pub choices: Vec<ForcedChoice>,
}

/// One *visible* memory event of the executed trace.
#[derive(Clone, Debug)]
pub struct Event {
    /// The warp that issued the instruction.
    pub warp: WarpKey,
    /// Its shared-memory effect.
    pub effect: StepEffect,
    /// The decision index at which it was scheduled.
    pub decision: u64,
}

/// What the controller knew at one scheduling decision — the raw material
/// for constructing backtrack schedules.
#[derive(Clone, Debug)]
pub struct DecisionRecord {
    /// Warps runnable at this decision, sorted by identity.
    pub runnable: Vec<WarpKey>,
    /// The warp that ran the previous instruction, if still alive.
    pub current_before: Option<WarpKey>,
    /// The warp actually picked.
    pub chosen: WarpKey,
    /// The warp the default continuation would have picked.
    pub default_choice: WarpKey,
    /// Preemptions charged strictly before this decision.
    pub preemptions_before: u32,
    /// Whether the default continuation would have involuntarily yielded
    /// here ([`SPIN_YIELD_STEPS`] or [`SPIN_YIELD_CYCLES`] reached) —
    /// switching away is then free.
    pub spin_yield: bool,
}

/// Per-warp provably-private address regions, from the TXL footprint
/// analysis: accesses falling entirely inside the owning warp's regions
/// are *invisible* — they cannot conflict with any other warp, so the
/// explorer neither traces them nor branches on their order.
#[derive(Clone, Debug, Default)]
pub struct FootprintFilter {
    regions: Vec<(WarpKey, Vec<(gpu_sim::Addr, gpu_sim::Addr)>)>,
}

impl FootprintFilter {
    /// Builds a filter from per-warp inclusive address intervals.
    ///
    /// Returns `None` when any two warps' regions overlap — the analysis
    /// then proves nothing and filtering would be unsound.
    pub fn new(regions: Vec<(WarpKey, Vec<(gpu_sim::Addr, gpu_sim::Addr)>)>) -> Option<Self> {
        for (i, (wa, ra)) in regions.iter().enumerate() {
            for (wb, rb) in regions.iter().skip(i + 1) {
                if wa == wb {
                    return None; // one region list per warp, by construction
                }
                for &(alo, ahi) in ra {
                    for &(blo, bhi) in rb {
                        if alo <= bhi && blo <= ahi {
                            return None;
                        }
                    }
                }
            }
        }
        Some(FootprintFilter { regions })
    }

    /// Whether `effect`, issued by `warp`, is provably private to it.
    pub fn invisible(&self, warp: WarpKey, effect: &StepEffect) -> bool {
        match effect {
            StepEffect::Local | StepEffect::Retire | StepEffect::Fence => false,
            _ => {
                let Some((_, regions)) = self.regions.iter().find(|(w, _)| *w == warp) else {
                    return false;
                };
                let addrs = effect.addrs();
                !addrs.is_empty()
                    && addrs.iter().all(|a| regions.iter().any(|&(lo, hi)| lo <= *a && *a <= hi))
            }
        }
    }
}

/// The policy driven by the explorer: forced-prefix replay + default
/// continuation, with full decision/trace recording.
#[derive(Debug)]
pub struct Controller {
    forced: Vec<ForcedChoice>,
    next_forced: usize,
    decision: u64,
    current: Option<WarpKey>,
    consecutive: u32,
    quantum_start: u64,
    preemptions: u32,
    filter: Option<FootprintFilter>,
    /// Whether a forced choice named a warp that was not runnable —
    /// replay drifted off the recorded execution (should not happen for
    /// schedules generated by the explorer).
    pub diverged: bool,
    /// One record per scheduling decision, in order.
    pub decisions: Vec<DecisionRecord>,
    /// The forced choices that actually *diverged* from the default
    /// continuation this run. A forced choice matching the default pick
    /// is a no-op — dropping it replays identically — so backtrack
    /// schedules are built from this canonical list, which keeps
    /// generations of backtracking from accumulating dead choices.
    pub effective: Vec<ForcedChoice>,
    /// The visible memory-event trace.
    pub trace: Vec<Event>,
    /// Events demoted to invisible by the footprint filter.
    pub invisible_pruned: u64,
}

impl Controller {
    /// Creates a controller replaying `schedule` under an optional
    /// footprint filter.
    pub fn new(schedule: Schedule, filter: Option<FootprintFilter>) -> Self {
        let mut forced = schedule.choices;
        forced.sort_by_key(|c| c.decision);
        Controller {
            forced,
            next_forced: 0,
            decision: 0,
            current: None,
            consecutive: 0,
            quantum_start: 0,
            preemptions: 0,
            filter,
            diverged: false,
            decisions: Vec::new(),
            effective: Vec::new(),
            trace: Vec::new(),
            invisible_pruned: 0,
        }
    }

    /// Preemptions charged over the whole run.
    pub fn preemptions(&self) -> u32 {
        self.preemptions
    }

    /// The deterministic default continuation: keep running the current
    /// warp; at [`SPIN_YIELD_STEPS`] yield round-robin to the next warp;
    /// with no current warp (start, or after a retire) take the first.
    fn default_pick(&self, keys: &[WarpKey], spin_yield: bool) -> usize {
        match self.current {
            Some(c) => match keys.iter().position(|&k| k == c) {
                Some(i) if !spin_yield => i,
                Some(i) => (i + 1) % keys.len(),
                // Current warp vanished without a Retire (defensive):
                // resume at its successor in identity order.
                None => keys.iter().position(|&k| k > c).unwrap_or(0),
            },
            None => 0,
        }
    }
}

impl SchedulePolicy for Controller {
    fn pick(&mut self, now: u64, runnable: &[RunnableWarp]) -> usize {
        let keys: Vec<WarpKey> = runnable.iter().map(|r| (r.block, r.warp_in_block)).collect();
        let spin_yield = self.current.is_some()
            && (self.consecutive >= SPIN_YIELD_STEPS
                || now.saturating_sub(self.quantum_start) >= SPIN_YIELD_CYCLES);

        let default_idx = self.default_pick(&keys, spin_yield);
        let mut idx = None;
        if let Some(fc) = self.forced.get(self.next_forced) {
            if fc.decision == self.decision {
                self.next_forced += 1;
                match keys.iter().position(|&k| k == fc.warp) {
                    Some(i) => {
                        if i != default_idx {
                            self.effective.push(*fc);
                        }
                        idx = Some(i);
                    }
                    None => self.diverged = true,
                }
            }
        }
        let idx = idx.unwrap_or(default_idx);
        let chosen = keys[idx];

        let preemptions_before = self.preemptions;
        if let Some(c) = self.current {
            if !spin_yield {
                // A switch away from a still-runnable current warp is a
                // preemption.
                if chosen != c && keys.contains(&c) {
                    self.preemptions += 1;
                }
            } else if idx != default_idx {
                // Fairness charge: at an involuntary yield the default
                // rotates round-robin, and *any* forced deviation —
                // staying on the spinning warp, or redirecting the
                // rotation past its target — starves somebody. Left
                // free, the explorer chains such deviations into an
                // unbounded starvation schedule and reports "livelock"
                // on perfectly healthy lock implementations (or parks a
                // preempted lock holder forever). Charged, monopolies
                // stay finite: the demonic-but-fair scheduler of CHESS.
                self.preemptions += 1;
            }
        }
        let default_choice = keys[default_idx];
        self.decisions.push(DecisionRecord {
            runnable: keys,
            current_before: self.current,
            chosen,
            default_choice,
            preemptions_before,
            spin_yield,
        });

        if self.current == Some(chosen) {
            if spin_yield {
                // Yield came due but the pick stayed (e.g. only this warp
                // is runnable): start a fresh quantum rather than
                // re-yielding every step.
                self.consecutive = 1;
                self.quantum_start = now;
            } else {
                self.consecutive += 1;
            }
        } else {
            self.current = Some(chosen);
            self.consecutive = 1;
            self.quantum_start = now;
        }
        self.decision += 1;
        idx
    }

    fn observe(&mut self, step: &StepRecord) {
        let warp = (step.block, step.warp_in_block);
        match &step.effect {
            StepEffect::Retire => {
                if self.current == Some(warp) {
                    self.current = None;
                    self.consecutive = 0;
                }
            }
            StepEffect::Local => {}
            eff => {
                if let Some(f) = &self.filter {
                    if f.invisible(warp, eff) {
                        self.invisible_pruned += 1;
                        return;
                    }
                }
                // `pick` already advanced the counter for this step.
                let decision = self.decision.saturating_sub(1);
                self.trace.push(Event { warp, effect: eff.clone(), decision });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Addr;

    fn runnable(keys: &[WarpKey]) -> Vec<RunnableWarp> {
        keys.iter().map(|&(b, w)| RunnableWarp { block: b, warp_in_block: w, ready: 0 }).collect()
    }

    #[test]
    fn default_continuation_sticks_to_current_then_yields() {
        let mut c = Controller::new(Schedule::default(), None);
        let r = runnable(&[(0, 0), (0, 1)]);
        assert_eq!(c.pick(0, &r), 0);
        for _ in 0..SPIN_YIELD_STEPS - 1 {
            assert_eq!(c.pick(0, &r), 0);
        }
        // Quantum exhausted: involuntary round-robin yield, not a preemption.
        assert_eq!(c.pick(0, &r), 1);
        assert_eq!(c.preemptions(), 0);
    }

    #[test]
    fn forced_choice_counts_a_preemption() {
        let sched = Schedule { choices: vec![ForcedChoice { decision: 2, warp: (0, 1) }] };
        let mut c = Controller::new(sched, None);
        let r = runnable(&[(0, 0), (0, 1)]);
        assert_eq!(c.pick(0, &r), 0);
        assert_eq!(c.pick(0, &r), 0);
        assert_eq!(c.pick(0, &r), 1); // forced switch away from runnable current
        assert_eq!(c.preemptions(), 1);
        assert!(!c.diverged);
        assert_eq!(c.decisions[2].preemptions_before, 0);
        assert_eq!(c.decisions[2].chosen, (0, 1));
    }

    #[test]
    fn deviating_from_the_rotation_at_a_yield_is_charged() {
        // At an involuntary yield the default rotates (0,0) -> (0,1);
        // forcing the rotation past its target to (0,2) starves (0,1)
        // and must cost a preemption, or chains of free redirects could
        // starve one warp forever.
        let sched = Schedule {
            choices: vec![ForcedChoice { decision: u64::from(SPIN_YIELD_STEPS), warp: (0, 2) }],
        };
        let mut c = Controller::new(sched, None);
        let r = runnable(&[(0, 0), (0, 1), (0, 2)]);
        for _ in 0..SPIN_YIELD_STEPS {
            assert_eq!(c.pick(0, &r), 0);
        }
        assert_eq!(c.pick(0, &r), 2);
        assert_eq!(c.preemptions(), 1);
        let rec = c.decisions.last().expect("recorded");
        assert!(rec.spin_yield);
        assert_eq!(rec.default_choice, (0, 1));
    }

    #[test]
    fn forcing_at_decision_zero_is_free() {
        let sched = Schedule { choices: vec![ForcedChoice { decision: 0, warp: (0, 1) }] };
        let mut c = Controller::new(sched, None);
        let r = runnable(&[(0, 0), (0, 1)]);
        assert_eq!(c.pick(0, &r), 1);
        assert_eq!(c.preemptions(), 0);
    }

    #[test]
    fn retire_clears_current_and_trace_skips_local() {
        let mut c = Controller::new(Schedule::default(), None);
        let r = runnable(&[(0, 0), (0, 1)]);
        c.pick(0, &r);
        c.observe(&StepRecord { block: 0, warp_in_block: 0, effect: StepEffect::Local });
        c.observe(&StepRecord {
            block: 0,
            warp_in_block: 0,
            effect: StepEffect::Store(vec![Addr(7)]),
        });
        c.observe(&StepRecord { block: 0, warp_in_block: 0, effect: StepEffect::Retire });
        assert_eq!(c.trace.len(), 1);
        assert_eq!(c.trace[0].decision, 0);
        // After retire the default continuation starts the next warp.
        assert_eq!(c.pick(0, &runnable(&[(0, 1)])), 0);
        assert_eq!(c.preemptions(), 0);
    }

    #[test]
    fn footprint_filter_demotes_private_accesses() {
        let f = FootprintFilter::new(vec![
            ((0, 0), vec![(Addr(10), Addr(13))]),
            ((1, 0), vec![(Addr(14), Addr(17))]),
        ])
        .expect("disjoint");
        assert!(f.invisible((0, 0), &StepEffect::Store(vec![Addr(10), Addr(12)])));
        assert!(!f.invisible((0, 0), &StepEffect::Store(vec![Addr(14)])));
        assert!(!f.invisible((1, 0), &StepEffect::Fence));
        assert!(!f.invisible((2, 0), &StepEffect::Load(vec![Addr(10)])));
    }

    #[test]
    fn overlapping_footprints_are_rejected() {
        assert!(FootprintFilter::new(vec![
            ((0, 0), vec![(Addr(10), Addr(14))]),
            ((1, 0), vec![(Addr(14), Addr(17))]),
        ])
        .is_none());
    }
}
