//! End-to-end exploration tests: every STM variant is violation-free on
//! every litmus under bounded-preemption DPOR, and every seeded mutant —
//! latent under the default schedule — is killed with a minimized,
//! replayable `.sched` witness.

use gpu_stm::{BlockingMutation, Mutation};
use tm_verify::{
    minimize_finding, parse, replay, run_once, verify, Litmus, VerifyConfig, ViolationKind,
    Workload,
};
use workloads::Variant;

fn assert_clean(workload: Workload, variant: Variant, blocks: u32, wpb: u32, bound: u32) {
    let cfg = VerifyConfig {
        litmus: Litmus::new(workload, variant, blocks, wpb),
        max_preemptions: bound,
        max_schedules: 3000,
        stop_on_finding: false,
    };
    let r = verify(&cfg);
    if let Some(u) = r.unsupported {
        panic!("{workload}/{variant}: litmus unexpectedly unsupported: {u}");
    }
    assert!(
        r.is_clean(),
        "{workload}/{variant}: {} findings, first: {} {}",
        r.findings.len(),
        r.findings[0].violation.kind,
        r.findings[0].violation.message,
    );
    assert!(!r.stats.cap_hit, "{workload}/{variant}: exploration did not converge under the cap");
    assert!(r.stats.schedules_run > 1, "{workload}/{variant}: only the default schedule ran");
    assert!(
        r.stats.backtracks_queued > 0,
        "{workload}/{variant}: DPOR found no racing pairs in a conflicting workload"
    );
}

#[test]
fn bank_is_clean_for_every_variant_at_bound_2() {
    for v in Variant::ALL {
        assert_clean(Workload::Bank, v, 1, 2, 2);
    }
}

#[test]
fn hashtable_is_clean_for_every_variant_at_bound_2() {
    for v in Variant::ALL {
        assert_clean(Workload::Hashtable, v, 1, 2, 2);
    }
}

#[test]
fn stripes_is_clean_and_footprint_pruned_for_every_variant() {
    for v in Variant::ALL {
        let cfg = VerifyConfig {
            litmus: Litmus::new(Workload::Stripes, v, 2, 1),
            max_preemptions: 2,
            max_schedules: 3000,
            stop_on_finding: false,
        };
        let r = verify(&cfg);
        assert!(r.unsupported.is_none(), "stripes/{v}: unsupported");
        assert!(r.is_clean(), "stripes/{v}: {:?}", r.findings.first().map(|f| &f.violation));
        assert!(!r.stats.cap_hit, "stripes/{v}: exploration did not converge");
        // The TXL interval analysis proves the stripes disjoint, so the
        // explorer must be demoting their data traffic to invisible.
        assert!(
            r.stats.footprint_invisible_events > 0,
            "stripes/{v}: footprint filter never engaged"
        );
    }
}

#[test]
fn cross_block_bank_is_clean_at_bound_1() {
    // Same two actors, but in different blocks: exercises cross-block
    // scheduling decisions (and EGPGV's inter-block path).
    for v in Variant::ALL {
        assert_clean(Workload::Bank, v, 2, 1, 1);
    }
}

#[test]
fn queue_wakeups_are_clean_for_lock_variants_at_bound_2() {
    // The blocking wakeup litmus: producer and consumer racing park
    // against commit. Bound-2 exploration covers park/commit races and
    // wake-before-park (the ticket re-check path) for every lock variant.
    for v in [Variant::TbvSorting, Variant::HvSorting, Variant::HvBackoff, Variant::TbvBackoff] {
        assert_clean(Workload::Queue, v, 1, 2, 2);
    }
}

#[test]
fn queue_multi_waiter_single_wake_is_clean_at_bound_2() {
    // Two consumers parked on the same counter, one item pushed: the
    // notify wakes both, exactly one claims, the loser re-parks and is
    // released by the done flag. ~14k schedules, so one variant carries
    // the multi-waiter matrix leg.
    let cfg = VerifyConfig {
        litmus: Litmus::new(Workload::Queue, Variant::HvSorting, 1, 3),
        max_preemptions: 2,
        max_schedules: 20_000,
        stop_on_finding: false,
    };
    let r = verify(&cfg);
    assert!(r.unsupported.is_none());
    assert!(r.is_clean(), "{:?}", r.findings.first().map(|f| &f.violation));
    assert!(!r.stats.cap_hit, "multi-waiter exploration did not converge");
}

#[test]
fn queue_litmus_rejects_non_lock_variants() {
    let cfg = VerifyConfig {
        litmus: Litmus::new(Workload::Queue, Variant::Cgl, 1, 2),
        max_preemptions: 1,
        max_schedules: 10,
        stop_on_finding: false,
    };
    assert!(verify(&cfg).unsupported.is_some());
}

#[test]
fn lost_wakeup_mutant_is_latent_under_the_default_schedule() {
    let mut l = Litmus::new(Workload::Queue, Variant::HvSorting, 1, 3);
    l.blocking = BlockingMutation { lost_wakeup: true };
    let out = run_once(&l, None);
    assert!(
        out.violations.is_empty(),
        "lost_wakeup: expected the mutant to stay latent under the default \
         (staggered) schedule, got {:?}",
        out.violations
    );
}

#[test]
fn lost_wakeup_mutant_is_killed_with_a_minimized_replayable_witness() {
    // Producer + one consumer: the smallest shape with a lost-wakeup
    // window (the done-flag commit racing the consumer's registration).
    let mut l = Litmus::new(Workload::Queue, Variant::HvSorting, 1, 2);
    l.blocking = BlockingMutation { lost_wakeup: true };
    let cfg =
        VerifyConfig { litmus: l, max_preemptions: 2, max_schedules: 5000, stop_on_finding: true };
    let r = verify(&cfg);
    let f = r.findings.first().expect("lost_wakeup: not killed");
    assert!(
        ViolationKind::Deadlock.matches(f.violation.kind),
        "lost_wakeup: killed by {} rather than a progress failure: {}",
        f.violation.kind,
        f.violation.message
    );
    assert!(
        f.violation.message.contains("parked"),
        "deadlock diagnostics should name the parked warp: {}",
        f.violation.message
    );

    // Shrink, serialize, re-parse, replay: the full repro pipeline.
    let min = minimize_finding(&l, f);
    assert!(min.choices.len() <= f.schedule.choices.len());
    assert!(
        min.choices.len() <= 4,
        "minimized lost-wakeup witness still has {} forced choices",
        min.choices.len()
    );
    let text = tm_verify::finding_to_sched(&l, f, &min);
    let (parsed, meta) = parse(&text).expect("well-formed .sched");
    assert_eq!(parsed, min);
    assert!(meta.iter().any(|(k, v)| k == "workload" && v == "queue"), "{meta:?}");
    assert!(meta.iter().any(|(k, v)| k == "blocking" && v == "lost_wakeup=true"), "{meta:?}");
    let out = replay(&l, &parsed);
    assert!(
        out.violations.iter().any(|v| ViolationKind::Deadlock.matches(v.kind)),
        "minimized lost-wakeup witness does not reproduce; got {:?}",
        out.violations
    );
}

#[test]
fn clean_queue_passes_the_same_hunt_that_kills_lost_wakeup() {
    let l = Litmus::new(Workload::Queue, Variant::HvSorting, 1, 2);
    let cfg =
        VerifyConfig { litmus: l, max_preemptions: 2, max_schedules: 5000, stop_on_finding: true };
    assert!(verify(&cfg).is_clean());
}

/// The three seeded mutants, the checker kind expected to catch each, and
/// whether that kind is a progress failure (deadlock/livelock — the two
/// classifications are interchangeable under schedule perturbation).
fn mutants() -> [(&'static str, Mutation, ViolationKind); 3] {
    [
        (
            "skip_validation",
            Mutation { skip_validation: true, ..Default::default() },
            ViolationKind::Opacity,
        ),
        (
            "late_writeback",
            Mutation { late_writeback: true, ..Default::default() },
            ViolationKind::Opacity,
        ),
        (
            "unsorted_locks",
            Mutation { unsorted_locks: true, ..Default::default() },
            ViolationKind::Livelock,
        ),
    ]
}

#[test]
fn mutants_are_latent_under_the_default_schedule() {
    for (name, m, _) in mutants() {
        let mut l = Litmus::new(Workload::Bank, Variant::HvSorting, 1, 2);
        l.mutation = m;
        let out = run_once(&l, None);
        assert!(
            out.violations.is_empty(),
            "{name}: expected the mutant to stay latent under the default \
             (staggered) schedule, got {:?}",
            out.violations
        );
    }
}

#[test]
fn every_mutant_is_killed_with_a_minimized_replayable_witness() {
    let mut killed = 0;
    for (name, m, expect) in mutants() {
        let mut l = Litmus::new(Workload::Bank, Variant::HvSorting, 1, 2);
        l.mutation = m;
        let cfg = VerifyConfig {
            litmus: l,
            max_preemptions: 2,
            max_schedules: 5000,
            stop_on_finding: true,
        };
        let r = verify(&cfg);
        let f = r.findings.first().unwrap_or_else(|| panic!("{name}: not killed"));
        assert!(
            expect.matches(f.violation.kind),
            "{name}: killed by {} rather than the expected {expect}",
            f.violation.kind
        );

        // Shrink, serialize, re-parse, replay: the full repro pipeline.
        let min = minimize_finding(&l, f);
        assert!(min.choices.len() <= f.schedule.choices.len());
        assert!(
            min.choices.len() <= 4,
            "{name}: minimized witness still has {} forced choices",
            min.choices.len()
        );
        let text = tm_verify::finding_to_sched(&l, f, &min);
        let (parsed, meta) = parse(&text).unwrap_or_else(|e| panic!("{name}: bad .sched: {e}"));
        assert_eq!(parsed, min);
        assert!(meta.iter().any(|(k, v)| k == "workload" && v == "bank"), "{meta:?}");
        let out = replay(&l, &parsed);
        assert!(
            out.violations.iter().any(|v| expect.matches(v.kind)),
            "{name}: minimized witness does not reproduce; got {:?}",
            out.violations
        );
        killed += 1;
    }
    assert!(killed >= 3, "expected all three mutants killed, got {killed}");
}

#[test]
fn clean_runtime_passes_the_same_hunt_that_kills_the_mutants() {
    // Sanity for the mutant tests: with no mutation, the identical
    // configuration explores clean, so the kills above measure the
    // mutation and not the harness.
    let l = Litmus::new(Workload::Bank, Variant::HvSorting, 1, 2);
    let cfg =
        VerifyConfig { litmus: l, max_preemptions: 2, max_schedules: 5000, stop_on_finding: true };
    assert!(verify(&cfg).is_clean());
}
