//! The model-checking half of the fix gate: a minimized `.sched` witness
//! of the unsorted-locks deadlock must stop reproducing once `txl fix`
//! repairs the program it was mined from.

use tm_verify::{
    explore_case, finding_to_witness, footprint_order, minimize_case_finding, unsorted_locks,
    witness_reproduces, witness_rule,
};

#[test]
fn repaired_program_kills_the_deadlock_witness() {
    let case = unsorted_locks();

    // Mine a deadlock witness from the buggy program.
    let report = explore_case(&case, 2, 500);
    let finding = report
        .findings
        .iter()
        .find(|f| f.violation.kind.is_progress_failure())
        .expect("the crossing-lock case deadlocks under exploration");
    let min = minimize_case_finding(&case, finding);
    let witness = finding_to_witness(&case, finding, &min);
    assert_eq!(
        witness_reproduces(&case, &witness),
        Ok(true),
        "minimized witness must reproduce on the buggy source:\n{witness}"
    );

    // The witness carries provenance back to the lint rule, and the
    // repair engine discharges exactly that rule.
    let (_, meta) = tm_verify::parse(&witness).expect("witness parses");
    let rule = witness_rule(&meta).expect("witness names its rule");
    assert_eq!(rule, case.rule);

    let fixed =
        txl::fix_source(&case.source, &txl::FixConfig::default()).expect("buggy source compiles");
    assert!(fixed.is_clean(), "repair left residual findings: {:?}", fixed.residual);
    assert!(fixed.changed(), "repair must rewrite the lock protocol");
    let diags = txl::lint_source(&fixed.fixed, &txl::LintConfig::default())
        .expect("repaired source compiles");
    assert!(
        diags.iter().all(|d| d.rule.id() != rule),
        "repaired source still lints {rule}: {diags:?}"
    );

    // The witness schedule no longer reproduces any matching violation
    // on the repaired program.
    let repaired = case.with_source(&fixed.fixed);
    assert_eq!(
        witness_reproduces(&repaired, &witness),
        Ok(false),
        "witness survived the repair:\n{witness}\nrepaired source:\n{}",
        fixed.fixed
    );

    // And not just under the witness schedule: the repaired program's
    // whole bounded schedule space is deadlock-free.
    let re = explore_case(&repaired, 2, 500);
    assert!(
        re.findings.iter().all(|f| !f.violation.kind.is_progress_failure()),
        "repaired program still deadlocks somewhere: {:?}",
        re.findings
    );
}

/// The same gate for TL005: the footprint-order case deadlocks (under
/// the unsorted-locks STM mutant) until `txl fix` reorders the second
/// transaction's body, after which the minimized witness — and the whole
/// bounded schedule space — is deadlock-free, even though the mutant
/// stays armed on replay.
#[test]
fn reordered_program_kills_the_footprint_order_witness() {
    let case = footprint_order();

    let report = explore_case(&case, 2, 500);
    let finding = report
        .findings
        .iter()
        .find(|f| f.violation.kind.is_progress_failure())
        .expect("the footprint-order case deadlocks under the unsorted-locks mutant");
    let min = minimize_case_finding(&case, finding);
    let witness = finding_to_witness(&case, finding, &min);
    assert_eq!(
        witness_reproduces(&case, &witness),
        Ok(true),
        "minimized witness must reproduce on the buggy source:\n{witness}"
    );

    let (_, meta) = tm_verify::parse(&witness).expect("witness parses");
    assert_eq!(witness_rule(&meta), Some("TL005"));

    let fixed =
        txl::fix_source(&case.source, &txl::FixConfig::default()).expect("buggy source compiles");
    assert!(fixed.is_clean(), "repair left residual findings: {:?}", fixed.residual);
    assert!(fixed.changed(), "repair must reorder the second transaction");
    let diags = txl::lint_source(&fixed.fixed, &txl::LintConfig::default())
        .expect("repaired source compiles");
    assert!(
        diags.iter().all(|d| d.rule.id() != "TL005"),
        "repaired source still lints TL005: {diags:?}"
    );

    // The mutation stays armed — only the program changed.
    let repaired = case.with_source(&fixed.fixed);
    assert_eq!(
        witness_reproduces(&repaired, &witness),
        Ok(false),
        "witness survived the repair:\n{witness}\nrepaired source:\n{}",
        fixed.fixed
    );

    let re = explore_case(&repaired, 2, 500);
    assert!(
        re.findings.iter().all(|f| !f.violation.kind.is_progress_failure()),
        "repaired program still deadlocks somewhere: {:?}",
        re.findings
    );
}
