//! Satellite requirement: a full queue yields a structured
//! [`ServeError::Overloaded`] (never a panic), the retry-after hint
//! shrinks once pressure clears, and a graceful drain completes with no
//! lost or duplicated commits — cross-checked with `tm-check`.

use tm_serve::{MixConfig, ServeConfig, ServeError, Service};

/// A hot bank burst against tiny queues: admission must shed load.
fn overload_cfg() -> ServeConfig {
    ServeConfig {
        shards: 2,
        workers: 2,
        mix: MixConfig {
            requests: 256,
            // Everything arrives almost at once: far beyond capacity.
            mean_interarrival: 1,
            ..MixConfig::bank()
        },
        seed: 11,
        accounts: 64,
        table_words: 256,
        txl_words: 16,
        batch_warps: 1,
        queue_capacity: 8,
        n_locks: 1 << 10,
        ..ServeConfig::default()
    }
}

#[test]
fn overload_is_structured_and_drain_is_exact() {
    let r = Service::run(&overload_cfg()).expect("service must survive overload");

    assert!(r.rejected > 0, "the burst must overflow the 8-deep queues");
    match &r.first_rejection {
        Some(ServeError::Overloaded { shard, queue_len, capacity, retry_after }) => {
            assert!(*shard < 2);
            assert_eq!(*capacity, 8);
            assert!(*queue_len >= *capacity);
            assert!(*retry_after > 0, "rejections must carry a usable retry-after hint");
        }
        other => panic!("expected a structured Overloaded rejection, got {other:?}"),
    }

    // Graceful drain: every admitted request completed exactly once.
    assert_eq!(r.completed, r.admitted);
    assert_eq!(r.offered, r.admitted + r.rejected);
    assert!(r.conserved, "shed load must not corrupt balances");
    assert_eq!(r.violations_total, 0, "tm-check must pass under overload");
}

#[test]
fn retry_hint_shrinks_once_pressure_clears() {
    let r = Service::run(&overload_cfg()).expect("serve run");
    let pressured: Vec<_> = r.shard_reports.iter().filter(|s| s.rejected > 0).collect();
    assert!(!pressured.is_empty());
    for s in &pressured {
        // At rejection time the hint priced a full queue (and any abort
        // storm); after drain an idle shard advertises a smaller wait.
        assert!(
            s.retry_hint_final < s.retry_hint_peak,
            "shard {}: final hint {} must undercut peak {}",
            s.shard,
            s.retry_hint_final,
            s.retry_hint_peak
        );
    }
}

#[test]
fn credit_cap_no_votes_roll_back_and_conserve() {
    // Force every transfer cross-shard (locality 0) and cap receiving
    // balances barely above the initial balance: prepared credits vote
    // no once a destination fills up, which must trigger compensating
    // debit rollbacks — and still conserve total balance.
    let cfg = ServeConfig {
        shards: 2,
        workers: 1,
        mix: MixConfig { requests: 160, locality_pct: 0, ..MixConfig::bank() },
        seed: 13,
        accounts: 48,
        table_words: 256,
        txl_words: 16,
        batch_warps: 1,
        initial_balance: 1000,
        credit_cap: 1010,
        n_locks: 1 << 10,
        ..ServeConfig::default()
    };
    let r = Service::run(&cfg).expect("serve run");
    assert!(r.cross_shard > 0, "locality 0 must produce 2PC traffic");
    assert!(r.rollbacks > 0, "the tight credit cap must force no-votes");
    assert!(r.conserved, "rollbacks must compensate exactly");
    assert_eq!(r.completed, r.admitted);
    assert_eq!(r.violations_total, 0);
}
