//! `ServeConfig` seeding from the `txl analyze` static profile: the
//! per-shard variant and lock-table size come from compile-time
//! analysis of the TXL program the engine serves, before any traffic
//! arrives — the acting half of the obs layer's sense/act split.

use tm_serve::{MixConfig, ServeConfig, Service, TXL_BUMP};
use txl::{analyze_source, CostConfig};
use workloads::Variant;

fn base() -> ServeConfig {
    ServeConfig {
        shards: 2,
        mix: MixConfig { requests: 96, ..MixConfig::mixed() },
        seed: 11,
        accounts: 64,
        table_words: 256,
        txl_words: 16,
        batch_warps: 1,
        ..ServeConfig::default()
    }
}

#[test]
fn seed_from_txl_overrides_variant_and_stripes() {
    let cfg = base().seed_from_txl(TXL_BUMP).expect("TXL_BUMP analyzes");

    // The override must agree with running the analysis by hand at the
    // same modeled concurrency (batch_warps × 32 lanes).
    let profile = analyze_source(TXL_BUMP, &CostConfig { threads: 32, ..CostConfig::default() })
        .expect("compiles");
    assert_eq!(cfg.variant.short_name(), profile.recommended().short_name());
    assert_eq!(cfg.n_locks, profile.stripes);
    // And the recommendation is one of the dispatchable variants.
    assert!(Variant::ALL.contains(&cfg.variant));
}

#[test]
fn seeded_config_serves_correctly() {
    let cfg = base().seed_from_txl(TXL_BUMP).expect("TXL_BUMP analyzes");
    let report = Service::run(&cfg).expect("seeded serve run");
    assert_eq!(report.completed, report.admitted);
    assert!(report.conserved, "bank conservation under seeded config");
    assert!(report.txl_consistent, "TXL counters consistent under seeded config");
    assert_eq!(report.violations_total, 0);
}

#[test]
fn seed_from_txl_rejects_bad_source() {
    assert!(base().seed_from_txl("kernel oops(").is_err());
}
