//! Kill-and-restart crash recovery, end to end: killing any single
//! shard worker at any WAL lifecycle point must leave the drained
//! service byte-identical to an uncrashed run — same serve report,
//! same conservation, same blob-store bytes. Also covers the
//! recovery-window admission path, replica quorum voting, cold restart
//! with in-doubt 2PC resolution, and the durability config surface.

use tm_serve::{
    store_fingerprint, CrashPlan, CrashPoint, DurabilityConfig, MemStore, MixConfig, ReplicaFault,
    ServeConfig, ServeError, Service,
};

fn base_cfg() -> ServeConfig {
    ServeConfig {
        shards: 2,
        mix: MixConfig { requests: 96, ..MixConfig::mixed() },
        seed: 11,
        accounts: 64,
        table_words: 256,
        txl_words: 16,
        batch_warps: 1,
        n_locks: 1 << 10,
        ..ServeConfig::default()
    }
}

fn durable_cfg(dur: DurabilityConfig) -> ServeConfig {
    ServeConfig { durability: Some(dur), ..base_cfg() }
}

fn durability() -> DurabilityConfig {
    DurabilityConfig { segment_batches: 2, ..DurabilityConfig::default() }
}

#[test]
fn durable_run_matches_volatile_run() {
    let volatile = Service::run(&base_cfg()).expect("volatile run");
    let store = MemStore::shared();
    let (durable, rec) =
        Service::run_durable(&durable_cfg(durability()), store.clone()).expect("durable run");
    // The write-ahead protocol must be invisible to the service
    // semantics: identical report, no recoveries, a populated store.
    assert_eq!(durable.to_json(), volatile.to_json());
    assert!(rec.recoveries.is_empty());
    assert_eq!(rec.replayed_acks, 0);
    let (_, bytes) = store_fingerprint(&store);
    assert!(bytes > 0, "WAL must actually be written");
}

#[test]
fn killing_any_shard_at_any_point_is_byte_identical() {
    let baseline_store = MemStore::shared();
    let (baseline, _) = Service::run_durable(&durable_cfg(durability()), baseline_store.clone())
        .expect("uncrashed durable run");
    let baseline_json = baseline.to_json();
    let baseline_fp = store_fingerprint(&baseline_store);

    for shard in 0..2 {
        for point in CrashPoint::ALL {
            let dur =
                DurabilityConfig { crash: Some(CrashPlan::at(shard, point, 1)), ..durability() };
            let store = MemStore::shared();
            let (report, rec) = Service::run_durable(&durable_cfg(dur), store.clone())
                .unwrap_or_else(|e| panic!("kill shard {shard} at {point}: {e}"));
            assert_eq!(
                report.to_json(),
                baseline_json,
                "report diverged after killing shard {shard} at {point}"
            );
            assert!(report.conserved);
            assert_eq!(report.completed, report.admitted);
            assert_eq!(rec.recoveries.len(), 1, "exactly one recovery for shard {shard}");
            assert_eq!(rec.recoveries[0].shard, shard);
            assert_eq!(rec.unavailable_rejections, 0, "synchronous recovery rejects nothing");
            assert_eq!(
                store_fingerprint(&store),
                baseline_fp,
                "store diverged after killing shard {shard} at {point}"
            );
            // Each point exercises its own repair path.
            let stats = &rec.recoveries[0];
            match point {
                CrashPoint::WalAppend => assert!(stats.torn_truncated, "torn tail expected"),
                CrashPoint::PrePrepare => assert!(stats.reexecuted > 0 || stats.replayed > 0),
                CrashPoint::PostPrepare | CrashPoint::PreAck => assert!(!stats.torn_truncated),
            }
        }
    }
}

#[test]
fn seeded_crash_plans_preserve_history_hashes() {
    let (baseline, _) = Service::run_durable(&durable_cfg(durability()), MemStore::shared())
        .expect("uncrashed durable run");
    for seed in [1u64, 2, 3, 4] {
        let dur = DurabilityConfig { crash: Some(CrashPlan::seeded(seed)), ..durability() };
        let (report, rec) = Service::run_durable(&durable_cfg(dur), MemStore::shared())
            .unwrap_or_else(|e| panic!("seeded crash {seed}: {e}"));
        for (a, b) in baseline.shard_reports.iter().zip(&report.shard_reports) {
            assert_eq!(a.history_fnv, b.history_fnv, "seed {seed}: shard {} history", a.shard);
            assert_eq!(a.commit_log_fnv, b.commit_log_fnv, "seed {seed}: shard {}", a.shard);
        }
        // A seeded plan may target a batch sequence the shard never
        // reaches; when it does fire, exactly one recovery runs.
        assert!(rec.recoveries.len() <= 1);
    }
}

#[test]
fn recovery_window_rejects_admissions_then_drains() {
    let dur = DurabilityConfig {
        recovery_rounds: 6,
        crash: Some(CrashPlan::at(0, CrashPoint::PrePrepare, 0)),
        ..durability()
    };
    let cfg = ServeConfig {
        mix: MixConfig { requests: 160, mean_interarrival: 600, ..MixConfig::mixed() },
        ..durable_cfg(dur)
    };
    let (report, rec) = Service::run_durable(&cfg, MemStore::shared()).expect("windowed recovery");
    assert_eq!(rec.recoveries.len(), 1);
    assert!(report.conserved, "conservation must survive a recovery window");
    assert_eq!(report.completed, report.admitted, "held batches must still complete");
    assert!(report.txl_consistent);
    assert_eq!(report.violations_total, 0);
    assert!(
        rec.unavailable_rejections > 0,
        "arrivals during the window must be rejected as ShardUnavailable"
    );
    assert!(matches!(report.first_rejection, Some(ServeError::ShardUnavailable { shard: 0, .. })));
}

#[test]
fn healthy_replicas_track_every_shard() {
    let dur = DurabilityConfig { replicas: 2, ..durability() };
    let (report, rec) =
        Service::run_durable(&durable_cfg(dur), MemStore::shared()).expect("replicated run");
    assert!(report.conserved);
    assert_eq!(rec.replicas_per_shard, 2);
    assert_eq!(rec.replicas_healthy, 4, "2 shards × 2 replicas all healthy");
    assert!(rec.diverged.is_empty());
}

#[test]
fn corrupted_replica_is_demoted_with_incident() {
    let dur = DurabilityConfig {
        replicas: 2,
        replica_fault: Some(ReplicaFault { shard: 0, replica: 1, at_commit: 3 }),
        ..durability()
    };
    let (report, rec) = Service::run_durable(&durable_cfg(dur), MemStore::shared())
        .expect("faulted replicated run");
    assert!(report.conserved, "a replica fault must never touch the primary");
    assert_eq!(rec.replicas_healthy, 3, "the corrupted replica is out of quorum");
    assert_eq!(rec.diverged.len(), 1, "one divergence incident");
    let inc = &rec.diverged[0];
    assert_eq!((inc.shard, inc.replica), (0, 1));
    // A later commit may overwrite the dropped writes, re-converging
    // the data span — but the log hash records the loss permanently.
    assert_ne!(inc.got_log_fnv, inc.expected_log_fnv);
}

#[test]
fn replicas_survive_a_crash_via_resync() {
    let dur = DurabilityConfig {
        replicas: 2,
        crash: Some(CrashPlan::at(1, CrashPoint::PostPrepare, 1)),
        ..durability()
    };
    let (report, rec) =
        Service::run_durable(&durable_cfg(dur), MemStore::shared()).expect("replicated crash run");
    assert!(report.conserved);
    assert_eq!(rec.recoveries.len(), 1);
    assert_eq!(rec.replicas_healthy, 4, "resync must keep replicas in quorum across a crash");
    assert!(rec.diverged.is_empty());
}

#[test]
fn cold_recover_rebuilds_every_shard_conserved() {
    // compact=false keeps the full log so the cold pass can audit
    // 2PC holds arbitrarily far back.
    let dur = DurabilityConfig { compact: false, ..durability() };
    let cfg = durable_cfg(dur);
    let store = MemStore::shared();
    let (report, _) = Service::run_durable(&cfg, store.clone()).expect("durable run");

    let shards = Service::cold_recover(&cfg, store).expect("cold recover");
    assert_eq!(shards.len(), 2);
    let balance: u64 = shards.iter().map(|(_, s)| s.balance_sum).sum();
    assert_eq!(balance, 64 * 1000, "cold-recovered shards conserve the bank");
    for (stats, summary) in &shards {
        assert!(summary.violations.is_empty(), "tm-check passes on recovered history");
        // A drained run left no undecided holds to compensate.
        assert_eq!(stats.in_doubt_compensated, 0);
    }
    // The recovered engines carry the exact served histories.
    for ((_, summary), shard_report) in shards.iter().zip(&report.shard_reports) {
        assert_eq!(summary.history_fnv, shard_report.history_fnv);
        assert_eq!(summary.commit_log_fnv, shard_report.commit_log_fnv);
    }
}

#[test]
fn durability_config_is_validated() {
    let ok = durable_cfg(durability());
    assert!(ServeConfig::try_new(ok.clone()).is_ok());

    let cases: Vec<(&str, ServeConfig)> = vec![
        (
            "segment_batches zero",
            durable_cfg(DurabilityConfig { segment_batches: 0, ..durability() }),
        ),
        ("too many replicas", durable_cfg(DurabilityConfig { replicas: 3, ..durability() })),
        (
            "crash shard out of range",
            durable_cfg(DurabilityConfig {
                crash: Some(CrashPlan::at(7, CrashPoint::PreAck, 0)),
                ..durability()
            }),
        ),
        (
            "after_batches overflow",
            durable_cfg(DurabilityConfig {
                crash: Some(CrashPlan { after_batches: Some(u64::MAX), ..CrashPlan::seeded(1) }),
                ..durability()
            }),
        ),
        (
            "replica fault without replicas",
            durable_cfg(DurabilityConfig {
                replica_fault: Some(ReplicaFault { shard: 0, replica: 0, at_commit: 1 }),
                ..durability()
            }),
        ),
        (
            "replica fault at_commit zero",
            durable_cfg(DurabilityConfig {
                replicas: 1,
                replica_fault: Some(ReplicaFault { shard: 0, replica: 0, at_commit: 0 }),
                ..durability()
            }),
        ),
    ];
    for (what, cfg) in cases {
        assert!(
            matches!(ServeConfig::try_new(cfg), Err(ServeError::BadConfig(_))),
            "{what} must be rejected"
        );
    }

    // run_durable guards its own preconditions.
    let store = MemStore::shared();
    assert!(matches!(
        Service::run_durable(&base_cfg(), store.clone()),
        Err(ServeError::BadConfig(_))
    ));
    let (_, _) = Service::run_durable(&ok, store.clone()).expect("first run");
    assert!(
        matches!(Service::run_durable(&ok, store), Err(ServeError::BadConfig(_))),
        "a non-empty store must be refused"
    );
}
