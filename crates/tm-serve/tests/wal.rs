//! Property tests for the write-ahead log: across seeds, traffic
//! mixes, snapshot cadences and compaction settings, a durable run is
//! byte-deterministic, and snapshot + WAL-tail replay (`cold_recover`)
//! reproduces every shard's `history_fnv` and `commit_log_fnv`
//! byte-exactly. Also round-trips the directory-backed store against
//! the in-memory one.

use tm_serve::{
    store_fingerprint, DirStore, DurabilityConfig, MemStore, MixConfig, ServeConfig, Service,
};

fn cfg(seed: u64, mix: MixConfig, dur: DurabilityConfig) -> ServeConfig {
    ServeConfig {
        shards: 2,
        mix: MixConfig { requests: 96, ..mix },
        seed,
        accounts: 64,
        table_words: 256,
        txl_words: 16,
        batch_warps: 1,
        n_locks: 1 << 10,
        durability: Some(dur),
        ..ServeConfig::default()
    }
}

/// The property under test, for one (seed, mix, cadence, compaction)
/// point: two runs are byte-identical (reports and store contents),
/// and a cold recovery from the store alone lands on the served
/// history hashes.
fn check_point(seed: u64, mix: MixConfig, segment_batches: u64, compact: bool) {
    let dur = DurabilityConfig { segment_batches, compact, ..DurabilityConfig::default() };
    let c = cfg(seed, mix, dur);

    let store_a = MemStore::shared();
    let (report_a, _) = Service::run_durable(&c, store_a.clone())
        .unwrap_or_else(|e| panic!("seed {seed} seg {segment_batches}: {e}"));
    let store_b = MemStore::shared();
    let (report_b, _) = Service::run_durable(&c, store_b.clone()).expect("second run");

    assert_eq!(report_a.to_json(), report_b.to_json(), "seed {seed}: report determinism");
    assert_eq!(
        store_fingerprint(&store_a),
        store_fingerprint(&store_b),
        "seed {seed} seg {segment_batches} compact {compact}: WAL byte determinism"
    );

    let shards = Service::cold_recover(&c, store_a).expect("cold recover");
    assert_eq!(shards.len(), c.shards);
    for ((_, summary), shard_report) in shards.iter().zip(&report_a.shard_reports) {
        assert_eq!(
            summary.history_fnv, shard_report.history_fnv,
            "seed {seed} seg {segment_batches} compact {compact}: shard {} history_fnv",
            shard_report.shard
        );
        assert_eq!(
            summary.commit_log_fnv, shard_report.commit_log_fnv,
            "seed {seed} seg {segment_batches} compact {compact}: shard {} commit_log_fnv",
            shard_report.shard
        );
        assert!(summary.violations.is_empty(), "tm-check on replayed history");
    }
}

#[test]
fn snapshot_replay_reproduces_history_hashes_across_seeds_and_mixes() {
    for seed in [3u64, 17, 40] {
        for mix in [MixConfig::bank(), MixConfig::mixed()] {
            check_point(seed, mix, 3, true);
        }
    }
}

#[test]
fn every_snapshot_cadence_and_compaction_setting_replays_exactly() {
    for segment_batches in [1u64, 2, 64] {
        for compact in [false, true] {
            check_point(9, MixConfig::mixed(), segment_batches, compact);
        }
    }
}

#[test]
fn dir_store_round_trips_bit_for_bit_with_mem_store() {
    let dur = DurabilityConfig { segment_batches: 2, ..DurabilityConfig::default() };
    let c = cfg(11, MixConfig::mixed(), dur);

    let mem = MemStore::shared();
    let (mem_report, _) = Service::run_durable(&c, mem.clone()).expect("mem run");

    let root = std::env::temp_dir().join(format!("tm-serve-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let dir = std::sync::Arc::new(DirStore::open(&root).expect("open dir store"));
    let (dir_report, _) =
        Service::run_durable(&c, dir.clone() as tm_serve::StoreHandle).expect("dir run");

    assert_eq!(dir_report.to_json(), mem_report.to_json());
    assert_eq!(
        store_fingerprint(&(dir.clone() as tm_serve::StoreHandle)),
        store_fingerprint(&mem),
        "directory store must hold byte-identical blobs"
    );

    // A separate process observing only the directory can rebuild the
    // shards and land on the served history.
    let shards = Service::cold_recover(&c, dir as tm_serve::StoreHandle).expect("cold recover");
    for ((_, summary), shard_report) in shards.iter().zip(&mem_report.shard_reports) {
        assert_eq!(summary.history_fnv, shard_report.history_fnv);
        assert_eq!(summary.commit_log_fnv, shard_report.commit_log_fnv);
    }
    std::fs::remove_dir_all(&root).expect("cleanup");
}
