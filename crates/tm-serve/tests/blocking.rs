//! Blocking admission (the serving-layer analogue of `gpu_stm::park`):
//! with `ServeConfig::blocking` on, a request that would be rejected
//! `Overloaded` parks in a coordinator FIFO and is re-admitted as queue
//! capacity frees — no request is ever lost, parked depth is exported
//! as a per-shard gauge, sustained depth opens a `ParkStorm` incident,
//! and reports stay byte-identical across worker counts.

use tm_serve::{IncidentCause, MixConfig, ServeConfig, Service};

/// The bursty blocking preset against small queues: admission must
/// park, not shed.
fn blocking_cfg(workers: usize) -> ServeConfig {
    ServeConfig {
        shards: 2,
        workers,
        mix: MixConfig { requests: 192, ..MixConfig::blocking() },
        seed: 11,
        accounts: 64,
        table_words: 256,
        txl_words: 16,
        batch_warps: 1,
        queue_capacity: 8,
        blocking: true,
        n_locks: 1 << 10,
        ..ServeConfig::default()
    }
}

#[test]
fn parked_requests_are_all_eventually_served() {
    let r = Service::run(&blocking_cfg(2)).expect("blocking service run");

    assert!(r.parked > 0, "the burst must overflow the 8-deep queues into the park FIFO");
    assert_eq!(r.rejected, 0, "blocking admission must never reject on overload");
    assert!(r.first_rejection.is_none(), "parking is not a rejection");

    // The park path loses nothing: every offered request is admitted
    // (possibly after parking) and completes exactly once.
    assert_eq!(r.admitted, r.offered);
    assert_eq!(r.completed, r.offered);
    assert!(r.conserved, "parked admission must not corrupt balances");
    assert_eq!(r.violations_total, 0, "tm-check must pass under parking");

    // Gauges: the FIFO peak bounds the per-shard peaks and the park
    // events reconcile with the shard attribution.
    assert!(r.parked_peak > 0);
    let shard_parks: u64 = r.shard_reports.iter().map(|s| s.parked).sum();
    assert_eq!(shard_parks, r.parked);
    let depth_peak: u64 = r.shard_reports.iter().map(|s| s.parked_depth_peak).sum();
    assert!(depth_peak >= r.parked_peak, "shard depth peaks must cover the FIFO peak");
    let snap_parked: u64 = r.obs.snapshot.shards.iter().map(|s| s.parked.total).sum();
    assert_eq!(snap_parked, r.parked, "obs counters must agree with the report");
}

#[test]
fn sustained_parking_opens_a_park_storm_incident() {
    let r = Service::run(&blocking_cfg(2)).expect("blocking service run");
    let storms: Vec<_> =
        r.obs.incidents.iter().filter(|i| i.cause == IncidentCause::ParkStorm).collect();
    assert!(!storms.is_empty(), "a sustained burst must open a ParkStorm incident");
    for inc in &storms {
        assert_ne!(inc.evidence_fnv, 0, "incident carries evidence");
        assert!(inc.bundle.is_some(), "a flight bundle is cut at open");
        if let Some(close) = inc.close_epoch {
            assert!(close >= inc.open_epoch);
        }
    }
    // The drain empties the park FIFO, so the last storm closes before
    // the run ends.
    assert!(
        storms.iter().any(|i| i.close_epoch.is_some()),
        "draining the parked backlog must close the storm"
    );
}

#[test]
fn same_traffic_without_blocking_sheds_load() {
    // Sanity for the tests above: identical traffic against the same
    // queues rejects when parking is off, so the zero-rejection result
    // measures the blocking path and not a mild burst.
    let cfg = ServeConfig { blocking: false, ..blocking_cfg(2) };
    let r = Service::run(&cfg).expect("non-blocking service run");
    assert!(r.rejected > 0, "the burst must overflow without parking");
    assert_eq!(r.parked, 0);
    assert_eq!(r.offered, r.admitted + r.rejected);
}

#[test]
fn blocking_report_is_byte_identical_across_worker_counts() {
    let runs: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&w| Service::run(&blocking_cfg(w)).expect("blocking service run"))
        .collect();
    let json0 = runs[0].to_json();
    assert!(json0.contains("\"parked\""), "report carries the park counters");
    for r in &runs[1..] {
        assert_eq!(r.to_json(), json0, "blocking reports must not depend on worker count");
    }
}
