//! Satellite requirement: a fixed-seed serve run must produce a
//! byte-identical committed history and byte-identical `BENCH_serve`
//! metrics for 1, 2 and 4 worker threads. Worker threads are an
//! execution resource, not a semantic knob: every shard is a
//! deterministic single-threaded engine, the coordinator processes
//! barrier results in shard order, and the report serializes only
//! virtual quantities.

use tm_serve::{EngineMode, MixConfig, ObsConfig, ServeConfig, Service};
use workloads::Variant;

fn cfg(workers: usize) -> ServeConfig {
    ServeConfig {
        shards: 4,
        workers,
        mix: MixConfig { requests: 192, ..MixConfig::mixed() },
        seed: 7,
        accounts: 96,
        table_words: 256,
        txl_words: 16,
        batch_warps: 1,
        n_locks: 1 << 10,
        ..ServeConfig::default()
    }
}

#[test]
fn report_and_history_identical_across_worker_counts() {
    let runs: Vec<_> =
        [1usize, 2, 4].iter().map(|&w| Service::run(&cfg(w)).expect("serve run")).collect();

    let json0 = runs[0].to_json();
    assert!(!json0.is_empty());
    for r in &runs[1..] {
        assert_eq!(r.to_json(), json0, "JSON must be byte-identical across worker counts");
    }

    for r in &runs[1..] {
        for (a, b) in runs[0].shard_reports.iter().zip(&r.shard_reports) {
            assert_eq!(a.history_fnv, b.history_fnv, "shard {} history diverged", a.shard);
            assert_eq!(a.commit_log_fnv, b.commit_log_fnv, "shard {} commit log diverged", a.shard);
        }
    }

    // The fixed-seed run is also a correct one.
    let r = &runs[0];
    assert_eq!(r.completed, r.admitted, "drain must neither lose nor duplicate requests");
    assert!(r.conserved, "bank conservation");
    assert!(r.txl_consistent, "TXL counters consistent");
    assert_eq!(r.violations_total, 0, "tm-check must pass on served histories");
    assert!(r.completed > 0);
}

/// Observability is part of the determinism contract: both encoders of
/// the final `MetricsSnapshot` — the JSON document and the Prometheus
/// text scrape — must be byte-identical for 1, 2 and 4 workers, with
/// narrow windows and the flight recorder capturing events so every
/// obs code path (window rolls, frame cuts, trace taps) is exercised.
#[test]
fn metrics_snapshot_identical_across_worker_counts() {
    let make = |workers| {
        let cfg = ServeConfig {
            obs: ObsConfig {
                window_cycles: 1 << 12,
                flight_events: 1 << 12,
                storm_open: 1,
                ..ObsConfig::default()
            },
            ..cfg(workers)
        };
        Service::run(&cfg).expect("serve run")
    };
    let runs: Vec<_> = [1usize, 2, 4].iter().map(|&w| make(w)).collect();
    let snap0 = &runs[0].obs.snapshot;
    assert!(snap0.window > 1, "run must cross several metric windows");
    let json0 = snap0.to_json();
    let prom0 = snap0.to_prometheus();
    assert!(prom0.contains("tm_commits_total"), "scrape has content");
    for r in &runs[1..] {
        assert_eq!(r.obs.snapshot.to_json(), json0, "snapshot JSON diverged across workers");
        assert_eq!(r.obs.snapshot.to_prometheus(), prom0, "scrape diverged across workers");
    }
}

#[test]
fn robust_mode_is_equally_deterministic() {
    let make = |workers| {
        let cfg =
            ServeConfig { variant: Variant::Optimized, mode: EngineMode::Robust, ..cfg(workers) };
        Service::run(&cfg).expect("robust serve run")
    };
    let a = make(1);
    let b = make(4);
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.violations_total, 0);
    assert!(a.conserved);
}

#[test]
fn seed_changes_the_served_history() {
    let a = Service::run(&cfg(2)).expect("serve run");
    let b = Service::run(&ServeConfig { seed: 8, ..cfg(2) }).expect("serve run");
    // Different seeds shuffle arrivals, routing and amounts; the
    // committed histories must not collide.
    let ha: Vec<u64> = a.shard_reports.iter().map(|s| s.history_fnv).collect();
    let hb: Vec<u64> = b.shard_reports.iter().map(|s| s.history_fnv).collect();
    assert_ne!(ha, hb);
}
