//! The observability acceptance scenario: a seeded crash-plan serve run
//! with an asynchronous recovery window must
//!
//! 1. open a `CrashRecovery` incident when the kill lands and close it
//!    when the shard recovers,
//! 2. cut a flight-recorder bundle whose trace slice replays under the
//!    existing Chrome-trace exporter,
//! 3. produce a `MetricsSnapshot` (and full obs report) byte-identical
//!    across 1, 2 and 4 workers and across two same-seed runs,
//! 4. keep the *ServeReport* durability-independent: crash incidents
//!    live in the `RecoveryReport`, never the serve report.

use tm_serve::{
    CrashPlan, CrashPoint, DurabilityConfig, HealthState, IncidentCause, MemStore, MixConfig,
    ObsConfig, RecoveryReport, ServeConfig, ServeReport, Service,
};

fn crash_cfg(workers: usize) -> ServeConfig {
    ServeConfig {
        shards: 2,
        workers,
        mix: MixConfig { requests: 96, ..MixConfig::mixed() },
        seed: 11,
        accounts: 64,
        table_words: 256,
        txl_words: 16,
        batch_warps: 1,
        n_locks: 1 << 10,
        durability: Some(DurabilityConfig {
            segment_batches: 2,
            recovery_rounds: 2,
            crash: Some(CrashPlan::at(0, CrashPoint::PostPrepare, 1)),
            ..DurabilityConfig::default()
        }),
        obs: ObsConfig { window_cycles: 1 << 14, flight_events: 1 << 12, ..ObsConfig::default() },
        ..ServeConfig::default()
    }
}

fn run(workers: usize) -> (ServeReport, RecoveryReport) {
    Service::run_durable(&crash_cfg(workers), MemStore::shared()).expect("durable run")
}

#[test]
fn crash_opens_a_recovering_incident_and_closes_on_recovery() {
    let (report, rec) = run(2);

    // The recovery window is epoch-visible: exactly one crash-recovery
    // incident for shard 0, opened at the kill, closed at recovery.
    let incidents: Vec<_> =
        report.obs.incidents.iter().filter(|i| i.cause == IncidentCause::CrashRecovery).collect();
    assert_eq!(incidents.len(), 1, "one crash-recovery incident: {:?}", report.obs.incidents);
    let inc = incidents[0];
    assert_eq!(inc.shard, 0);
    let close = inc.close_epoch.expect("incident closes when the shard recovers");
    assert!(close > inc.open_epoch, "recovery window spans virtual time");
    assert_ne!(inc.evidence_fnv, 0, "incident carries evidence");

    // The shard healed: final health is not Recovering, and the run
    // completed every admitted request.
    let shard0 = &report.obs.snapshot.shards[0];
    assert_ne!(shard0.health, HealthState::Recovering);
    assert_eq!(report.completed, report.admitted);
    assert!(report.conserved);

    // The recovery actually happened per the durability report.
    assert_eq!(rec.recoveries.len(), 1);
    assert_eq!(rec.recoveries[0].shard, 0);
}

#[test]
fn crash_bundle_replays_under_the_trace_exporter() {
    let (report, rec) = run(2);

    // The flight recorder cut a crash bundle on the recovery side (it
    // carries WAL state, so it must not live in the serve report).
    assert!(
        !rec.bundles.iter().any(|b| report.obs.bundles.contains(b)),
        "crash bundles must not leak into the serve report"
    );
    let bundle = rec
        .bundles
        .iter()
        .find(|b| b.cause == IncidentCause::CrashRecovery)
        .expect("crash cut a flight-recorder bundle");
    assert_eq!(bundle.shard, 0);
    assert!(!bundle.frames.is_empty(), "bundle retains pre-crash frames");
    assert!(
        bundle.frames.iter().any(|f| !f.tx_events.is_empty()),
        "frames carry captured trace events"
    );

    // The trace slice replays under the existing exporter as a complete
    // Chrome trace document with real events in it.
    let trace = bundle.chrome_trace();
    assert!(trace.starts_with(r#"{"traceEvents":["#), "{trace}");
    assert!(trace.ends_with(r#"],"displayTimeUnit":"ns"}"#), "{trace}");
    assert!(trace.contains(r#""cat":"stm""#), "trace slice has transaction events: {trace}");

    // The `.sched`-style context block situates the slice.
    let ctx = bundle.context();
    assert!(ctx.contains("meta cause crash_recovery"), "{ctx}");
    assert!(ctx.contains("meta shard 0"), "{ctx}");
    assert!(ctx.lines().all(|l| l.starts_with("meta ")), "{ctx}");
}

#[test]
fn obs_is_byte_identical_across_workers_and_reruns() {
    let (r1, rec1) = run(1);
    let (r2, rec2) = run(2);
    let (r4, rec4) = run(4);
    let (r1b, rec1b) = run(1);

    let snap = r1.obs.snapshot.to_json();
    let prom = r1.obs.snapshot.to_prometheus();
    for r in [&r2, &r4, &r1b] {
        assert_eq!(r.obs.snapshot.to_json(), snap, "snapshot diverged");
        assert_eq!(r.obs.snapshot.to_prometheus(), prom, "scrape diverged");
    }
    // Stronger: the whole serve report (obs block included) and the
    // whole recovery report are byte-identical.
    for r in [&r2, &r4, &r1b] {
        assert_eq!(r.to_json(), r1.to_json(), "serve report diverged");
    }
    for rec in [&rec2, &rec4, &rec1b] {
        assert_eq!(rec.to_json(), rec1.to_json(), "recovery report diverged");
    }
}

#[test]
fn synchronous_recovery_stays_invisible_in_the_serve_report() {
    // With `recovery_rounds: 0` the crash heals inside the round and the
    // serve report must stay byte-identical to an uncrashed run — so the
    // obs block must not register any epoch-visible incident either.
    let mk = |crash| ServeConfig {
        durability: Some(DurabilityConfig {
            segment_batches: 2,
            recovery_rounds: 0,
            crash,
            ..DurabilityConfig::default()
        }),
        ..crash_cfg(2)
    };
    let (crashed, rec) = Service::run_durable(
        &mk(Some(CrashPlan::at(0, CrashPoint::PostPrepare, 1))),
        MemStore::shared(),
    )
    .expect("crashed run");
    let (clean, _) = Service::run_durable(&mk(None), MemStore::shared()).expect("clean run");
    assert_eq!(crashed.to_json(), clean.to_json(), "sync recovery must be report-invisible");
    assert!(crashed.obs.incidents.is_empty(), "no epoch-visible incidents");
    // The recovery report still tells the whole story: a closed incident
    // and a crash bundle on the durability side.
    assert_eq!(rec.incidents.len(), 1);
    assert!(rec.incidents[0].close_epoch.is_some());
    assert!(!rec.bundles.is_empty());
}
