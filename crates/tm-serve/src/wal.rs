//! Per-shard write-ahead commit log with snapshots and compaction.
//!
//! Every shard appends to its own segmented log through a [`BlobStore`]
//! — an append/put/get/list/delete abstraction over named byte blobs
//! with two implementations: [`MemStore`] (in-process, for tests and
//! for crash-injection runs where the "disk" must survive a simulated
//! worker death) and [`DirStore`] (a directory of real files).
//!
//! ## Layout
//!
//! ```text
//! s{shard:03}/wal-{segment:08}   log segments, records appended in order
//! s{shard:03}/snap-{seq:08}      engine snapshot taken after batch `seq`
//! coord/decisions                coordinator 2PC decision log
//! ```
//!
//! ## Record framing
//!
//! Every record is `[MAGIC u32][kind u8][len u32][payload][fnv u64]`,
//! all little-endian; the trailing FNV-1a covers `kind`, `len` and the
//! payload. A record whose frame is incomplete or whose checksum fails
//! is *torn* — legal only as the final record of the final segment
//! (a crash mid-append), where recovery truncates it. Encoding is fully
//! deterministic, so a healed log is byte-identical to one written by a
//! crash-free run.
//!
//! The record stream per batch is: one [`WalRecord::Batch`] (the sealed
//! entries, written *before* execution), the batch's
//! [`WalRecord::Commit`] records (request-tagged write-sets captured by
//! the commit hook, flushed after execution), then one
//! [`WalRecord::Result`] sealing the group. A batch whose `Result` is
//! present is durable; replay verifies re-execution against it.

use crate::engine::{Entry, EntryOutcome, Fnv, ShardOp};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Frame marker preceding every WAL record.
pub(crate) const MAGIC: u32 = 0x57414C31; // "WAL1"

/// Blob name of the coordinator's 2PC decision log.
pub(crate) const DECISIONS: &str = "coord/decisions";

/// Named-blob storage backing the WAL: the minimal object-store surface
/// (append-only segments plus whole-blob put/get) that both an
/// in-process map and a directory of files can provide.
pub trait BlobStore: Send + Sync {
    /// Creates or truncates `name` with `bytes`.
    fn put(&self, name: &str, bytes: &[u8]);
    /// Appends `bytes` to `name`, creating it if absent.
    fn append(&self, name: &str, bytes: &[u8]);
    /// Full contents of `name`, or `None` if absent.
    fn get(&self, name: &str) -> Option<Vec<u8>>;
    /// All blob names starting with `prefix`, sorted.
    fn list(&self, prefix: &str) -> Vec<String>;
    /// Removes `name` (no-op if absent).
    fn delete(&self, name: &str);
}

/// Shared handle to a blob store.
pub type StoreHandle = Arc<dyn BlobStore>;

/// `(fnv, total_bytes)` over every blob name and its contents, in name
/// order — two stores fingerprint equal iff they hold identical bytes.
/// Works on any [`BlobStore`]; the byte-identical-healing tests compare
/// a crashed-and-recovered store against an uncrashed run's store.
pub fn store_fingerprint(store: &StoreHandle) -> (u64, u64) {
    let mut h = Fnv::new();
    let mut total = 0u64;
    for name in store.list("") {
        let bytes = store.get(&name).unwrap_or_default();
        h.u64(name.len() as u64);
        for &b in name.as_bytes() {
            h.u64(b as u64);
        }
        h.u64(bytes.len() as u64);
        for &b in bytes.iter() {
            h.u64(b as u64);
        }
        total += bytes.len() as u64;
    }
    (h.0, total)
}

/// In-memory blob store. Lives outside the shard engines, so it plays
/// the role of stable storage in kill-and-restart tests: the "disk"
/// survives the simulated worker death.
#[derive(Default)]
pub struct MemStore {
    blobs: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemStore {
    /// Creates an empty store behind a shared handle.
    pub fn shared() -> StoreHandle {
        Arc::new(MemStore::default())
    }

    /// FNV-1a over every blob name and its contents, in name order —
    /// two stores fingerprint equal iff they hold identical bytes.
    /// The byte-identical-healing tests compare a crashed-and-recovered
    /// store against an uncrashed run's store with this.
    pub fn fingerprint(&self) -> u64 {
        let blobs = self.blobs.lock().unwrap();
        let mut h = Fnv::new();
        for (name, bytes) in blobs.iter() {
            h.u64(name.len() as u64);
            for &b in name.as_bytes() {
                h.u64(b as u64);
            }
            h.u64(bytes.len() as u64);
            for &b in bytes.iter() {
                h.u64(b as u64);
            }
        }
        h.0
    }

    /// Total bytes across all blobs (compaction telemetry).
    pub fn total_bytes(&self) -> u64 {
        self.blobs.lock().unwrap().values().map(|v| v.len() as u64).sum()
    }
}

impl BlobStore for MemStore {
    fn put(&self, name: &str, bytes: &[u8]) {
        self.blobs.lock().unwrap().insert(name.to_string(), bytes.to_vec());
    }

    fn append(&self, name: &str, bytes: &[u8]) {
        self.blobs.lock().unwrap().entry(name.to_string()).or_default().extend_from_slice(bytes);
    }

    fn get(&self, name: &str) -> Option<Vec<u8>> {
        self.blobs.lock().unwrap().get(name).cloned()
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.blobs.lock().unwrap().keys().filter(|k| k.starts_with(prefix)).cloned().collect()
    }

    fn delete(&self, name: &str) {
        self.blobs.lock().unwrap().remove(name);
    }
}

///// Blob store over a directory: blob names map to relative paths
/// (the `/` in segment names becomes a subdirectory).
pub struct DirStore {
    root: PathBuf,
}

impl DirStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<DirStore> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DirStore { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn ensure_parent(&self, name: &str) {
        if let Some(parent) = self.path(name).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
    }

    fn walk(dir: &PathBuf, rel: &str, out: &mut Vec<String>) {
        let Ok(entries) = std::fs::read_dir(dir) else { return };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let child = if rel.is_empty() { name.clone() } else { format!("{rel}/{name}") };
            let path = entry.path();
            if path.is_dir() {
                Self::walk(&path, &child, out);
            } else {
                out.push(child);
            }
        }
    }
}

impl BlobStore for DirStore {
    fn put(&self, name: &str, bytes: &[u8]) {
        self.ensure_parent(name);
        std::fs::write(self.path(name), bytes).expect("DirStore put");
    }

    fn append(&self, name: &str, bytes: &[u8]) {
        self.ensure_parent(name);
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))
            .expect("DirStore append");
        f.write_all(bytes).expect("DirStore append");
    }

    fn get(&self, name: &str) -> Option<Vec<u8>> {
        std::fs::read(self.path(name)).ok()
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        let mut out = Vec::new();
        Self::walk(&self.root, "", &mut out);
        out.retain(|n| n.starts_with(prefix));
        out.sort();
        out
    }

    fn delete(&self, name: &str) {
        let _ = std::fs::remove_file(self.path(name));
    }
}

/// Little-endian byte encoder for record payloads.
pub(crate) struct Enc(pub Vec<u8>);

impl Enc {
    pub(crate) fn new() -> Self {
        Enc(Vec::new())
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
}

/// Cursor-based decoder matching [`Enc`]; every read is bounds-checked
/// so corrupt payloads surface as `None`, never a panic.
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        let bytes = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        let bytes = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    /// `Some(())` iff the cursor consumed the whole buffer.
    pub(crate) fn done(&self) -> Option<()> {
        (self.pos == self.buf.len()).then_some(())
    }
}

/// The sealed result of one batch as logged (and verified on replay).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct BatchSeal {
    /// Batch sequence number (per shard, from 1).
    pub seq: u64,
    /// Per-entry outcomes, in batch order.
    pub outcomes: Vec<EntryOutcome>,
    /// Simulated cycles the batch took.
    pub cycles: u64,
    /// Transactions committed during the batch.
    pub commits: u64,
    /// Aborted attempts during the batch.
    pub aborts: u64,
    /// Scheduler abort-storm flag after the batch.
    pub storm: bool,
    /// FNV-1a of the shard's device data span after the batch.
    pub data_fnv: u64,
    /// Incremental FNV-1a of the request-tagged commit log so far.
    pub log_fnv: u64,
}

/// One WAL record (see the module docs for the per-batch stream).
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum WalRecord {
    /// A sealed batch, logged before execution.
    Batch {
        /// Batch sequence number (per shard, from 1).
        seq: u64,
        /// The sealed entries, in batch order.
        entries: Vec<Entry>,
    },
    /// One committed transaction's request tag and write-set, captured
    /// by the commit hook in commit order. Replicas apply exactly these
    /// writes; `reads` is a count only (full read-sets live in the
    /// snapshot-carried history).
    Commit {
        /// Originating request id (`u64::MAX` for internal ops).
        req: u64,
        /// Committing thread id.
        tid: u32,
        /// Commit version + 1 (0 = read-only).
        version: u32,
        /// Snapshot the transaction validated against.
        snapshot: u32,
        /// Number of transactional reads.
        reads: u32,
        /// Write-set as (address, value) pairs, in recording order.
        writes: Vec<(u32, u32)>,
    },
    /// Seals a batch group: the batch executed and produced this result.
    Result(BatchSeal),
    /// Coordinator 2PC decision for a cross-shard request.
    Decision {
        /// Request id.
        req: u64,
        /// `true` = commit (apply credit), `false` = abort (compensate).
        commit: bool,
    },
    /// Initial device data span, written once at WAL birth so replicas
    /// can bootstrap without building an engine.
    Init {
        /// First word index of the span.
        base: u32,
        /// Initial span contents.
        words: Vec<u32>,
    },
}

impl WalRecord {
    fn kind(&self) -> u8 {
        match self {
            WalRecord::Batch { .. } => 1,
            WalRecord::Commit { .. } => 2,
            WalRecord::Result(_) => 3,
            WalRecord::Decision { .. } => 4,
            WalRecord::Init { .. } => 5,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            WalRecord::Batch { seq, entries } => {
                e.u64(*seq);
                e.u32(entries.len() as u32);
                for entry in entries {
                    e.u64(entry.req);
                    encode_op(&mut e, entry.op);
                }
            }
            WalRecord::Commit { req, tid, version, snapshot, reads, writes } => {
                e.u64(*req);
                e.u32(*tid);
                e.u32(*version);
                e.u32(*snapshot);
                e.u32(*reads);
                e.u32(writes.len() as u32);
                for &(addr, val) in writes {
                    e.u32(addr);
                    e.u32(val);
                }
            }
            WalRecord::Result(r) => enc_seal(&mut e, r),
            WalRecord::Decision { req, commit } => {
                e.u64(*req);
                e.u8(*commit as u8);
            }
            WalRecord::Init { base, words } => {
                e.u32(*base);
                e.u32(words.len() as u32);
                for &w in words {
                    e.u32(w);
                }
            }
        }
        e.0
    }

    /// Full framed encoding: `[MAGIC][kind][len][payload][fnv]`.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let payload = self.payload();
        frame(self.kind(), &payload)
    }

    fn decode(kind: u8, payload: &[u8]) -> Option<WalRecord> {
        let mut d = Dec::new(payload);
        let rec = match kind {
            1 => {
                let seq = d.u64()?;
                let n = d.u32()? as usize;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let req = d.u64()?;
                    let op = decode_op(&mut d)?;
                    entries.push(Entry { req, op });
                }
                WalRecord::Batch { seq, entries }
            }
            2 => {
                let req = d.u64()?;
                let tid = d.u32()?;
                let version = d.u32()?;
                let snapshot = d.u32()?;
                let reads = d.u32()?;
                let n = d.u32()? as usize;
                let mut writes = Vec::with_capacity(n);
                for _ in 0..n {
                    writes.push((d.u32()?, d.u32()?));
                }
                WalRecord::Commit { req, tid, version, snapshot, reads, writes }
            }
            3 => WalRecord::Result(dec_seal(&mut d)?),
            4 => {
                let req = d.u64()?;
                let commit = d.u8()? != 0;
                WalRecord::Decision { req, commit }
            }
            5 => {
                let base = d.u32()?;
                let n = d.u32()? as usize;
                let mut words = Vec::with_capacity(n);
                for _ in 0..n {
                    words.push(d.u32()?);
                }
                WalRecord::Init { base, words }
            }
            _ => return None,
        };
        d.done()?;
        Some(rec)
    }
}

/// Encodes a [`BatchSeal`] (shared by `Result` records and the
/// snapshot-embedded last seal).
pub(crate) fn enc_seal(e: &mut Enc, r: &BatchSeal) {
    e.u64(r.seq);
    e.u32(r.outcomes.len() as u32);
    for o in &r.outcomes {
        e.u8(o.ok as u8);
        e.u32(o.value);
    }
    e.u64(r.cycles);
    e.u64(r.commits);
    e.u64(r.aborts);
    e.u8(r.storm as u8);
    e.u64(r.data_fnv);
    e.u64(r.log_fnv);
}

/// Decodes a [`BatchSeal`] written by [`enc_seal`].
pub(crate) fn dec_seal(d: &mut Dec) -> Option<BatchSeal> {
    let seq = d.u64()?;
    let n = d.u32()? as usize;
    let mut outcomes = Vec::with_capacity(n);
    for _ in 0..n {
        let ok = d.u8()? != 0;
        let value = d.u32()?;
        outcomes.push(EntryOutcome { ok, value });
    }
    Some(BatchSeal {
        seq,
        outcomes,
        cycles: d.u64()?,
        commits: d.u64()?,
        aborts: d.u64()?,
        storm: d.u8()? != 0,
        data_fnv: d.u64()?,
        log_fnv: d.u64()?,
    })
}

/// Frames a payload: `[MAGIC][kind][len][payload][fnv]` with the FNV-1a
/// checksum over kind, len and payload bytes.
pub(crate) fn frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 17);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&frame_fnv(kind, payload).to_le_bytes());
    out
}

fn frame_fnv(kind: u8, payload: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.u64(kind as u64);
    h.u64(payload.len() as u64);
    for &b in payload {
        h.u64(b as u64);
    }
    h.0
}

/// Attempts to read one framed record at `buf[pos..]`. Returns the
/// record and the following offset, or `None` if the frame is
/// incomplete or corrupt (a torn tail when at the end of the log).
fn read_frame(buf: &[u8], pos: usize) -> Option<(WalRecord, usize)> {
    let header = buf.get(pos..pos + 9)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return None;
    }
    let kind = header[4];
    let len = u32::from_le_bytes(header[5..9].try_into().unwrap()) as usize;
    let payload = buf.get(pos + 9..pos + 9 + len)?;
    let sum_bytes = buf.get(pos + 9 + len..pos + 17 + len)?;
    let sum = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    if sum != frame_fnv(kind, payload) {
        return None;
    }
    let rec = WalRecord::decode(kind, payload)?;
    Some((rec, pos + 17 + len))
}

fn encode_op(e: &mut Enc, op: ShardOp) {
    let (k, a, b, c) = match op {
        ShardOp::Transfer { from, to, amount } => (0u8, from, to, amount),
        ShardOp::PrepareDebit { from, amount } => (1, from, 0, amount),
        ShardOp::PrepareCredit { to, amount } => (2, to, 0, amount),
        ShardOp::ApplyCredit { to, amount } => (3, to, 0, amount),
        ShardOp::RollbackDebit { from, amount } => (4, from, 0, amount),
        ShardOp::HtPut { key, val } => (5, key, val, 0),
        ShardOp::HtGet { key } => (6, key, 0, 0),
        ShardOp::TxlBump { key } => (7, key, 0, 0),
    };
    e.u8(k);
    e.u32(a);
    e.u32(b);
    e.u32(c);
}

fn decode_op(d: &mut Dec) -> Option<ShardOp> {
    let k = d.u8()?;
    let a = d.u32()?;
    let b = d.u32()?;
    let c = d.u32()?;
    Some(match k {
        0 => ShardOp::Transfer { from: a, to: b, amount: c },
        1 => ShardOp::PrepareDebit { from: a, amount: c },
        2 => ShardOp::PrepareCredit { to: a, amount: c },
        3 => ShardOp::ApplyCredit { to: a, amount: c },
        4 => ShardOp::RollbackDebit { from: a, amount: c },
        5 => ShardOp::HtPut { key: a, val: b },
        6 => ShardOp::HtGet { key: a },
        7 => ShardOp::TxlBump { key: a },
        _ => return None,
    })
}

/// Segment blob name for `shard`, segment `seg`.
pub(crate) fn seg_name(shard: usize, seg: u64) -> String {
    format!("s{shard:03}/wal-{seg:08}")
}

/// Snapshot blob name for `shard`, taken after batch `seq`.
pub(crate) fn snap_name(shard: usize, seq: u64) -> String {
    format!("s{shard:03}/snap-{seq:08}")
}

fn parse_suffix(name: &str, sep: char) -> Option<u64> {
    name.rsplit(sep).next()?.parse().ok()
}

/// One shard's WAL as read back from the store: records grouped by
/// segment, with a torn final record (if any) already excluded.
pub(crate) struct ShardWal {
    /// `(segment index, records)` in segment order.
    pub segs: Vec<(u64, Vec<WalRecord>)>,
    /// Whether the final segment ended in a torn (incomplete or
    /// checksum-failing) record — legal only there.
    pub torn: bool,
}

impl ShardWal {
    /// All records across segments, in log order.
    pub(crate) fn records(&self) -> impl Iterator<Item = &WalRecord> {
        self.segs.iter().flat_map(|(_, recs)| recs.iter())
    }
}

/// Reads and verifies every segment of `shard`'s log.
///
/// # Errors
///
/// A torn record anywhere but the very tail of the final segment is
/// corruption, not a crash artifact, and is reported as an error.
pub(crate) fn read_shard_wal(store: &StoreHandle, shard: usize) -> Result<ShardWal, String> {
    let prefix = format!("s{shard:03}/wal-");
    let names = store.list(&prefix);
    let mut segs = Vec::new();
    let mut torn = false;
    for (i, name) in names.iter().enumerate() {
        let seg = parse_suffix(name, '-')
            .ok_or_else(|| format!("unparseable WAL segment name {name:?}"))?;
        let bytes = store.get(name).unwrap_or_default();
        let mut recs = Vec::new();
        let mut pos = 0;
        while pos < bytes.len() {
            match read_frame(&bytes, pos) {
                Some((rec, next)) => {
                    recs.push(rec);
                    pos = next;
                }
                None => {
                    if i + 1 != names.len() {
                        return Err(format!(
                            "corrupt record at byte {pos} of non-final segment {name:?}"
                        ));
                    }
                    torn = true;
                    break;
                }
            }
        }
        segs.push((seg, recs));
    }
    Ok(ShardWal { segs, torn })
}

/// Append-side handle to one shard's log. Resume-aware: opening scans
/// the existing final segment (if any), so a recovered engine and a
/// fresh one share the same construction path.
pub(crate) struct WalWriter {
    store: StoreHandle,
    shard: usize,
    /// Current (final) segment index.
    seg: u64,
    /// `Batch` records appended to the current segment so far.
    seg_batches: u64,
}

impl WalWriter {
    /// Opens the shard's log for appending, creating segment 0 if the
    /// log is empty.
    ///
    /// # Errors
    ///
    /// Propagates scan errors; the final segment must be clean (torn
    /// tails are the recovery module's job to truncate first).
    pub(crate) fn open(store: StoreHandle, shard: usize) -> Result<WalWriter, String> {
        let wal = read_shard_wal(&store, shard)?;
        if wal.torn {
            return Err(format!("shard {shard} WAL has a torn tail; recover before appending"));
        }
        let (seg, seg_batches) = match wal.segs.last() {
            Some((seg, recs)) => {
                let batches =
                    recs.iter().filter(|r| matches!(r, WalRecord::Batch { .. })).count() as u64;
                (*seg, batches)
            }
            None => {
                store.put(&seg_name(shard, 0), &[]);
                (0, 0)
            }
        };
        Ok(WalWriter { store, shard, seg, seg_batches })
    }

    /// Appends one record to the current segment.
    pub(crate) fn append(&mut self, rec: &WalRecord) {
        self.store.append(&seg_name(self.shard, self.seg), &rec.encode());
        if matches!(rec, WalRecord::Batch { .. }) {
            self.seg_batches += 1;
        }
    }

    /// Appends only the first `keep` bytes of `rec`'s encoding — the
    /// crash-injection path for dying mid-append (a torn tail).
    pub(crate) fn append_torn(&self, rec: &WalRecord, keep: usize) {
        let bytes = rec.encode();
        let keep = keep.min(bytes.len().saturating_sub(1)).max(1);
        self.store.append(&seg_name(self.shard, self.seg), &bytes[..keep]);
    }

    /// Starts a fresh segment.
    pub(crate) fn roll(&mut self) {
        self.seg += 1;
        self.seg_batches = 0;
        self.store.put(&seg_name(self.shard, self.seg), &[]);
    }

    /// Deletes every segment before the current one (safe once a
    /// snapshot at or past the last rolled batch exists).
    pub(crate) fn compact(&self) {
        for name in self.store.list(&format!("s{:03}/wal-", self.shard)) {
            if parse_suffix(&name, '-').is_some_and(|s| s < self.seg) {
                self.store.delete(&name);
            }
        }
    }

    /// Stores an engine snapshot taken after batch `seq`, checksum-framed
    /// like a record, and deletes older snapshots.
    pub(crate) fn put_snapshot(&self, seq: u64, payload: &[u8]) {
        let name = snap_name(self.shard, seq);
        self.store.put(&name, &frame(0, payload));
        for old in self.store.list(&format!("s{:03}/snap-", self.shard)) {
            if old != name {
                self.store.delete(&old);
            }
        }
    }

    /// `Batch` records in the current segment.
    #[cfg(test)]
    pub(crate) fn seg_batches(&self) -> u64 {
        self.seg_batches
    }

    /// Current segment index.
    #[cfg(test)]
    pub(crate) fn current_seg(&self) -> u64 {
        self.seg
    }
}

/// Latest snapshot for `shard`: `(seq, payload)` with the checksum frame
/// verified and stripped, or `None` if no snapshot exists.
pub(crate) fn latest_snapshot(store: &StoreHandle, shard: usize) -> Option<(u64, Vec<u8>)> {
    let name = store.list(&format!("s{shard:03}/snap-")).pop()?;
    let seq = parse_suffix(&name, '-')?;
    let bytes = store.get(&name)?;
    let (rec_bytes, _) = verify_snapshot_frame(&bytes)?;
    Some((seq, rec_bytes))
}

/// Verifies a snapshot blob's `[MAGIC][0][len][payload][fnv]` frame and
/// returns the payload.
fn verify_snapshot_frame(buf: &[u8]) -> Option<(Vec<u8>, usize)> {
    let header = buf.get(..9)?;
    if u32::from_le_bytes(header[0..4].try_into().unwrap()) != MAGIC || header[4] != 0 {
        return None;
    }
    let len = u32::from_le_bytes(header[5..9].try_into().unwrap()) as usize;
    let payload = buf.get(9..9 + len)?;
    let sum = u64::from_le_bytes(buf.get(9 + len..17 + len)?.try_into().unwrap());
    if sum != frame_fnv(0, payload) {
        return None;
    }
    Some((payload.to_vec(), 17 + len))
}

/// Appends a coordinator 2PC decision to the shared decision log.
pub(crate) fn append_decision(store: &StoreHandle, req: u64, commit: bool) {
    store.append(DECISIONS, &WalRecord::Decision { req, commit }.encode());
}

///// Reads the coordinator decision log: request id → decision. A torn
/// final record (coordinator died mid-append) is dropped — by presumed
/// abort, an unlogged decision is an abort.
pub(crate) fn read_decisions(store: &StoreHandle) -> BTreeMap<u64, bool> {
    let mut out = BTreeMap::new();
    let Some(bytes) = store.get(DECISIONS) else { return out };
    let mut pos = 0;
    while pos < bytes.len() {
        match read_frame(&bytes, pos) {
            Some((WalRecord::Decision { req, commit }, next)) => {
                out.insert(req, commit);
                pos = next;
            }
            _ => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Init { base: 16, words: vec![100, 0, 100, 7] },
            WalRecord::Batch {
                seq: 1,
                entries: vec![
                    Entry { req: 9, op: ShardOp::Transfer { from: 1, to: 2, amount: 3 } },
                    Entry { req: 10, op: ShardOp::HtPut { key: 5, val: 6 } },
                    Entry { req: 11, op: ShardOp::TxlBump { key: 0 } },
                ],
            },
            WalRecord::Commit {
                req: 9,
                tid: 3,
                version: 2,
                snapshot: 1,
                reads: 2,
                writes: vec![(17, 97), (18, 103)],
            },
            WalRecord::Result(BatchSeal {
                seq: 1,
                outcomes: vec![
                    EntryOutcome { ok: true, value: 0 },
                    EntryOutcome { ok: true, value: 6 },
                    EntryOutcome { ok: false, value: 0 },
                ],
                cycles: 1234,
                commits: 3,
                aborts: 1,
                storm: false,
                data_fnv: 0xdead_beef,
                log_fnv: 0xfeed_face,
            }),
            WalRecord::Decision { req: 9, commit: true },
        ]
    }

    #[test]
    fn records_round_trip_through_framing() {
        for rec in sample_records() {
            let bytes = rec.encode();
            let (back, next) = read_frame(&bytes, 0).expect("decode");
            assert_eq!(back, rec);
            assert_eq!(next, bytes.len());
        }
    }

    #[test]
    fn every_op_round_trips() {
        let ops = [
            ShardOp::Transfer { from: 1, to: 2, amount: 3 },
            ShardOp::PrepareDebit { from: 4, amount: 5 },
            ShardOp::PrepareCredit { to: 6, amount: 7 },
            ShardOp::ApplyCredit { to: 8, amount: 9 },
            ShardOp::RollbackDebit { from: 10, amount: 11 },
            ShardOp::HtPut { key: 12, val: 13 },
            ShardOp::HtGet { key: 14 },
            ShardOp::TxlBump { key: 15 },
        ];
        for op in ops {
            let mut e = Enc::new();
            encode_op(&mut e, op);
            let mut d = Dec::new(&e.0);
            assert_eq!(decode_op(&mut d), Some(op));
            assert_eq!(d.done(), Some(()));
        }
    }

    #[test]
    fn corrupt_checksum_is_rejected() {
        let mut bytes = sample_records()[1].encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(read_frame(&bytes, 0).is_none());
    }

    #[test]
    fn torn_tail_detected_only_in_final_segment() {
        let store = MemStore::shared();
        let mut w = WalWriter::open(Arc::clone(&store), 0).unwrap();
        let recs = sample_records();
        w.append(&recs[1]);
        w.append(&recs[3]);
        w.append_torn(&recs[1], 10);
        let wal = read_shard_wal(&store, 0).unwrap();
        assert!(wal.torn);
        assert_eq!(wal.records().count(), 2);

        // The same tear in a non-final segment is corruption.
        let mut w2 = WalWriter::open(Arc::clone(&store), 1).unwrap_or_else(|_| unreachable!());
        w2.append(&recs[1]);
        w2.append_torn(&recs[1], 10);
        w2.roll();
        w2.append(&recs[3]);
        assert!(read_shard_wal(&store, 1).is_err());
    }

    #[test]
    fn writer_resumes_at_existing_tail() {
        let store = MemStore::shared();
        let recs = sample_records();
        {
            let mut w = WalWriter::open(Arc::clone(&store), 0).unwrap();
            w.append(&recs[1]);
            w.append(&recs[3]);
        }
        let w = WalWriter::open(Arc::clone(&store), 0).unwrap();
        assert_eq!(w.current_seg(), 0);
        assert_eq!(w.seg_batches(), 1);
    }

    #[test]
    fn roll_and_compact_drop_old_segments() {
        let store = MemStore::shared();
        let mut w = WalWriter::open(Arc::clone(&store), 0).unwrap();
        let recs = sample_records();
        w.append(&recs[1]);
        w.roll();
        w.append(&recs[3]);
        assert_eq!(store.list("s000/wal-").len(), 2);
        w.compact();
        let names = store.list("s000/wal-");
        assert_eq!(names, vec![seg_name(0, 1)]);
        let wal = read_shard_wal(&store, 0).unwrap();
        assert_eq!(wal.records().count(), 1);
    }

    #[test]
    fn snapshot_round_trips_and_supersedes() {
        let store = MemStore::shared();
        let w = WalWriter::open(Arc::clone(&store), 2).unwrap();
        w.put_snapshot(4, b"earlier");
        w.put_snapshot(9, b"payload bytes");
        let (seq, payload) = latest_snapshot(&store, 2).unwrap();
        assert_eq!(seq, 9);
        assert_eq!(payload, b"payload bytes");
        assert_eq!(store.list("s002/snap-").len(), 1, "older snapshot deleted");

        // Corrupt the snapshot: it must be rejected, not misread.
        let name = snap_name(2, 9);
        let mut bytes = store.get(&name).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        store.put(&name, &bytes);
        assert!(latest_snapshot(&store, 2).is_none());
    }

    #[test]
    fn decision_log_round_trips_with_presumed_abort_on_tear() {
        let store = MemStore::shared();
        append_decision(&store, 7, true);
        append_decision(&store, 8, false);
        // Coordinator dies mid-append of a third decision.
        let torn = WalRecord::Decision { req: 9, commit: true }.encode();
        store.append(DECISIONS, &torn[..torn.len() - 3]);
        let d = read_decisions(&store);
        assert_eq!(d.get(&7), Some(&true));
        assert_eq!(d.get(&8), Some(&false));
        assert_eq!(d.get(&9), None, "unlogged decision is an abort by presumption");
    }

    #[test]
    fn memstore_fingerprint_tracks_content() {
        let a = MemStore::default();
        let b = MemStore::default();
        a.put("x", b"one");
        b.put("x", b"one");
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.append("x", b"!");
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(b.total_bytes(), 4);
    }

    #[test]
    fn dirstore_round_trips_on_disk() {
        let root = std::env::temp_dir()
            .join(format!("tm-serve-wal-test-{}", std::process::id()))
            .join("store");
        let _ = std::fs::remove_dir_all(&root);
        let store: StoreHandle = Arc::new(DirStore::open(&root).unwrap());
        let mut w = WalWriter::open(Arc::clone(&store), 0).unwrap();
        let recs = sample_records();
        w.append(&recs[1]);
        w.append(&recs[3]);
        w.put_snapshot(1, b"snap");
        let wal = read_shard_wal(&store, 0).unwrap();
        assert_eq!(wal.records().count(), 2);
        assert!(!wal.torn);
        assert_eq!(latest_snapshot(&store, 0).unwrap(), (1, b"snap".to_vec()));
        assert_eq!(store.list("s000/").len(), 2);
        std::fs::remove_dir_all(root.parent().unwrap()).unwrap();
    }

    #[test]
    fn identical_streams_produce_identical_bytes() {
        let write = || {
            let store = Arc::new(MemStore::default());
            let handle: StoreHandle = Arc::clone(&store) as StoreHandle;
            let mut w = WalWriter::open(handle, 0).unwrap();
            for rec in sample_records() {
                w.append(&rec);
            }
            w.put_snapshot(1, b"snap");
            store.fingerprint()
        };
        assert_eq!(write(), write());
    }
}
