//! Shard engine STM instantiation.
//!
//! The workload crates dispatch through a generic `StmRunner` because
//! each run uses exactly one concrete STM type. A serving shard instead
//! holds its STM for its whole lifetime across many batch launches, so
//! the concrete variant is erased once at construction into an enum
//! ([`EngineStm`]) that delegates the warp-wide [`Stm`] API — keeping
//! the engine object-safe-free (the trait has `async fn`s) while still
//! letting one shard struct serve every variant of the evaluation.

use crate::error::ServeError;
use gpu_sim::{LaneAddrs, LaneMask, LaneVals, LaunchConfig, Sim, WarpCtx};
use gpu_stm::{
    CglStm, EgpgvStm, LockStm, NorecStm, OptimizedStm, Recorder, Robust, Scheduled, StatsHandle,
    Stm, StmConfig, StmShared, TxTraceSink, WarpTx,
};
use std::rc::Rc;
use workloads::Variant;

/// How the base variant is wrapped for serving.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EngineMode {
    /// The bare variant.
    Plain,
    /// Wrapped in the AIMD [`Scheduled`] concurrency limiter — the
    /// default, because its abort-storm signal also feeds the service's
    /// retry-after hints.
    Scheduled,
    /// [`Robust`] serialization fallback over the scheduled variant.
    Robust,
}

impl EngineMode {
    /// Parses a mode by name (`plain`, `scheduled`, `robust`).
    pub fn parse(name: &str) -> Option<EngineMode> {
        match name.to_ascii_lowercase().as_str() {
            "plain" => Some(EngineMode::Plain),
            "scheduled" => Some(EngineMode::Scheduled),
            "robust" => Some(EngineMode::Robust),
            _ => None,
        }
    }

    /// Short machine-friendly name.
    pub fn short_name(self) -> &'static str {
        match self {
            EngineMode::Plain => "plain",
            EngineMode::Scheduled => "scheduled",
            EngineMode::Robust => "robust",
        }
    }
}

/// One concrete base variant.
pub(crate) enum BaseStm {
    Cgl(CglStm),
    Egpgv(EgpgvStm),
    Norec(NorecStm),
    Lock(LockStm),
    Optimized(OptimizedStm),
}

macro_rules! base_delegate {
    ($self:ident, $s:ident => $body:expr) => {
        match $self {
            BaseStm::Cgl($s) => $body,
            BaseStm::Egpgv($s) => $body,
            BaseStm::Norec($s) => $body,
            BaseStm::Lock($s) => $body,
            BaseStm::Optimized($s) => $body,
        }
    };
}

impl Stm for BaseStm {
    fn name(&self) -> &'static str {
        base_delegate!(self, s => s.name())
    }

    fn new_warp(&self) -> WarpTx {
        base_delegate!(self, s => s.new_warp())
    }

    fn stats(&self) -> StatsHandle {
        base_delegate!(self, s => s.stats())
    }

    async fn begin(&self, w: &mut WarpTx, ctx: &WarpCtx, want: LaneMask) -> LaneMask {
        base_delegate!(self, s => s.begin(w, ctx, want).await)
    }

    async fn read(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
    ) -> LaneVals {
        base_delegate!(self, s => s.read(w, ctx, mask, addrs).await)
    }

    async fn write(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
        vals: &LaneVals,
    ) {
        base_delegate!(self, s => s.write(w, ctx, mask, addrs, vals).await)
    }

    async fn commit(&self, w: &mut WarpTx, ctx: &WarpCtx, mask: LaneMask) -> LaneMask {
        base_delegate!(self, s => s.commit(w, ctx, mask).await)
    }

    fn opaque(&self, w: &WarpTx) -> LaneMask {
        base_delegate!(self, s => s.opaque(w))
    }

    fn abort_storm(&self) -> bool {
        base_delegate!(self, s => s.abort_storm())
    }
}

/// The shard's STM: a base variant, optionally wrapped.
pub(crate) enum EngineStm {
    Base(BaseStm),
    Scheduled(Scheduled<BaseStm>),
    Robust(Robust<Scheduled<BaseStm>>),
}

macro_rules! engine_delegate {
    ($self:ident, $s:ident => $body:expr) => {
        match $self {
            EngineStm::Base($s) => $body,
            EngineStm::Scheduled($s) => $body,
            EngineStm::Robust($s) => $body,
        }
    };
}

impl EngineStm {
    /// The [`Scheduled`] wrapper, when one is in the stack (directly or
    /// under [`Robust`]) — its adaptive-control state is part of engine
    /// snapshots.
    pub(crate) fn sched(&self) -> Option<&Scheduled<BaseStm>> {
        match self {
            EngineStm::Base(_) => None,
            EngineStm::Scheduled(s) => Some(s),
            EngineStm::Robust(r) => Some(r.inner()),
        }
    }

    /// The [`Robust`] wrapper, when the stack has one — its backoff RNG
    /// is part of engine snapshots.
    pub(crate) fn robust(&self) -> Option<&Robust<Scheduled<BaseStm>>> {
        match self {
            EngineStm::Robust(r) => Some(r),
            _ => None,
        }
    }
}

impl Stm for EngineStm {
    fn name(&self) -> &'static str {
        engine_delegate!(self, s => s.name())
    }

    fn new_warp(&self) -> WarpTx {
        engine_delegate!(self, s => s.new_warp())
    }

    fn stats(&self) -> StatsHandle {
        engine_delegate!(self, s => s.stats())
    }

    async fn begin(&self, w: &mut WarpTx, ctx: &WarpCtx, want: LaneMask) -> LaneMask {
        engine_delegate!(self, s => s.begin(w, ctx, want).await)
    }

    async fn read(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
    ) -> LaneVals {
        engine_delegate!(self, s => s.read(w, ctx, mask, addrs).await)
    }

    async fn write(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
        vals: &LaneVals,
    ) {
        engine_delegate!(self, s => s.write(w, ctx, mask, addrs, vals).await)
    }

    async fn commit(&self, w: &mut WarpTx, ctx: &WarpCtx, mask: LaneMask) -> LaneMask {
        engine_delegate!(self, s => s.commit(w, ctx, mask).await)
    }

    fn opaque(&self, w: &WarpTx) -> LaneMask {
        engine_delegate!(self, s => s.opaque(w))
    }

    fn abort_storm(&self) -> bool {
        engine_delegate!(self, s => s.abort_storm())
    }
}

/// Instantiates `variant` in `sim` with `recorder` (and, when given, the
/// flight-recorder `trace` tap) attached, wrapped per `mode`. Mirrors
/// `workloads::dispatch`, but returns a long-lived value instead of
/// running a one-shot closure.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_stm(
    sim: &mut Sim,
    variant: Variant,
    mode: EngineMode,
    stm_cfg: StmConfig,
    shared_data_words: u64,
    grid: LaunchConfig,
    recorder: Recorder,
    trace: Option<TxTraceSink>,
) -> Result<EngineStm, ServeError> {
    let err = |e: gpu_sim::SimError| ServeError::BadConfig(format!("stm init: {e}"));
    // Applies the optional trace tap to any builder-style STM value.
    macro_rules! traced {
        ($stm:expr) => {{
            let stm = $stm;
            match &trace {
                Some(t) => stm.with_trace(Rc::clone(t)),
                None => stm,
            }
        }};
    }
    let base = match variant {
        Variant::Cgl => {
            BaseStm::Cgl(traced!(CglStm::init(sim).map_err(err)?.with_recorder(recorder)))
        }
        Variant::Egpgv => {
            let shared = StmShared::init(sim, &stm_cfg).map_err(err)?;
            let stm = EgpgvStm::init(sim, shared, stm_cfg).map_err(err)?.with_recorder(recorder);
            if !stm.supports(grid) {
                return Err(ServeError::BadConfig(format!(
                    "STM-EGPGV cannot serve a {}-block batch grid",
                    grid.blocks
                )));
            }
            BaseStm::Egpgv(traced!(stm))
        }
        Variant::Vbv => {
            let shared = StmShared::init(sim, &stm_cfg).map_err(err)?;
            BaseStm::Norec(traced!(NorecStm::new(shared, stm_cfg).with_recorder(recorder)))
        }
        Variant::Optimized => {
            let shared = StmShared::init(sim, &stm_cfg).map_err(err)?;
            BaseStm::Optimized(traced!(
                OptimizedStm::new(shared, stm_cfg, shared_data_words).with_recorder(recorder)
            ))
        }
        Variant::TbvSorting | Variant::HvSorting | Variant::HvBackoff | Variant::TbvBackoff => {
            let shared = StmShared::init(sim, &stm_cfg).map_err(err)?;
            let stm = match variant {
                Variant::TbvSorting => LockStm::tbv_sorting(shared, stm_cfg),
                Variant::HvSorting => LockStm::hv_sorting(shared, stm_cfg),
                Variant::HvBackoff => LockStm::hv_backoff(shared, stm_cfg),
                _ => LockStm::tbv_backoff(shared, stm_cfg),
            };
            BaseStm::Lock(traced!(stm.with_recorder(recorder)))
        }
    };
    Ok(match mode {
        EngineMode::Plain => EngineStm::Base(base),
        EngineMode::Scheduled => EngineStm::Scheduled(traced!(Scheduled::with_defaults(base))),
        EngineMode::Robust => {
            let sched = traced!(Scheduled::with_defaults(base));
            EngineStm::Robust(traced!(Robust::with_defaults(sim, sched).map_err(err)?))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parse_round_trips() {
        for m in [EngineMode::Plain, EngineMode::Scheduled, EngineMode::Robust] {
            assert_eq!(EngineMode::parse(m.short_name()), Some(m));
        }
        assert_eq!(EngineMode::parse("turbo"), None);
    }
}
