//! Seeded crash-point injection for kill-and-restart testing.
//!
//! A [`CrashPlan`] kills exactly one shard worker at a chosen (or
//! seeded-random) point in a batch's durability lifecycle, mirroring
//! the `gpu_sim::FaultPlan` idiom: every unspecified coordinate is
//! drawn from an independent splitmix64 stream, so a plan with a given
//! seed is fully reproducible while still exploring the crash space.
//!
//! The four [`CrashPoint`]s cover the distinct failure classes of the
//! write-ahead protocol:
//!
//! - [`WalAppend`](CrashPoint::WalAppend) — mid-append of the batch
//!   record: the log gains a torn tail that recovery must truncate.
//! - [`PrePrepare`](CrashPoint::PrePrepare) — batch logged but not
//!   executed: replay must re-execute it from the log.
//! - [`PostPrepare`](CrashPoint::PostPrepare) — executed and sealed in
//!   the log, but the coordinator never saw the result: replay must
//!   *verify* re-execution against the logged seal, not duplicate it.
//! - [`PreAck`](CrashPoint::PreAck) — like post-prepare but after the
//!   snapshot cadence ran, so recovery may restore a snapshot that
//!   already contains the batch and must answer from the log alone.

use std::fmt;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Where in the batch durability lifecycle the worker dies.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// Mid-append of the batch's WAL record (torn tail).
    WalAppend,
    /// After the batch record is durable, before execution.
    PrePrepare,
    /// After execution and the sealing result record, before the
    /// snapshot cadence runs.
    PostPrepare,
    /// After the snapshot cadence, before acknowledging the batch to
    /// the coordinator.
    PreAck,
}

impl CrashPoint {
    /// Every crash point, in lifecycle order.
    pub const ALL: [CrashPoint; 4] = [
        CrashPoint::WalAppend,
        CrashPoint::PrePrepare,
        CrashPoint::PostPrepare,
        CrashPoint::PreAck,
    ];

    /// Parses a point by name (`wal-append`, `pre-prepare`,
    /// `post-prepare`, `pre-ack`).
    pub fn parse(name: &str) -> Option<CrashPoint> {
        match name.to_ascii_lowercase().as_str() {
            "wal-append" => Some(CrashPoint::WalAppend),
            "pre-prepare" => Some(CrashPoint::PrePrepare),
            "post-prepare" => Some(CrashPoint::PostPrepare),
            "pre-ack" => Some(CrashPoint::PreAck),
            _ => None,
        }
    }

    /// Short machine-friendly name (the `parse` spelling).
    pub fn short_name(self) -> &'static str {
        match self {
            CrashPoint::WalAppend => "wal-append",
            CrashPoint::PrePrepare => "pre-prepare",
            CrashPoint::PostPrepare => "post-prepare",
            CrashPoint::PreAck => "pre-ack",
        }
    }
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A seed-controlled plan to kill one shard worker once. Unspecified
/// coordinates (shard, point, batch) are resolved from the seed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CrashPlan {
    /// Seed for resolving unspecified coordinates.
    pub seed: u64,
    /// Shard whose worker dies; `None` = seeded choice.
    pub shard: Option<usize>,
    /// Lifecycle point of death; `None` = seeded choice.
    pub point: Option<CrashPoint>,
    /// The worker dies while processing its batch number
    /// `after_batches + 1` (per-shard sequence); `None` = seeded
    /// choice in a small early window.
    pub after_batches: Option<u64>,
}

impl CrashPlan {
    /// Fully pinned plan: kill `shard` at `point` during its batch
    /// `after_batches + 1`.
    pub fn at(shard: usize, point: CrashPoint, after_batches: u64) -> CrashPlan {
        CrashPlan {
            seed: 0,
            shard: Some(shard),
            point: Some(point),
            after_batches: Some(after_batches),
        }
    }

    /// Fully seeded plan: every coordinate drawn from `seed`.
    pub fn seeded(seed: u64) -> CrashPlan {
        CrashPlan { seed, shard: None, point: None, after_batches: None }
    }

    /// Resolves the plan against a service of `shards` shards. Each
    /// coordinate uses an independent stream (seed XOR a distinct
    /// square-root constant), so pinning one never shifts another's
    /// draw.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or a pinned shard is out of range.
    pub fn resolve(&self, shards: usize) -> ResolvedCrash {
        assert!(shards > 0, "cannot resolve a crash against zero shards");
        let shard = match self.shard {
            Some(s) => {
                assert!(s < shards, "crash shard {s} out of range for {shards} shards");
                s
            }
            None => {
                let mut rng = self.seed ^ 0x6a09_e667_f3bc_c908; // sqrt(2) bits
                (splitmix64(&mut rng) % shards as u64) as usize
            }
        };
        let point = self.point.unwrap_or_else(|| {
            let mut rng = self.seed ^ 0xbb67_ae85_84ca_a73b; // sqrt(3) bits
            CrashPoint::ALL[(splitmix64(&mut rng) % 4) as usize]
        });
        let seq = match self.after_batches {
            Some(n) => n + 1,
            None => {
                let mut rng = self.seed ^ 0x3c6e_f372_fe94_f82b; // sqrt(5) bits
                1 + splitmix64(&mut rng) % 4
            }
        };
        ResolvedCrash { shard, seq, point }
    }
}

/// A concrete crash: shard `shard` dies at `point` while processing its
/// `seq`-th batch (per-shard sequence numbers start at 1).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ResolvedCrash {
    /// Shard whose worker dies.
    pub shard: usize,
    /// Per-shard batch sequence number during which it dies.
    pub seq: u64,
    /// Lifecycle point of death.
    pub point: CrashPoint,
}

impl ResolvedCrash {
    /// Whether this crash fires for `shard` processing batch `seq` at
    /// `point`.
    pub(crate) fn fires(&self, shard: usize, seq: u64, point: CrashPoint) -> bool {
        self.shard == shard && self.seq == seq && self.point == point
    }
}

/// A seeded single-commit loss for replica-divergence testing: replica
/// `replica` of shard `shard` silently drops its `at_commit`-th applied
/// commit (writes and log-hash fold both lost), so the quorum vote must
/// demote it at the next epoch boundary.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ReplicaFault {
    /// Shard whose replica group is targeted.
    pub shard: usize,
    /// Replica index within the group.
    pub replica: usize,
    /// 1-based index of the applied commit to corrupt.
    pub at_commit: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_parse_round_trips() {
        for p in CrashPoint::ALL {
            assert_eq!(CrashPoint::parse(p.short_name()), Some(p));
        }
        assert_eq!(CrashPoint::parse("mid-lunch"), None);
    }

    #[test]
    fn resolve_is_deterministic_and_in_range() {
        for seed in 0..64u64 {
            let a = CrashPlan::seeded(seed).resolve(4);
            let b = CrashPlan::seeded(seed).resolve(4);
            assert_eq!(a, b);
            assert!(a.shard < 4);
            assert!((1..=4).contains(&a.seq));
        }
    }

    #[test]
    fn seeded_resolution_covers_the_space() {
        let mut shards = [false; 4];
        let mut points = [false; 4];
        for seed in 0..256u64 {
            let r = CrashPlan::seeded(seed).resolve(4);
            shards[r.shard] = true;
            points[CrashPoint::ALL.iter().position(|p| *p == r.point).unwrap()] = true;
        }
        assert!(shards.iter().all(|&s| s), "all shards reachable");
        assert!(points.iter().all(|&p| p), "all points reachable");
    }

    #[test]
    fn pinned_coordinates_are_honoured_independently() {
        let r = CrashPlan::at(2, CrashPoint::PreAck, 5).resolve(3);
        assert_eq!(r, ResolvedCrash { shard: 2, seq: 6, point: CrashPoint::PreAck });
        // Pinning only the point must not disturb the seeded shard draw.
        let seeded = CrashPlan::seeded(7).resolve(4);
        let pinned =
            CrashPlan { point: Some(CrashPoint::WalAppend), ..CrashPlan::seeded(7) }.resolve(4);
        assert_eq!(pinned.shard, seeded.shard);
        assert_eq!(pinned.seq, seeded.seq);
        assert_eq!(pinned.point, CrashPoint::WalAppend);
    }

    #[test]
    fn fires_matches_exact_coordinates_only() {
        let r = CrashPlan::at(1, CrashPoint::PrePrepare, 0).resolve(2);
        assert!(r.fires(1, 1, CrashPoint::PrePrepare));
        assert!(!r.fires(0, 1, CrashPoint::PrePrepare));
        assert!(!r.fires(1, 2, CrashPoint::PrePrepare));
        assert!(!r.fires(1, 1, CrashPoint::PostPrepare));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pinned_shard_panics() {
        let _ = CrashPlan::at(5, CrashPoint::PreAck, 0).resolve(2);
    }
}
