//! One shard: a dedicated simulator + STM instance executing batches.
//!
//! A [`ShardEngine`] owns a [`Sim`], one STM variant (wrapped per the
//! service's [`EngineMode`](crate::EngineMode)) and the shard's data
//! partition: a slice of the bank accounts (only the keys this shard
//! owns are funded), a private open-addressing hashtable, and a private
//! TXL counter array. Batches of warp-sized transactions arrive from
//! the service, run as one kernel launch each (plus one TXL launch when
//! the batch carries TXL programs), and report per-entry outcomes along
//! with the launch's simulated cycles — the quantum by which the
//! service advances its virtual epoch clock.
//!
//! Because `Sim` is `Rc`-based and not `Send`, engines are constructed
//! *on* their worker thread; only plain-data configs go in and only the
//! plain-data [`ShardSummary`] comes back out.

use crate::crash::{CrashPoint, ResolvedCrash};
use crate::error::ServeError;
use crate::route::route;
use crate::stm::{build_stm, EngineMode, EngineStm};
use crate::wal::{dec_seal, enc_seal, BatchSeal, Dec, Enc, StoreHandle, WalRecord, WalWriter};
use gpu_sim::{
    Addr, CacheCheckpoint, LaunchConfig, Sim, SimCheckpoint, SimConfig, SimStats, WARP_SIZE,
};
use gpu_stm::{
    lane_addrs, recorder_with_hook, Access, CommittedTx, Recorder, SchedulerCheckpoint, Stm,
    StmConfig, TxStats,
};
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use workloads::{mix64, Variant};

/// The TXL program served for `TxlBump` requests: a compiled
/// `atomic{}` read-modify-write on one counter cell. Public so
/// [`crate::ServeConfig::seed_from_txl`] can statically analyze the
/// program each shard will actually run.
pub const TXL_BUMP: &str = "
kernel bump(args: array, data: array) {
    let k = args[tid()];
    atomic {
        data[k] = data[k] + 1;
    }
}
";

/// Open-addressing probe bound; a put that clusters past this many
/// slots fails business-wise (the table is sized to make that rare).
const MAX_PROBE: u32 = 16;

/// Plain-data construction parameters for one shard engine
/// (`Send`, so the service can ship it to a worker thread).
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// This shard's index.
    pub shard: usize,
    /// Total shards in the service (for routing ownership).
    pub shards: usize,
    /// Service seed (routing + initial state).
    pub seed: u64,
    /// STM variant to run.
    pub variant: Variant,
    /// Wrapper mode.
    pub mode: EngineMode,
    /// Bank account keyspace (global; this shard funds only its keys).
    pub accounts: u32,
    /// Hashtable slots (per shard).
    pub table_words: u32,
    /// TXL counter words (per shard).
    pub txl_words: u32,
    /// Warps per batch (batch capacity = `batch_warps × 32`).
    pub batch_warps: u32,
    /// Initial balance funded into every owned account.
    pub initial_balance: u32,
    /// Credit ceiling checked by cross-shard prepare-credit votes.
    pub credit_cap: u32,
    /// Global version locks for the STM.
    pub n_locks: u32,
    /// Flight-recorder trace-tap ring capacity (events per batch kept
    /// by the simulator and STM sinks). Zero disables event capture;
    /// tracing is pure observation either way, so cycle counts and
    /// report metrics are identical with or without it.
    pub trace_events: usize,
    /// Durability knobs; `None` runs the shard without a WAL.
    pub wal: Option<WalParams>,
}

/// Write-ahead-log knobs for one shard engine.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WalParams {
    /// Batches per WAL segment. Every `segment_batches`-th batch ends
    /// with a snapshot, a roll to a fresh segment, and (optionally)
    /// compaction of the pre-snapshot segments.
    pub segment_batches: u64,
    /// Delete pre-snapshot segments at each roll.
    pub compact: bool,
    /// Crash injection, if any. Recovered engines run with this
    /// disarmed so the same crash does not re-fire on replay.
    pub crash: Option<ResolvedCrash>,
}

impl Default for WalParams {
    fn default() -> Self {
        WalParams { segment_batches: 8, compact: true, crash: None }
    }
}

impl EngineConfig {
    /// Batch capacity in transaction slots.
    pub fn batch_capacity(&self) -> usize {
        self.batch_warps as usize * WARP_SIZE
    }
}

/// One transaction the service hands a shard.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ShardOp {
    /// Single-shard transfer (both keys owned here).
    Transfer {
        /// Debited account.
        from: u32,
        /// Credited account.
        to: u32,
        /// Amount.
        amount: u32,
    },
    /// 2PC phase 1 on the debit shard: apply a hold (debit now) if
    /// funds suffice; the commit outcome is the shard's vote.
    PrepareDebit {
        /// Debited account.
        from: u32,
        /// Amount.
        amount: u32,
    },
    /// 2PC phase 1 on the credit shard: a read-only capacity vote
    /// (`balance + amount ≤ credit_cap`).
    PrepareCredit {
        /// Credited account.
        to: u32,
        /// Amount.
        amount: u32,
    },
    /// 2PC phase 2: apply the credit after both shards voted yes.
    ApplyCredit {
        /// Credited account.
        to: u32,
        /// Amount.
        amount: u32,
    },
    /// 2PC phase 2: compensate the debit-shard hold after a no vote.
    RollbackDebit {
        /// Debited account (hold returned).
        from: u32,
        /// Amount.
        amount: u32,
    },
    /// Hashtable insert/update.
    HtPut {
        /// Key.
        key: u32,
        /// Value.
        val: u32,
    },
    /// Hashtable lookup.
    HtGet {
        /// Key.
        key: u32,
    },
    /// TXL `bump` program on one counter.
    TxlBump {
        /// Counter index (in the shard's TXL array).
        key: u32,
    },
}

/// One sealed batch entry: the op plus the client request it serves.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Originating request id (`u64::MAX` for service-internal ops).
    pub req: u64,
    /// The transaction to run.
    pub op: ShardOp,
}

/// Outcome of one batch entry (every entry commits; `ok` is the
/// business-level result — funds sufficed, key found, vote yes).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EntryOutcome {
    /// Business success.
    pub ok: bool,
    /// Returned value (hashtable gets).
    pub value: u32,
}

/// Result of running one batch on a shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchReport {
    /// Per-entry outcomes, in batch order.
    pub outcomes: Vec<EntryOutcome>,
    /// Simulated cycles this batch took (ops launch + TXL launch).
    pub cycles: u64,
    /// Transactions committed during the batch.
    pub commits: u64,
    /// Aborted attempts during the batch.
    pub aborts: u64,
    /// Whether the shard's scheduler reports an abort storm.
    pub storm: bool,
    /// WAL sequence number the batch ran under (0 on volatile shards).
    pub seq: u64,
    /// Simulator events drained from the engine's flight-recorder tap
    /// (empty when `EngineConfig::trace_events` is 0). Replay of a
    /// logged batch regenerates the identical stream, so equality
    /// checks over reports remain valid under recovery.
    pub sim_events: Vec<gpu_sim::trace::SimEvent>,
    /// Transaction-lifecycle events drained from the STM's tap.
    pub tx_events: Vec<gpu_stm::trace::TxEvent>,
}

/// Outcome of a durable batch: either a report, or the point at which
/// injected crash-testing killed the worker (the engine must then be
/// dropped and recovered from its log).
#[derive(Clone, Debug)]
pub(crate) enum DurableOutcome {
    /// The batch ran, was sealed in the log, and was acknowledged.
    Done(BatchReport),
    /// The injected crash fired at this lifecycle point.
    Crashed(CrashPoint),
}

/// Plain-data end-of-run summary shipped back to the coordinator.
#[derive(Clone, Debug)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: usize,
    /// STM variant label.
    pub stm_name: String,
    /// Transaction counters accumulated over the run.
    pub tx: TxStats,
    /// Simulator counters accumulated over every launch.
    pub sim: SimStats,
    /// Kernel launches executed.
    pub launches: u64,
    /// Simulated cycles summed over launches.
    pub sim_cycles: u64,
    /// Committed-history writers / read-only counts from `tm-check`.
    pub writers: usize,
    /// Read-only committed transactions verified.
    pub read_only: usize,
    /// `tm-check` violations (history replay + final state); empty
    /// means the served history is opaque-serializable.
    pub violations: Vec<String>,
    /// FNV-1a hash of the full committed history (tid, version,
    /// snapshot, read/write sets) — byte-identical across runs iff the
    /// shard executed identically.
    pub history_fnv: u64,
    /// FNV-1a hash of the request-tagged commit log built by the
    /// commit hook (request id + commit version, in commit order).
    pub commit_log_fnv: u64,
    /// Sum of all account balances in this shard's partition.
    pub balance_sum: u64,
    /// Sum of the shard's TXL counters (equals its completed bumps).
    pub txl_sum: u64,
}

/// Incremental FNV-1a over little-endian words.
#[derive(Copy, Clone)]
pub(crate) struct Fnv(pub u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.u64(v as u64);
    }
}

/// Per-lane op encoding for the batch kernel.
#[derive(Copy, Clone, Default)]
struct LaneOp {
    /// 0 transfer, 1 prep-debit, 2 prep-credit, 3 apply-credit,
    /// 4 rollback-debit, 5 ht-put, 6 ht-get, 255 idle pad.
    kind: u8,
    a: u32,
    b: u32,
    amt: u32,
}

const K_IDLE: u8 = 255;

/// A request-tagged commit observed by the history hook.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct CommitRec {
    req: u64,
    tid: u32,
    version: u32, // version + 1; 0 = read-only
    reads: u32,
    writes: u32,
}

/// One shard's engine. Lives on a worker thread for the whole run.
pub(crate) struct ShardEngine {
    cfg: EngineConfig,
    sim: Sim,
    stm: Rc<EngineStm>,
    recorder: Recorder,
    /// Slot → request id for the launch in flight (read by the hook).
    tid_map: Rc<RefCell<Vec<u64>>>,
    commit_log: Rc<RefCell<Vec<CommitRec>>>,
    accounts: Addr,
    ht_keys: Addr,
    ht_vals: Addr,
    txl_data: Addr,
    txl_args: Addr,
    txl_kernel: txl::Kernel,
    /// Snapshot of the data span after host initialisation.
    initial: Vec<u32>,
    span_base: u32,
    span_len: u32,
    txl_launch_seq: u64,
    /// Full-write-set WAL `Commit` records staged by the hook during a
    /// launch, drained into the log after each durable batch.
    wal_pending: Rc<RefCell<Vec<WalRecord>>>,
    /// Flight-recorder tap over simulator events, drained per batch.
    sim_trace: Option<gpu_sim::trace::TraceSink>,
    /// Flight-recorder tap over transaction-lifecycle events.
    tx_trace: Option<gpu_stm::trace::TxTraceSink>,
    dur: Option<EngineDur>,
}

/// Durability state of one shard engine.
struct EngineDur {
    wal: WalWriter,
    params: WalParams,
    /// Sequence number of the next batch (per shard, from 1).
    next_seq: u64,
    /// Seal of the most recent sealed batch, embedded in snapshots so
    /// a crash after compaction can still answer the coordinator.
    last_seal: Option<BatchSeal>,
    /// `Commit` records of the most recent batch, retained after the
    /// log flush so the worker can feed the shard's replica group.
    last_commits: Vec<WalRecord>,
    /// `commit_log` entries already folded into `log_fnv_state`.
    log_folded: usize,
    /// Running FNV-1a over the request-tagged commit log.
    log_fnv_state: u64,
}

impl ShardEngine {
    /// Builds the shard: allocates its data partition, funds its owned
    /// accounts, snapshots the initial state and instantiates the STM.
    #[cfg(test)]
    pub(crate) fn new(cfg: EngineConfig) -> Result<ShardEngine, ServeError> {
        ShardEngine::with_store(cfg, None)
    }

    /// Like [`new`](Self::new), but attaches a write-ahead log on
    /// `store` when the config carries [`WalParams`]. A fresh log gets
    /// an `Init` record (the initial data span, for replica bootstrap);
    /// an existing log is resumed at its tail, so recovery and fresh
    /// construction share this path.
    pub(crate) fn with_store(
        cfg: EngineConfig,
        store: Option<StoreHandle>,
    ) -> Result<ShardEngine, ServeError> {
        if cfg.shards == 0 || cfg.shard >= cfg.shards {
            return Err(ServeError::BadConfig(format!(
                "shard {} out of range for {} shards",
                cfg.shard, cfg.shards
            )));
        }
        let cap = cfg.batch_capacity() as u32;
        let data_words = cfg.accounts as u64
            + 2 * cfg.table_words as u64
            + (cfg.txl_words + cap) as u64
            + cap as u64;
        let mem = data_words + 2 * cfg.n_locks as u64 + cap as u64 * 64 + (1 << 16);
        let mut sim_cfg = SimConfig::with_memory(mem as usize);
        let sim_trace =
            (cfg.trace_events > 0).then(|| gpu_sim::trace::trace_sink(cfg.trace_events));
        if let Some(t) = &sim_trace {
            sim_cfg.trace = Some(Rc::clone(t));
        }
        let tx_trace =
            (cfg.trace_events > 0).then(|| gpu_stm::trace::tx_trace_sink(cfg.trace_events));
        let mut sim = Sim::new(sim_cfg);
        let se =
            |e: gpu_sim::SimError| ServeError::Engine { shard: cfg.shard, message: e.to_string() };
        let accounts = sim.alloc(cfg.accounts).map_err(se)?;
        let ht_keys = sim.alloc(cfg.table_words).map_err(se)?;
        let ht_vals = sim.alloc(cfg.table_words).map_err(se)?;
        // Counter words plus one private scratch word per batch slot so
        // idle pad lanes bump disjoint cells instead of contending.
        let txl_data = sim.alloc(cfg.txl_words + cap).map_err(se)?;
        let txl_args = sim.alloc(cap).map_err(se)?;

        for key in 0..cfg.accounts {
            if route(key, cfg.shards, cfg.seed) == cfg.shard {
                sim.write(accounts.offset(key), cfg.initial_balance);
            }
        }

        let span_base = accounts.index() as u32;
        let span_len = txl_args.index() as u32 + cap - span_base;
        let initial = sim.read_slice(Addr(span_base), span_len);

        let tid_map: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let commit_log: Rc<RefCell<Vec<CommitRec>>> = Rc::new(RefCell::new(Vec::new()));
        let wal_pending: Rc<RefCell<Vec<WalRecord>>> = Rc::new(RefCell::new(Vec::new()));
        let wal_enabled: Rc<Cell<bool>> = Rc::new(Cell::new(false));
        let hook_map = Rc::clone(&tid_map);
        let hook_log = Rc::clone(&commit_log);
        let hook_pending = Rc::clone(&wal_pending);
        let hook_enabled = Rc::clone(&wal_enabled);
        let recorder = recorder_with_hook(Rc::new(move |tx: &CommittedTx| {
            let req = hook_map.borrow().get(tx.tid as usize).copied().unwrap_or(u64::MAX);
            let version = tx.version.map_or(0, |v| v + 1);
            hook_log.borrow_mut().push(CommitRec {
                req,
                tid: tx.tid,
                version,
                reads: tx.reads.len() as u32,
                writes: tx.writes.len() as u32,
            });
            if hook_enabled.get() {
                hook_pending.borrow_mut().push(WalRecord::Commit {
                    req,
                    tid: tx.tid,
                    version,
                    snapshot: tx.snapshot,
                    reads: tx.reads.len() as u32,
                    writes: tx.writes.iter().map(|a| (a.addr.index() as u32, a.val)).collect(),
                });
            }
        }));

        let max_grid = LaunchConfig::new(cfg.batch_warps, WARP_SIZE as u32);
        let stm = build_stm(
            &mut sim,
            cfg.variant,
            cfg.mode,
            StmConfig::new(cfg.n_locks),
            span_len as u64,
            max_grid,
            Rc::clone(&recorder),
            tx_trace.clone(),
        )?;

        let program = txl::compile(TXL_BUMP)
            .map_err(|e| ServeError::BadConfig(format!("TXL bump program: {e}")))?;
        let txl_kernel = program
            .kernel("bump")
            .ok_or_else(|| ServeError::BadConfig("TXL bump kernel missing".into()))?
            .clone();

        let dur = match (&cfg.wal, store) {
            (Some(params), Some(store)) => {
                let fresh = store.list(&format!("s{:03}/", cfg.shard)).is_empty();
                let mut wal = WalWriter::open(store, cfg.shard)
                    .map_err(|m| ServeError::Engine { shard: cfg.shard, message: m })?;
                if fresh {
                    // Replica-bootstrap record: the data span only (the
                    // host-written TXL argument buffer at the end of the
                    // allocation is excluded, matching `data_fnv`).
                    let data_len = (txl_args.index() as u32 - span_base) as usize;
                    wal.append(&WalRecord::Init {
                        base: span_base,
                        words: initial[..data_len].to_vec(),
                    });
                }
                wal_enabled.set(true);
                Some(EngineDur {
                    wal,
                    params: *params,
                    next_seq: 1,
                    last_seal: None,
                    last_commits: Vec::new(),
                    log_folded: 0,
                    log_fnv_state: Fnv::new().0,
                })
            }
            (Some(_), None) => {
                return Err(ServeError::BadConfig(
                    "EngineConfig has WalParams but no blob store was provided".into(),
                ))
            }
            (None, _) => None,
        };

        Ok(ShardEngine {
            cfg,
            sim,
            stm: Rc::new(stm),
            recorder,
            tid_map,
            commit_log,
            accounts,
            ht_keys,
            ht_vals,
            txl_data,
            txl_args,
            txl_kernel,
            initial,
            span_base,
            span_len,
            txl_launch_seq: 0,
            wal_pending,
            sim_trace,
            tx_trace,
            dur,
        })
    }

    fn lane_op(op: ShardOp) -> LaneOp {
        match op {
            ShardOp::Transfer { from, to, amount } => {
                LaneOp { kind: 0, a: from, b: to, amt: amount }
            }
            ShardOp::PrepareDebit { from, amount } => {
                LaneOp { kind: 1, a: from, b: 0, amt: amount }
            }
            ShardOp::PrepareCredit { to, amount } => LaneOp { kind: 2, a: to, b: 0, amt: amount },
            ShardOp::ApplyCredit { to, amount } => LaneOp { kind: 3, a: to, b: 0, amt: amount },
            ShardOp::RollbackDebit { from, amount } => {
                LaneOp { kind: 4, a: from, b: 0, amt: amount }
            }
            ShardOp::HtPut { key, val } => LaneOp { kind: 5, a: key, b: val, amt: 0 },
            ShardOp::HtGet { key } => LaneOp { kind: 6, a: key, b: 0, amt: 0 },
            ShardOp::TxlBump { .. } => unreachable!("TXL entries run through the TXL launch"),
        }
    }

    /// Runs one sealed batch: at most one ops-kernel launch plus one
    /// TXL launch. Returns per-entry outcomes and the simulated cycles
    /// consumed (the service's epoch quantum).
    pub(crate) fn run_batch(&mut self, entries: &[Entry]) -> Result<BatchReport, ServeError> {
        assert!(
            entries.len() <= self.cfg.batch_capacity(),
            "batch of {} exceeds capacity {}",
            entries.len(),
            self.cfg.batch_capacity()
        );
        let stats0 = self.stm.stats().borrow().clone();
        let mut outcomes = vec![EntryOutcome::default(); entries.len()];
        let mut cycles = 0u64;

        let ops_idx: Vec<usize> = (0..entries.len())
            .filter(|&i| !matches!(entries[i].op, ShardOp::TxlBump { .. }))
            .collect();
        let txl_idx: Vec<usize> = (0..entries.len())
            .filter(|&i| matches!(entries[i].op, ShardOp::TxlBump { .. }))
            .collect();

        if !ops_idx.is_empty() {
            cycles += self.run_ops_launch(entries, &ops_idx, &mut outcomes)?;
        }
        if !txl_idx.is_empty() {
            cycles += self.run_txl_launch(entries, &txl_idx, &mut outcomes)?;
        }

        let stats1 = self.stm.stats().borrow().clone();
        let sim_events = self.sim_trace.as_ref().map_or_else(Vec::new, |t| t.borrow_mut().drain());
        let tx_events = self.tx_trace.as_ref().map_or_else(Vec::new, |t| t.borrow_mut().drain());
        Ok(BatchReport {
            outcomes,
            cycles,
            commits: stats1.commits - stats0.commits,
            aborts: stats1.aborts - stats0.aborts,
            storm: self.stm.abort_storm(),
            seq: self.dur.as_ref().map_or(0, |d| d.next_seq),
            sim_events,
            tx_events,
        })
    }

    // ---- durability ----------------------------------------------------

    fn dur_mut(&mut self) -> &mut EngineDur {
        self.dur.as_mut().expect("durable path invoked on a WAL-less engine")
    }

    /// Whether the injected crash (if any) fires for this shard at
    /// batch `seq`, point `point`.
    fn crash_fires(&self, seq: u64, point: CrashPoint) -> bool {
        self.dur
            .as_ref()
            .and_then(|d| d.params.crash)
            .is_some_and(|c| c.fires(self.cfg.shard, seq, point))
    }

    /// Sequence number the next durable batch will get.
    pub(crate) fn next_seq(&self) -> u64 {
        self.dur.as_ref().map_or(1, |d| d.next_seq)
    }

    /// Seal of the most recently sealed batch, if any.
    pub(crate) fn last_seal(&self) -> Option<&BatchSeal> {
        self.dur.as_ref().and_then(|d| d.last_seal.as_ref())
    }

    /// This engine's shard index.
    pub(crate) fn shard(&self) -> usize {
        self.cfg.shard
    }

    /// Batch capacity in transaction slots.
    pub(crate) fn batch_capacity(&self) -> usize {
        self.cfg.batch_capacity()
    }

    /// The most recent batch's committed stream plus its seal, for
    /// replica ingestion. `None` before the first sealed batch.
    pub(crate) fn replica_feed(&self) -> Option<(Vec<WalRecord>, BatchSeal)> {
        let dur = self.dur.as_ref()?;
        let seal = dur.last_seal.clone()?;
        Some((dur.last_commits.clone(), seal))
    }

    /// Full replica resynchronization payload: the current data span,
    /// the running commit-log hash and the commits applied so far.
    /// After a crash the group re-bases on this instead of replaying
    /// commits whose WAL records compaction may have dropped.
    pub(crate) fn replica_resync(&self) -> (u32, Vec<u32>, u64, u64) {
        let len = self.txl_args.index() as u32 - self.span_base;
        let words = self.sim.read_slice(Addr(self.span_base), len);
        let dur = self.dur.as_ref().expect("resync on a WAL-less engine");
        (self.span_base, words, dur.log_fnv_state, self.commit_log.borrow().len() as u64)
    }

    /// Runs one batch through the write-ahead protocol:
    /// log the batch → execute → log commits and the sealing result →
    /// snapshot cadence → acknowledge. Injected crash points interleave
    /// exactly at the protocol stage they name; on a crash the engine
    /// must be discarded and recovered from the store.
    pub(crate) fn run_batch_durable(
        &mut self,
        entries: &[Entry],
    ) -> Result<DurableOutcome, ServeError> {
        if self.dur.is_none() {
            return self.run_batch(entries).map(DurableOutcome::Done);
        }
        let seq = self.dur_mut().next_seq;
        let batch_rec = WalRecord::Batch { seq, entries: entries.to_vec() };
        if self.crash_fires(seq, CrashPoint::WalAppend) {
            let keep = batch_rec.encode().len() / 2;
            self.dur_mut().wal.append_torn(&batch_rec, keep);
            return Ok(DurableOutcome::Crashed(CrashPoint::WalAppend));
        }
        self.dur_mut().wal.append(&batch_rec);
        if self.crash_fires(seq, CrashPoint::PrePrepare) {
            return Ok(DurableOutcome::Crashed(CrashPoint::PrePrepare));
        }

        self.wal_pending.borrow_mut().clear();
        let report = self.run_batch(entries)?;
        self.flush_commits();
        let seal = self.make_seal(seq, &report);
        self.dur_mut().wal.append(&WalRecord::Result(seal.clone()));
        self.dur_mut().last_seal = Some(seal);
        if self.crash_fires(seq, CrashPoint::PostPrepare) {
            return Ok(DurableOutcome::Crashed(CrashPoint::PostPrepare));
        }

        self.maybe_cadence(seq);
        if self.crash_fires(seq, CrashPoint::PreAck) {
            return Ok(DurableOutcome::Crashed(CrashPoint::PreAck));
        }
        self.dur_mut().next_seq = seq + 1;
        Ok(DurableOutcome::Done(report))
    }

    /// Appends the hook-staged `Commit` records of the batch just run
    /// and retains them for replica feeding.
    fn flush_commits(&mut self) {
        let pending: Vec<WalRecord> = self.wal_pending.borrow_mut().drain(..).collect();
        let dur = self.dur_mut();
        for rec in &pending {
            dur.wal.append(rec);
        }
        dur.last_commits = pending;
    }

    /// Folds the batch's new commit-log entries into the running log
    /// hash and builds the sealing [`BatchSeal`].
    fn make_seal(&mut self, seq: u64, report: &BatchReport) -> BatchSeal {
        {
            let log = self.commit_log.borrow();
            let dur = self.dur.as_mut().expect("make_seal on a WAL-less engine");
            let mut h = Fnv(dur.log_fnv_state);
            for rec in &log[dur.log_folded..] {
                h.u64(rec.req);
                h.u32(rec.tid);
                h.u32(rec.version);
                h.u32(rec.reads);
                h.u32(rec.writes);
            }
            dur.log_folded = log.len();
            dur.log_fnv_state = h.0;
        }
        BatchSeal {
            seq,
            outcomes: report.outcomes.clone(),
            cycles: report.cycles,
            commits: report.commits,
            aborts: report.aborts,
            storm: report.storm,
            data_fnv: self.data_fnv(),
            log_fnv: self.dur.as_ref().unwrap().log_fnv_state,
        }
    }

    /// Snapshot cadence: every `segment_batches`-th batch, snapshot the
    /// engine, roll to a fresh segment, and (optionally) compact.
    fn maybe_cadence(&mut self, seq: u64) {
        let params = self.dur.as_ref().expect("cadence on a WAL-less engine").params;
        if !seq.is_multiple_of(params.segment_batches) {
            return;
        }
        let payload = self.snapshot_payload(seq);
        let dur = self.dur_mut();
        dur.wal.put_snapshot(seq, &payload);
        dur.wal.roll();
        if params.compact {
            dur.wal.compact();
        }
    }

    /// FNV-1a over the device data span the committed stream owns —
    /// accounts, hashtable and TXL counters, *excluding* the
    /// host-written TXL argument buffer (replicas never see it).
    pub(crate) fn data_fnv(&self) -> u64 {
        let len = self.txl_args.index() as u32 - self.span_base;
        let words = self.sim.read_slice(Addr(self.span_base), len);
        let mut h = Fnv::new();
        for w in words {
            h.u32(w);
        }
        h.0
    }

    /// Recovery replay of a *complete* logged group: re-executes the
    /// batch and verifies the regenerated commit stream and seal
    /// byte-for-byte against what the log recorded, without appending
    /// anything (the group is already durable).
    ///
    /// # Errors
    ///
    /// A mismatch means replay diverged from the pre-crash execution —
    /// the verified-recovery self-check failed.
    pub(crate) fn replay_verified(
        &mut self,
        seq: u64,
        entries: &[Entry],
        logged_commits: &[WalRecord],
        logged_seal: &BatchSeal,
    ) -> Result<BatchReport, ServeError> {
        let shard = self.cfg.shard;
        let fail = |m: String| ServeError::Engine { shard, message: m };
        self.wal_pending.borrow_mut().clear();
        let report = self.run_batch(entries)?;
        let regenerated: Vec<WalRecord> = self.wal_pending.borrow_mut().drain(..).collect();
        if regenerated != logged_commits {
            return Err(fail(format!(
                "replay of batch {seq} regenerated {} commit records, log has {} (diverged)",
                regenerated.len(),
                logged_commits.len()
            )));
        }
        let seal = self.make_seal(seq, &report);
        if seal != *logged_seal {
            return Err(fail(format!(
                "replay of batch {seq} produced a different seal (diverged)"
            )));
        }
        {
            let dur = self.dur_mut();
            dur.last_seal = Some(seal);
            dur.last_commits = regenerated;
        }
        self.maybe_cadence(seq);
        self.dur_mut().next_seq = seq + 1;
        Ok(report)
    }

    /// Recovery execution of a logged-but-unsealed batch (the worker
    /// died between logging the batch and sealing its result): runs it
    /// and completes the group exactly as the uncrashed flow would.
    pub(crate) fn execute_logged(
        &mut self,
        seq: u64,
        entries: &[Entry],
    ) -> Result<BatchReport, ServeError> {
        self.wal_pending.borrow_mut().clear();
        let report = self.run_batch(entries)?;
        self.flush_commits();
        let seal = self.make_seal(seq, &report);
        self.dur_mut().wal.append(&WalRecord::Result(seal.clone()));
        self.dur_mut().last_seal = Some(seal);
        self.maybe_cadence(seq);
        self.dur_mut().next_seq = seq + 1;
        Ok(report)
    }

    // ---- snapshot encode / restore -------------------------------------

    /// Serializes the complete engine state after batch `seq`: the full
    /// simulator image (memory, L2 tags, lifetime counters), STM
    /// transaction stats, host-side wrapper state (scheduler window,
    /// backoff RNG), the committed history, the request-tagged commit
    /// log, and the last batch seal.
    fn snapshot_payload(&self, seq: u64) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(1); // payload format version
        e.u64(seq);

        let ck = self.sim.checkpoint();
        e.u32(ck.memory.len() as u32);
        for &w in &ck.memory {
            e.u32(w);
        }
        e.u32(ck.cache.tags.len() as u32);
        for &t in &ck.cache.tags {
            e.u64(t);
        }
        for &s in &ck.cache.stamps {
            e.u64(s);
        }
        e.u64(ck.cache.tick);
        let SimStats {
            instructions,
            loads,
            stores,
            atomics,
            fences,
            mem_transactions,
            uncoalesced_transactions,
            l2_hits,
            l2_misses,
            divergent_instructions,
            active_lanes,
            lane_slots,
            idle_cycles,
            blocks_completed,
            spurious_cas_failures,
            injected_jitter_cycles,
            parks,
            wakes,
        } = ck.stats;
        for v in [
            instructions,
            loads,
            stores,
            atomics,
            fences,
            mem_transactions,
            uncoalesced_transactions,
            l2_hits,
            l2_misses,
            divergent_instructions,
            active_lanes,
            lane_slots,
            idle_cycles,
            blocks_completed,
            spurious_cas_failures,
            injected_jitter_cycles,
            parks,
            wakes,
        ] {
            e.u64(v);
        }
        e.u64(ck.cycles);
        e.u64(ck.launches);

        let tx = self.stm.stats().borrow().encode();
        e.u32(tx.len() as u32);
        for w in tx {
            e.u64(w);
        }

        match self.stm.sched().map(|s| s.checkpoint()) {
            Some(sc) => {
                e.u8(1);
                e.u32(sc.limit);
                e.u32(sc.in_flight);
                e.u64(sc.window_commits);
                e.u64(sc.window_aborts);
                e.u64(sc.adaptations);
                e.u8(sc.storm as u8);
            }
            None => e.u8(0),
        }
        match self.stm.robust().map(|r| r.rng_state()) {
            Some(rng) => {
                e.u8(1);
                e.u64(rng);
            }
            None => e.u8(0),
        }

        let history = self.recorder.borrow();
        e.u64(history.aborts);
        e.u32(history.commits.len() as u32);
        for tx in &history.commits {
            e.u32(tx.tid);
            e.u32(tx.version.map_or(0, |v| v + 1));
            e.u32(tx.snapshot);
            e.u32(tx.reads.len() as u32);
            for a in &tx.reads {
                e.u32(a.addr.index() as u32);
                e.u32(a.val);
            }
            e.u32(tx.writes.len() as u32);
            for a in &tx.writes {
                e.u32(a.addr.index() as u32);
                e.u32(a.val);
            }
        }
        drop(history);

        let log = self.commit_log.borrow();
        e.u32(log.len() as u32);
        for rec in log.iter() {
            e.u64(rec.req);
            e.u32(rec.tid);
            e.u32(rec.version);
            e.u32(rec.reads);
            e.u32(rec.writes);
        }
        drop(log);

        let dur = self.dur.as_ref().expect("snapshot on a WAL-less engine");
        e.u64(dur.log_fnv_state);
        e.u64(self.txl_launch_seq);
        match &dur.last_seal {
            Some(seal) => {
                e.u8(1);
                enc_seal(&mut e, seal);
            }
            None => e.u8(0),
        }
        e.0
    }

    /// Restores state captured by `snapshot_payload` into this freshly
    /// constructed engine (same config ⇒ same deterministic device
    /// allocations). Returns the snapshot's batch sequence number.
    ///
    /// # Errors
    ///
    /// Fails on a corrupt or layout-incompatible payload.
    pub(crate) fn restore_snapshot(&mut self, payload: &[u8]) -> Result<u64, ServeError> {
        let shard = self.cfg.shard;
        let fail = |m: &str| ServeError::Engine { shard, message: format!("snapshot: {m}") };
        let mut d = Dec::new(payload);
        let mut go = || -> Option<u64> {
            if d.u32()? != 1 {
                return None;
            }
            let seq = d.u64()?;

            let mem_len = d.u32()? as usize;
            let mut memory = Vec::with_capacity(mem_len);
            for _ in 0..mem_len {
                memory.push(d.u32()?);
            }
            let lines = d.u32()? as usize;
            let mut tags = Vec::with_capacity(lines);
            for _ in 0..lines {
                tags.push(d.u64()?);
            }
            let mut stamps = Vec::with_capacity(lines);
            for _ in 0..lines {
                stamps.push(d.u64()?);
            }
            let tick = d.u64()?;
            let mut sim_stats = [0u64; 18];
            for v in sim_stats.iter_mut() {
                *v = d.u64()?;
            }
            let cycles = d.u64()?;
            let launches = d.u64()?;

            let tx_len = d.u32()? as usize;
            let mut tx_words = Vec::with_capacity(tx_len);
            for _ in 0..tx_len {
                tx_words.push(d.u64()?);
            }
            let tx = TxStats::decode(&tx_words)?;

            let sched = if d.u8()? == 1 {
                Some(SchedulerCheckpoint {
                    limit: d.u32()?,
                    in_flight: d.u32()?,
                    window_commits: d.u64()?,
                    window_aborts: d.u64()?,
                    adaptations: d.u64()?,
                    storm: d.u8()? != 0,
                })
            } else {
                None
            };
            let robust_rng = if d.u8()? == 1 { Some(d.u64()?) } else { None };

            let aborts = d.u64()?;
            let n_commits = d.u32()? as usize;
            let mut commits = Vec::with_capacity(n_commits);
            for _ in 0..n_commits {
                let tid = d.u32()?;
                let version = d.u32()?;
                let snapshot = d.u32()?;
                let n_reads = d.u32()? as usize;
                let mut reads = Vec::with_capacity(n_reads);
                for _ in 0..n_reads {
                    reads.push(Access { addr: Addr(d.u32()?), val: d.u32()? });
                }
                let n_writes = d.u32()? as usize;
                let mut writes = Vec::with_capacity(n_writes);
                for _ in 0..n_writes {
                    writes.push(Access { addr: Addr(d.u32()?), val: d.u32()? });
                }
                commits.push(CommittedTx {
                    tid,
                    version: version.checked_sub(1),
                    snapshot,
                    reads,
                    writes,
                });
            }

            let n_log = d.u32()? as usize;
            let mut log = Vec::with_capacity(n_log);
            for _ in 0..n_log {
                log.push(CommitRec {
                    req: d.u64()?,
                    tid: d.u32()?,
                    version: d.u32()?,
                    reads: d.u32()?,
                    writes: d.u32()?,
                });
            }
            let log_fnv_state = d.u64()?;
            let txl_launch_seq = d.u64()?;
            let last_seal = if d.u8()? == 1 { Some(dec_seal(&mut d)?) } else { None };
            d.done()?;

            let [instructions, loads, stores, atomics, fences, mem_transactions, uncoalesced_transactions, l2_hits, l2_misses, divergent_instructions, active_lanes, lane_slots, idle_cycles, blocks_completed, spurious_cas_failures, injected_jitter_cycles, parks, wakes] =
                sim_stats;
            let ck = SimCheckpoint {
                memory,
                cache: CacheCheckpoint { tags, stamps, tick },
                stats: SimStats {
                    instructions,
                    loads,
                    stores,
                    atomics,
                    fences,
                    mem_transactions,
                    uncoalesced_transactions,
                    l2_hits,
                    l2_misses,
                    divergent_instructions,
                    active_lanes,
                    lane_slots,
                    idle_cycles,
                    blocks_completed,
                    spurious_cas_failures,
                    injected_jitter_cycles,
                    parks,
                    wakes,
                },
                cycles,
                launches,
            };
            self.sim.restore_checkpoint(&ck);
            *self.stm.stats().borrow_mut() = tx;
            if let (Some(sched_stm), Some(sc)) = (self.stm.sched(), sched.as_ref()) {
                sched_stm.restore_checkpoint(sc);
            }
            if let (Some(robust_stm), Some(rng)) = (self.stm.robust(), robust_rng) {
                robust_stm.restore_rng_state(rng);
            }
            {
                let mut h = self.recorder.borrow_mut();
                h.commits = commits;
                h.aborts = aborts;
            }
            let folded = log.len();
            *self.commit_log.borrow_mut() = log;
            self.txl_launch_seq = txl_launch_seq;
            let dur = self.dur.as_mut()?;
            dur.next_seq = seq + 1;
            dur.last_seal = last_seal;
            dur.log_folded = folded;
            dur.log_fnv_state = log_fnv_state;
            Some(seq)
        };
        go().ok_or_else(|| fail("corrupt or incompatible payload"))
    }

    fn run_ops_launch(
        &mut self,
        entries: &[Entry],
        ops_idx: &[usize],
        outcomes: &mut [EntryOutcome],
    ) -> Result<u64, ServeError> {
        let n = ops_idx.len();
        let warps = n.div_ceil(WARP_SIZE) as u32;
        let grid = LaunchConfig::new(warps, WARP_SIZE as u32);
        let mut lane_ops =
            vec![LaneOp { kind: K_IDLE, ..LaneOp::default() }; (warps as usize) * WARP_SIZE];
        {
            let mut map = self.tid_map.borrow_mut();
            map.clear();
            map.resize(lane_ops.len(), u64::MAX);
            for (slot, &i) in ops_idx.iter().enumerate() {
                lane_ops[slot] = Self::lane_op(entries[i].op);
                map[slot] = entries[i].req;
            }
        }
        let lane_ops = Rc::new(lane_ops);
        let out: Rc<RefCell<Vec<EntryOutcome>>> =
            Rc::new(RefCell::new(vec![EntryOutcome::default(); lane_ops.len()]));

        let stm_k = Rc::clone(&self.stm);
        let ops_k = Rc::clone(&lane_ops);
        let out_k = Rc::clone(&out);
        let accounts = self.accounts;
        let ht_keys = self.ht_keys;
        let ht_vals = self.ht_vals;
        let table_words = self.cfg.table_words;
        let credit_cap = self.cfg.credit_cap;
        let report = self
            .sim
            .launch(grid, move |ctx| {
                let stm = Rc::clone(&stm_k);
                let ops = Rc::clone(&ops_k);
                let out = Rc::clone(&out_k);
                async move {
                    let base = ctx.id().thread_id(0) as usize;
                    let mut w = stm.new_warp();
                    let mut pending = ctx.id().launch_mask.filter(|l| ops[base + l].kind != K_IDLE);
                    ctx.set_speculative(true);
                    while pending.any() {
                        let active = stm.begin(&mut w, &ctx, pending).await;
                        if active.none() {
                            continue;
                        }
                        let op = |l: usize| ops[base + l];
                        let mut ok = [false; WARP_SIZE];
                        let mut val = [0u32; WARP_SIZE];
                        let mut wr1 = gpu_sim::LaneMask::EMPTY;
                        let mut wr1_a = [Addr::NULL; WARP_SIZE];
                        let mut wr1_v = [0u32; WARP_SIZE];
                        let mut wr2 = gpu_sim::LaneMask::EMPTY;
                        let mut wr2_a = [Addr::NULL; WARP_SIZE];
                        let mut wr2_v = [0u32; WARP_SIZE];

                        // Money ops: read source balance(s), then plan
                        // the debit/credit writes for live lanes.
                        let money = active.filter(|l| op(l).kind <= 4);
                        if money.any() {
                            let a1 = lane_addrs(money, |l| accounts.offset(op(l).a));
                            let v1 = stm.read(&mut w, &ctx, money, &a1).await;
                            let mut live = money & stm.opaque(&w);
                            let tr = live.filter(|l| op(l).kind == 0);
                            let mut v2 = [0u32; WARP_SIZE];
                            if tr.any() {
                                let a2 = lane_addrs(tr, |l| accounts.offset(op(l).b));
                                v2 = stm.read(&mut w, &ctx, tr, &a2).await;
                                live &= stm.opaque(&w);
                            }
                            for l in live.iter() {
                                let o = op(l);
                                let lane = gpu_sim::LaneMask::lane(l);
                                match o.kind {
                                    0 => {
                                        if v1[l] >= o.amt {
                                            wr1 |= lane;
                                            wr1_a[l] = accounts.offset(o.a);
                                            wr1_v[l] = v1[l] - o.amt;
                                            wr2 |= lane;
                                            wr2_a[l] = accounts.offset(o.b);
                                            wr2_v[l] = v2[l] + o.amt;
                                            ok[l] = true;
                                        }
                                    }
                                    1 => {
                                        if v1[l] >= o.amt {
                                            wr1 |= lane;
                                            wr1_a[l] = accounts.offset(o.a);
                                            wr1_v[l] = v1[l] - o.amt;
                                            ok[l] = true;
                                        }
                                    }
                                    2 => {
                                        ok[l] = v1[l] as u64 + o.amt as u64 <= credit_cap as u64;
                                    }
                                    _ => {
                                        // apply-credit / rollback-debit:
                                        // unconditional compensating add.
                                        wr1 |= lane;
                                        wr1_a[l] = accounts.offset(o.a);
                                        wr1_v[l] = v1[l] + o.amt;
                                        ok[l] = true;
                                    }
                                }
                            }
                        }

                        // Hashtable ops: shared linear-probe loop.
                        let ht =
                            active.filter(|l| op(l).kind == 5 || op(l).kind == 6) & stm.opaque(&w);
                        if ht.any() {
                            let mut slot = [0u32; WARP_SIZE];
                            for l in ht.iter() {
                                slot[l] = (mix64(op(l).a as u64) % table_words as u64) as u32;
                            }
                            let mut undecided = ht;
                            let mut found = gpu_sim::LaneMask::EMPTY;
                            for _ in 0..MAX_PROBE {
                                if undecided.none() {
                                    break;
                                }
                                let pa = lane_addrs(undecided, |l| ht_keys.offset(slot[l]));
                                let kv = stm.read(&mut w, &ctx, undecided, &pa).await;
                                undecided &= stm.opaque(&w);
                                let mut still = gpu_sim::LaneMask::EMPTY;
                                for l in undecided.iter() {
                                    let o = op(l);
                                    let lane = gpu_sim::LaneMask::lane(l);
                                    let tag = o.a + 1; // 0 marks an empty slot
                                    if kv[l] == 0 {
                                        if o.kind == 5 {
                                            wr1 |= lane;
                                            wr1_a[l] = ht_keys.offset(slot[l]);
                                            wr1_v[l] = tag;
                                            wr2 |= lane;
                                            wr2_a[l] = ht_vals.offset(slot[l]);
                                            wr2_v[l] = o.b;
                                            ok[l] = true;
                                        }
                                    } else if kv[l] == tag {
                                        if o.kind == 5 {
                                            wr2 |= lane;
                                            wr2_a[l] = ht_vals.offset(slot[l]);
                                            wr2_v[l] = o.b;
                                            ok[l] = true;
                                        } else {
                                            found |= lane;
                                            ok[l] = true;
                                        }
                                    } else {
                                        slot[l] = (slot[l] + 1) % table_words;
                                        still |= lane;
                                    }
                                }
                                undecided = still;
                            }
                            let getv = found & stm.opaque(&w);
                            if getv.any() {
                                let va = lane_addrs(getv, |l| ht_vals.offset(slot[l]));
                                let vv = stm.read(&mut w, &ctx, getv, &va).await;
                                for l in getv.iter() {
                                    val[l] = vv[l];
                                }
                            }
                        }

                        let w1 = wr1 & stm.opaque(&w);
                        if w1.any() {
                            stm.write(&mut w, &ctx, w1, &wr1_a, &wr1_v).await;
                        }
                        let w2 = wr2 & stm.opaque(&w);
                        if w2.any() {
                            stm.write(&mut w, &ctx, w2, &wr2_a, &wr2_v).await;
                        }
                        let committed = stm.commit(&mut w, &ctx, active).await;
                        for l in committed.iter() {
                            out.borrow_mut()[base + l] = EntryOutcome { ok: ok[l], value: val[l] };
                        }
                        pending &= !committed;
                    }
                    ctx.set_speculative(false);
                }
            })
            .map_err(|e| ServeError::Engine { shard: self.cfg.shard, message: e.to_string() })?;

        let slots = out.borrow();
        for (slot, &i) in ops_idx.iter().enumerate() {
            outcomes[i] = slots[slot];
        }
        Ok(report.cycles)
    }

    fn run_txl_launch(
        &mut self,
        entries: &[Entry],
        txl_idx: &[usize],
        outcomes: &mut [EntryOutcome],
    ) -> Result<u64, ServeError> {
        let n = txl_idx.len();
        let warps = n.div_ceil(WARP_SIZE) as u32;
        let grid = LaunchConfig::new(warps, WARP_SIZE as u32);
        let threads = (warps as usize) * WARP_SIZE;
        let mut args = vec![0u32; threads];
        {
            let mut map = self.tid_map.borrow_mut();
            map.clear();
            map.resize(threads, u64::MAX);
            for (slot, &i) in txl_idx.iter().enumerate() {
                let ShardOp::TxlBump { key } = entries[i].op else { unreachable!() };
                args[slot] = key;
                map[slot] = entries[i].req;
            }
            // Pad lanes bump a private scratch cell past the counters.
            for (slot, arg) in args.iter_mut().enumerate().skip(n) {
                *arg = self.cfg.txl_words + slot as u32;
            }
        }
        self.sim.write_slice(self.txl_args, &args);
        self.txl_launch_seq += 1;
        let seed = self.cfg.seed ^ self.txl_launch_seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let bindings = [
            txl::ArrayBinding::new("args", self.txl_args, threads as u32),
            txl::ArrayBinding::new(
                "data",
                self.txl_data,
                self.cfg.txl_words + self.cfg.batch_capacity() as u32,
            ),
        ];
        let report = txl::launch(&mut self.sim, &self.stm, &self.txl_kernel, grid, seed, &bindings)
            .map_err(|e| ServeError::Engine { shard: self.cfg.shard, message: e.to_string() })?;
        for &i in txl_idx {
            outcomes[i] = EntryOutcome { ok: true, value: 0 };
        }
        Ok(report.cycles)
    }

    /// Consumes the engine: verifies the served history with `tm-check`
    /// and returns the plain-data summary.
    pub(crate) fn finish(self) -> ShardSummary {
        let final_span = self.sim.read_slice(Addr(self.span_base), self.span_len);
        let initial_span = self.initial;
        let span_base = self.span_base;
        let span_len = self.span_len;
        let word = move |span: &[u32], a: Addr| -> u32 {
            let i = a.index() as u32;
            if i >= span_base && i < span_base + span_len {
                span[(i - span_base) as usize]
            } else {
                0
            }
        };
        let init_fn = {
            let init = initial_span.clone();
            move |a: Addr| word(&init, a)
        };
        let final_fn = {
            let fin = final_span.clone();
            move |a: Addr| word(&fin, a)
        };

        let history = self.recorder.borrow();
        let check = tm_check::check_history(&history, &init_fn);
        let mut violations: Vec<String> = check.violations.iter().map(|v| v.to_string()).collect();
        // Final-state replay over everything the device owns except the
        // host-written TXL argument buffer.
        let data_end =
            self.txl_data.index() as u32 + self.cfg.txl_words + self.cfg.batch_capacity() as u32;
        let addrs = (self.accounts.index() as u32..data_end).map(Addr);
        violations.extend(
            tm_check::check_final_state(&history, &init_fn, &final_fn, addrs)
                .iter()
                .map(|v| v.to_string()),
        );

        let mut hist_fnv = Fnv::new();
        hist_fnv.u64(history.aborts);
        for tx in &history.commits {
            hist_fnv.u32(tx.tid);
            hist_fnv.u32(tx.version.map_or(0, |v| v + 1));
            hist_fnv.u32(tx.snapshot);
            hist_fnv.u32(tx.reads.len() as u32);
            for a in &tx.reads {
                hist_fnv.u32(a.addr.index() as u32);
                hist_fnv.u32(a.val);
            }
            hist_fnv.u32(tx.writes.len() as u32);
            for a in &tx.writes {
                hist_fnv.u32(a.addr.index() as u32);
                hist_fnv.u32(a.val);
            }
        }
        let mut log_fnv = Fnv::new();
        for rec in self.commit_log.borrow().iter() {
            log_fnv.u64(rec.req);
            log_fnv.u32(rec.tid);
            log_fnv.u32(rec.version);
            log_fnv.u32(rec.reads);
            log_fnv.u32(rec.writes);
        }

        let acc_base = (self.accounts.index() as u32 - span_base) as usize;
        let balance_sum: u64 = final_span[acc_base..acc_base + self.cfg.accounts as usize]
            .iter()
            .map(|&v| v as u64)
            .sum();
        let txl_base = (self.txl_data.index() as u32 - span_base) as usize;
        let txl_sum: u64 = final_span[txl_base..txl_base + self.cfg.txl_words as usize]
            .iter()
            .map(|&v| v as u64)
            .sum();

        ShardSummary {
            shard: self.cfg.shard,
            stm_name: self.stm.name().to_string(),
            tx: self.stm.stats().borrow().clone(),
            sim: self.sim.lifetime_stats().clone(),
            launches: self.sim.launches(),
            sim_cycles: self.sim.lifetime_cycles(),
            writers: check.writers,
            read_only: check.read_only,
            violations,
            history_fnv: hist_fnv.0,
            commit_log_fnv: log_fnv.0,
            balance_sum,
            txl_sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shard: usize, shards: usize) -> EngineConfig {
        EngineConfig {
            shard,
            shards,
            seed: 42,
            variant: Variant::HvSorting,
            mode: EngineMode::Scheduled,
            accounts: 64,
            table_words: 256,
            txl_words: 16,
            batch_warps: 2,
            initial_balance: 100,
            credit_cap: u32::MAX,
            n_locks: 1 << 10,
            trace_events: 0,
            wal: None,
        }
    }

    fn owned_key(cfg: &EngineConfig, skip: u32) -> u32 {
        let mut seen = 0;
        for k in 0..cfg.accounts {
            if route(k, cfg.shards, cfg.seed) == cfg.shard {
                if seen == skip {
                    return k;
                }
                seen += 1;
            }
        }
        panic!("shard owns fewer than {skip} keys");
    }

    #[test]
    fn single_shard_transfer_conserves_and_checks() {
        let c = cfg(0, 1);
        let mut eng = ShardEngine::new(c.clone()).unwrap();
        let a = owned_key(&c, 0);
        let b = owned_key(&c, 1);
        let entries = vec![
            Entry { req: 0, op: ShardOp::Transfer { from: a, to: b, amount: 30 } },
            Entry { req: 1, op: ShardOp::Transfer { from: b, to: a, amount: 5 } },
            Entry { req: 2, op: ShardOp::HtPut { key: 7, val: 99 } },
            Entry { req: 3, op: ShardOp::TxlBump { key: 3 } },
        ];
        let rep = eng.run_batch(&entries).unwrap();
        assert!(rep.outcomes[0].ok);
        assert!(rep.outcomes[1].ok);
        assert!(rep.outcomes[2].ok);
        assert!(rep.cycles > 0);
        // A later batch must observe the committed put.
        let rep2 = eng.run_batch(&[Entry { req: 4, op: ShardOp::HtGet { key: 7 } }]).unwrap();
        assert!(rep2.outcomes[0].ok, "get after a committed put must hit");
        assert_eq!(rep2.outcomes[0].value, 99);
        let sum = eng.finish();
        assert_eq!(sum.balance_sum, c.accounts as u64 * c.initial_balance as u64);
        assert_eq!(sum.txl_sum, 1);
        assert!(sum.violations.is_empty(), "violations: {:?}", sum.violations);
    }

    #[test]
    fn insufficient_funds_fails_without_side_effects() {
        let c = cfg(0, 1);
        let mut eng = ShardEngine::new(c.clone()).unwrap();
        let a = owned_key(&c, 0);
        let b = owned_key(&c, 1);
        let rep = eng
            .run_batch(&[Entry { req: 0, op: ShardOp::Transfer { from: a, to: b, amount: 1000 } }])
            .unwrap();
        assert!(!rep.outcomes[0].ok);
        let sum = eng.finish();
        assert_eq!(sum.balance_sum, c.accounts as u64 * c.initial_balance as u64);
        assert!(sum.violations.is_empty());
    }

    #[test]
    fn prepare_apply_and_rollback_paths() {
        let c = cfg(0, 1);
        let mut eng = ShardEngine::new(c.clone()).unwrap();
        let a = owned_key(&c, 0);
        // Phase 1: hold 40.
        let rep = eng
            .run_batch(&[Entry { req: 0, op: ShardOp::PrepareDebit { from: a, amount: 40 } }])
            .unwrap();
        assert!(rep.outcomes[0].ok);
        // Phase 2: compensate.
        let rep = eng
            .run_batch(&[Entry { req: 0, op: ShardOp::RollbackDebit { from: a, amount: 40 } }])
            .unwrap();
        assert!(rep.outcomes[0].ok);
        let sum = eng.finish();
        assert_eq!(sum.balance_sum, c.accounts as u64 * c.initial_balance as u64);
        assert!(sum.violations.is_empty());
    }

    #[test]
    fn credit_cap_vote_rejects() {
        let c = EngineConfig { credit_cap: 110, ..cfg(0, 1) };
        let mut eng = ShardEngine::new(c.clone()).unwrap();
        let a = owned_key(&c, 0);
        let ok_vote = eng
            .run_batch(&[Entry { req: 0, op: ShardOp::PrepareCredit { to: a, amount: 10 } }])
            .unwrap();
        assert!(ok_vote.outcomes[0].ok);
        let no_vote = eng
            .run_batch(&[Entry { req: 1, op: ShardOp::PrepareCredit { to: a, amount: 11 } }])
            .unwrap();
        assert!(!no_vote.outcomes[0].ok);
        let sum = eng.finish();
        assert_eq!(sum.balance_sum, c.accounts as u64 * c.initial_balance as u64);
    }

    #[test]
    fn identical_batches_yield_identical_history_hashes() {
        let run = || {
            let c = cfg(0, 1);
            let mut eng = ShardEngine::new(c.clone()).unwrap();
            let a = owned_key(&c, 0);
            let b = owned_key(&c, 1);
            let entries: Vec<Entry> = (0..40)
                .map(|i| Entry {
                    req: i,
                    op: if i % 3 == 0 {
                        ShardOp::Transfer { from: a, to: b, amount: 1 }
                    } else if i % 3 == 1 {
                        ShardOp::HtPut { key: i as u32, val: i as u32 }
                    } else {
                        ShardOp::TxlBump { key: (i % 16) as u32 }
                    },
                })
                .collect();
            eng.run_batch(&entries).unwrap();
            let s = eng.finish();
            (s.history_fnv, s.commit_log_fnv, s.balance_sum)
        };
        assert_eq!(run(), run());
    }
}
