//! Kill-and-restart recovery for a shard: snapshot restore, WAL tail
//! replay, and 2PC in-doubt resolution.
//!
//! Recovery healing is *byte-exact*: after a crash at any injected
//! [`CrashPoint`](crate::CrashPoint) the recovered shard's log, state
//! and subsequent execution are identical to an uncrashed run with the
//! same seed. The steps:
//!
//! 1. **Tail normalization** — a torn final record (crash mid-append)
//!    is truncated off the final segment. Record encoding is
//!    deterministic, so rewriting the kept records reproduces the
//!    segment's original bytes.
//! 2. **Snapshot restore** — a fresh engine (same config ⇒ same
//!    deterministic device allocations) absorbs the latest checksummed
//!    snapshot: simulator memory + L2 tags, lifetime counters, STM
//!    stats, scheduler/backoff wrapper state, the committed history and
//!    the request-tagged commit log.
//! 3. **Tail replay** — batches logged after the snapshot re-execute.
//!    A *complete* group (its sealing `Result` is durable) re-executes
//!    without re-appending, and the regenerated commit stream and seal
//!    are verified byte-for-byte against the log — the verified-recovery
//!    self-check. An *incomplete* group (batch logged, never sealed)
//!    completes exactly as the uncrashed flow would have.
//! 4. **In-doubt 2PC holds** — [`resolve_in_doubt`] commits a prepared
//!    debit hold when the coordinator's decision log recorded a commit,
//!    and compensates it otherwise (presumed abort). The live service
//!    keeps coordinator state in memory across a shard crash, so this
//!    path is for cold restarts, where the log is all that survives.

use crate::engine::{BatchReport, DurableOutcome, EngineConfig, Entry, ShardEngine, ShardOp};
use crate::error::ServeError;
use crate::wal::{
    latest_snapshot, read_decisions, read_shard_wal, seg_name, BatchSeal, StoreHandle, WalRecord,
};
use std::collections::BTreeMap;

/// Telemetry from one shard recovery (surfaced in
/// [`RecoveryReport`](crate::RecoveryReport)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Recovered shard.
    pub shard: usize,
    /// Sequence number of the restored snapshot (0 = recovered from
    /// the log alone).
    pub snapshot_seq: u64,
    /// Whether a torn final record was truncated.
    pub torn_truncated: bool,
    /// Complete logged groups re-executed and verified against their
    /// logged seals.
    pub replayed: u64,
    /// Incomplete logged batches executed to completion.
    pub reexecuted: u64,
    /// In-doubt holds kept because the coordinator logged a commit.
    pub in_doubt_committed: u64,
    /// In-doubt holds compensated (no commit decision: presumed abort).
    pub in_doubt_compensated: u64,
}

/// A recovered shard: the rebuilt engine plus what the coordinator
/// needs to resume the stream.
pub(crate) struct RecoveredShard {
    /// The rebuilt engine, resumed at the WAL tail.
    pub engine: ShardEngine,
    /// `(seq, report)` of the highest batch known durable — answers a
    /// dispatch the dead worker never acknowledged. `None` if nothing
    /// was ever sealed.
    pub last: Option<(u64, BatchReport)>,
    /// Recovery telemetry.
    pub stats: RecoveryStats,
}

struct Group {
    seq: u64,
    entries: Vec<Entry>,
    commits: Vec<WalRecord>,
    seal: Option<BatchSeal>,
}

/// Rebuilds a shard engine from its WAL. `cfg` must match the dead
/// engine's config, with crash injection disarmed by the caller (else
/// the same crash re-fires on replay).
///
/// # Errors
///
/// Fails on log corruption outside the legal torn tail, on a corrupt
/// snapshot, or when replay diverges from a logged seal.
pub(crate) fn recover(cfg: EngineConfig, store: StoreHandle) -> Result<RecoveredShard, ServeError> {
    let shard = cfg.shard;
    let fail = |m: String| ServeError::Engine { shard, message: m };
    let wal = read_shard_wal(&store, shard).map_err(&fail)?;

    // 1. Tail normalization: drop torn bytes by rewriting the final
    // segment from its decoded (deterministically re-encodable) records.
    let torn_truncated = wal.torn;
    if wal.torn {
        let (seg, recs) = wal.segs.last().expect("torn WAL has a final segment");
        let mut bytes = Vec::new();
        for rec in recs {
            bytes.extend(rec.encode());
        }
        store.put(&seg_name(shard, *seg), &bytes);
    }

    // 2. Fresh engine + snapshot restore.
    let mut engine = ShardEngine::with_store(cfg, Some(store.clone()))?;
    let mut snapshot_seq = 0;
    if let Some((seq, payload)) = latest_snapshot(&store, shard) {
        let restored = engine.restore_snapshot(&payload)?;
        if restored != seq {
            return Err(fail(format!(
                "snapshot blob named for batch {seq} carries payload for batch {restored}"
            )));
        }
        snapshot_seq = seq;
    }

    // 3. Tail replay.
    let mut groups: Vec<Group> = Vec::new();
    for rec in wal.records() {
        match rec {
            WalRecord::Batch { seq, entries } => groups.push(Group {
                seq: *seq,
                entries: entries.clone(),
                commits: Vec::new(),
                seal: None,
            }),
            WalRecord::Commit { .. } => {
                if let Some(g) = groups.last_mut() {
                    if g.seal.is_none() {
                        g.commits.push(rec.clone());
                    }
                }
            }
            WalRecord::Result(seal) => {
                if let Some(g) = groups.last_mut() {
                    if g.seq == seal.seq {
                        g.seal = Some(seal.clone());
                    }
                }
            }
            WalRecord::Init { .. } | WalRecord::Decision { .. } => {}
        }
    }
    groups.retain(|g| g.seq > snapshot_seq);

    let mut stats =
        RecoveryStats { shard, snapshot_seq, torn_truncated, ..RecoveryStats::default() };
    let mut last: Option<(u64, BatchReport)> =
        engine.last_seal().map(|seal| (seal.seq, report_from_seal(seal)));
    for (i, g) in groups.iter().enumerate() {
        if g.seq != engine.next_seq() {
            return Err(fail(format!(
                "WAL tail batch {} does not follow engine sequence {}",
                g.seq,
                engine.next_seq()
            )));
        }
        let report = match &g.seal {
            Some(seal) => {
                stats.replayed += 1;
                engine.replay_verified(g.seq, &g.entries, &g.commits, seal)?
            }
            None => {
                if i + 1 != groups.len() {
                    return Err(fail(format!(
                        "unsealed batch {} is not the final logged group",
                        g.seq
                    )));
                }
                stats.reexecuted += 1;
                engine.execute_logged(g.seq, &g.entries)?
            }
        };
        last = Some((g.seq, report));
    }

    Ok(RecoveredShard { engine, last, stats })
}

/// Rebuilds a [`BatchReport`] from a logged seal (the crash-after-
/// compaction case, where the group's records are gone but the seal
/// was embedded in the snapshot).
fn report_from_seal(seal: &BatchSeal) -> BatchReport {
    BatchReport {
        outcomes: seal.outcomes.clone(),
        cycles: seal.cycles,
        commits: seal.commits,
        aborts: seal.aborts,
        storm: seal.storm,
        seq: seal.seq,
        // Seals carry no trace events; a flight frame rebuilt from one
        // replays as counters only.
        sim_events: Vec::new(),
        tx_events: Vec::new(),
    }
}

/// A prepared-but-undecided cross-shard debit hold found in the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct InDoubtHold {
    /// Originating request.
    pub req: u64,
    /// Held (debited) account.
    pub from: u32,
    /// Held amount.
    pub amount: u32,
    /// Coordinator decision, if one was logged.
    pub decided: Option<bool>,
}

/// Scans the surviving WAL of `shard` for 2PC debit holds with no
/// later compensation on this shard, joined against the coordinator
/// decision log. (Compaction drops segments behind the last snapshot,
/// so cold-restart 2PC resolution wants `compact: false` or a snapshot
/// cadence longer than the 2PC window.)
pub(crate) fn in_doubt_holds(
    store: &StoreHandle,
    shard: usize,
) -> Result<Vec<InDoubtHold>, String> {
    let wal = read_shard_wal(store, shard)?;
    let decisions = read_decisions(store);
    let mut batches: BTreeMap<u64, Vec<Entry>> = BTreeMap::new();
    let mut seals: BTreeMap<u64, BatchSeal> = BTreeMap::new();
    for rec in wal.records() {
        match rec {
            WalRecord::Batch { seq, entries } => {
                batches.insert(*seq, entries.clone());
            }
            WalRecord::Result(seal) => {
                seals.insert(seal.seq, seal.clone());
            }
            _ => {}
        }
    }
    let mut holds: BTreeMap<u64, (u32, u32)> = BTreeMap::new();
    for (seq, entries) in &batches {
        let Some(seal) = seals.get(seq) else { continue };
        for (i, entry) in entries.iter().enumerate() {
            match entry.op {
                ShardOp::PrepareDebit { from, amount }
                    if seal.outcomes.get(i).is_some_and(|o| o.ok) =>
                {
                    holds.insert(entry.req, (from, amount));
                }
                ShardOp::RollbackDebit { .. } => {
                    holds.remove(&entry.req);
                }
                _ => {}
            }
        }
    }
    Ok(holds
        .into_iter()
        .map(|(req, (from, amount))| InDoubtHold {
            req,
            from,
            amount,
            decided: decisions.get(&req).copied(),
        })
        .collect())
}

/// Cold-restart 2PC resolution: keeps holds the coordinator decided to
/// commit, compensates the rest (presumed abort) with `RollbackDebit`
/// batches run through the normal durable path. Returns
/// `(committed, compensated)` counts.
///
/// # Errors
///
/// Propagates log-scan and batch-execution failures.
pub(crate) fn resolve_in_doubt(
    engine: &mut ShardEngine,
    store: &StoreHandle,
) -> Result<(u64, u64), ServeError> {
    let shard = engine.shard();
    let holds =
        in_doubt_holds(store, shard).map_err(|m| ServeError::Engine { shard, message: m })?;
    let mut committed = 0;
    let mut comp: Vec<Entry> = Vec::new();
    for h in holds {
        if h.decided == Some(true) {
            committed += 1;
        } else {
            comp.push(Entry {
                req: h.req,
                op: ShardOp::RollbackDebit { from: h.from, amount: h.amount },
            });
        }
    }
    let compensated = comp.len() as u64;
    for chunk in comp.chunks(engine.batch_capacity()) {
        match engine.run_batch_durable(chunk)? {
            DurableOutcome::Done(_) => {}
            DurableOutcome::Crashed(p) => {
                return Err(ServeError::Engine {
                    shard,
                    message: format!("crash injection fired at {p} during in-doubt resolution"),
                })
            }
        }
    }
    Ok((committed, compensated))
}
