//! Aggregated service telemetry, exported through the workspace's
//! deterministic [`JsonWriter`] so `BENCH_serve.json` is byte-identical
//! for a fixed seed regardless of worker-thread count: every serialized
//! quantity is virtual (simulated cycles, counters, hashes) — wall-clock
//! time is reported on the console only and never enters the JSON.

use crate::error::ServeError;
use crate::obs::{FlightBundle, Hist, Incident, ObsReport};
use crate::recovery::RecoveryStats;
use gpu_sim::JsonWriter;

/// A replica whose span image or commit-log hash lost the epoch quorum
/// vote — a silent replication error caught and contained by demotion.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ReplicaDiverged {
    /// Shard the replica shadows.
    pub shard: usize,
    /// Replica index within the group.
    pub replica: usize,
    /// Batch sequence at which the vote failed.
    pub seq: u64,
    /// Quorum-winning data-span FNV.
    pub expected_data_fnv: u64,
    /// The demoted replica's data-span FNV.
    pub got_data_fnv: u64,
    /// Quorum-winning commit-log FNV.
    pub expected_log_fnv: u64,
    /// The demoted replica's commit-log FNV.
    pub got_log_fnv: u64,
}

/// Durability telemetry for a service run: crash/recovery events and
/// replica-group health. Kept separate from [`ServeReport`] so
/// `BENCH_serve.json` stays byte-identical whether or not durability is
/// enabled.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Recoveries performed, in the order they happened.
    pub recoveries: Vec<RecoveryStats>,
    /// Requests rejected with [`ServeError::ShardUnavailable`] while a
    /// shard was recovering.
    pub unavailable_rejections: u64,
    /// Batches whose dispatch was answered from the recovered WAL
    /// instead of a live worker ack.
    pub replayed_acks: u64,
    /// Replicas configured per shard (0 = replication off).
    pub replicas_per_shard: u64,
    /// Replicas still healthy at drain, across all shards.
    pub replicas_healthy: u64,
    /// Divergence incidents, in detection order.
    pub diverged: Vec<ReplicaDiverged>,
    /// Durability-dependent health incidents (synchronously-healed
    /// crashes, replica demotions); epoch-visible incidents live in
    /// [`ServeReport::obs`] instead.
    pub incidents: Vec<Incident>,
    /// Flight-recorder bundles cut at crash and divergence points.
    pub bundles: Vec<FlightBundle>,
    /// FNV-1a fingerprint of the final blob store (every WAL segment,
    /// snapshot and decision blob) — the byte-identity witness for
    /// crash-recovery runs.
    pub store_fnv: u64,
    /// Total bytes across surviving blobs.
    pub store_bytes: u64,
}

impl RecoveryReport {
    /// Serializes the durability report (stable field order) into `w`.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("recoveries");
        w.begin_array();
        for r in &self.recoveries {
            w.begin_object();
            w.field_u64("shard", r.shard as u64);
            w.field_u64("snapshot_seq", r.snapshot_seq);
            w.field_bool("torn_truncated", r.torn_truncated);
            w.field_u64("replayed", r.replayed);
            w.field_u64("reexecuted", r.reexecuted);
            w.field_u64("in_doubt_committed", r.in_doubt_committed);
            w.field_u64("in_doubt_compensated", r.in_doubt_compensated);
            w.end_object();
        }
        w.end_array();
        w.field_u64("unavailable_rejections", self.unavailable_rejections);
        w.field_u64("replayed_acks", self.replayed_acks);
        w.field_u64("replicas_per_shard", self.replicas_per_shard);
        w.field_u64("replicas_healthy", self.replicas_healthy);
        w.key("diverged");
        w.begin_array();
        for d in &self.diverged {
            w.begin_object();
            w.field_u64("shard", d.shard as u64);
            w.field_u64("replica", d.replica as u64);
            w.field_u64("seq", d.seq);
            w.field_str("expected_data_fnv", &format!("{:016x}", d.expected_data_fnv));
            w.field_str("got_data_fnv", &format!("{:016x}", d.got_data_fnv));
            w.field_str("expected_log_fnv", &format!("{:016x}", d.expected_log_fnv));
            w.field_str("got_log_fnv", &format!("{:016x}", d.got_log_fnv));
            w.end_object();
        }
        w.end_array();
        w.key("incidents");
        w.begin_array();
        for i in &self.incidents {
            i.write_json(w);
        }
        w.end_array();
        w.key("bundles");
        w.begin_array();
        for b in &self.bundles {
            b.write_json(w);
        }
        w.end_array();
        w.field_str("store_fnv", &format!("{:016x}", self.store_fnv));
        w.field_u64("store_bytes", self.store_bytes);
        w.end_object();
    }

    /// The durability report as a standalone JSON string.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

/// Completed-request counts by traffic class.
#[derive(Copy, Clone, Debug, Default)]
pub struct ClassTotals {
    /// Single-shard bank transfers.
    pub bank_local: u64,
    /// Cross-shard (2PC) bank transfers.
    pub bank_cross: u64,
    /// Hashtable puts/gets.
    pub ht: u64,
    /// TXL programs.
    pub txl: u64,
}

/// Per-shard slice of the report.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// STM variant label the shard ran.
    pub stm_name: String,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts.
    pub aborts: u64,
    /// Read-only commits verified by `tm-check`.
    pub read_only: u64,
    /// Writer commits replayed by `tm-check`.
    pub writers: u64,
    /// Kernel launches (batches + TXL launches).
    pub launches: u64,
    /// Simulated cycles across the shard's launches.
    pub sim_cycles: u64,
    /// Warp instructions issued.
    pub instructions: u64,
    /// Final sum of the shard's account balances.
    pub balance_sum: u64,
    /// Final sum of the shard's TXL counters.
    pub txl_sum: u64,
    /// Requests rejected at admission because this shard's queue was
    /// full.
    pub rejected: u64,
    /// Requests parked by blocking admission when this shard's queue
    /// was full (park events; every one is eventually admitted).
    pub parked: u64,
    /// Peak number of requests simultaneously parked on this shard.
    pub parked_depth_peak: u64,
    /// Peak admission-queue occupancy.
    pub queue_peak: u64,
    /// Rounds this shard reported an abort storm.
    pub storm_rounds: u64,
    /// Largest retry-after hint handed out (simulated cycles).
    pub retry_hint_peak: u64,
    /// Hint an idle, storm-free shard would hand out at drain time —
    /// shrinks back once pressure clears.
    pub retry_hint_final: u64,
    /// FNV-1a hash of the shard's committed history.
    pub history_fnv: u64,
    /// FNV-1a hash of the request-tagged commit log.
    pub commit_log_fnv: u64,
    /// Histogram of the retry-after hints this shard's rejections
    /// handed out (fixed [`crate::obs::RETRY_AFTER_BOUNDS`] buckets).
    pub retry_after: Hist,
    /// `tm-check` violations (empty = opaque-serializable).
    pub violations: Vec<String>,
}

impl ShardReport {
    /// Abort rate: `aborts / (commits + aborts)`, 0 for an idle shard.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.aborts;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }
}

/// The full service run report.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// STM variant short name.
    pub variant: String,
    /// Engine wrapper mode.
    pub mode: String,
    /// Shard count.
    pub shards: u64,
    /// Worker-thread count actually used.
    pub workers: u64,
    /// Service seed.
    pub seed: u64,
    /// Per-shard admission-queue bound.
    pub queue_capacity: u64,
    /// Transaction slots per sealed batch.
    pub batch_capacity: u64,
    /// Requests generated.
    pub offered: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected with [`ServeError::Overloaded`].
    pub rejected: u64,
    /// Requests parked by blocking admission instead of being rejected
    /// (every parked request is eventually admitted, so after drain
    /// `admitted` includes all of them).
    pub parked: u64,
    /// Peak number of simultaneously parked requests across the run.
    pub parked_peak: u64,
    /// Requests completed (always equals `admitted` after drain).
    pub completed: u64,
    /// Completed requests whose business outcome failed (insufficient
    /// funds, key miss, 2PC no-vote).
    pub business_failed: u64,
    /// Cross-shard transfers admitted (each ran 2PC).
    pub cross_shard: u64,
    /// 2PC transfers that ended in a compensating rollback.
    pub rollbacks: u64,
    /// Completions by class.
    pub classes: ClassTotals,
    /// Sum of values returned by successful hashtable gets — a cheap
    /// determinism witness over request *results*, not just counts.
    pub ht_get_value_sum: u64,
    /// Coordinator rounds executed.
    pub rounds: u64,
    /// Final virtual epoch (simulated cycles of the slowest shard per
    /// round, summed — the service's makespan in virtual time).
    pub virtual_cycles: u64,
    /// Sorted request latencies in simulated cycles
    /// (completion epoch − arrival).
    pub latencies: Vec<u64>,
    /// Bank conservation held (Σ balances unchanged).
    pub conserved: bool,
    /// TXL counters equal completed TXL requests.
    pub txl_consistent: bool,
    /// Total `tm-check` violations across shards.
    pub violations_total: usize,
    /// First structured admission rejection, if any.
    pub first_rejection: Option<ServeError>,
    /// Per-shard reports, in shard order.
    pub shard_reports: Vec<ShardReport>,
    /// Live-observability block: final metrics snapshot plus the
    /// epoch-visible incidents and their flight-recorder bundles.
    pub obs: ObsReport,
    /// Wall-clock duration of the run. **Console-only**: deliberately
    /// never serialized, so reports stay byte-identical across worker
    /// counts and machines.
    pub wall_seconds: f64,
}

impl ServeReport {
    fn percentile(&self, p: u64) -> u64 {
        if self.latencies.is_empty() {
            return 0;
        }
        let idx = (self.latencies.len() as u64 - 1) * p / 100;
        self.latencies[idx as usize]
    }

    /// Median request latency in simulated cycles.
    pub fn p50(&self) -> u64 {
        self.percentile(50)
    }

    /// 99th-percentile request latency in simulated cycles.
    pub fn p99(&self) -> u64 {
        self.percentile(99)
    }

    /// Worst request latency in simulated cycles.
    pub fn latency_max(&self) -> u64 {
        self.latencies.last().copied().unwrap_or(0)
    }

    /// Completed requests per 1000 simulated cycles — the deterministic
    /// throughput figure (the paper's native currency).
    pub fn sim_throughput(&self) -> f64 {
        if self.virtual_cycles == 0 {
            0.0
        } else {
            self.completed as f64 * 1000.0 / self.virtual_cycles as f64
        }
    }

    /// Completed requests per wall-clock second (console-only metric).
    pub fn wall_throughput(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.wall_seconds
        }
    }

    /// Serializes the report (stable field order, virtual quantities
    /// only) into `w` as one JSON object.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("variant", &self.variant);
        w.field_str("mode", &self.mode);
        w.field_u64("shards", self.shards);
        // `workers` is deliberately omitted: the JSON must be
        // byte-identical for 1, 2 or N worker threads.
        w.field_u64("seed", self.seed);
        w.field_u64("queue_capacity", self.queue_capacity);
        w.field_u64("batch_capacity", self.batch_capacity);
        w.field_u64("offered", self.offered);
        w.field_u64("admitted", self.admitted);
        w.field_u64("rejected", self.rejected);
        w.field_u64("parked", self.parked);
        w.field_u64("parked_peak", self.parked_peak);
        w.field_u64("completed", self.completed);
        w.field_u64("business_failed", self.business_failed);
        w.field_u64("cross_shard", self.cross_shard);
        w.field_u64("rollbacks", self.rollbacks);
        w.key("classes");
        w.begin_object();
        w.field_u64("bank_local", self.classes.bank_local);
        w.field_u64("bank_cross", self.classes.bank_cross);
        w.field_u64("ht", self.classes.ht);
        w.field_u64("txl", self.classes.txl);
        w.end_object();
        w.field_u64("ht_get_value_sum", self.ht_get_value_sum);
        w.field_u64("rounds", self.rounds);
        w.field_u64("virtual_cycles", self.virtual_cycles);
        w.key("latency_cycles");
        w.begin_object();
        w.field_u64("p50", self.p50());
        w.field_u64("p99", self.p99());
        w.field_u64("max", self.latency_max());
        w.end_object();
        w.field_f64("sim_throughput_per_kcycle", self.sim_throughput());
        w.field_bool("conserved", self.conserved);
        w.field_bool("txl_consistent", self.txl_consistent);
        w.field_u64("violations_total", self.violations_total as u64);
        if let Some(rej) = &self.first_rejection {
            w.field_str("first_rejection", &rej.to_string());
        }
        w.key("shards_detail");
        w.begin_array();
        for s in &self.shard_reports {
            w.begin_object();
            w.field_u64("shard", s.shard as u64);
            w.field_str("stm", &s.stm_name);
            w.field_u64("commits", s.commits);
            w.field_u64("aborts", s.aborts);
            w.field_f64("abort_rate", s.abort_rate());
            w.field_u64("writers", s.writers);
            w.field_u64("read_only", s.read_only);
            w.field_u64("launches", s.launches);
            w.field_u64("sim_cycles", s.sim_cycles);
            w.field_u64("instructions", s.instructions);
            w.field_u64("balance_sum", s.balance_sum);
            w.field_u64("txl_sum", s.txl_sum);
            w.field_u64("rejected", s.rejected);
            w.field_u64("parked", s.parked);
            w.field_u64("parked_depth_peak", s.parked_depth_peak);
            w.field_u64("queue_peak", s.queue_peak);
            w.field_u64("storm_rounds", s.storm_rounds);
            w.field_u64("retry_hint_peak", s.retry_hint_peak);
            w.field_u64("retry_hint_final", s.retry_hint_final);
            w.field_str("history_fnv", &format!("{:016x}", s.history_fnv));
            w.field_str("commit_log_fnv", &format!("{:016x}", s.commit_log_fnv));
            w.key("retry_after");
            s.retry_after.write_json(w);
            w.key("violations");
            w.begin_array();
            for v in &s.violations {
                w.string(v);
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.key("obs");
        self.obs.write_json(w);
        w.end_object();
    }

    /// The report as a standalone JSON string.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeReport {
        ServeReport {
            variant: "hv-sorting".into(),
            mode: "scheduled".into(),
            shards: 2,
            workers: 2,
            seed: 42,
            queue_capacity: 64,
            batch_capacity: 64,
            offered: 10,
            admitted: 9,
            rejected: 1,
            parked: 0,
            parked_peak: 0,
            completed: 9,
            business_failed: 2,
            cross_shard: 3,
            rollbacks: 1,
            classes: ClassTotals { bank_local: 3, bank_cross: 3, ht: 2, txl: 1 },
            ht_get_value_sum: 7,
            rounds: 4,
            virtual_cycles: 4000,
            latencies: vec![10, 20, 30, 40, 50, 60, 70, 80, 90],
            conserved: true,
            txl_consistent: true,
            violations_total: 0,
            first_rejection: None,
            shard_reports: vec![],
            obs: ObsReport::default(),
            wall_seconds: 1.5,
        }
    }

    #[test]
    fn percentiles_from_sorted_latencies() {
        let r = sample();
        assert_eq!(r.p50(), 50);
        assert_eq!(r.p99(), 80);
        assert_eq!(r.latency_max(), 90);
    }

    #[test]
    fn json_excludes_wall_clock() {
        let a = ServeReport { wall_seconds: 0.1, ..sample() };
        let b = ServeReport { wall_seconds: 99.0, ..sample() };
        assert_eq!(a.to_json(), b.to_json());
        assert!(!a.to_json().contains("wall"));
    }

    #[test]
    fn sim_throughput_is_per_kcycle() {
        let r = sample();
        assert!((r.sim_throughput() - 2.25).abs() < 1e-9);
    }

    #[test]
    fn recovery_report_json_is_stable() {
        let r = RecoveryReport {
            recoveries: vec![RecoveryStats {
                shard: 1,
                snapshot_seq: 8,
                torn_truncated: true,
                replayed: 2,
                reexecuted: 1,
                ..RecoveryStats::default()
            }],
            unavailable_rejections: 3,
            replayed_acks: 1,
            replicas_per_shard: 2,
            replicas_healthy: 3,
            diverged: vec![ReplicaDiverged {
                shard: 0,
                replica: 1,
                seq: 4,
                expected_data_fnv: 0xabc,
                got_data_fnv: 0xdef,
                expected_log_fnv: 1,
                got_log_fnv: 2,
            }],
            incidents: vec![],
            bundles: vec![],
            store_fnv: 0x1234,
            store_bytes: 4096,
        };
        let json = r.to_json();
        assert_eq!(json, r.to_json());
        assert!(json.contains("\"torn_truncated\":true"));
        assert!(json.contains("\"got_data_fnv\":\"0000000000000def\""));
        assert!(json.contains("\"store_bytes\":4096"));
    }
}
