//! tm-obs: deterministic live observability for the serving layer.
//!
//! Everything here is aggregated on the **virtual epoch clock** (DESIGN.md
//! §12): counters roll over on epoch-window boundaries, incidents open and
//! close at epochs, and flight-recorder frames are stamped with the round
//! and epoch at which their batch folded. No wall-clock value ever enters
//! a snapshot, so a [`MetricsSnapshot`] — like every other serialized
//! report in this workspace — is byte-identical at any worker count and on
//! any machine for a fixed seed.
//!
//! Three layers, consumed by `service::serve`:
//!
//! 1. **Windowed metrics** — per-shard [`WinCounter`]s (total + last
//!    completed window), fixed-bucket [`Hist`]ograms for batch cycles and
//!    retry-after hints, and point gauges (queue depth, cost estimate,
//!    abort permille). Exposed as JSON (via
//!    [`JsonWriter`](gpu_sim::json::JsonWriter)) and Prometheus text.
//! 2. **Health + incidents** — a per-shard state machine
//!    ([`HealthState`]) driven by `Stm::abort_storm` with hysteresis,
//!    crash-recovery windows, replica divergence and tm-check violations.
//!    Transitions produce structured [`Incident`] records with evidence
//!    FNV fingerprints.
//! 3. **Flight recorder** — a bounded ring of [`FlightFrame`]s per shard
//!    (the last N folded batches, optionally carrying the batch's drained
//!    trace events). When an incident opens, a [`FlightBundle`] is cut:
//!    a replayable post-mortem with a Chrome-trace slice, a `.sched`-style
//!    context block and the shard's store fingerprint.
//!
//! Visibility discipline: anything serialized into `ServeReport` must be
//! **durability-independent** (a durable no-crash run and a volatile run
//! produce identical report JSON — `tests/recovery.rs` enforces this), so
//! epoch-visible incidents (abort storms, asynchronous recovery windows,
//! check violations) live in the serve report while crash bundles and
//! divergence demotions live in `RecoveryReport`. WAL positions appear
//! only in crash bundles, never in storm or violation bundles.

use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};

use gpu_sim::json::JsonWriter;
use gpu_sim::trace::SimEvent;
use gpu_stm::trace::{chrome_trace, TxEvent};

use crate::engine::{BatchReport, Fnv};

/// Tuning knobs for the observability subsystem.
///
/// The defaults are cheap enough to leave on for every run: with
/// `flight_events == 0` no trace events are captured and the flight
/// recorder holds only per-batch counters.
#[derive(Clone, Debug)]
pub struct ObsConfig {
    /// Width of a metrics window in virtual cycles. Counters roll over
    /// each time the epoch clock crosses a multiple of this value.
    pub window_cycles: u64,
    /// Flight-recorder depth: how many folded batches (≈ epochs of shard
    /// activity) each shard retains for post-mortem bundles.
    pub flight_epochs: usize,
    /// Per-batch trace-event ring capacity wired into the engines. Zero
    /// disables event capture; bundles then carry counters only.
    pub flight_events: usize,
    /// Consecutive storming batches before a shard enters `Storming` and
    /// an [`IncidentCause::AbortStorm`] incident opens.
    pub storm_open: u32,
    /// Consecutive calm batches before the storm incident closes.
    pub storm_close: u32,
    /// Parked-admission depth at or above which a round counts toward a
    /// park storm (blocking admission only; see `ServeConfig::blocking`).
    pub park_open_depth: u64,
    /// Consecutive rounds at or above [`Self::park_open_depth`] before a
    /// [`IncidentCause::ParkStorm`] incident opens.
    pub park_storm_open: u32,
    /// Consecutive rounds below the depth threshold before the park
    /// storm incident closes.
    pub park_storm_close: u32,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            window_cycles: 1 << 16,
            flight_epochs: 8,
            flight_events: 0,
            storm_open: 2,
            storm_close: 2,
            park_open_depth: 1,
            park_storm_open: 2,
            park_storm_close: 2,
        }
    }
}

/// Per-shard health, derived — never sampled — from epoch-clock signals.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// Serving normally.
    Healthy,
    /// The shard's STM reports a sustained abort storm.
    Storming,
    /// A crash-recovery window is in progress and no replica can answer.
    Recovering,
    /// A crash-recovery window is in progress but a healthy replica group
    /// is available to answer for the shard.
    ReplicaServing,
    /// A tm-check violation or replica divergence was detected; the shard
    /// stays degraded for the rest of the run.
    Degraded,
}

impl HealthState {
    /// Stable lowercase label used by both encoders.
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Storming => "storming",
            HealthState::Recovering => "recovering",
            HealthState::ReplicaServing => "replica_serving",
            HealthState::Degraded => "degraded",
        }
    }
}

/// Why an [`Incident`] opened.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IncidentCause {
    /// Sustained abort storm (AIMD high-water mark held for
    /// [`ObsConfig::storm_open`] batches).
    AbortStorm,
    /// A `CrashPlan` kill landed and the shard entered a recovery window.
    CrashRecovery,
    /// A verified replica disagreed with the primary's epoch fingerprint.
    ReplicaDivergence,
    /// The tm-check oracle reported a consistency violation at drain.
    CheckViolation,
    /// Blocking admission held parked requests at or above the
    /// [`ObsConfig::park_open_depth`] threshold for
    /// [`ObsConfig::park_storm_open`] consecutive rounds.
    ParkStorm,
}

impl IncidentCause {
    /// Stable lowercase label used in JSON, bundle names and filenames.
    pub fn label(self) -> &'static str {
        match self {
            IncidentCause::AbortStorm => "abort_storm",
            IncidentCause::CrashRecovery => "crash_recovery",
            IncidentCause::ReplicaDivergence => "replica_divergence",
            IncidentCause::CheckViolation => "check_violation",
            IncidentCause::ParkStorm => "park_storm",
        }
    }

    fn ordinal(self) -> u64 {
        match self {
            IncidentCause::AbortStorm => 1,
            IncidentCause::CrashRecovery => 2,
            IncidentCause::ReplicaDivergence => 3,
            IncidentCause::CheckViolation => 4,
            IncidentCause::ParkStorm => 5,
        }
    }
}

/// Provenance link from an incident bundle back to a model-checker
/// witness: the violated rule and the minimized `.sched` schedule path
/// produced by `tm_verify::witness::save_witness`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WitnessRef {
    /// Lint/check rule id the witness demonstrates (e.g. `TL002`).
    pub rule: String,
    /// Path of the minimized `.sched` witness file.
    pub path: String,
}

/// A structured health incident: one open/close span on the epoch clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Incident {
    /// Shard the incident belongs to.
    pub shard: u32,
    /// Why it opened.
    pub cause: IncidentCause,
    /// Epoch at which the incident opened.
    pub open_epoch: u64,
    /// Coordinator round at which it opened.
    pub open_round: u64,
    /// Epoch at which it closed (`None` while still open).
    pub close_epoch: Option<u64>,
    /// Round at which it closed (`None` while still open).
    pub close_round: Option<u64>,
    /// FNV-1a fingerprint of the evidence folded at open time (shard,
    /// cause, epoch, round and the cause-specific counters).
    pub evidence_fnv: u64,
    /// Name of the flight-recorder bundle cut when the incident opened.
    pub bundle: Option<String>,
    /// Model-checker witness provenance, when the incident originated
    /// from a verified violation.
    pub witness: Option<WitnessRef>,
}

impl Incident {
    /// Serializes the incident with stable field order.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("shard", self.shard as u64);
        w.field_str("cause", self.cause.label());
        w.field_u64("open_epoch", self.open_epoch);
        w.field_u64("open_round", self.open_round);
        if let Some(e) = self.close_epoch {
            w.field_u64("close_epoch", e);
        }
        if let Some(r) = self.close_round {
            w.field_u64("close_round", r);
        }
        w.field_str("evidence_fnv", &format!("{:016x}", self.evidence_fnv));
        if let Some(b) = &self.bundle {
            w.field_str("bundle", b);
        }
        if let Some(wit) = &self.witness {
            w.key("witness");
            w.begin_object();
            w.field_str("rule", &wit.rule);
            w.field_str("path", &wit.path);
            w.end_object();
        }
        w.end_object();
    }
}

/// A counter with a windowed view: the all-run total, the window
/// currently accumulating, and the last completed window (what a live
/// dashboard would graph as the current rate).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WinCounter {
    /// All-run total.
    pub total: u64,
    /// Amount accumulated in the currently open window.
    pub window: u64,
    /// Amount of the last completed window.
    pub last_window: u64,
}

impl WinCounter {
    /// Adds to both the total and the open window.
    pub fn add(&mut self, v: u64) {
        self.total += v;
        self.window += v;
    }

    /// Completes the open window (called on a window boundary).
    pub fn roll(&mut self) {
        self.last_window = self.window;
        self.window = 0;
    }
}

/// A fixed-bucket cumulative histogram (Prometheus semantics: bucket `i`
/// counts observations `<= bounds[i]`, with an implicit `+Inf` bucket).
///
/// Bounds are fixed at construction so the encoding — and therefore the
/// report bytes — cannot depend on the data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    /// Upper bounds of the finite buckets, strictly increasing.
    pub bounds: Vec<u64>,
    /// Non-cumulative per-bucket counts; `counts[bounds.len()]` is the
    /// overflow (`+Inf`) bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl Hist {
    /// Creates an empty histogram over the given bucket bounds.
    pub fn new(bounds: &[u64]) -> Self {
        Hist { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], count: 0, sum: 0 }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        let idx = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Serializes the histogram with stable field order.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("bounds");
        w.begin_array();
        for &b in &self.bounds {
            w.u64(b);
        }
        w.end_array();
        w.key("counts");
        w.begin_array();
        for &c in &self.counts {
            w.u64(c);
        }
        w.end_array();
        w.field_u64("count", self.count);
        w.field_u64("sum", self.sum);
        w.end_object();
    }
}

/// Batch-cycle histogram bounds (virtual cycles per dispatched batch).
pub const BATCH_CYCLE_BOUNDS: [u64; 7] =
    [1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16, 1 << 17, 1 << 18];

/// Retry-after-hint histogram bounds (virtual cycles clients are told to
/// back off on admission rejection).
pub const RETRY_AFTER_BOUNDS: [u64; 6] = [1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18];

/// One flight-recorder frame: the counters (and optionally the drained
/// trace events) of a single folded batch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlightFrame {
    /// Coordinator round at which the batch folded.
    pub round: u64,
    /// Epoch clock after folding.
    pub epoch: u64,
    /// WAL sequence number of the batch (0 in volatile runs).
    pub seq: u64,
    /// Simulated cycles charged by the batch.
    pub cycles: u64,
    /// Transactions committed by the batch.
    pub commits: u64,
    /// Aborts observed during the batch.
    pub aborts: u64,
    /// Whether the shard's STM reported an abort storm during the batch.
    pub storm: bool,
    /// Simulator events drained from the batch's trace tap.
    pub sim_events: Vec<SimEvent>,
    /// Transaction-lifecycle events drained from the batch's trace tap.
    pub tx_events: Vec<TxEvent>,
}

impl FlightFrame {
    /// Serializes the frame's metadata (event payloads are exported via
    /// [`FlightBundle::chrome_trace`], not inline JSON). `seq` is
    /// intentionally omitted: report-embedded frames must not leak WAL
    /// positions, which differ between durable and volatile runs.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("round", self.round);
        w.field_u64("epoch", self.epoch);
        w.field_u64("cycles", self.cycles);
        w.field_u64("commits", self.commits);
        w.field_u64("aborts", self.aborts);
        w.field_bool("storm", self.storm);
        w.field_u64("sim_events", self.sim_events.len() as u64);
        w.field_u64("tx_events", self.tx_events.len() as u64);
        w.end_object();
    }
}

/// A replayable post-mortem cut from a shard's flight recorder when an
/// incident opens, a tm-check violation fires, or a `CrashPlan` kill
/// lands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightBundle {
    /// Deterministic bundle name: `s{shard:03}-r{round:06}-{cause}`.
    pub name: String,
    /// Shard the bundle was cut from.
    pub shard: u32,
    /// The triggering cause.
    pub cause: IncidentCause,
    /// Epoch at which the bundle was cut.
    pub epoch: u64,
    /// Coordinator round at which the bundle was cut.
    pub round: u64,
    /// WAL sequence at the cut (crash bundles only; 0 otherwise so that
    /// report-embedded bundles stay durability-independent).
    pub wal_seq: u64,
    /// Store fingerprint `(fnv, bytes)` at the cut (crash bundles only).
    pub store_fnv: u64,
    /// Identity context: variant name, engine mode, run seed.
    pub variant: String,
    /// Engine mode label.
    pub mode: String,
    /// Run seed.
    pub seed: u64,
    /// The retained flight frames, oldest first.
    pub frames: Vec<FlightFrame>,
    /// Model-checker witness provenance, when applicable.
    pub witness: Option<WitnessRef>,
}

impl FlightBundle {
    /// Attaches model-checker witness provenance, so a bundle born from
    /// a verified violation carries the minimized `.sched` reproduction
    /// path alongside the trace.
    pub fn with_witness(mut self, rule: &str, path: &str) -> Self {
        self.witness = Some(WitnessRef { rule: rule.to_string(), path: path.to_string() });
        self
    }

    /// Flattens the retained frames into a Chrome trace via the existing
    /// exporter, so a bundle's slice replays in the same tooling as a
    /// full-run trace.
    pub fn chrome_trace(&self) -> String {
        let sim: Vec<SimEvent> = self.frames.iter().flat_map(|f| f.sim_events.clone()).collect();
        let tx: Vec<TxEvent> = self.frames.iter().flat_map(|f| f.tx_events.clone()).collect();
        chrome_trace(&sim, &tx)
    }

    /// `.sched`-style context block: `meta <key> <value>` lines a human
    /// (or the replay tooling) reads to situate the trace slice.
    pub fn context(&self) -> String {
        let mut out = String::new();
        let mut meta = |k: &str, v: &str| {
            out.push_str("meta ");
            out.push_str(k);
            out.push(' ');
            out.push_str(v);
            out.push('\n');
        };
        meta("bundle", &self.name);
        meta("shard", &self.shard.to_string());
        meta("cause", self.cause.label());
        meta("variant", &self.variant);
        meta("mode", &self.mode);
        meta("seed", &self.seed.to_string());
        meta("epoch", &self.epoch.to_string());
        meta("round", &self.round.to_string());
        meta("wal_seq", &self.wal_seq.to_string());
        meta("store_fnv", &format!("{:016x}", self.store_fnv));
        meta("frames", &self.frames.len().to_string());
        if let Some(wit) = &self.witness {
            meta("rule", &wit.rule);
            meta("witness", &wit.path);
        }
        out
    }

    /// Serializes the bundle summary (context + frame metadata, no raw
    /// event payloads) with stable field order.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("name", &self.name);
        w.field_u64("shard", self.shard as u64);
        w.field_str("cause", self.cause.label());
        w.field_u64("epoch", self.epoch);
        w.field_u64("round", self.round);
        w.field_u64("wal_seq", self.wal_seq);
        w.field_str("store_fnv", &format!("{:016x}", self.store_fnv));
        w.key("frames");
        w.begin_array();
        for f in &self.frames {
            f.write_json(w);
        }
        w.end_array();
        if let Some(wit) = &self.witness {
            w.key("witness");
            w.begin_object();
            w.field_str("rule", &wit.rule);
            w.field_str("path", &wit.path);
            w.end_object();
        }
        w.end_object();
    }

    /// The bundle summary as a standalone JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Dumps the bundle into `dir` as `<name>.json` (summary + context)
    /// and `<name>.trace.json` (replayable Chrome trace). Returns the
    /// summary path.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("bundle");
        self.write_json(&mut w);
        w.key("context");
        w.begin_array();
        for line in self.context().lines() {
            w.string(line);
        }
        w.end_array();
        w.field_str("trace", &format!("{}.trace.json", self.name));
        w.end_object();
        let summary = dir.join(format!("{}.json", self.name));
        std::fs::write(&summary, w.finish())?;
        std::fs::write(dir.join(format!("{}.trace.json", self.name)), self.chrome_trace())?;
        Ok(summary)
    }
}

/// Point-in-time view of one shard's metrics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: u32,
    /// Derived health state at snapshot time.
    pub health: HealthState,
    /// Committed transactions.
    pub commits: WinCounter,
    /// Aborted transaction attempts.
    pub aborts: WinCounter,
    /// Admission rejections.
    pub rejected: WinCounter,
    /// Requests parked by blocking admission (park events, not depth).
    pub parked: WinCounter,
    /// Dispatched batches.
    pub batches: WinCounter,
    /// Batches during which the STM reported an abort storm.
    pub storm_rounds: WinCounter,
    /// Cumulative abort rate in permille (exact integer arithmetic).
    pub abort_permille: u32,
    /// Queue depth gauge at snapshot time.
    pub queue_depth: u64,
    /// Parked-admission depth gauge at snapshot time (blocking mode).
    pub parked_depth: u64,
    /// Admission cost estimate gauge (cycles per entry).
    pub cost_per_entry: u64,
    /// Whether the last folded batch reported a storm.
    pub storm: bool,
    /// Histogram of per-batch simulated cycles.
    pub batch_cycles: Hist,
    /// Histogram of retry-after hints handed to rejected clients.
    pub retry_after: Hist,
    /// Incidents currently open on this shard.
    pub incidents_open: u64,
    /// Incidents ever opened on this shard (epoch-visible causes only).
    pub incidents_total: u64,
}

impl ShardSnapshot {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("shard", self.shard as u64);
        w.field_str("health", self.health.label());
        for (name, c) in [
            ("commits", &self.commits),
            ("aborts", &self.aborts),
            ("rejected", &self.rejected),
            ("parked", &self.parked),
            ("batches", &self.batches),
            ("storm_rounds", &self.storm_rounds),
        ] {
            w.key(name);
            w.begin_object();
            w.field_u64("total", c.total);
            w.field_u64("last_window", c.last_window);
            w.end_object();
        }
        w.field_u64("abort_permille", self.abort_permille as u64);
        w.field_u64("queue_depth", self.queue_depth);
        w.field_u64("parked_depth", self.parked_depth);
        w.field_u64("cost_per_entry", self.cost_per_entry);
        w.field_bool("storm", self.storm);
        w.key("batch_cycles");
        self.batch_cycles.write_json(w);
        w.key("retry_after");
        self.retry_after.write_json(w);
        w.field_u64("incidents_open", self.incidents_open);
        w.field_u64("incidents_total", self.incidents_total);
        w.end_object();
    }
}

/// The exposition unit: all shards' windowed metrics at one epoch, plus
/// the run identity needed to label them. Byte-identical for a fixed
/// seed at any worker count — both encoders serialize only virtual-clock
/// quantities in a fixed order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Epoch clock at snapshot time.
    pub epoch: u64,
    /// Window width the counters rolled on.
    pub window_cycles: u64,
    /// Index of the open window (`epoch / window_cycles`).
    pub window: u64,
    /// STM variant label.
    pub variant: String,
    /// Engine mode label.
    pub mode: String,
    /// Per-shard views, in shard order.
    pub shards: Vec<ShardSnapshot>,
}

impl MetricsSnapshot {
    /// Serializes the snapshot with stable field order.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("epoch", self.epoch);
        w.field_u64("window_cycles", self.window_cycles);
        w.field_u64("window", self.window);
        w.field_str("variant", &self.variant);
        w.field_str("mode", &self.mode);
        w.key("shards");
        w.begin_array();
        for s in &self.shards {
            s.write_json(w);
        }
        w.end_array();
        w.end_object();
    }

    /// The snapshot as a standalone JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Prometheus text exposition (spec-conforming `# HELP`/`# TYPE`
    /// headers, `_total` counters, `_bucket`/`_sum`/`_count` histograms).
    /// Deterministic: shards ascending, buckets ascending, fixed metric
    /// order.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let labels = |shard: u32| {
            format!("shard=\"{}\",variant=\"{}\",mode=\"{}\"", shard, self.variant, self.mode)
        };
        let counter =
            |out: &mut String, name: &str, help: &str, get: &dyn Fn(&ShardSnapshot) -> u64| {
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
                for s in &self.shards {
                    out.push_str(&format!("{name}{{{}}} {}\n", labels(s.shard), get(s)));
                }
            };
        counter(&mut out, "tm_commits_total", "Committed transactions.", &|s| s.commits.total);
        counter(&mut out, "tm_aborts_total", "Aborted transaction attempts.", &|s| s.aborts.total);
        counter(&mut out, "tm_rejected_total", "Admission rejections.", &|s| s.rejected.total);
        counter(&mut out, "tm_parked_total", "Requests parked by blocking admission.", &|s| {
            s.parked.total
        });
        counter(&mut out, "tm_batches_total", "Dispatched batches.", &|s| s.batches.total);
        counter(&mut out, "tm_storm_rounds_total", "Batches under abort storm.", &|s| {
            s.storm_rounds.total
        });
        counter(&mut out, "tm_incidents_total", "Incidents opened.", &|s| s.incidents_total);
        let gauge =
            |out: &mut String, name: &str, help: &str, get: &dyn Fn(&ShardSnapshot) -> u64| {
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
                for s in &self.shards {
                    out.push_str(&format!("{name}{{{}}} {}\n", labels(s.shard), get(s)));
                }
            };
        gauge(&mut out, "tm_commits_last_window", "Commits in the last completed window.", &|s| {
            s.commits.last_window
        });
        gauge(&mut out, "tm_aborts_last_window", "Aborts in the last completed window.", &|s| {
            s.aborts.last_window
        });
        gauge(&mut out, "tm_abort_permille", "Cumulative abort rate (permille).", &|s| {
            s.abort_permille as u64
        });
        gauge(&mut out, "tm_queue_depth", "Shard queue depth.", &|s| s.queue_depth);
        gauge(&mut out, "tm_parked_depth", "Requests currently parked on the shard.", &|s| {
            s.parked_depth
        });
        gauge(&mut out, "tm_cost_per_entry", "Admission cost estimate (cycles).", &|s| {
            s.cost_per_entry
        });
        gauge(&mut out, "tm_storm", "Abort storm in progress (0/1).", &|s| s.storm as u64);
        gauge(&mut out, "tm_incidents_open", "Incidents currently open.", &|s| s.incidents_open);
        out.push_str("# HELP tm_health Shard health state (1 = current state).\n");
        out.push_str("# TYPE tm_health gauge\n");
        for s in &self.shards {
            out.push_str(&format!(
                "tm_health{{{},state=\"{}\"}} 1\n",
                labels(s.shard),
                s.health.label()
            ));
        }
        for (name, help, batch) in [
            ("tm_batch_cycles", "Simulated cycles per dispatched batch.", true),
            ("tm_retry_after", "Retry-after hints handed to rejected clients (cycles).", false),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
            for s in &self.shards {
                let h = if batch { &s.batch_cycles } else { &s.retry_after };
                let mut cum = 0u64;
                for (i, &b) in h.bounds.iter().enumerate() {
                    cum += h.counts[i];
                    out.push_str(&format!(
                        "{name}_bucket{{{},le=\"{}\"}} {}\n",
                        labels(s.shard),
                        b,
                        cum
                    ));
                }
                out.push_str(&format!(
                    "{name}_bucket{{{},le=\"+Inf\"}} {}\n",
                    labels(s.shard),
                    h.count
                ));
                out.push_str(&format!("{name}_sum{{{}}} {}\n", labels(s.shard), h.sum));
                out.push_str(&format!("{name}_count{{{}}} {}\n", labels(s.shard), h.count));
            }
        }
        out
    }
}

/// The observability block embedded in every `ServeReport`: the final
/// snapshot plus the epoch-visible incidents and their bundles.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsReport {
    /// Final metrics snapshot of the run.
    pub snapshot: MetricsSnapshot,
    /// Epoch-visible incidents (abort storms, asynchronous recovery
    /// windows, check violations), open-order.
    pub incidents: Vec<Incident>,
    /// Bundles cut for those incidents (summaries; event payloads are
    /// exported to disk separately).
    pub bundles: Vec<FlightBundle>,
}

impl ObsReport {
    /// Serializes the block with stable field order.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("snapshot");
        self.snapshot.write_json(w);
        w.key("incidents");
        w.begin_array();
        for i in &self.incidents {
            i.write_json(w);
        }
        w.end_array();
        w.key("bundles");
        w.begin_array();
        for b in &self.bundles {
            b.write_json(w);
        }
        w.end_array();
        w.end_object();
    }
}

/// Per-shard live state inside [`ObsState`].
#[derive(Debug)]
struct ShardObs {
    commits: WinCounter,
    aborts: WinCounter,
    rejected: WinCounter,
    parked: WinCounter,
    batches: WinCounter,
    storm_rounds: WinCounter,
    batch_cycles: Hist,
    retry_after: Hist,
    queue_depth: u64,
    parked_depth: u64,
    cost_per_entry: u64,
    storm: bool,
    frames: VecDeque<FlightFrame>,
    storm_streak: u32,
    calm_streak: u32,
    storming: bool,
    park_streak: u32,
    park_calm_streak: u32,
    park_storming: bool,
    recovering: bool,
    replica_serving: bool,
    degraded: bool,
    /// Index into the epoch-visible incident list of the open storm
    /// incident, if any.
    storm_incident: Option<usize>,
    /// Index of the open park-storm incident, if any.
    park_incident: Option<usize>,
    /// Index of the open crash-recovery incident, if any.
    crash_incident: Option<usize>,
}

impl ShardObs {
    fn new(cfg: &ObsConfig) -> Self {
        ShardObs {
            commits: WinCounter::default(),
            aborts: WinCounter::default(),
            rejected: WinCounter::default(),
            parked: WinCounter::default(),
            batches: WinCounter::default(),
            storm_rounds: WinCounter::default(),
            batch_cycles: Hist::new(&BATCH_CYCLE_BOUNDS),
            retry_after: Hist::new(&RETRY_AFTER_BOUNDS),
            queue_depth: 0,
            parked_depth: 0,
            cost_per_entry: 0,
            storm: false,
            frames: VecDeque::with_capacity(cfg.flight_epochs),
            storm_streak: 0,
            calm_streak: 0,
            storming: false,
            park_streak: 0,
            park_calm_streak: 0,
            park_storming: false,
            recovering: false,
            replica_serving: false,
            degraded: false,
            storm_incident: None,
            park_incident: None,
            crash_incident: None,
        }
    }

    fn health(&self) -> HealthState {
        if self.degraded {
            HealthState::Degraded
        } else if self.replica_serving {
            HealthState::ReplicaServing
        } else if self.recovering {
            HealthState::Recovering
        } else if self.storming || self.park_storming {
            HealthState::Storming
        } else {
            HealthState::Healthy
        }
    }

    fn abort_permille(&self) -> u32 {
        let attempts = self.commits.total + self.aborts.total;
        (self.aborts.total * 1000).checked_div(attempts).unwrap_or(0) as u32
    }

    fn roll(&mut self) {
        self.commits.roll();
        self.aborts.roll();
        self.rejected.roll();
        self.parked.roll();
        self.batches.roll();
        self.storm_rounds.roll();
    }

    fn push_frame(&mut self, cap: usize, frame: FlightFrame) {
        if self.frames.len() == cap.max(1) {
            self.frames.pop_front();
        }
        self.frames.push_back(frame);
    }
}

/// The coordinator-side observability engine: fed by `service::serve`'s
/// round loop, queried for snapshots and reports at drain.
#[derive(Debug)]
pub struct ObsState {
    cfg: ObsConfig,
    variant: String,
    mode: String,
    seed: u64,
    shards: Vec<ShardObs>,
    /// Epoch-visible incidents (serialized into `ServeReport`).
    incidents: Vec<Incident>,
    /// Durability-dependent incidents (serialized into `RecoveryReport`).
    rec_incidents: Vec<Incident>,
    /// Bundles for epoch-visible incidents.
    bundles: Vec<FlightBundle>,
    /// Bundles for crash/divergence incidents.
    rec_bundles: Vec<FlightBundle>,
    window: u64,
}

impl ObsState {
    /// Creates the engine for `shards` shards with the run's identity
    /// labels (used by both encoders and the bundle context blocks).
    pub fn new(cfg: ObsConfig, shards: usize, variant: &str, mode: &str, seed: u64) -> Self {
        let per_shard = (0..shards).map(|_| ShardObs::new(&cfg)).collect();
        ObsState {
            cfg,
            variant: variant.to_string(),
            mode: mode.to_string(),
            seed,
            shards: per_shard,
            incidents: Vec::new(),
            rec_incidents: Vec::new(),
            bundles: Vec::new(),
            rec_bundles: Vec::new(),
            window: 0,
        }
    }

    /// Rolls metric windows forward to the window containing `epoch`.
    /// Called once per round after the epoch clock advances; rolling on
    /// the virtual clock (never on wall time) is what keeps windowed
    /// values worker-count-independent.
    pub fn roll_to(&mut self, epoch: u64) {
        let target = epoch / self.cfg.window_cycles.max(1);
        while self.window < target {
            for s in &mut self.shards {
                s.roll();
            }
            self.window += 1;
        }
    }

    /// Records an admission rejection and the retry-after hint handed to
    /// the client.
    pub fn on_reject(&mut self, shard: usize, retry_after: u64) {
        let s = &mut self.shards[shard];
        s.rejected.add(1);
        s.retry_after.observe(retry_after);
    }

    /// Updates the queue-depth and cost gauges (once per fold).
    pub fn on_gauges(&mut self, shard: usize, queue_depth: u64, cost_per_entry: u64) {
        let s = &mut self.shards[shard];
        s.queue_depth = queue_depth;
        s.cost_per_entry = cost_per_entry;
    }

    /// Records one request parking at blocking admission (a park event;
    /// depth is tracked separately by [`Self::on_park_depth`]).
    pub fn on_park(&mut self, shard: usize) {
        self.shards[shard].parked.add(1);
    }

    /// Updates the parked-depth gauge for one coordinator round and
    /// drives the park-storm state machine: `park_storm_open`
    /// consecutive rounds at or above `park_open_depth` open a
    /// [`IncidentCause::ParkStorm`] incident, `park_storm_close` calm
    /// rounds close it.
    pub fn on_park_depth(&mut self, shard: usize, depth: u64, round: u64, epoch: u64) {
        let (open_depth, park_open, park_close) =
            (self.cfg.park_open_depth, self.cfg.park_storm_open, self.cfg.park_storm_close);
        let s = &mut self.shards[shard];
        s.parked_depth = depth;
        if depth >= open_depth.max(1) {
            s.park_streak += 1;
            s.park_calm_streak = 0;
        } else {
            s.park_calm_streak += 1;
            s.park_streak = 0;
        }
        let opens = !s.park_storming && s.park_streak >= park_open;
        let closes = s.park_storming && s.park_calm_streak >= park_close;
        if opens {
            s.park_storming = true;
            let parked_total = s.parked.total;
            let mut f = Fnv::new();
            f.u64(shard as u64);
            f.u64(IncidentCause::ParkStorm.ordinal());
            f.u64(epoch);
            f.u64(round);
            f.u64(depth);
            f.u64(parked_total);
            let bundle = self.cut_bundle(shard, IncidentCause::ParkStorm, round, epoch, 0, 0);
            let name = bundle.name.clone();
            self.bundles.push(bundle);
            self.shards[shard].park_incident = Some(self.incidents.len());
            self.incidents.push(Incident {
                shard: shard as u32,
                cause: IncidentCause::ParkStorm,
                open_epoch: epoch,
                open_round: round,
                close_epoch: None,
                close_round: None,
                evidence_fnv: f.0,
                bundle: Some(name),
                witness: None,
            });
        } else if closes {
            s.park_storming = false;
            if let Some(i) = s.park_incident.take() {
                self.incidents[i].close_epoch = Some(epoch);
                self.incidents[i].close_round = Some(round);
            }
        }
    }

    /// Folds one batch report: counters, histograms, a flight frame, and
    /// the storm state machine (with hysteresis). Drains the report's
    /// trace events into the frame.
    pub fn on_batch(&mut self, shard: usize, round: u64, epoch: u64, rep: &mut BatchReport) {
        let frame = FlightFrame {
            round,
            epoch,
            seq: rep.seq,
            cycles: rep.cycles,
            commits: rep.commits,
            aborts: rep.aborts,
            storm: rep.storm,
            sim_events: std::mem::take(&mut rep.sim_events),
            tx_events: std::mem::take(&mut rep.tx_events),
        };
        let cap = self.cfg.flight_epochs;
        let (storm_open, storm_close) = (self.cfg.storm_open, self.cfg.storm_close);
        let s = &mut self.shards[shard];
        s.commits.add(rep.commits);
        s.aborts.add(rep.aborts);
        s.batches.add(1);
        s.batch_cycles.observe(rep.cycles);
        s.storm = rep.storm;
        if rep.storm {
            s.storm_rounds.add(1);
            s.storm_streak += 1;
            s.calm_streak = 0;
        } else {
            s.calm_streak += 1;
            s.storm_streak = 0;
        }
        s.push_frame(cap, frame);
        let opens = !s.storming && s.storm_streak >= storm_open;
        let closes = s.storming && s.calm_streak >= storm_close;
        if opens {
            s.storming = true;
            let mut f = Fnv::new();
            f.u64(shard as u64);
            f.u64(IncidentCause::AbortStorm.ordinal());
            f.u64(epoch);
            f.u64(round);
            f.u64(s.aborts.total);
            f.u64(s.commits.total);
            let bundle = self.cut_bundle(shard, IncidentCause::AbortStorm, round, epoch, 0, 0);
            let name = bundle.name.clone();
            self.bundles.push(bundle);
            self.shards[shard].storm_incident = Some(self.incidents.len());
            self.incidents.push(Incident {
                shard: shard as u32,
                cause: IncidentCause::AbortStorm,
                open_epoch: epoch,
                open_round: round,
                close_epoch: None,
                close_round: None,
                evidence_fnv: f.0,
                bundle: Some(name),
                witness: None,
            });
        } else if closes {
            s.storming = false;
            if let Some(i) = s.storm_incident.take() {
                self.incidents[i].close_epoch = Some(epoch);
                self.incidents[i].close_round = Some(round);
            }
        }
    }

    /// Records a `CrashPlan` kill. Always cuts a crash bundle (with WAL
    /// position and store fingerprint) into the recovery-side list; when
    /// the recovery is asynchronous (`recovery_rounds > 0`, so the shard
    /// is epoch-visibly unavailable) it also opens a `CrashRecovery`
    /// incident, marked `ReplicaServing` when a healthy replica group can
    /// answer for the shard meanwhile.
    #[allow(clippy::too_many_arguments)]
    pub fn on_crash(
        &mut self,
        shard: usize,
        round: u64,
        epoch: u64,
        wal_seq: u64,
        store_fnv: u64,
        recovery_rounds: u64,
        replicas_available: bool,
    ) {
        let mut f = Fnv::new();
        f.u64(shard as u64);
        f.u64(IncidentCause::CrashRecovery.ordinal());
        f.u64(epoch);
        f.u64(round);
        f.u64(wal_seq);
        f.u64(store_fnv);
        let bundle =
            self.cut_bundle(shard, IncidentCause::CrashRecovery, round, epoch, wal_seq, store_fnv);
        let name = bundle.name.clone();
        self.rec_bundles.push(bundle);
        let incident = Incident {
            shard: shard as u32,
            cause: IncidentCause::CrashRecovery,
            open_epoch: epoch,
            open_round: round,
            close_epoch: None,
            close_round: None,
            evidence_fnv: f.0,
            bundle: Some(name),
            witness: None,
        };
        if recovery_rounds > 0 {
            let s = &mut self.shards[shard];
            s.recovering = true;
            s.replica_serving = replicas_available;
            s.crash_incident = Some(self.incidents.len());
            self.incidents.push(incident);
        } else {
            // Synchronous recovery heals within the round: invisible on
            // the epoch clock, so the record goes to the recovery report
            // with a zero-length span.
            let mut closed = incident;
            closed.close_epoch = Some(epoch);
            closed.close_round = Some(round);
            self.rec_incidents.push(closed);
        }
    }

    /// Closes the shard's recovery window (the shard finished replaying
    /// and resumed serving).
    pub fn on_recovered(&mut self, shard: usize, round: u64, epoch: u64) {
        let s = &mut self.shards[shard];
        s.recovering = false;
        s.replica_serving = false;
        if let Some(i) = s.crash_incident.take() {
            self.incidents[i].close_epoch = Some(epoch);
            self.incidents[i].close_round = Some(round);
        }
    }

    /// Records a replica divergence: the shard is demoted to `Degraded`
    /// for the rest of the run and a never-closing incident lands in the
    /// recovery report.
    pub fn on_diverged(&mut self, shard: usize, round: u64, epoch: u64, replica: u64) {
        let s = &mut self.shards[shard];
        s.degraded = true;
        let mut f = Fnv::new();
        f.u64(shard as u64);
        f.u64(IncidentCause::ReplicaDivergence.ordinal());
        f.u64(epoch);
        f.u64(round);
        f.u64(replica);
        let bundle = self.cut_bundle(shard, IncidentCause::ReplicaDivergence, round, epoch, 0, 0);
        let name = bundle.name.clone();
        self.rec_bundles.push(bundle);
        self.rec_incidents.push(Incident {
            shard: shard as u32,
            cause: IncidentCause::ReplicaDivergence,
            open_epoch: epoch,
            open_round: round,
            close_epoch: None,
            close_round: None,
            evidence_fnv: f.0,
            bundle: Some(name),
            witness: None,
        });
    }

    /// Records tm-check violations reported by a shard at drain: the
    /// shard is demoted to `Degraded` and a zero-length `CheckViolation`
    /// incident (with bundle) becomes part of the serve report.
    pub fn on_violations(&mut self, shard: usize, round: u64, epoch: u64, violations: u64) {
        if violations == 0 {
            return;
        }
        self.shards[shard].degraded = true;
        let mut f = Fnv::new();
        f.u64(shard as u64);
        f.u64(IncidentCause::CheckViolation.ordinal());
        f.u64(epoch);
        f.u64(round);
        f.u64(violations);
        let bundle = self.cut_bundle(shard, IncidentCause::CheckViolation, round, epoch, 0, 0);
        let name = bundle.name.clone();
        self.bundles.push(bundle);
        self.incidents.push(Incident {
            shard: shard as u32,
            cause: IncidentCause::CheckViolation,
            open_epoch: epoch,
            open_round: round,
            close_epoch: Some(epoch),
            close_round: Some(round),
            evidence_fnv: f.0,
            bundle: Some(name),
            witness: None,
        });
    }

    fn cut_bundle(
        &mut self,
        shard: usize,
        cause: IncidentCause,
        round: u64,
        epoch: u64,
        wal_seq: u64,
        store_fnv: u64,
    ) -> FlightBundle {
        FlightBundle {
            name: format!("s{:03}-r{:06}-{}", shard, round, cause.label()),
            shard: shard as u32,
            cause,
            epoch,
            round,
            wal_seq,
            store_fnv,
            variant: self.variant.clone(),
            mode: self.mode.clone(),
            seed: self.seed,
            frames: self.shards[shard].frames.iter().cloned().collect(),
            witness: None,
        }
    }

    /// Builds the point-in-time snapshot at `epoch`.
    pub fn snapshot(&self, epoch: u64) -> MetricsSnapshot {
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let open = self
                    .incidents
                    .iter()
                    .filter(|inc| inc.shard as usize == i && inc.close_epoch.is_none())
                    .count() as u64;
                let total =
                    self.incidents.iter().filter(|inc| inc.shard as usize == i).count() as u64;
                ShardSnapshot {
                    shard: i as u32,
                    health: s.health(),
                    commits: s.commits,
                    aborts: s.aborts,
                    rejected: s.rejected,
                    parked: s.parked,
                    batches: s.batches,
                    storm_rounds: s.storm_rounds,
                    abort_permille: s.abort_permille(),
                    queue_depth: s.queue_depth,
                    parked_depth: s.parked_depth,
                    cost_per_entry: s.cost_per_entry,
                    storm: s.storm,
                    batch_cycles: s.batch_cycles.clone(),
                    retry_after: s.retry_after.clone(),
                    incidents_open: open,
                    incidents_total: total,
                }
            })
            .collect();
        MetricsSnapshot {
            epoch,
            window_cycles: self.cfg.window_cycles,
            window: self.window,
            variant: self.variant.clone(),
            mode: self.mode.clone(),
            shards,
        }
    }

    /// The serve-report observability block: final snapshot plus the
    /// epoch-visible incidents and bundles.
    pub fn report(&self, epoch: u64) -> ObsReport {
        ObsReport {
            snapshot: self.snapshot(epoch),
            incidents: self.incidents.clone(),
            bundles: self.bundles.clone(),
        }
    }

    /// Durability-dependent incidents (crash recoveries healed in-round,
    /// replica divergences) destined for the recovery report.
    pub fn recovery_incidents(&self) -> Vec<Incident> {
        self.rec_incidents.clone()
    }

    /// Crash and divergence bundles destined for the recovery report.
    pub fn recovery_bundles(&self) -> Vec<FlightBundle> {
        self.rec_bundles.clone()
    }

    /// Per-shard histogram of retry-after hints (consumed by the shard
    /// report serializer).
    pub fn retry_after(&self, shard: usize) -> &Hist {
        &self.shards[shard].retry_after
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep(cycles: u64, commits: u64, aborts: u64, storm: bool) -> BatchReport {
        BatchReport {
            outcomes: Vec::new(),
            cycles,
            commits,
            aborts,
            storm,
            seq: 0,
            sim_events: Vec::new(),
            tx_events: Vec::new(),
        }
    }

    fn state() -> ObsState {
        ObsState::new(ObsConfig::default(), 2, "STM-VBV", "base", 42)
    }

    #[test]
    fn windows_roll_on_epoch_boundaries() {
        let mut obs = state();
        let wc = obs.cfg.window_cycles;
        obs.on_batch(0, 1, 100, &mut rep(100, 10, 2, false));
        assert_eq!(obs.snapshot(100).shards[0].commits.window, 10);
        obs.roll_to(wc + 1);
        let snap = obs.snapshot(wc + 1);
        assert_eq!(snap.window, 1);
        assert_eq!(snap.shards[0].commits.last_window, 10);
        assert_eq!(snap.shards[0].commits.total, 10);
        // A multi-window jump leaves last_window at zero (nothing folded
        // in the skipped windows).
        obs.roll_to(3 * wc + 1);
        assert_eq!(obs.snapshot(3 * wc + 1).shards[0].commits.last_window, 0);
    }

    #[test]
    fn storm_hysteresis_opens_and_closes_one_incident() {
        let mut obs = state();
        let mut round = 0u64;
        let mut fold = |obs: &mut ObsState, storm: bool| {
            round += 1;
            obs.on_batch(0, round, round * 1000, &mut rep(500, 5, 20, storm));
        };
        fold(&mut obs, true);
        assert_eq!(obs.incidents.len(), 0, "one storming batch is not an incident");
        fold(&mut obs, true);
        assert_eq!(obs.incidents.len(), 1);
        assert_eq!(obs.snapshot(2000).shards[0].health, HealthState::Storming);
        fold(&mut obs, true);
        assert_eq!(obs.incidents.len(), 1, "no duplicate incident while open");
        fold(&mut obs, false);
        assert!(obs.incidents[0].close_epoch.is_none(), "one calm batch does not close");
        fold(&mut obs, false);
        assert_eq!(obs.incidents[0].close_epoch, Some(5000));
        assert_eq!(obs.snapshot(5000).shards[0].health, HealthState::Healthy);
        assert_eq!(obs.bundles.len(), 1);
        assert_eq!(obs.bundles[0].cause, IncidentCause::AbortStorm);
    }

    #[test]
    fn park_storm_hysteresis_opens_and_closes_one_incident() {
        let mut obs = state();
        let mut round = 0u64;
        let mut tick = |obs: &mut ObsState, depth: u64| {
            round += 1;
            obs.on_park_depth(0, depth, round, round * 1000);
        };
        tick(&mut obs, 3);
        assert_eq!(obs.incidents.len(), 0, "one deep round is not an incident");
        tick(&mut obs, 2);
        assert_eq!(obs.incidents.len(), 1);
        assert_eq!(obs.incidents[0].cause, IncidentCause::ParkStorm);
        assert_eq!(obs.snapshot(2000).shards[0].health, HealthState::Storming);
        assert_eq!(obs.snapshot(2000).shards[0].parked_depth, 2);
        tick(&mut obs, 5);
        assert_eq!(obs.incidents.len(), 1, "no duplicate incident while open");
        tick(&mut obs, 0);
        assert!(obs.incidents[0].close_epoch.is_none(), "one calm round does not close");
        tick(&mut obs, 0);
        assert_eq!(obs.incidents[0].close_epoch, Some(5000));
        assert_eq!(obs.snapshot(5000).shards[0].health, HealthState::Healthy);
        assert_eq!(obs.bundles.len(), 1);
        assert_eq!(obs.bundles[0].cause, IncidentCause::ParkStorm);
    }

    #[test]
    fn parked_counters_enter_snapshot_and_scrape() {
        let mut obs = state();
        obs.on_park(1);
        obs.on_park(1);
        obs.on_park_depth(1, 2, 1, 100);
        let snap = obs.snapshot(100);
        assert_eq!(snap.shards[1].parked.total, 2);
        assert_eq!(snap.shards[1].parked_depth, 2);
        assert!(snap.to_json().contains("\"parked\""));
        assert!(snap.to_json().contains("\"parked_depth\":2"));
        let prom = snap.to_prometheus();
        assert!(prom.contains("tm_parked_total"));
        assert!(prom.contains("tm_parked_depth"));
    }

    #[test]
    fn sync_crash_is_invisible_to_the_serve_report() {
        let mut obs = state();
        obs.on_crash(1, 3, 9000, 7, 0xdead, 0, false);
        assert!(obs.incidents.is_empty());
        assert!(obs.bundles.is_empty());
        assert_eq!(obs.rec_incidents.len(), 1);
        assert_eq!(obs.rec_incidents[0].close_epoch, Some(9000));
        assert_eq!(obs.rec_bundles.len(), 1);
        assert_eq!(obs.rec_bundles[0].wal_seq, 7);
        assert_eq!(obs.snapshot(9000).shards[1].health, HealthState::Healthy);
    }

    #[test]
    fn async_crash_opens_and_recovery_closes() {
        let mut obs = state();
        obs.on_crash(0, 3, 9000, 7, 0xdead, 2, true);
        assert_eq!(obs.snapshot(9000).shards[0].health, HealthState::ReplicaServing);
        assert_eq!(obs.incidents.len(), 1);
        assert!(obs.incidents[0].close_epoch.is_none());
        obs.on_recovered(0, 5, 15000);
        assert_eq!(obs.incidents[0].close_epoch, Some(15000));
        assert_eq!(obs.snapshot(15000).shards[0].health, HealthState::Healthy);
    }

    #[test]
    fn divergence_and_violations_degrade() {
        let mut obs = state();
        obs.on_diverged(0, 4, 8000, 1);
        assert_eq!(obs.snapshot(8000).shards[0].health, HealthState::Degraded);
        assert_eq!(obs.rec_incidents.len(), 1);
        obs.on_violations(1, 9, 20000, 3);
        assert_eq!(obs.snapshot(20000).shards[1].health, HealthState::Degraded);
        assert_eq!(obs.incidents.len(), 1);
        assert_eq!(obs.incidents[0].close_epoch, Some(20000));
        obs.on_violations(0, 9, 20000, 0);
        assert_eq!(obs.incidents.len(), 1, "zero violations open nothing");
    }

    #[test]
    fn hist_buckets_are_cumulative_in_prometheus_only() {
        let mut h = Hist::new(&[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(500);
        assert_eq!(h.counts, vec![1, 1, 1]);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 555);
    }

    #[test]
    fn flight_ring_is_bounded() {
        let cfg = ObsConfig { flight_epochs: 2, ..ObsConfig::default() };
        let mut obs = ObsState::new(cfg, 1, "STM-VBV", "base", 1);
        for r in 1..=5 {
            obs.on_batch(0, r, r * 1000, &mut rep(100, 1, 0, false));
        }
        obs.on_crash(0, 6, 6000, 9, 0, 0, false);
        let b = &obs.rec_bundles[0];
        assert_eq!(b.frames.len(), 2);
        assert_eq!(b.frames[0].round, 4);
        assert_eq!(b.frames[1].round, 5);
    }

    #[test]
    fn bundle_trace_replays_and_context_carries_witness() {
        let mut obs = state();
        obs.on_batch(0, 1, 1000, &mut rep(100, 1, 0, false));
        obs.on_crash(0, 2, 2000, 3, 0xbeef, 0, false);
        let b = obs.rec_bundles[0].clone().with_witness("TL002", "witness/tl002.sched");
        // Empty event rings still produce a valid, replayable trace doc.
        assert_eq!(b.chrome_trace(), "{\"traceEvents\":[],\"displayTimeUnit\":\"ns\"}");
        let ctx = b.context();
        assert!(ctx.contains("meta cause crash_recovery"));
        assert!(ctx.contains("meta wal_seq 3"));
        assert!(ctx.contains("meta rule TL002"));
        assert!(ctx.contains("meta witness witness/tl002.sched"));
        assert!(b.to_json().contains("\"witness\":{\"rule\":\"TL002\""));
    }

    #[test]
    fn snapshot_encoders_are_deterministic() {
        let build = || {
            let mut obs = state();
            obs.on_reject(1, 300);
            obs.on_gauges(1, 4, 120);
            obs.on_batch(0, 1, 1000, &mut rep(5000, 10, 3, false));
            obs.on_batch(1, 1, 1000, &mut rep(9000, 8, 9, true));
            obs.snapshot(1000)
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_prometheus(), b.to_prometheus());
        let prom = a.to_prometheus();
        assert!(prom.contains("tm_commits_total{shard=\"0\",variant=\"STM-VBV\",mode=\"base\"} 10"));
        assert!(prom.contains(
            "tm_retry_after_bucket{shard=\"1\",variant=\"STM-VBV\",mode=\"base\",le=\"1024\"} 1"
        ));
        assert!(
            prom.contains("tm_retry_after_sum{shard=\"1\",variant=\"STM-VBV\",mode=\"base\"} 300")
        );
        assert!(prom.contains(
            "tm_health{shard=\"1\",variant=\"STM-VBV\",mode=\"base\",state=\"healthy\"} 1"
        ));
        let json = a.to_json();
        assert!(json.contains("\"abort_permille\""));
        assert!(json.contains("\"retry_after\""));
    }
}
