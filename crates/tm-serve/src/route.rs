//! Seeded address-hash routing.
//!
//! Every data key deterministically owns exactly one shard. The seed is
//! folded into the hash so distinct service runs explore distinct
//! partitions, while a fixed seed gives the same partition regardless
//! of worker-thread count — the foundation of the service's determinism
//! guarantee.

use workloads::mix64;

/// Shard owning `key` under `seed`, for a service of `shards` shards.
pub fn route(key: u32, shards: usize, seed: u64) -> usize {
    debug_assert!(shards > 0);
    (mix64(key as u64 ^ seed.rotate_left(17)) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_shards() {
        let mut seen = [false; 4];
        for k in 0..256 {
            seen[route(k, 4, 42)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn stable_for_fixed_seed() {
        for k in 0..64 {
            assert_eq!(route(k, 8, 7), route(k, 8, 7));
        }
    }

    #[test]
    fn seed_changes_partition() {
        let moved = (0..1024).filter(|&k| route(k, 4, 1) != route(k, 4, 2)).count();
        assert!(moved > 256, "seed barely perturbs routing: {moved}/1024 moved");
    }
}
