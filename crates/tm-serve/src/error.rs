//! Structured service errors.
//!
//! Admission failures are *data*, not panics: an overloaded shard
//! reports its queue depth and a retry-after hint so a client (or the
//! load generator) can back off proportionally to the backlog.

use std::fmt;

/// Errors surfaced by the transaction service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// A shard's admission queue is full; retry after the hinted number
    /// of simulated cycles.
    Overloaded {
        /// Shard whose queue rejected the request.
        shard: usize,
        /// Queue occupancy at rejection time.
        queue_len: usize,
        /// Queue capacity.
        capacity: usize,
        /// Suggested wait before retrying, in simulated cycles. Scaled
        /// up while the shard's scheduler reports an abort storm and
        /// back down once the storm clears.
        retry_after: u64,
    },
    /// The service configuration is unusable (zero shards, a variant
    /// that cannot support the batch grid, ...).
    BadConfig(String),
    /// A shard engine failed (simulator error, worker thread died).
    Engine {
        /// Shard that failed.
        shard: usize,
        /// Underlying error text.
        message: String,
    },
    /// The round loop stopped making progress before draining.
    Stalled {
        /// Rounds executed before giving up.
        rounds: u64,
    },
    /// A shard worker died and its replacement is still replaying the
    /// write-ahead log; admission to that shard resumes once recovery
    /// finishes. Priced like [`ServeError::Overloaded`]: the hint
    /// scales with the backlog the recovering shard must absorb.
    ShardUnavailable {
        /// Shard whose worker is recovering.
        shard: usize,
        /// Suggested wait before retrying, in simulated cycles.
        retry_after: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { shard, queue_len, capacity, retry_after } => write!(
                f,
                "shard {shard} overloaded ({queue_len}/{capacity} queued); \
                 retry after {retry_after} cycles"
            ),
            ServeError::BadConfig(msg) => write!(f, "bad service config: {msg}"),
            ServeError::Engine { shard, message } => {
                write!(f, "shard {shard} engine error: {message}")
            }
            ServeError::Stalled { rounds } => {
                write!(f, "service stalled after {rounds} rounds without draining")
            }
            ServeError::ShardUnavailable { shard, retry_after } => write!(
                f,
                "shard {shard} unavailable (recovering from crash); \
                 retry after {retry_after} cycles"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overloaded_formats_hint() {
        let e = ServeError::Overloaded { shard: 3, queue_len: 8, capacity: 8, retry_after: 1200 };
        let s = e.to_string();
        assert!(s.contains("shard 3"));
        assert!(s.contains("8/8"));
        assert!(s.contains("1200"));
    }

    #[test]
    fn shard_unavailable_formats_hint() {
        let e = ServeError::ShardUnavailable { shard: 1, retry_after: 800 };
        let s = e.to_string();
        assert!(s.contains("shard 1"));
        assert!(s.contains("recovering"));
        assert!(s.contains("800"));
    }
}
