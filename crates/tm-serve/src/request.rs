//! Client request vocabulary and the open-loop request generator.
//!
//! The service reuses the workload suite's operation vocabulary — bank
//! transfers (the conservation workload), hashtable puts/gets (the HT
//! microbenchmark) and TXL `atomic{}` counter programs (the compiler
//! path) — but feeds them as an *open-loop arrival stream*: requests
//! carry an arrival timestamp in simulated cycles drawn from a seeded
//! interarrival distribution, independent of service completion.

use crate::route::route;
use workloads::mix64;

/// One client operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Move `amount` from account `from` to account `to` (fails
    /// business-wise, without side effects, if `from` lacks funds).
    Transfer {
        /// Debited account.
        from: u32,
        /// Credited account.
        to: u32,
        /// Amount to move.
        amount: u32,
    },
    /// Insert or update `key → val` in the shard's hashtable.
    HtPut {
        /// Key.
        key: u32,
        /// Value.
        val: u32,
    },
    /// Look up `key`; the outcome carries the value on a hit.
    HtGet {
        /// Key.
        key: u32,
    },
    /// Run the TXL `bump` program on counter `key` (an `atomic{}`
    /// read-modify-write compiled through the TXL interpreter).
    TxlBump {
        /// Counter index.
        key: u32,
    },
}

impl Op {
    /// Routing key(s): primary shard, plus the secondary shard for a
    /// cross-shard transfer.
    pub fn shards(&self, shards: usize, seed: u64) -> (usize, Option<usize>) {
        match *self {
            Op::Transfer { from, to, .. } => {
                let a = route(from, shards, seed);
                let b = route(to, shards, seed);
                (a, (a != b).then_some(b))
            }
            Op::HtPut { key, .. } | Op::HtGet { key } | Op::TxlBump { key } => {
                (route(key, shards, seed), None)
            }
        }
    }
}

/// One client request.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Monotonic request id (generation order).
    pub id: u64,
    /// Arrival time in simulated cycles (epoch clock).
    pub arrival: u64,
    /// The operation.
    pub op: Op,
}

/// Workload-mix and arrival-process parameters for the generator.
#[derive(Copy, Clone, Debug)]
pub struct MixConfig {
    /// Number of requests to generate.
    pub requests: u64,
    /// Mean interarrival gap in simulated cycles (uniform on
    /// `1 ..= 2·mean`, so the mean offered load is `1/mean`).
    pub mean_interarrival: u64,
    /// Percent of requests that are bank transfers.
    pub bank_pct: u32,
    /// Percent that are hashtable operations (the remainder after
    /// `bank_pct + ht_pct` runs TXL programs).
    pub ht_pct: u32,
    /// Of hashtable operations, percent that are reads (gets).
    pub ht_read_pct: u32,
    /// Percent of transfers steered to a same-shard destination
    /// (the rest pick any destination and may cross shards).
    pub locality_pct: u32,
    /// Percent of key picks drawn from the hot set.
    pub hot_pct: u32,
    /// Size of the hot key set.
    pub hot_keys: u32,
    /// Transfers move `1 ..= amount_max`.
    pub amount_max: u32,
}

impl MixConfig {
    /// Pure bank-transfer mix with a contended hot set.
    pub fn bank() -> Self {
        MixConfig {
            requests: 1024,
            mean_interarrival: 40,
            bank_pct: 100,
            ht_pct: 0,
            ht_read_pct: 0,
            locality_pct: 80,
            hot_pct: 50,
            hot_keys: 16,
            amount_max: 8,
        }
    }

    /// Pure hashtable mix (insert-heavy, as in the paper's HT).
    pub fn hashtable() -> Self {
        MixConfig {
            requests: 1024,
            mean_interarrival: 40,
            bank_pct: 0,
            ht_pct: 100,
            ht_read_pct: 25,
            locality_pct: 0,
            hot_pct: 10,
            hot_keys: 16,
            amount_max: 0,
        }
    }

    /// Mixed traffic: transfers, hashtable ops and TXL programs.
    pub fn mixed() -> Self {
        MixConfig {
            requests: 1024,
            mean_interarrival: 40,
            bank_pct: 50,
            ht_pct: 30,
            ht_read_pct: 30,
            locality_pct: 70,
            hot_pct: 30,
            hot_keys: 16,
            amount_max: 8,
        }
    }

    /// Saturating burst traffic for blocking admission: arrivals far
    /// faster than service, so bounded shard queues overflow and — with
    /// `ServeConfig::blocking` on — admission parks on the capacity
    /// condition instead of rejecting with `Overloaded`.
    pub fn blocking() -> Self {
        MixConfig {
            requests: 512,
            mean_interarrival: 2,
            bank_pct: 60,
            ht_pct: 30,
            ht_read_pct: 30,
            locality_pct: 80,
            hot_pct: 30,
            hot_keys: 16,
            amount_max: 8,
        }
    }

    /// Parses a mix by name (`bank`, `ht`, `mixed`, `blocking`).
    pub fn parse(name: &str) -> Option<MixConfig> {
        match name.to_ascii_lowercase().as_str() {
            "bank" => Some(MixConfig::bank()),
            "ht" | "hashtable" => Some(MixConfig::hashtable()),
            "mixed" => Some(MixConfig::mixed()),
            "blocking" => Some(MixConfig::blocking()),
            _ => None,
        }
    }
}

/// Deterministic counter-mode stream over [`mix64`].
struct Srng {
    seed: u64,
    ctr: u64,
}

impl Srng {
    fn new(seed: u64) -> Self {
        Srng { seed, ctr: 0 }
    }

    fn next(&mut self) -> u64 {
        self.ctr += 1;
        mix64(self.seed ^ self.ctr.wrapping_mul(0xa076_1d64_78bd_642f))
    }
}

/// Generates the full request stream for one service run.
///
/// `accounts` sizes both the bank keyspace and the hashtable keyspace;
/// `txl_words` sizes the TXL counter array. `shards`/`seed` are the
/// service's routing parameters, used only to honour `locality_pct`
/// (steering a transfer's destination onto the source's shard).
pub fn generate(
    mix: &MixConfig,
    accounts: u32,
    txl_words: u32,
    shards: usize,
    seed: u64,
) -> Vec<Request> {
    let mut rng = Srng::new(seed ^ 0x7365_7276_655f_6d69); // "serve_mi"
    let mut out = Vec::with_capacity(mix.requests as usize);
    let mut arrival = 0u64;
    let gap_span = (2 * mix.mean_interarrival).max(1);
    let pick_key = |rng: &mut Srng, space: u32| -> u32 {
        let hot = mix.hot_keys.min(space).max(1);
        if (rng.next() % 100) < mix.hot_pct as u64 {
            (rng.next() % hot as u64) as u32
        } else {
            (rng.next() % space as u64) as u32
        }
    };
    for id in 0..mix.requests {
        arrival += 1 + rng.next() % gap_span;
        let class = rng.next() % 100;
        let op = if class < mix.bank_pct as u64 {
            let from = pick_key(&mut rng, accounts);
            let mut to = pick_key(&mut rng, accounts);
            if (rng.next() % 100) < mix.locality_pct as u64 {
                // Steer the destination onto the source's shard; bounded
                // rejection sampling keeps generation deterministic and
                // total even when a shard owns few keys.
                let home = route(from, shards, seed);
                for _ in 0..32 {
                    if route(to, shards, seed) == home && to != from {
                        break;
                    }
                    to = pick_key(&mut rng, accounts);
                }
            }
            if to == from {
                to = (from + 1) % accounts.max(2);
            }
            let amount = 1 + (rng.next() % mix.amount_max.max(1) as u64) as u32;
            Op::Transfer { from, to, amount }
        } else if class < (mix.bank_pct + mix.ht_pct) as u64 {
            let key = pick_key(&mut rng, accounts);
            if (rng.next() % 100) < mix.ht_read_pct as u64 {
                Op::HtGet { key }
            } else {
                Op::HtPut { key, val: (rng.next() & 0x7fff_ffff) as u32 }
            }
        } else {
            Op::TxlBump { key: (rng.next() % txl_words.max(1) as u64) as u32 }
        };
        out.push(Request { id, arrival, op });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let mix = MixConfig::mixed();
        let a = generate(&mix, 256, 64, 4, 99);
        let b = generate(&mix, 256, 64, 4, 99);
        assert_eq!(a, b);
        assert_eq!(a.len(), mix.requests as usize);
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let reqs = generate(&MixConfig::bank(), 128, 16, 2, 5);
        for w in reqs.windows(2) {
            assert!(w[0].arrival < w[1].arrival);
        }
    }

    #[test]
    fn locality_steers_most_transfers_home() {
        let mix = MixConfig { locality_pct: 100, hot_pct: 0, ..MixConfig::bank() };
        let reqs = generate(&mix, 4096, 16, 4, 11);
        let (same, cross) = reqs.iter().fold((0u32, 0u32), |(s, c), r| match r.op {
            Op::Transfer { from, to, .. } => {
                if route(from, 4, 11) == route(to, 4, 11) {
                    (s + 1, c)
                } else {
                    (s, c + 1)
                }
            }
            _ => (s, c),
        });
        assert!(same > cross * 10, "locality too weak: {same} same vs {cross} cross");
    }

    #[test]
    fn mix_respects_class_percentages() {
        let mix = MixConfig { requests: 2000, ..MixConfig::mixed() };
        let reqs = generate(&mix, 512, 64, 2, 3);
        let bank = reqs.iter().filter(|r| matches!(r.op, Op::Transfer { .. })).count();
        let txl = reqs.iter().filter(|r| matches!(r.op, Op::TxlBump { .. })).count();
        assert!((800..1200).contains(&bank), "bank count {bank} far from 50%");
        assert!((200..600).contains(&txl), "txl count {txl} far from 20%");
    }

    #[test]
    fn parse_names() {
        assert!(MixConfig::parse("bank").is_some());
        assert!(MixConfig::parse("HT").is_some());
        assert!(MixConfig::parse("mixed").is_some());
        assert!(MixConfig::parse("nope").is_none());
    }
}
