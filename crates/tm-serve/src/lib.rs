//! # tm-serve — a sharded, batched transaction service over GPU-STM
//!
//! The paper's evaluation drives the STM with closed-loop kernels: every
//! thread owns a fixed list of transactions and the run ends when they
//! commit. This crate flips the harness into an *online service*: a
//! stream of client transaction requests (bank transfers, hashtable
//! operations, TXL programs) arrives open-loop, is batched into
//! warp-sized kernel launches, and is dispatched across `N` sharded
//! engine instances — each shard a dedicated [`gpu_sim::Sim`] plus one
//! GPU-STM variant, owned by a host worker thread.
//!
//! ## Architecture
//!
//! ```text
//!   requests ──► router (seeded address hash)
//!                  │  single-shard ops ──► shard queue (bounded)
//!                  │  cross-shard transfers ──► 2PC coordinator
//!                  ▼
//!   round loop: seal one warp-aligned batch per shard,
//!               launch on worker threads, barrier on results,
//!               epoch += max(shard batch cycles)
//! ```
//!
//! - **Sharding.** Every data key hashes (with the service seed) to one
//!   shard; each shard owns a disjoint partition of the bank accounts,
//!   its own hashtable, and its own TXL counter array, so single-shard
//!   transactions never touch foreign state.
//! - **Batching.** Admitted requests queue per shard and are sealed
//!   into warp-sized transaction batches (`batch_warps × 32` slots)
//!   executed as one simulator kernel launch under the shard's STM.
//! - **Cross-shard 2PC.** A transfer whose debit and credit keys land
//!   on different shards splits into prepare transactions on both
//!   shards (debit applies a hold; credit is a capacity vote). The
//!   coordinator collects both votes through the STM commit hook and
//!   enqueues the phase-2 apply or compensating rollback.
//! - **Backpressure.** Per-shard queues are bounded; an admission that
//!   would overflow returns a structured [`ServeError::Overloaded`]
//!   with a retry-after hint in simulated cycles, scaled up while the
//!   shard's AIMD scheduler reports an abort storm.
//! - **Determinism.** For a fixed seed the committed history, the
//!   per-shard history hashes and the whole report are byte-identical
//!   regardless of how many worker threads carry the shards: routing,
//!   batch sealing and epoch accounting depend only on request order
//!   and simulated cycles, results are collected by shard index, and
//!   wall-clock time never enters the report. `tm-check` therefore
//!   verifies served histories exactly as it verifies bench runs.
//!
//! ## Quick start
//!
//! ```
//! use tm_serve::{MixConfig, ServeConfig, Service};
//! use workloads::Variant;
//!
//! let cfg = ServeConfig {
//!     shards: 2,
//!     workers: 2,
//!     variant: Variant::HvSorting,
//!     mix: MixConfig { requests: 64, ..MixConfig::bank() },
//!     ..ServeConfig::default()
//! };
//! let report = Service::run(&cfg).unwrap();
//! assert!(report.conserved);
//! assert_eq!(report.violations_total, 0);
//! ```

#![warn(missing_docs)]

mod crash;
mod engine;
mod error;
mod obs;
mod recovery;
mod replica;
mod report;
mod request;
mod route;
mod service;
mod stm;
mod wal;

pub use crash::{CrashPlan, CrashPoint, ReplicaFault, ResolvedCrash};
pub use engine::{EngineConfig, ShardSummary, WalParams, TXL_BUMP};
pub use error::ServeError;
pub use obs::{
    FlightBundle, FlightFrame, HealthState, Hist, Incident, IncidentCause, MetricsSnapshot,
    ObsConfig, ObsReport, ShardSnapshot, WinCounter, WitnessRef, BATCH_CYCLE_BOUNDS,
    RETRY_AFTER_BOUNDS,
};
pub use recovery::RecoveryStats;
pub use report::{RecoveryReport, ReplicaDiverged, ServeReport, ShardReport};
pub use request::{MixConfig, Op, Request};
pub use route::route;
pub use service::{retry_after_hint, DurabilityConfig, ServeConfig, Service};
pub use stm::EngineMode;
pub use wal::{store_fingerprint, BlobStore, DirStore, MemStore, StoreHandle};
