//! Host-side replica groups: deterministic state-machine replication
//! over a shard's committed stream.
//!
//! Each replica bootstraps from the shard's WAL `Init` record (the
//! initial data span) and applies the write-sets of `Commit` records in
//! log order — no re-execution, no simulator. Because commit ordering
//! is deterministic, every healthy replica's span image and running
//! commit-log hash must equal the primary's `data_fnv`/`log_fnv` seal
//! fields at every batch boundary. Each epoch the group takes a quorum
//! vote over those two fingerprints (majority wins; ties break toward
//! the primary, which actually executed the transactions); a replica in
//! the minority is demoted and reported as a
//! [`ReplicaDiverged`](crate::ReplicaDiverged) incident rather than
//! silently serving corrupt state.

use crate::crash::ReplicaFault;
use crate::engine::Fnv;
use crate::report::ReplicaDiverged;
use crate::wal::{BatchSeal, WalRecord};

/// Span fingerprint with the exact folding `ShardEngine::data_fnv`
/// uses (each `u32` widened to `u64` before hashing), so a faithful
/// replica's hash is bit-equal to the primary's seal field.
fn fnv_words(words: &[u32]) -> u64 {
    let mut h = Fnv::new();
    for &w in words {
        h.u32(w);
    }
    h.0
}

struct Replica {
    idx: usize,
    words: Vec<u32>,
    log_fnv: u64,
    applied: u64,
    alive: bool,
}

/// A group of host-side replicas shadowing one shard.
pub(crate) struct ReplicaGroup {
    shard: usize,
    base: u32,
    fault: Option<ReplicaFault>,
    members: Vec<Replica>,
}

impl ReplicaGroup {
    /// Builds `n` replicas of `shard` from the WAL `Init` record's data
    /// span (`base` = span base address, `words` = initial contents).
    pub(crate) fn new(
        shard: usize,
        base: u32,
        words: &[u32],
        n: usize,
        fault: Option<ReplicaFault>,
    ) -> ReplicaGroup {
        let members = (0..n)
            .map(|idx| Replica {
                idx,
                words: words.to_vec(),
                log_fnv: Fnv::new().0,
                applied: 0,
                alive: true,
            })
            .collect();
        ReplicaGroup { shard, base, fault, members }
    }

    /// Replicas still in the quorum.
    pub(crate) fn healthy(&self) -> usize {
        self.members.iter().filter(|r| r.alive).count()
    }

    /// Group size.
    pub(crate) fn total(&self) -> usize {
        self.members.len()
    }

    /// Re-bases every healthy replica on the primary's recovered state
    /// (data span, running log hash, commits applied). Used after a
    /// shard crash, when compaction may have dropped the WAL records a
    /// replay would need. Demoted replicas stay demoted.
    pub(crate) fn resync(&mut self, words: &[u32], log_fnv: u64, applied: u64) {
        for r in self.members.iter_mut().filter(|r| r.alive) {
            r.words = words.to_vec();
            r.log_fnv = log_fnv;
            r.applied = applied;
        }
    }

    /// Applies one batch's committed stream (the `Commit` WAL records,
    /// in commit order) to every healthy replica.
    pub(crate) fn ingest(&mut self, commits: &[WalRecord]) {
        for rec in commits {
            let WalRecord::Commit { req, tid, version, snapshot: _, reads, writes } = rec else {
                continue;
            };
            for r in self.members.iter_mut().filter(|r| r.alive) {
                r.applied += 1;
                // An injected fault silently drops the whole commit —
                // neither its writes nor its log-hash fold land, so the
                // replica diverges permanently and the epoch vote must
                // catch it regardless of what later commits overwrite.
                if self.fault.is_some_and(|f| {
                    f.shard == self.shard && f.replica == r.idx && f.at_commit == r.applied
                }) {
                    continue;
                }
                for &(addr, val) in writes {
                    let Some(slot) = addr.checked_sub(self.base).map(|o| o as usize) else {
                        continue;
                    };
                    if slot < r.words.len() {
                        r.words[slot] = val;
                    }
                }
                // Identical fold to `ShardEngine::make_seal`.
                let mut h = Fnv(r.log_fnv);
                h.u64(*req);
                h.u32(*tid);
                h.u32(*version);
                h.u32(*reads);
                h.u32(writes.len() as u32);
                r.log_fnv = h.0;
            }
        }
    }

    /// Epoch cross-check: quorum vote over `(data_fnv, log_fnv)` among
    /// the primary's seal and every healthy replica. Minority members
    /// are demoted and reported.
    pub(crate) fn check_epoch(&mut self, seal: &BatchSeal) -> Vec<ReplicaDiverged> {
        let primary = (seal.data_fnv, seal.log_fnv);
        let mut votes: Vec<(u64, u64)> = vec![primary];
        let states: Vec<(usize, (u64, u64))> = self
            .members
            .iter()
            .filter(|r| r.alive)
            .map(|r| (r.idx, (fnv_words(&r.words), r.log_fnv)))
            .collect();
        votes.extend(states.iter().map(|&(_, v)| v));
        // Majority value; ties break toward the primary, which is the
        // only member that actually executed the transactions.
        let mut winner = primary;
        let mut best = 0;
        for &v in &votes {
            let n = votes.iter().filter(|&&o| o == v).count();
            if n > best || (n == best && v == primary) {
                best = n;
                winner = v;
            }
        }
        let mut incidents = Vec::new();
        for (idx, got) in states {
            if got != winner {
                let r =
                    self.members.iter_mut().find(|r| r.idx == idx).expect("voted replica exists");
                r.alive = false;
                incidents.push(ReplicaDiverged {
                    shard: self.shard,
                    replica: idx,
                    seq: seal.seq,
                    expected_data_fnv: winner.0,
                    got_data_fnv: got.0,
                    expected_log_fnv: winner.1,
                    got_log_fnv: got.1,
                });
            }
        }
        incidents
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EntryOutcome;

    fn commit(req: u64, addr: u32, val: u32) -> WalRecord {
        WalRecord::Commit {
            req,
            tid: 7,
            version: 1,
            snapshot: 0,
            reads: 1,
            writes: vec![(addr, val)],
        }
    }

    fn seal_for(group: &ReplicaGroup, seq: u64) -> BatchSeal {
        let r = &group.members[0];
        BatchSeal {
            seq,
            outcomes: vec![EntryOutcome { ok: true, value: 0 }],
            cycles: 10,
            commits: 1,
            aborts: 0,
            storm: false,
            data_fnv: fnv_words(&r.words),
            log_fnv: r.log_fnv,
        }
    }

    #[test]
    fn healthy_replicas_match_primary() {
        let mut g = ReplicaGroup::new(0, 100, &[5, 5, 5, 5], 3, None);
        g.ingest(&[commit(1, 101, 9), commit(2, 103, 2)]);
        let seal = seal_for(&g, 1);
        assert!(g.check_epoch(&seal).is_empty());
        assert_eq!(g.healthy(), 3);
        assert_eq!(g.members[1].words, vec![5, 9, 5, 2]);
    }

    #[test]
    fn injected_fault_is_demoted_with_incident() {
        let fault = ReplicaFault { shard: 0, replica: 1, at_commit: 2 };
        let mut g = ReplicaGroup::new(0, 100, &[5, 5, 5, 5], 3, Some(fault));
        g.ingest(&[commit(1, 101, 9), commit(2, 103, 2)]);
        // Replica 1 dropped its second commit; 0 and 2 are clean.
        let seal = seal_for(&g, 1);
        let incidents = g.check_epoch(&seal);
        assert_eq!(incidents.len(), 1);
        let inc = &incidents[0];
        assert_eq!((inc.shard, inc.replica, inc.seq), (0, 1, 1));
        assert_ne!(inc.got_data_fnv, inc.expected_data_fnv);
        assert_eq!(g.healthy(), 2);
        // Demoted replicas drop out of later votes and ingestion.
        g.ingest(&[commit(3, 100, 1)]);
        assert_eq!(g.members[1].applied, 2);
        let seal2 = seal_for(&g, 2);
        assert!(g.check_epoch(&seal2).is_empty());
    }

    #[test]
    fn out_of_span_writes_are_ignored() {
        let mut g = ReplicaGroup::new(0, 100, &[5, 5], 1, None);
        g.ingest(&[commit(1, 99, 7), commit(2, 102, 7)]);
        assert_eq!(g.members[0].words, vec![5, 5]);
        assert_eq!(g.members[0].applied, 2);
    }
}

/// End-to-end replica fidelity against a real engine: this is the
/// non-vacuous guarantee behind the service-level "no incidents"
/// assertions — a replica applying the WAL feed must land bit-equal
/// on *both* seal fingerprints, batch after batch.
#[cfg(test)]
mod engine_fidelity {
    use super::*;
    use crate::engine::{DurableOutcome, EngineConfig, Entry, ShardEngine, ShardOp, WalParams};
    use crate::stm::EngineMode;
    use crate::wal::MemStore;
    use workloads::Variant;

    fn engine() -> ShardEngine {
        let cfg = EngineConfig {
            shard: 0,
            shards: 1,
            seed: 11,
            variant: Variant::HvSorting,
            mode: EngineMode::Scheduled,
            accounts: 64,
            table_words: 256,
            txl_words: 16,
            batch_warps: 1,
            initial_balance: 1000,
            credit_cap: u32::MAX,
            n_locks: 1 << 10,
            trace_events: 0,
            wal: Some(WalParams { segment_batches: 8, compact: false, crash: None }),
        };
        ShardEngine::with_store(cfg, Some(MemStore::shared())).unwrap()
    }

    #[test]
    fn replica_fingerprints_track_a_live_engine() {
        let mut eng = engine();
        let (base, words, _, _) = eng.replica_resync();
        let mut g = ReplicaGroup::new(0, base, &words, 2, None);

        for batch in 0..3u64 {
            let entries: Vec<Entry> = (0..8)
                .map(|i| Entry {
                    req: batch * 8 + i,
                    op: ShardOp::Transfer {
                        from: (batch as u32 * 8 + i as u32) % 64,
                        to: (batch as u32 * 8 + i as u32 + 7) % 64,
                        amount: 3,
                    },
                })
                .collect();
            let DurableOutcome::Done(_) = eng.run_batch_durable(&entries).unwrap() else {
                panic!("no crash armed")
            };
            let (commits, seal) = eng.replica_feed().unwrap();
            g.ingest(&commits);
            for r in &g.members {
                assert_eq!(fnv_words(&r.words), seal.data_fnv, "batch {batch}: data span");
                assert_eq!(r.log_fnv, seal.log_fnv, "batch {batch}: log hash");
            }
            assert!(g.check_epoch(&seal).is_empty());
        }
        assert_eq!(g.healthy(), 2);
    }

    #[test]
    fn dropped_commit_diverges_from_a_live_engine() {
        let mut eng = engine();
        let (base, words, _, _) = eng.replica_resync();
        let fault = ReplicaFault { shard: 0, replica: 0, at_commit: 2 };
        let mut g = ReplicaGroup::new(0, base, &words, 1, Some(fault));

        let entries: Vec<Entry> = (0..8)
            .map(|i| Entry {
                req: i,
                op: ShardOp::Transfer { from: i as u32, to: (i as u32 + 7) % 64, amount: 3 },
            })
            .collect();
        let DurableOutcome::Done(_) = eng.run_batch_durable(&entries).unwrap() else {
            panic!("no crash armed")
        };
        let (commits, seal) = eng.replica_feed().unwrap();
        assert!(commits.len() >= 2, "need at least 2 commits for the fault to fire");
        g.ingest(&commits);
        let incidents = g.check_epoch(&seal);
        assert_eq!(incidents.len(), 1);
        assert_eq!(g.healthy(), 0);
    }
}
