//! The multi-threaded transaction service: admission, routing, batch
//! sealing, the 2PC coordinator and the deterministic round loop.
//!
//! ## Determinism argument
//!
//! The coordinator advances a *virtual epoch clock* measured in
//! simulated cycles. Each round it (1) admits every request that has
//! arrived by the current epoch, (2) seals at most one warp-aligned
//! batch per shard (phase-2 entries first, then the admission queue in
//! FIFO order), (3) dispatches the batches to worker threads and
//! barriers on all of them, then (4) advances the epoch by the *maximum*
//! batch cycle count of the round — the shards ran concurrently in
//! virtual time — and processes outcomes in shard-index order. Every
//! step depends only on the request stream (seeded), routing (seeded
//! hash) and per-shard simulated cycle counts (deterministic per
//! engine), never on wall-clock time or thread interleaving: worker
//! threads are a pure execution resource. Hence a fixed seed yields a
//! byte-identical committed history and report for any worker count.

use crate::crash::{CrashPlan, ReplicaFault, ResolvedCrash};
use crate::engine::{
    BatchReport, DurableOutcome, EngineConfig, Entry, ShardEngine, ShardOp, ShardSummary, WalParams,
};
use crate::error::ServeError;
use crate::obs::{ObsConfig, ObsState};
use crate::recovery::{self, RecoveryStats};
use crate::replica::ReplicaGroup;
use crate::report::{ClassTotals, RecoveryReport, ServeReport, ShardReport};
use crate::request::{self, MixConfig, Op, Request};
use crate::stm::EngineMode;
use crate::wal::{append_decision, store_fingerprint, BatchSeal, MemStore, StoreHandle, WalRecord};
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc;
use workloads::Variant;

/// One batch's committed stream plus its seal, shipped to the
/// coordinator for replica ingestion.
type Feed = (Vec<WalRecord>, BatchSeal);

/// Replica re-base payload: `(span_base, span_words, log_fnv, applied)`.
type Resync = (u32, Vec<u32>, u64, u64);

/// Full service configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Number of shards (engine instances).
    pub shards: usize,
    /// Worker threads carrying the shards (`0` = one per shard).
    pub workers: usize,
    /// STM variant every shard runs.
    pub variant: Variant,
    /// Wrapper mode (default: AIMD-scheduled).
    pub mode: EngineMode,
    /// Request mix and arrival process.
    pub mix: MixConfig,
    /// Service seed: routing, request generation, initial state.
    pub seed: u64,
    /// Bank account keyspace.
    pub accounts: u32,
    /// Hashtable slots per shard.
    pub table_words: u32,
    /// TXL counters per shard.
    pub txl_words: u32,
    /// Warps per sealed batch.
    pub batch_warps: u32,
    /// Bound on each shard's admission queue.
    pub queue_capacity: usize,
    /// Blocking admission: a request that would be rejected with
    /// [`ServeError::Overloaded`] parks in a coordinator-side FIFO
    /// instead and is re-offered each round until queue capacity
    /// frees — the serving-layer analogue of `gpu_stm::park`'s
    /// `retry()` (clients wait on the capacity condition rather than
    /// polling with retry-after hints). Parked depth is exported as a
    /// per-shard gauge and sustained depth opens a
    /// [`crate::obs::IncidentCause::ParkStorm`] incident.
    pub blocking: bool,
    /// Initial balance per owned account.
    pub initial_balance: u32,
    /// Credit ceiling for cross-shard prepare-credit votes.
    pub credit_cap: u32,
    /// Global version locks per shard STM.
    pub n_locks: u32,
    /// Safety cap on coordinator rounds.
    pub max_rounds: u64,
    /// Durability: write-ahead logging, snapshots, crash injection and
    /// replica groups. `None` serves from volatile state only.
    pub durability: Option<DurabilityConfig>,
    /// Live-observability knobs (windowed metrics, health incidents,
    /// flight recorder). The defaults are always-on and cheap.
    pub obs: ObsConfig,
}

/// Durability knobs for the service.
#[derive(Copy, Clone, Debug)]
pub struct DurabilityConfig {
    /// Batches per WAL segment; every `segment_batches`-th batch also
    /// snapshots the shard and rolls to a fresh segment.
    pub segment_batches: u64,
    /// Delete pre-snapshot segments at each roll.
    pub compact: bool,
    /// Host-side replicas per shard applying the committed stream
    /// (0 = replication off).
    pub replicas: usize,
    /// Coordinator rounds a crashed shard stays down before recovery
    /// runs. `0` recovers synchronously inside the crash round, which
    /// keeps the final report byte-identical to an uncrashed run; `> 0`
    /// opens a window in which admissions to the shard are rejected
    /// with [`ServeError::ShardUnavailable`].
    pub recovery_rounds: u64,
    /// Seeded kill-a-worker injection.
    pub crash: Option<CrashPlan>,
    /// Seeded silent-corruption injection into one replica.
    pub replica_fault: Option<ReplicaFault>,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            segment_batches: 8,
            compact: true,
            replicas: 0,
            recovery_rounds: 0,
            crash: None,
            replica_fault: None,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 2,
            workers: 0,
            variant: Variant::HvSorting,
            mode: EngineMode::Scheduled,
            mix: MixConfig::mixed(),
            seed: 42,
            accounts: 256,
            table_words: 1 << 10,
            txl_words: 64,
            batch_warps: 2,
            queue_capacity: 64,
            blocking: false,
            initial_balance: 1000,
            credit_cap: u32::MAX,
            n_locks: 1 << 12,
            max_rounds: 1 << 20,
            durability: None,
            obs: ObsConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Engine config for `shard`. `crash` arms the injected kill for
    /// the initial worker fleet; recovery rebuilds with `None` so the
    /// same crash cannot re-fire on replay.
    fn engine_config(&self, shard: usize, crash: Option<ResolvedCrash>) -> EngineConfig {
        EngineConfig {
            shard,
            shards: self.shards,
            seed: self.seed,
            variant: self.variant,
            mode: self.mode,
            accounts: self.accounts,
            table_words: self.table_words,
            txl_words: self.txl_words,
            batch_warps: self.batch_warps,
            initial_balance: self.initial_balance,
            credit_cap: self.credit_cap,
            n_locks: self.n_locks,
            trace_events: self.obs.flight_events,
            wal: self.durability.as_ref().map(|d| WalParams {
                segment_batches: d.segment_batches,
                compact: d.compact,
                crash,
            }),
        }
    }

    /// Checks the configuration without running it.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.shards == 0 {
            return Err(ServeError::BadConfig("shards must be ≥ 1".into()));
        }
        if self.batch_warps == 0 {
            return Err(ServeError::BadConfig("batch_warps must be ≥ 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::BadConfig("queue_capacity must be ≥ 1".into()));
        }
        if self.accounts < 2 {
            return Err(ServeError::BadConfig("need at least 2 accounts".into()));
        }
        if let Some(d) = &self.durability {
            if d.segment_batches == 0 {
                return Err(ServeError::BadConfig("segment_batches must be ≥ 1".into()));
            }
            if d.replicas > self.shards {
                return Err(ServeError::BadConfig(format!(
                    "{} replicas per shard exceed the {}-shard budget",
                    d.replicas, self.shards
                )));
            }
            if let Some(plan) = &d.crash {
                if let Some(shard) = plan.shard {
                    if shard >= self.shards {
                        return Err(ServeError::BadConfig(format!(
                            "crash plan pins shard {shard}, but only {} shards exist",
                            self.shards
                        )));
                    }
                }
                if plan.after_batches == Some(u64::MAX) {
                    return Err(ServeError::BadConfig(
                        "crash plan after_batches overflows the batch sequence".into(),
                    ));
                }
            }
            if let Some(f) = &d.replica_fault {
                if f.shard >= self.shards {
                    return Err(ServeError::BadConfig(format!(
                        "replica fault targets shard {}, but only {} shards exist",
                        f.shard, self.shards
                    )));
                }
                if f.replica >= d.replicas {
                    return Err(ServeError::BadConfig(format!(
                        "replica fault targets replica {}, but groups have {}",
                        f.replica, d.replicas
                    )));
                }
                if f.at_commit == 0 {
                    return Err(ServeError::BadConfig(
                        "replica fault at_commit is 1-based; 0 never fires".into(),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Validating constructor: returns the config only if
    /// [`validate`](Self::validate) passes.
    ///
    /// # Errors
    ///
    /// Propagates the validation failure.
    pub fn try_new(cfg: ServeConfig) -> Result<ServeConfig, ServeError> {
        cfg.validate()?;
        Ok(cfg)
    }

    /// Applies a `txl analyze` static profile to this config: the
    /// per-shard STM variant becomes the profile's top-ranked variant
    /// and the lock-table size its stripe recommendation — the acting
    /// half of the obs layer's sense/act split, applied before any
    /// traffic arrives.
    pub fn seed_from_profile(mut self, profile: &txl::StaticProfile) -> Self {
        if let Some(v) = Variant::parse(profile.recommended().short_name()) {
            self.variant = v;
        }
        self.n_locks = profile.stripes;
        self
    }

    /// Statically analyzes `src` at this config's modeled concurrency
    /// (`batch_warps` warps of 32 lanes) and seeds variant/stripes from
    /// the result via [`seed_from_profile`](Self::seed_from_profile).
    /// Pass [`crate::TXL_BUMP`] to seed from the program the engine
    /// actually serves for `TxlBump` requests.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadConfig`] if `src` does not compile.
    pub fn seed_from_txl(self, src: &str) -> Result<Self, ServeError> {
        let cfg = txl::CostConfig { threads: self.batch_warps * 32, ..txl::CostConfig::default() };
        let profile = txl::analyze_source(src, &cfg)
            .map_err(|e| ServeError::BadConfig(format!("seed_from_txl: {e}")))?;
        Ok(self.seed_from_profile(&profile))
    }
}

/// Suggested retry delay (simulated cycles) for a client rejected by a
/// full queue: proportional to the backlog it must wait out, scaled up
/// 4× while the shard's AIMD scheduler reports an abort storm (commit
/// cost per entry is inflated and retrying early would feed the storm).
pub fn retry_after_hint(queue_len: usize, cost_per_entry: u64, storm: bool) -> u64 {
    let base = (queue_len as u64 + 1) * cost_per_entry.max(1);
    if storm {
        base * 4
    } else {
        base
    }
}

/// Request class, for per-class accounting.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Class {
    BankLocal,
    BankCross,
    Ht,
    Txl,
}

/// One queued (admitted) shard transaction.
#[derive(Copy, Clone, Debug)]
struct QEntry {
    req: u64,
    arrival: u64,
    op: ShardOp,
    class: Class,
}

/// Coordinator-side 2PC record for one cross-shard transfer.
#[derive(Copy, Clone, Debug)]
struct Pending2pc {
    to: u32,
    from: u32,
    amount: u32,
    arrival: u64,
    debit_shard: usize,
    credit_shard: usize,
    debit_vote: Option<bool>,
    credit_vote: Option<bool>,
    /// Phase 2 already enqueued; awaiting its completion.
    resolved: bool,
}

/// Bounded per-shard admission queues plus the phase-2 priority lanes.
struct Admission {
    queues: Vec<VecDeque<QEntry>>,
    phase2: Vec<VecDeque<QEntry>>,
    capacity: usize,
    shards: usize,
    seed: u64,
}

impl Admission {
    fn new(shards: usize, capacity: usize, seed: u64) -> Self {
        Admission {
            queues: (0..shards).map(|_| VecDeque::new()).collect(),
            phase2: (0..shards).map(|_| VecDeque::new()).collect(),
            capacity,
            shards,
            seed,
        }
    }

    fn overloaded(&self, shard: usize, cost: u64, storm: bool) -> ServeError {
        ServeError::Overloaded {
            shard,
            queue_len: self.queues[shard].len(),
            capacity: self.capacity,
            retry_after: retry_after_hint(self.queues[shard].len(), cost, storm),
        }
    }

    /// Retry pricing for a shard whose worker is mid-recovery: same
    /// backlog-proportional hint as [`Self::overloaded`], because the
    /// client's best move is identical — wait out the queue.
    fn unavailable(&self, shard: usize, cost: u64, storm: bool) -> ServeError {
        ServeError::ShardUnavailable {
            shard,
            retry_after: retry_after_hint(self.queues[shard].len(), cost, storm),
        }
    }

    /// Admits `req`, or reports the structured overload. `cost`/`storm`
    /// feed the retry-after hint of the rejecting shard; `down` marks
    /// shards in their crash-recovery window.
    fn try_admit(
        &mut self,
        req: &Request,
        cost: &[u64],
        storm: &[bool],
        down: &[bool],
    ) -> Result<Class, ServeError> {
        let (primary, secondary) = req.op.shards(self.shards, self.seed);
        if let Some(&s) = [Some(primary), secondary].iter().flatten().find(|&&s| down[s]) {
            return Err(self.unavailable(s, cost[s], storm[s]));
        }
        match (req.op, secondary) {
            (Op::Transfer { from, to, amount }, Some(credit_shard)) => {
                let debit_shard = primary;
                // Cross-shard admission is atomic: both prepare lanes
                // must have room or the request is rejected whole.
                if self.queues[debit_shard].len() >= self.capacity {
                    return Err(self.overloaded(
                        debit_shard,
                        cost[debit_shard],
                        storm[debit_shard],
                    ));
                }
                if self.queues[credit_shard].len() >= self.capacity {
                    return Err(self.overloaded(
                        credit_shard,
                        cost[credit_shard],
                        storm[credit_shard],
                    ));
                }
                self.queues[debit_shard].push_back(QEntry {
                    req: req.id,
                    arrival: req.arrival,
                    op: ShardOp::PrepareDebit { from, amount },
                    class: Class::BankCross,
                });
                self.queues[credit_shard].push_back(QEntry {
                    req: req.id,
                    arrival: req.arrival,
                    op: ShardOp::PrepareCredit { to, amount },
                    class: Class::BankCross,
                });
                Ok(Class::BankCross)
            }
            (op, _) => {
                let shard = primary;
                if self.queues[shard].len() >= self.capacity {
                    return Err(self.overloaded(shard, cost[shard], storm[shard]));
                }
                let (op, class) = match op {
                    Op::Transfer { from, to, amount } => {
                        (ShardOp::Transfer { from, to, amount }, Class::BankLocal)
                    }
                    Op::HtPut { key, val } => (ShardOp::HtPut { key, val }, Class::Ht),
                    Op::HtGet { key } => (ShardOp::HtGet { key }, Class::Ht),
                    Op::TxlBump { key } => (ShardOp::TxlBump { key }, Class::Txl),
                };
                self.queues[shard].push_back(QEntry {
                    req: req.id,
                    arrival: req.arrival,
                    op,
                    class,
                });
                Ok(class)
            }
        }
    }

    /// Seals at most one batch for `shard`: phase-2 entries first (they
    /// hold resources on other shards), then FIFO admissions.
    fn seal(&mut self, shard: usize, capacity: usize) -> Vec<QEntry> {
        let mut out = Vec::new();
        while out.len() < capacity {
            if let Some(e) = self.phase2[shard].pop_front() {
                out.push(e);
            } else {
                break;
            }
        }
        while out.len() < capacity {
            if let Some(e) = self.queues[shard].pop_front() {
                out.push(e);
            } else {
                break;
            }
        }
        out
    }

    fn idle(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty()) && self.phase2.iter().all(|q| q.is_empty())
    }
}

enum ToWorker {
    Run {
        shard: usize,
        entries: Vec<Entry>,
    },
    /// Rebuild a crashed shard from its WAL (config arrives with crash
    /// injection disarmed).
    Recover {
        shard: usize,
        cfg: Box<EngineConfig>,
    },
    Finish {
        shard: usize,
    },
}

enum FromWorker {
    /// Engine constructed; `boot` carries the replica-bootstrap payload
    /// when replication is on.
    Ready {
        shard: usize,
        boot: Option<Box<Resync>>,
    },
    Fatal {
        shard: usize,
        message: String,
    },
    /// Injected crash fired: the engine is gone; only its WAL survives.
    Crashed {
        shard: usize,
    },
    Batch {
        shard: usize,
        report: BatchReport,
        feed: Option<Box<Feed>>,
    },
    Recovered {
        shard: usize,
        stats: Box<RecoveryStats>,
        /// Highest durable batch sequence (0 = none) and its report.
        last_seq: u64,
        report: Option<BatchReport>,
        resync: Option<Box<Resync>>,
    },
    Summary {
        shard: usize,
        summary: Box<ShardSummary>,
    },
}

fn worker_main(
    cfgs: Vec<EngineConfig>,
    store: Option<StoreHandle>,
    feed_replicas: bool,
    rx: mpsc::Receiver<ToWorker>,
    tx: mpsc::Sender<FromWorker>,
) {
    let mut engines: BTreeMap<usize, ShardEngine> = BTreeMap::new();
    for cfg in cfgs {
        let shard = cfg.shard;
        match ShardEngine::with_store(cfg, store.clone()) {
            Ok(e) => {
                let boot = feed_replicas.then(|| Box::new(e.replica_resync()));
                engines.insert(shard, e);
                let _ = tx.send(FromWorker::Ready { shard, boot });
            }
            Err(e) => {
                let _ = tx.send(FromWorker::Fatal { shard, message: e.to_string() });
            }
        }
    }
    for msg in rx {
        match msg {
            ToWorker::Run { shard, entries } => {
                let Some(engine) = engines.get_mut(&shard) else {
                    let _ = tx.send(FromWorker::Fatal { shard, message: "no engine".into() });
                    continue;
                };
                match engine.run_batch_durable(&entries) {
                    Ok(DurableOutcome::Done(report)) => {
                        let feed =
                            feed_replicas.then(|| engine.replica_feed().map(Box::new)).flatten();
                        let _ = tx.send(FromWorker::Batch { shard, report, feed });
                    }
                    Ok(DurableOutcome::Crashed(_point)) => {
                        // Simulated worker death: the engine (and all
                        // volatile state) is discarded; the blob store
                        // is the only survivor.
                        engines.remove(&shard);
                        let _ = tx.send(FromWorker::Crashed { shard });
                    }
                    Err(e) => {
                        let _ = tx.send(FromWorker::Fatal { shard, message: e.to_string() });
                    }
                }
            }
            ToWorker::Recover { shard, cfg } => {
                let Some(store) = store.clone() else {
                    let _ = tx
                        .send(FromWorker::Fatal { shard, message: "recover without store".into() });
                    continue;
                };
                match recovery::recover(*cfg, store) {
                    Ok(rec) => {
                        let (last_seq, report) = match rec.last {
                            Some((seq, rep)) => (seq, Some(rep)),
                            None => (0, None),
                        };
                        let resync = feed_replicas.then(|| Box::new(rec.engine.replica_resync()));
                        engines.insert(shard, rec.engine);
                        let _ = tx.send(FromWorker::Recovered {
                            shard,
                            stats: Box::new(rec.stats),
                            last_seq,
                            report,
                            resync,
                        });
                    }
                    Err(e) => {
                        let _ = tx.send(FromWorker::Fatal { shard, message: e.to_string() });
                    }
                }
            }
            ToWorker::Finish { shard } => {
                if let Some(engine) = engines.remove(&shard) {
                    let summary = Box::new(engine.finish());
                    let _ = tx.send(FromWorker::Summary { shard, summary });
                }
            }
        }
    }
}

struct Pool {
    senders: Vec<mpsc::Sender<ToWorker>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    results: mpsc::Receiver<FromWorker>,
}

impl Pool {
    fn spawn(
        cfg: &ServeConfig,
        workers: usize,
        store: Option<StoreHandle>,
        crash: Option<ResolvedCrash>,
        feed_replicas: bool,
    ) -> Pool {
        let (res_tx, results) = mpsc::channel();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let cfgs: Vec<EngineConfig> = (0..cfg.shards)
                .filter(|s| s % workers == w)
                .map(|s| cfg.engine_config(s, crash))
                .collect();
            let (tx, rx) = mpsc::channel();
            let res = res_tx.clone();
            let st = store.clone();
            handles.push(std::thread::spawn(move || worker_main(cfgs, st, feed_replicas, rx, res)));
            senders.push(tx);
        }
        Pool { senders, handles, results }
    }

    fn send(&self, worker: usize, msg: ToWorker) -> Result<(), ServeError> {
        self.senders[worker]
            .send(msg)
            .map_err(|_| ServeError::Engine { shard: worker, message: "worker thread died".into() })
    }

    fn shutdown(self) {
        drop(self.senders);
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// Recovery protocol for one crashed shard, run after the round
/// barrier has drained every other in-flight message: rebuild the
/// engine from its WAL (crash disarmed), re-base the replica group on
/// the recovered state, then resolve the batch the dead worker never
/// acknowledged — answered from the log if it was sealed durably,
/// re-dispatched to the recovered engine otherwise.
#[allow(clippy::too_many_arguments)]
fn recover_shard(
    pool: &Pool,
    workers: usize,
    cfg: &ServeConfig,
    s: usize,
    expect_seq: u64,
    entries: &[QEntry],
    groups: &mut [Option<ReplicaGroup>],
    rec_report: &mut RecoveryReport,
) -> Result<BatchReport, ServeError> {
    let proto = |m: String| ServeError::Engine { shard: s, message: m };
    pool.send(
        s % workers,
        ToWorker::Recover { shard: s, cfg: Box::new(cfg.engine_config(s, None)) },
    )?;
    let (last_seq, report, resync) = match pool.results.recv() {
        Ok(FromWorker::Recovered { shard, stats, last_seq, report, resync }) if shard == s => {
            rec_report.recoveries.push(*stats);
            (last_seq, report, resync)
        }
        Ok(FromWorker::Fatal { shard, message }) => {
            return Err(ServeError::Engine { shard, message });
        }
        Ok(_) => return Err(proto("unexpected message during shard recovery".into())),
        Err(_) => return Err(proto("worker pool died during shard recovery".into())),
    };
    if let (Some(g), Some(r)) = (groups[s].as_mut(), resync) {
        let (_base, words, log_fnv, applied) = *r;
        g.resync(&words, log_fnv, applied);
    }
    if last_seq == expect_seq {
        // The crashed batch was already durable; the log answers for
        // the dead worker. Replicas were re-based past it above.
        rec_report.replayed_acks += 1;
        return report.ok_or_else(|| proto("durable batch has no replayable report".into()));
    }
    if last_seq + 1 != expect_seq {
        return Err(proto(format!(
            "recovered log at batch {last_seq} cannot resume coordinator batch {expect_seq}"
        )));
    }
    // The batch never became durable (torn or pre-execution crash):
    // re-dispatch the same sealed entries to the recovered engine.
    let run: Vec<Entry> = entries.iter().map(|q| Entry { req: q.req, op: q.op }).collect();
    pool.send(s % workers, ToWorker::Run { shard: s, entries: run })?;
    match pool.results.recv() {
        Ok(FromWorker::Batch { shard, report, feed }) if shard == s => {
            if let (Some(g), Some(f)) = (groups[s].as_mut(), feed) {
                g.ingest(&f.0);
                rec_report.diverged.extend(g.check_epoch(&f.1));
            }
            Ok(report)
        }
        Ok(FromWorker::Fatal { shard, message }) => Err(ServeError::Engine { shard, message }),
        Ok(_) => Err(proto("unexpected message during recovery re-dispatch".into())),
        Err(_) => Err(proto("worker pool died during recovery re-dispatch".into())),
    }
}

/// The transaction service entry point.
pub struct Service;

impl Service {
    /// Runs the full service lifecycle for `cfg`: generate the request
    /// stream, serve it to completion (drain), verify every shard's
    /// history with `tm-check`, and aggregate the report. With
    /// durability configured, the run logs to a private in-memory store
    /// (use [`run_durable`](Self::run_durable) to supply your own and
    /// get the recovery report back).
    pub fn run(cfg: &ServeConfig) -> Result<ServeReport, ServeError> {
        if cfg.durability.is_some() {
            return Self::run_durable(cfg, MemStore::shared()).map(|(r, _)| r);
        }
        Self::run_inner(cfg, None).map(|(r, _)| r)
    }

    /// Like [`run`](Self::run), but logs to `store` (which must be
    /// empty — restarting a whole service from an existing store goes
    /// through recovery, not `run`) and returns the durability report
    /// alongside the serve report. Requires `cfg.durability`.
    pub fn run_durable(
        cfg: &ServeConfig,
        store: StoreHandle,
    ) -> Result<(ServeReport, RecoveryReport), ServeError> {
        if cfg.durability.is_none() {
            return Err(ServeError::BadConfig("run_durable needs cfg.durability".into()));
        }
        if !store.list("").is_empty() {
            return Err(ServeError::BadConfig("run_durable needs an empty blob store".into()));
        }
        Self::run_inner(cfg, Some(store))
    }

    /// Cold restart after total coordinator loss: rebuilds every shard
    /// engine from `store` (latest snapshot plus WAL tail), resolves
    /// in-doubt cross-shard holds against the coordinator decision log
    /// (commit if a decision was logged, compensate otherwise —
    /// presumed abort), and returns each shard's recovery stats with
    /// its final verified summary. Requires `cfg.durability`; the
    /// config must match the one that produced the store.
    pub fn cold_recover(
        cfg: &ServeConfig,
        store: StoreHandle,
    ) -> Result<Vec<(RecoveryStats, ShardSummary)>, ServeError> {
        cfg.validate()?;
        if cfg.durability.is_none() {
            return Err(ServeError::BadConfig("cold_recover needs cfg.durability".into()));
        }
        let mut out = Vec::with_capacity(cfg.shards);
        for s in 0..cfg.shards {
            let mut rec = recovery::recover(cfg.engine_config(s, None), store.clone())?;
            let (committed, compensated) = recovery::resolve_in_doubt(&mut rec.engine, &store)?;
            rec.stats.in_doubt_committed = committed;
            rec.stats.in_doubt_compensated = compensated;
            out.push((rec.stats, rec.engine.finish()));
        }
        Ok(out)
    }

    fn run_inner(
        cfg: &ServeConfig,
        store_opt: Option<StoreHandle>,
    ) -> Result<(ServeReport, RecoveryReport), ServeError> {
        cfg.validate()?;
        let dur_cfg = cfg.durability.unwrap_or_default();
        let replicas_n = if cfg.durability.is_some() { dur_cfg.replicas } else { 0 };
        let feed_replicas = replicas_n > 0;
        let crash =
            cfg.durability.as_ref().and_then(|d| d.crash.as_ref()).map(|p| p.resolve(cfg.shards));
        let workers = if cfg.workers == 0 { cfg.shards } else { cfg.workers.min(cfg.shards) };
        let requests =
            request::generate(&cfg.mix, cfg.accounts, cfg.txl_words, cfg.shards, cfg.seed);

        let wall_start = std::time::Instant::now();
        let pool = Pool::spawn(cfg, workers, store_opt.clone(), crash, feed_replicas);

        // Wait for every shard engine to come up; collect replica
        // bootstrap payloads when replication is on.
        let mut groups: Vec<Option<ReplicaGroup>> = (0..cfg.shards).map(|_| None).collect();
        let mut ready = 0usize;
        while ready < cfg.shards {
            match pool.results.recv() {
                Ok(FromWorker::Ready { shard, boot }) => {
                    if let Some(b) = boot {
                        let (base, words, _, _) = *b;
                        groups[shard] = Some(ReplicaGroup::new(
                            shard,
                            base,
                            &words,
                            replicas_n,
                            dur_cfg.replica_fault,
                        ));
                    }
                    ready += 1;
                }
                Ok(FromWorker::Fatal { shard, message }) => {
                    pool.shutdown();
                    return Err(ServeError::Engine { shard, message });
                }
                Ok(_) => {}
                Err(_) => {
                    pool.shutdown();
                    return Err(ServeError::Engine {
                        shard: 0,
                        message: "worker pool died during startup".into(),
                    });
                }
            }
        }

        let shards = cfg.shards;
        let batch_cap = cfg.batch_warps as usize * gpu_sim::WARP_SIZE;
        // Live observability: windowed metrics, health incidents and the
        // per-shard flight recorder, all driven by the epoch clock below.
        let mut obs = ObsState::new(
            cfg.obs.clone(),
            shards,
            cfg.variant.short_name(),
            cfg.mode.short_name(),
            cfg.seed,
        );
        let mut adm = Admission::new(shards, cfg.queue_capacity, cfg.seed);
        let mut inflight: BTreeMap<u64, Pending2pc> = BTreeMap::new();
        let mut epoch = 0u64;
        let mut rounds = 0u64;
        let mut next_arr = 0usize;
        // Per-shard adaptive cost model feeding retry-after hints.
        let mut cost = vec![500u64; shards];
        let mut storm = vec![false; shards];
        let mut storm_rounds = vec![0u64; shards];
        let mut queue_peak = vec![0usize; shards];
        let mut rejected = vec![0u64; shards];
        // Blocking admission: requests waiting, in arrival order, for
        // queue capacity, each tagged with the shard that last refused
        // it (for depth attribution).
        let mut parked: VecDeque<(Request, usize)> = VecDeque::new();
        let mut parks = vec![0u64; shards];
        let mut parked_depth_peak = vec![0u64; shards];
        let mut parked_total = 0u64;
        let mut parked_peak = 0u64;
        let mut hint_peak = vec![0u64; shards];
        let mut commits_batched = vec![0u64; shards];
        let mut aborts_batched = vec![0u64; shards];
        let mut first_rejection: Option<ServeError> = None;
        let mut admitted = 0u64;
        let mut completed: Vec<(Class, bool, u64)> = Vec::new();
        let mut rollbacks = 0u64;
        let mut cross_admitted = 0u64;
        let mut ht_value_sum = 0u64;

        // Durability bookkeeping.
        let mut rec_report = RecoveryReport::default();
        // Shards inside their crash-recovery window reject admissions.
        let mut down = vec![false; shards];
        // `(rounds left in the window, the batch the dead worker held)`.
        let mut recovering: Vec<Option<(u64, Vec<QEntry>)>> = (0..shards).map(|_| None).collect();
        // A recovered batch whose report folds into the current round.
        let mut prefilled: Vec<Option<(Vec<QEntry>, BatchReport)>> =
            (0..shards).map(|_| None).collect();
        // Next engine batch sequence each shard expects (engines start
        // at 1); lets recovery tell a durable batch from a torn one.
        let mut dispatch_seq = vec![1u64; shards];

        let fail =
            |pool: Pool, e: ServeError| -> Result<(ServeReport, RecoveryReport), ServeError> {
                pool.shutdown();
                Err(e)
            };

        loop {
            rounds += 1;
            if rounds > cfg.max_rounds {
                return fail(pool, ServeError::Stalled { rounds });
            }

            // 0. Progress crash-recovery windows: a shard whose window
            //    has elapsed is rebuilt from its WAL now, and the batch
            //    its dead worker held folds into this round.
            for s in 0..shards {
                let due = match &mut recovering[s] {
                    Some((left, _)) if *left > 0 => {
                        *left -= 1;
                        false
                    }
                    Some(_) => true,
                    None => false,
                };
                if due {
                    let (_, entries) = recovering[s].take().expect("due shard is recovering");
                    let div_before = rec_report.diverged.len();
                    match recover_shard(
                        &pool,
                        workers,
                        cfg,
                        s,
                        dispatch_seq[s],
                        &entries,
                        &mut groups,
                        &mut rec_report,
                    ) {
                        Ok(report) => prefilled[s] = Some((entries, report)),
                        Err(e) => return fail(pool, e),
                    }
                    for d in rec_report.diverged[div_before..].iter().copied() {
                        obs.on_diverged(s, rounds, epoch, d.replica as u64);
                    }
                    obs.on_recovered(s, rounds, epoch);
                    down[s] = false;
                }
            }

            // 1. Re-offer parked requests (they arrived first, so they
            //    go ahead of the round's new arrivals), then admit
            //    everything that has arrived by the current epoch. With
            //    blocking admission, an `Overloaded` outcome parks the
            //    request at the back of the wait FIFO instead of
            //    rejecting it.
            let mut offers: Vec<(Request, bool)> =
                parked.drain(..).map(|(r, _)| (r, true)).collect();
            while next_arr < requests.len() && requests[next_arr].arrival <= epoch {
                offers.push((requests[next_arr], false));
                next_arr += 1;
            }
            for (r, was_parked) in offers {
                match adm.try_admit(&r, &cost, &storm, &down) {
                    Ok(class) => {
                        admitted += 1;
                        if class == Class::BankCross {
                            cross_admitted += 1;
                            inflight.insert(
                                r.id,
                                match r.op {
                                    Op::Transfer { from, to, amount } => {
                                        let (ds, cs) = r.op.shards(shards, cfg.seed);
                                        Pending2pc {
                                            from,
                                            to,
                                            amount,
                                            arrival: r.arrival,
                                            debit_shard: ds,
                                            credit_shard: cs.expect("cross-shard"),
                                            debit_vote: None,
                                            credit_vote: None,
                                            resolved: false,
                                        }
                                    }
                                    _ => unreachable!("BankCross is always a transfer"),
                                },
                            );
                        }
                    }
                    Err(ServeError::Overloaded { shard, .. }) if cfg.blocking => {
                        if !was_parked {
                            parks[shard] += 1;
                            parked_total += 1;
                            obs.on_park(shard);
                        }
                        parked.push_back((r, shard));
                    }
                    Err(e) => {
                        match e {
                            ServeError::Overloaded { shard, retry_after, .. } => {
                                rejected[shard] += 1;
                                hint_peak[shard] = hint_peak[shard].max(retry_after);
                                obs.on_reject(shard, retry_after);
                            }
                            ServeError::ShardUnavailable { shard, retry_after } => {
                                rejected[shard] += 1;
                                hint_peak[shard] = hint_peak[shard].max(retry_after);
                                rec_report.unavailable_rejections += 1;
                                obs.on_reject(shard, retry_after);
                            }
                            _ => {}
                        }
                        first_rejection.get_or_insert(e);
                    }
                }
            }
            for (peak, queue) in queue_peak.iter_mut().zip(&adm.queues) {
                *peak = (*peak).max(queue.len());
            }
            parked_peak = parked_peak.max(parked.len() as u64);
            let mut parked_depth = vec![0u64; shards];
            for &(_, s) in &parked {
                parked_depth[s] += 1;
            }
            for s in 0..shards {
                parked_depth_peak[s] = parked_depth_peak[s].max(parked_depth[s]);
                obs.on_park_depth(s, parked_depth[s], rounds, epoch);
            }

            // 2. Seal one batch per shard. Down shards hold their
            //    queues; a prefilled shard's batch for this round is
            //    the one its recovery just resolved.
            let mut sealed: Vec<Vec<QEntry>> = (0..shards)
                .map(|s| {
                    if down[s] || prefilled[s].is_some() {
                        Vec::new()
                    } else {
                        adm.seal(s, batch_cap)
                    }
                })
                .collect();
            let dispatched: Vec<usize> = (0..shards).filter(|&s| !sealed[s].is_empty()).collect();

            if dispatched.is_empty() && prefilled.iter().all(|p| p.is_none()) {
                if recovering.iter().any(|r| r.is_some()) {
                    continue; // burn a round of the recovery window
                }
                if next_arr >= requests.len()
                    && inflight.is_empty()
                    && adm.idle()
                    && parked.is_empty()
                {
                    break; // drained
                }
                if next_arr < requests.len() {
                    // Idle: jump the epoch clock to the next arrival.
                    epoch = epoch.max(requests[next_arr].arrival);
                    obs.roll_to(epoch);
                    continue;
                }
                return fail(pool, ServeError::Stalled { rounds });
            }

            // 3. Dispatch and barrier. An injected crash surfaces here
            //    as a `Crashed` message in place of the batch report.
            for &s in &dispatched {
                let entries: Vec<Entry> =
                    sealed[s].iter().map(|q| Entry { req: q.req, op: q.op }).collect();
                if let Err(e) = pool.send(s % workers, ToWorker::Run { shard: s, entries }) {
                    return fail(pool, e);
                }
            }
            let mut reports: Vec<Option<BatchReport>> = vec![None; shards];
            let mut feeds: Vec<Option<Feed>> = (0..shards).map(|_| None).collect();
            let mut crashed: Vec<usize> = Vec::new();
            for _ in 0..dispatched.len() {
                match pool.results.recv() {
                    Ok(FromWorker::Batch { shard, report, feed }) => {
                        reports[shard] = Some(report);
                        feeds[shard] = feed.map(|b| *b);
                    }
                    Ok(FromWorker::Crashed { shard }) => crashed.push(shard),
                    Ok(FromWorker::Fatal { shard, message }) => {
                        return fail(pool, ServeError::Engine { shard, message });
                    }
                    Ok(_) => {}
                    Err(_) => {
                        return fail(
                            pool,
                            ServeError::Engine { shard: 0, message: "worker pool died".into() },
                        );
                    }
                }
            }
            crashed.sort_unstable();

            // 3b. Crashed shards: recover synchronously inside this
            //     round (recovery_rounds = 0, keeps the report
            //     byte-identical to an uncrashed run) or open an
            //     unavailability window and hold the batch.
            for &s in &crashed {
                // Cut the crash bundle off the coordinator's view: the
                // WAL position the shard must resume at and the store
                // fingerprint at the moment of death.
                let store_fnv =
                    store_opt.as_ref().map(|st| store_fingerprint(st).0).unwrap_or_default();
                let replicas_up = groups[s].as_ref().is_some_and(|g| g.healthy() > 0);
                obs.on_crash(
                    s,
                    rounds,
                    epoch,
                    dispatch_seq[s],
                    store_fnv,
                    dur_cfg.recovery_rounds,
                    replicas_up,
                );
                if dur_cfg.recovery_rounds == 0 {
                    let div_before = rec_report.diverged.len();
                    match recover_shard(
                        &pool,
                        workers,
                        cfg,
                        s,
                        dispatch_seq[s],
                        &sealed[s],
                        &mut groups,
                        &mut rec_report,
                    ) {
                        Ok(report) => reports[s] = Some(report),
                        Err(e) => return fail(pool, e),
                    }
                    for d in rec_report.diverged[div_before..].iter().copied() {
                        obs.on_diverged(s, rounds, epoch, d.replica as u64);
                    }
                } else {
                    down[s] = true;
                    recovering[s] = Some((dur_cfg.recovery_rounds, std::mem::take(&mut sealed[s])));
                }
            }

            // 4. Advance virtual time by the slowest shard of the round
            //    (shards execute concurrently in virtual time) and fold
            //    outcomes back in deterministic shard order. A shard's
            //    fold comes from its recovered prefill or its report;
            //    a shard that just went down contributes neither.
            let mut folds: Vec<(usize, Vec<QEntry>, BatchReport)> = Vec::new();
            for s in 0..shards {
                if let Some((entries, report)) = prefilled[s].take() {
                    folds.push((s, entries, report));
                } else if let Some(report) = reports[s].take() {
                    folds.push((s, std::mem::take(&mut sealed[s]), report));
                }
            }
            let quantum = folds.iter().map(|(_, _, r)| r.cycles).max().unwrap_or(0);
            epoch += quantum.max(1);
            obs.roll_to(epoch);

            for (s, entries, mut report) in folds {
                dispatch_seq[s] += 1;
                if let (Some(g), Some(f)) = (groups[s].as_mut(), feeds[s].take()) {
                    g.ingest(&f.0);
                    let div = g.check_epoch(&f.1);
                    for d in &div {
                        obs.on_diverged(s, rounds, epoch, d.replica as u64);
                    }
                    rec_report.diverged.extend(div);
                }
                cost[s] = (report.cycles / entries.len().max(1) as u64).max(1);
                storm[s] = report.storm;
                if report.storm {
                    storm_rounds[s] += 1;
                }
                commits_batched[s] += report.commits;
                aborts_batched[s] += report.aborts;
                obs.on_gauges(s, adm.queues[s].len() as u64, cost[s]);
                obs.on_batch(s, rounds, epoch, &mut report);
                for (q, out) in entries.iter().zip(&report.outcomes) {
                    match q.op {
                        ShardOp::PrepareDebit { .. } => {
                            if let Some(p) = inflight.get_mut(&q.req) {
                                p.debit_vote = Some(out.ok);
                            }
                        }
                        ShardOp::PrepareCredit { .. } => {
                            if let Some(p) = inflight.get_mut(&q.req) {
                                p.credit_vote = Some(out.ok);
                            }
                        }
                        ShardOp::ApplyCredit { .. } => {
                            let p = inflight.remove(&q.req).expect("apply without 2pc record");
                            completed.push((Class::BankCross, true, epoch - p.arrival));
                        }
                        ShardOp::RollbackDebit { .. } => {
                            let p = inflight.remove(&q.req).expect("rollback without 2pc record");
                            completed.push((Class::BankCross, false, epoch - p.arrival));
                            rollbacks += 1;
                        }
                        _ => {
                            if matches!(q.op, ShardOp::HtGet { .. }) && out.ok {
                                ht_value_sum += out.value as u64;
                            }
                            completed.push((q.class, out.ok, epoch - q.arrival));
                        }
                    }
                }
                hint_peak[s] =
                    hint_peak[s].max(retry_after_hint(adm.queues[s].len(), cost[s], storm[s]));
            }

            // 5. Resolve 2PC records with both votes in (BTreeMap order
            //    keeps this deterministic). Phase-2 entries bypass the
            //    admission bound: they release held resources.
            let ready: Vec<u64> = inflight
                .iter()
                .filter(|(_, p)| !p.resolved && p.debit_vote.is_some() && p.credit_vote.is_some())
                .map(|(&id, _)| id)
                .collect();
            for id in ready {
                let p = inflight.get_mut(&id).expect("just listed");
                let debit = p.debit_vote.expect("filtered");
                let credit = p.credit_vote.expect("filtered");
                match (debit, credit) {
                    (true, true) => {
                        p.resolved = true;
                        // Log the decision before phase 2 can touch any
                        // shard: a crash between them leaves a hold that
                        // cold recovery resolves from this record.
                        if let Some(store) = &store_opt {
                            append_decision(store, id, true);
                        }
                        let (to, amount, arrival, cs) = (p.to, p.amount, p.arrival, p.credit_shard);
                        adm.phase2[cs].push_back(QEntry {
                            req: id,
                            arrival,
                            op: ShardOp::ApplyCredit { to, amount },
                            class: Class::BankCross,
                        });
                    }
                    (true, false) => {
                        p.resolved = true;
                        if let Some(store) = &store_opt {
                            append_decision(store, id, false);
                        }
                        let (from, amount, arrival, ds) =
                            (p.from, p.amount, p.arrival, p.debit_shard);
                        adm.phase2[ds].push_back(QEntry {
                            req: id,
                            arrival,
                            op: ShardOp::RollbackDebit { from, amount },
                            class: Class::BankCross,
                        });
                    }
                    (false, _) => {
                        // No hold was applied; the transfer just fails.
                        let arrival = p.arrival;
                        inflight.remove(&id);
                        completed.push((Class::BankCross, false, epoch - arrival));
                    }
                }
            }
        }

        // Drain complete: collect per-shard summaries.
        for s in 0..shards {
            if let Err(e) = pool.send(s % workers, ToWorker::Finish { shard: s }) {
                return fail(pool, e);
            }
        }
        let mut summaries: Vec<Option<ShardSummary>> = (0..shards).map(|_| None).collect();
        let mut got = 0usize;
        while got < shards {
            match pool.results.recv() {
                Ok(FromWorker::Summary { shard, summary }) => {
                    summaries[shard] = Some(*summary);
                    got += 1;
                }
                Ok(FromWorker::Fatal { shard, message }) => {
                    return fail(pool, ServeError::Engine { shard, message });
                }
                Ok(_) => {}
                Err(_) => {
                    return fail(
                        pool,
                        ServeError::Engine { shard: 0, message: "worker pool died".into() },
                    );
                }
            }
        }
        pool.shutdown();
        let wall_seconds = wall_start.elapsed().as_secs_f64();

        // Finalize the durability report: replica census, then the
        // store fingerprint (taken after every worker has joined, so
        // all WAL writes are in).
        rec_report.replicas_per_shard =
            groups.iter().flatten().map(|g| g.total() as u64).max().unwrap_or(0);
        rec_report.replicas_healthy = groups.iter().flatten().map(|g| g.healthy() as u64).sum();
        if let Some(store) = &store_opt {
            let (fnv, bytes) = store_fingerprint(store);
            rec_report.store_fnv = fnv;
            rec_report.store_bytes = bytes;
        }

        let summaries: Vec<ShardSummary> =
            summaries.into_iter().map(|s| s.expect("collected all")).collect();
        for (s, sum) in summaries.iter().enumerate() {
            obs.on_violations(s, rounds, epoch, sum.violations.len() as u64);
        }

        let offered = requests.len() as u64;
        let rejected_total: u64 = rejected.iter().sum();
        assert_eq!(
            completed.len() as u64,
            admitted,
            "every admitted request must complete exactly once (no loss, no duplication)"
        );

        // Conservation: money only moves between accounts; every shard
        // funds its owned keys with `initial_balance`.
        let balance_total: u64 = summaries.iter().map(|s| s.balance_sum).sum();
        let conserved = balance_total == cfg.accounts as u64 * cfg.initial_balance as u64;
        let txl_done = completed.iter().filter(|(c, ok, _)| *c == Class::Txl && *ok).count() as u64;
        let txl_total: u64 = summaries.iter().map(|s| s.txl_sum).sum();
        let txl_consistent = txl_done == txl_total;

        let mut latencies: Vec<u64> = completed.iter().map(|&(_, _, l)| l).collect();
        latencies.sort_unstable();
        let classes = ClassTotals {
            bank_local: completed.iter().filter(|(c, ..)| *c == Class::BankLocal).count() as u64,
            bank_cross: completed.iter().filter(|(c, ..)| *c == Class::BankCross).count() as u64,
            ht: completed.iter().filter(|(c, ..)| *c == Class::Ht).count() as u64,
            txl: completed.iter().filter(|(c, ..)| *c == Class::Txl).count() as u64,
        };
        let business_failed = completed.iter().filter(|(_, ok, _)| !ok).count() as u64;

        let shard_reports: Vec<ShardReport> = summaries
            .iter()
            .enumerate()
            .map(|(s, sum)| ShardReport {
                shard: s,
                stm_name: sum.stm_name.clone(),
                commits: sum.tx.commits,
                aborts: sum.tx.aborts,
                read_only: sum.read_only as u64,
                writers: sum.writers as u64,
                launches: sum.launches,
                sim_cycles: sum.sim_cycles,
                instructions: sum.sim.instructions,
                balance_sum: sum.balance_sum,
                txl_sum: sum.txl_sum,
                rejected: rejected[s],
                parked: parks[s],
                parked_depth_peak: parked_depth_peak[s],
                queue_peak: queue_peak[s] as u64,
                storm_rounds: storm_rounds[s],
                retry_hint_peak: hint_peak[s],
                retry_hint_final: retry_after_hint(0, cost[s], false),
                history_fnv: sum.history_fnv,
                commit_log_fnv: sum.commit_log_fnv,
                retry_after: obs.retry_after(s).clone(),
                violations: sum.violations.clone(),
            })
            .collect();
        let violations_total = shard_reports.iter().map(|r| r.violations.len()).sum();

        let report = ServeReport {
            variant: cfg.variant.short_name().to_string(),
            mode: cfg.mode.short_name().to_string(),
            shards: shards as u64,
            workers: workers as u64,
            seed: cfg.seed,
            queue_capacity: cfg.queue_capacity as u64,
            batch_capacity: batch_cap as u64,
            offered,
            admitted,
            rejected: rejected_total,
            parked: parked_total,
            parked_peak,
            completed: completed.len() as u64,
            business_failed,
            cross_shard: cross_admitted,
            rollbacks,
            classes,
            ht_get_value_sum: ht_value_sum,
            rounds,
            virtual_cycles: epoch,
            latencies,
            conserved,
            txl_consistent,
            violations_total,
            first_rejection,
            shard_reports,
            obs: obs.report(epoch),
            wall_seconds,
        };
        rec_report.incidents = obs.recovery_incidents();
        rec_report.bundles = obs.recovery_bundles();
        Ok((report, rec_report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, op: Op) -> Request {
        Request { id, arrival: id + 1, op }
    }

    #[test]
    fn try_admit_reports_structured_overload() {
        let shards = 1;
        let mut adm = Admission::new(shards, 2, 7);
        let cost = vec![100u64];
        let storm = vec![false];
        let down = vec![false];
        for i in 0..2 {
            adm.try_admit(&req(i, Op::TxlBump { key: i as u32 }), &cost, &storm, &down).unwrap();
        }
        let err = adm.try_admit(&req(9, Op::TxlBump { key: 0 }), &cost, &storm, &down).unwrap_err();
        match err {
            ServeError::Overloaded { shard, queue_len, capacity, retry_after } => {
                assert_eq!(shard, 0);
                assert_eq!(queue_len, 2);
                assert_eq!(capacity, 2);
                assert_eq!(retry_after, retry_after_hint(2, 100, false));
            }
            other => panic!("expected Overloaded, got {other}"),
        }
    }

    #[test]
    fn storm_inflates_and_clearing_shrinks_the_hint() {
        let calm = retry_after_hint(4, 200, false);
        let stormy = retry_after_hint(4, 200, true);
        assert_eq!(stormy, calm * 4);
        assert!(retry_after_hint(0, 200, false) < stormy);
    }

    #[test]
    fn cross_shard_admission_is_atomic() {
        // Find a cross-shard pair under seed 7 with 2 shards.
        let seed = 7;
        let (from, to) = (0..64)
            .flat_map(|a| (0..64).map(move |b| (a, b)))
            .find(|&(a, b)| {
                a != b && crate::route(a, 2, seed) == 0 && crate::route(b, 2, seed) == 1
            })
            .expect("some cross pair exists");
        let mut adm = Admission::new(2, 1, seed);
        let cost = vec![10u64; 2];
        let storm = vec![false; 2];
        let down = vec![false; 2];
        // Fill the credit shard's queue.
        let filler = (0..64).find(|&k| crate::route(k, 2, seed) == 1).unwrap();
        adm.try_admit(&req(0, Op::TxlBump { key: filler }), &cost, &storm, &down).unwrap();
        // The cross-shard transfer must be rejected whole: debit queue
        // stays empty rather than holding an orphaned prepare.
        let err = adm
            .try_admit(&req(1, Op::Transfer { from, to, amount: 1 }), &cost, &storm, &down)
            .unwrap_err();
        assert!(matches!(err, ServeError::Overloaded { shard: 1, .. }));
        assert!(adm.queues[0].is_empty());
    }

    #[test]
    fn seal_prefers_phase2() {
        let mut adm = Admission::new(1, 8, 1);
        let cost = vec![10u64];
        let storm = vec![false];
        let down = vec![false];
        adm.try_admit(&req(0, Op::TxlBump { key: 0 }), &cost, &storm, &down).unwrap();
        adm.phase2[0].push_back(QEntry {
            req: 99,
            arrival: 0,
            op: ShardOp::ApplyCredit { to: 1, amount: 2 },
            class: Class::BankCross,
        });
        let sealed = adm.seal(0, 8);
        assert_eq!(sealed[0].req, 99);
        assert_eq!(sealed[1].req, 0);
    }

    #[test]
    fn small_end_to_end_run_drains_and_checks() {
        let cfg = ServeConfig {
            shards: 2,
            mix: MixConfig { requests: 96, ..MixConfig::mixed() },
            accounts: 64,
            table_words: 512,
            txl_words: 16,
            n_locks: 1 << 10,
            ..ServeConfig::default()
        };
        let report = Service::run(&cfg).unwrap();
        assert_eq!(report.completed, report.admitted);
        assert!(report.conserved, "bank balance not conserved");
        assert!(report.txl_consistent, "txl counters disagree with completions");
        assert_eq!(report.violations_total, 0);
        assert!(report.virtual_cycles > 0);
    }
}
