//! Microbenchmarks of the simulator's primitives: how fast the host
//! simulates coalesced vs. strided memory traffic, contended vs.
//! uncontended atomics, and warp scheduling at various occupancies.
//!
//! Self-contained harness (`harness = false`): the container builds
//! offline, so this measures with `std::time::Instant` instead of an
//! external benchmarking crate. Run with `cargo bench -p gpu-sim`.

use gpu_sim::{LaunchConfig, Sim, SimConfig};
use std::time::Instant;

/// Times `f` over `iters` runs and prints min / mean host time.
fn bench(group: &str, name: &str, iters: u32, mut f: impl FnMut()) {
    f(); // warm-up
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed());
    }
    let min = samples.iter().min().unwrap();
    let mean = samples.iter().sum::<std::time::Duration>() / iters;
    println!("{group}/{name:<12} min {:>10.1?}  mean {:>10.1?}  ({iters} iters)", min, mean);
}

fn bench_memory() {
    for (name, stride) in [("coalesced", 1u32), ("strided", 32u32)] {
        bench("sim_memory", name, 20, || {
            let mut sim = Sim::new(SimConfig::with_memory(1 << 20));
            let buf = sim.alloc(32 * 32 * stride).unwrap();
            sim.launch(LaunchConfig::new(4, 64), move |ctx| async move {
                let mask = ctx.id().launch_mask;
                for round in 0..8u32 {
                    let addrs = std::array::from_fn(|l| {
                        buf.offset((l as u32 * stride + round * 32) % (32 * 32 * stride))
                    });
                    let _ = ctx.load(mask, &addrs).await;
                }
            })
            .unwrap();
        });
    }
}

fn bench_atomics() {
    for (name, n_words) in [("contended", 1u32), ("spread", 1024u32)] {
        let n = n_words;
        bench("sim_atomics", name, 20, || {
            let mut sim = Sim::new(SimConfig::with_memory(1 << 16));
            let buf = sim.alloc(n).unwrap();
            sim.launch(LaunchConfig::new(4, 64), move |ctx| async move {
                let mask = ctx.id().launch_mask;
                for _ in 0..8u32 {
                    let addrs = std::array::from_fn(|l| buf.offset(l as u32 % n));
                    let ones = [1u32; 32];
                    let _ = ctx.atomic_rmw(mask, gpu_sim::AtomicOp::Add, &addrs, &ones).await;
                }
            })
            .unwrap();
        });
    }
}

fn bench_occupancy() {
    for warps in [16u32, 256, 1024] {
        let blocks = warps / 4;
        bench("sim_occupancy", &warps.to_string(), 10, || {
            let mut sim = Sim::new(SimConfig::with_memory(1 << 16));
            let counter = sim.alloc(64).unwrap();
            sim.launch(LaunchConfig::new(blocks.max(1), 128), move |ctx| async move {
                let mask = ctx.id().launch_mask;
                for i in 0..4u32 {
                    ctx.atomic_add_uniform(mask, counter.offset(ctx.id().block % 64), i).await;
                }
            })
            .unwrap();
        });
    }
}

fn main() {
    bench_memory();
    bench_atomics();
    bench_occupancy();
}
