//! Criterion microbenchmarks of the simulator's primitives: how fast the
//! host simulates coalesced vs. strided memory traffic, contended vs.
//! uncontended atomics, and warp scheduling at various occupancies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{LaunchConfig, Sim, SimConfig};

fn bench_memory(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_memory");
    g.sample_size(20);
    for (name, stride) in [("coalesced", 1u32), ("strided", 32u32)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &stride, |b, stride| {
            let stride = *stride;
            b.iter(|| {
                let mut sim = Sim::new(SimConfig::with_memory(1 << 20));
                let buf = sim.alloc(32 * 32 * stride).unwrap();
                sim.launch(LaunchConfig::new(4, 64), move |ctx| async move {
                    let mask = ctx.id().launch_mask;
                    for round in 0..8u32 {
                        let addrs = std::array::from_fn(|l| {
                            buf.offset((l as u32 * stride + round * 32) % (32 * 32 * stride))
                        });
                        let _ = ctx.load(mask, &addrs).await;
                    }
                })
                .unwrap()
            });
        });
    }
    g.finish();
}

fn bench_atomics(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_atomics");
    g.sample_size(20);
    for (name, n_words) in [("contended", 1u32), ("spread", 1024u32)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &n_words, |b, n| {
            let n = *n;
            b.iter(|| {
                let mut sim = Sim::new(SimConfig::with_memory(1 << 16));
                let buf = sim.alloc(n).unwrap();
                sim.launch(LaunchConfig::new(4, 64), move |ctx| async move {
                    let mask = ctx.id().launch_mask;
                    for _ in 0..8u32 {
                        let addrs = std::array::from_fn(|l| buf.offset(l as u32 % n));
                        let ones = [1u32; 32];
                        let _ = ctx
                            .atomic_rmw(mask, gpu_sim::AtomicOp::Add, &addrs, &ones)
                            .await;
                    }
                })
                .unwrap()
            });
        });
    }
    g.finish();
}

fn bench_occupancy(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_occupancy");
    g.sample_size(20);
    for warps in [16u32, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(warps), &warps, |b, warps| {
            let blocks = *warps / 4;
            b.iter(|| {
                let mut sim = Sim::new(SimConfig::with_memory(1 << 16));
                let counter = sim.alloc(64).unwrap();
                sim.launch(LaunchConfig::new(blocks.max(1), 128), move |ctx| async move {
                    let mask = ctx.id().launch_mask;
                    for i in 0..4u32 {
                        ctx.atomic_add_uniform(
                            mask,
                            counter.offset(ctx.id().block % 64),
                            i,
                        )
                        .await;
                    }
                })
                .unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(primitives, bench_memory, bench_atomics, bench_occupancy);
criterion_main!(primitives);
