//! Memory-access coalescing model.
//!
//! GPU load/store units merge the 32 lane addresses of a warp instruction
//! into as few 128-byte memory transactions as possible: consecutive
//! accesses that fall in the same 128-byte segment become a single
//! transaction (Section 2.1 of the paper). GPU-STM's coalesced
//! read-/write-set organisation exists precisely to keep this number low.
//!
//! This module computes, for a masked warp access, the distinct segments
//! touched — the number of memory transactions the instruction issues.

use crate::mask::{LaneMask, WARP_SIZE};
use crate::memory::Addr;

/// Words per coalescing segment: 128 bytes = 32 × 4-byte words.
pub const SEGMENT_WORDS: u32 = 32;

/// Result of coalescing one warp-wide access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coalesced {
    /// Distinct 128-byte segments touched, in first-touch order.
    pub segments: Vec<u32>,
}

impl Coalesced {
    /// Number of memory transactions this access costs.
    pub fn transactions(&self) -> u32 {
        self.segments.len() as u32
    }
}

/// Coalesces the addresses of the active lanes of one warp instruction.
///
/// Returns the distinct segments in the order first touched by ascending
/// lane id (the order the hardware's address-divergence serialiser would
/// replay them).
///
/// # Examples
///
/// ```
/// use gpu_sim::{coalesce::coalesce, Addr, LaneMask};
///
/// // 32 consecutive words starting at a segment boundary: one transaction.
/// let mut addrs = [Addr(0); 32];
/// for (i, a) in addrs.iter_mut().enumerate() {
///     *a = Addr(64 + i as u32);
/// }
/// assert_eq!(coalesce(LaneMask::FULL, &addrs).transactions(), 1);
/// ```
pub fn coalesce(mask: LaneMask, addrs: &[Addr; WARP_SIZE]) -> Coalesced {
    let mut segments: Vec<u32> = Vec::with_capacity(4);
    for lane in mask.iter() {
        let seg = addrs[lane].segment();
        if !segments.contains(&seg) {
            segments.push(seg);
        }
    }
    Coalesced { segments }
}

/// Coalesces a single-address access (every active lane hits `addr`).
///
/// GPU hardware broadcasts such accesses in one transaction; atomics to the
/// same word instead serialise, which the timing model charges separately.
pub fn coalesce_uniform(mask: LaneMask, addr: Addr) -> Coalesced {
    if mask.none() {
        Coalesced { segments: Vec::new() }
    } else {
        Coalesced { segments: vec![addr.segment()] }
    }
}

/// Counts, for an atomic warp instruction, how many lanes target each
/// distinct word. Same-word atomics serialise in hardware; the worst-case
/// depth (max lanes on one word) bounds the serialisation latency.
pub fn atomic_conflict_depth(mask: LaneMask, addrs: &[Addr; WARP_SIZE]) -> u32 {
    let mut seen: Vec<(Addr, u32)> = Vec::with_capacity(8);
    let mut depth = 0;
    for lane in mask.iter() {
        let a = addrs[lane];
        match seen.iter_mut().find(|(sa, _)| *sa == a) {
            Some((_, n)) => *n += 1,
            None => seen.push((a, 1)),
        }
    }
    for (_, n) in &seen {
        depth = depth.max(*n);
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs_from(f: impl Fn(u32) -> u32) -> [Addr; WARP_SIZE] {
        std::array::from_fn(|i| Addr(f(i as u32)))
    }

    #[test]
    fn consecutive_words_coalesce_to_one() {
        let addrs = addrs_from(|i| 128 + i);
        let c = coalesce(LaneMask::FULL, &addrs);
        assert_eq!(c.transactions(), 1);
        assert_eq!(c.segments, vec![4]);
    }

    #[test]
    fn strided_access_explodes() {
        // Stride of one segment per lane: 32 transactions.
        let addrs = addrs_from(|i| i * SEGMENT_WORDS);
        assert_eq!(coalesce(LaneMask::FULL, &addrs).transactions(), 32);
    }

    #[test]
    fn unaligned_but_contiguous_spans_two() {
        let addrs = addrs_from(|i| 16 + i); // crosses a segment boundary
        assert_eq!(coalesce(LaneMask::FULL, &addrs).transactions(), 2);
    }

    #[test]
    fn mask_restricts_lanes() {
        let addrs = addrs_from(|i| i * SEGMENT_WORDS);
        let m = LaneMask::first_n(4);
        assert_eq!(coalesce(m, &addrs).transactions(), 4);
        assert_eq!(coalesce(LaneMask::EMPTY, &addrs).transactions(), 0);
    }

    #[test]
    fn duplicate_segments_merge() {
        let addrs = addrs_from(|i| (i % 2) * SEGMENT_WORDS);
        let c = coalesce(LaneMask::FULL, &addrs);
        assert_eq!(c.transactions(), 2);
        // First-touch order: lane 0 touches segment 0 first.
        assert_eq!(c.segments, vec![0, 1]);
    }

    #[test]
    fn uniform_access_is_single_transaction() {
        assert_eq!(coalesce_uniform(LaneMask::FULL, Addr(77)).transactions(), 1);
        assert_eq!(coalesce_uniform(LaneMask::EMPTY, Addr(77)).transactions(), 0);
    }

    #[test]
    fn conflict_depth_counts_same_word_lanes() {
        let addrs = addrs_from(|i| if i < 8 { 5 } else { 100 + i });
        assert_eq!(atomic_conflict_depth(LaneMask::FULL, &addrs), 8);
        assert_eq!(atomic_conflict_depth(LaneMask::EMPTY, &addrs), 0);
        let distinct = addrs_from(|i| i);
        assert_eq!(atomic_conflict_depth(LaneMask::FULL, &distinct), 1);
    }
}
