//! Deterministic per-lane random number generation.
//!
//! Workload kernels need per-thread random streams (e.g. the random-array
//! micro-benchmark picks random indices per transaction). [`WarpRng`] keeps
//! one xorshift state per lane, seeded from a splitmix64 hash of
//! `(seed, thread_id)`, so every run of a given seed is bit-identical —
//! a property the evaluation harness relies on.

use crate::mask::WARP_SIZE;

/// One independent xorshift32 stream per lane of a warp.
#[derive(Clone, Debug)]
pub struct WarpRng {
    states: [u32; WARP_SIZE],
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl WarpRng {
    /// Creates per-lane streams for a warp whose lane `l` has global thread
    /// id `base_tid + l`.
    pub fn new(seed: u64, base_tid: u32) -> Self {
        let states = std::array::from_fn(|l| {
            let mixed = splitmix64(seed ^ splitmix64(base_tid as u64 + l as u64));
            // xorshift32 state must be nonzero.
            (mixed as u32) | 1
        });
        WarpRng { states }
    }

    /// Next 32-bit value for `lane`.
    #[inline]
    pub fn next_u32(&mut self, lane: usize) -> u32 {
        let mut x = self.states[lane];
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.states[lane] = x;
        x
    }

    /// Uniform value in `0..n` for `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, lane: usize, n: u32) -> u32 {
        assert!(n > 0, "range must be nonempty");
        // Multiply-shift range reduction (Lemire); slight bias is fine for
        // workload generation.
        ((self.next_u32(lane) as u64 * n as u64) >> 32) as u32
    }

    /// Bernoulli draw with probability `num/den` for `lane`.
    #[inline]
    pub fn chance(&mut self, lane: usize, num: u32, den: u32) -> bool {
        self.below(lane, den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = WarpRng::new(7, 32);
        let mut b = WarpRng::new(7, 32);
        for lane in 0..WARP_SIZE {
            assert_eq!(a.next_u32(lane), b.next_u32(lane));
        }
    }

    #[test]
    fn lanes_differ() {
        let mut r = WarpRng::new(1, 0);
        let v0 = r.next_u32(0);
        let v1 = r.next_u32(1);
        assert_ne!(v0, v1);
    }

    #[test]
    fn seeds_differ() {
        let mut a = WarpRng::new(1, 0);
        let mut b = WarpRng::new(2, 0);
        assert_ne!(a.next_u32(0), b.next_u32(0));
    }

    #[test]
    fn below_in_range() {
        let mut r = WarpRng::new(42, 64);
        for i in 0..1000 {
            let v = r.below(i % WARP_SIZE, 10);
            assert!(v < 10);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = WarpRng::new(3, 0);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.below(0, 8) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn below_zero_panics() {
        WarpRng::new(0, 0).below(0, 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = WarpRng::new(5, 0);
        assert!(!r.chance(0, 0, 10));
        assert!(r.chance(0, 10, 10));
    }
}
