//! Lane masks: the fundamental SIMT activity predicate.
//!
//! A warp executes one instruction for all of its 32 lanes in lockstep; a
//! [`LaneMask`] records which lanes participate. All warp-wide operations in
//! this crate take a mask, mirroring how real SIMT hardware masks off lanes
//! on divergence.

use std::fmt;

/// Number of lanes in a warp (matches NVIDIA hardware and the paper).
pub const WARP_SIZE: usize = 32;

/// A set of active lanes within a warp, one bit per lane.
///
/// # Examples
///
/// ```
/// use gpu_sim::LaneMask;
///
/// let m = LaneMask::lane(0) | LaneMask::lane(3);
/// assert_eq!(m.count(), 2);
/// assert!(m.contains(3));
/// assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 3]);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct LaneMask(u32);

impl LaneMask {
    /// Mask with every lane active.
    pub const FULL: LaneMask = LaneMask(u32::MAX);
    /// Mask with no lane active.
    pub const EMPTY: LaneMask = LaneMask(0);

    /// Creates a mask from a raw 32-bit lane bitmap.
    #[inline]
    pub const fn from_bits(bits: u32) -> Self {
        LaneMask(bits)
    }

    /// Returns the raw lane bitmap.
    #[inline]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Mask containing only `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= WARP_SIZE`.
    #[inline]
    pub fn lane(lane: usize) -> Self {
        assert!(lane < WARP_SIZE, "lane {lane} out of range");
        LaneMask(1 << lane)
    }

    /// Mask of the first `n` lanes (lanes `0..n`).
    ///
    /// # Panics
    ///
    /// Panics if `n > WARP_SIZE`.
    #[inline]
    pub fn first_n(n: usize) -> Self {
        assert!(n <= WARP_SIZE, "lane count {n} out of range");
        if n == WARP_SIZE {
            LaneMask::FULL
        } else {
            LaneMask((1u32 << n) - 1)
        }
    }

    /// Whether any lane is active.
    #[inline]
    pub const fn any(self) -> bool {
        self.0 != 0
    }

    /// Whether no lane is active.
    #[inline]
    pub const fn none(self) -> bool {
        self.0 == 0
    }

    /// Whether all 32 lanes are active.
    #[inline]
    pub const fn all(self) -> bool {
        self.0 == u32::MAX
    }

    /// Number of active lanes (the SIMT "ballot population count").
    #[inline]
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether `lane` is active.
    #[inline]
    pub const fn contains(self, lane: usize) -> bool {
        self.0 & (1 << lane) != 0
    }

    /// Returns the mask with `lane` added.
    #[inline]
    pub fn with(self, lane: usize) -> Self {
        self | LaneMask::lane(lane)
    }

    /// Returns the mask with `lane` removed.
    #[inline]
    pub fn without(self, lane: usize) -> Self {
        self & !LaneMask::lane(lane)
    }

    /// Lowest active lane, if any (the conventional "warp leader").
    #[inline]
    pub fn leader(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Iterates over active lane indices in ascending order.
    #[inline]
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }

    /// Builds a mask from a per-lane predicate, restricted to `self`.
    ///
    /// This is the software analogue of a predicated SIMT branch: each active
    /// lane evaluates `pred` and the result is the sub-mask of lanes for
    /// which it held.
    #[inline]
    pub fn filter(self, mut pred: impl FnMut(usize) -> bool) -> Self {
        let mut out = 0u32;
        for lane in self.iter() {
            if pred(lane) {
                out |= 1 << lane;
            }
        }
        LaneMask(out)
    }
}

/// Iterator over the active lanes of a [`LaneMask`], produced by
/// [`LaneMask::iter`].
#[derive(Clone, Debug)]
pub struct Iter(u32);

impl Iterator for Iter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let lane = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(lane)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl IntoIterator for LaneMask {
    type Item = usize;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl std::ops::BitOr for LaneMask {
    type Output = LaneMask;
    #[inline]
    fn bitor(self, rhs: LaneMask) -> LaneMask {
        LaneMask(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for LaneMask {
    #[inline]
    fn bitor_assign(&mut self, rhs: LaneMask) {
        self.0 |= rhs.0;
    }
}

impl std::ops::BitAnd for LaneMask {
    type Output = LaneMask;
    #[inline]
    fn bitand(self, rhs: LaneMask) -> LaneMask {
        LaneMask(self.0 & rhs.0)
    }
}

impl std::ops::BitAndAssign for LaneMask {
    #[inline]
    fn bitand_assign(&mut self, rhs: LaneMask) {
        self.0 &= rhs.0;
    }
}

impl std::ops::BitXor for LaneMask {
    type Output = LaneMask;
    #[inline]
    fn bitxor(self, rhs: LaneMask) -> LaneMask {
        LaneMask(self.0 ^ rhs.0)
    }
}

impl std::ops::Not for LaneMask {
    type Output = LaneMask;
    #[inline]
    fn not(self) -> LaneMask {
        LaneMask(!self.0)
    }
}

impl fmt::Debug for LaneMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LaneMask({:#010x})", self.0)
    }
}

impl fmt::Display for LaneMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::Binary for LaneMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for LaneMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl FromIterator<usize> for LaneMask {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut m = LaneMask::EMPTY;
        for lane in iter {
            m |= LaneMask::lane(lane);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        assert!(LaneMask::EMPTY.none());
        assert!(!LaneMask::EMPTY.any());
        assert!(LaneMask::FULL.all());
        assert_eq!(LaneMask::FULL.count(), 32);
        assert_eq!(LaneMask::EMPTY.count(), 0);
    }

    #[test]
    fn single_lane() {
        let m = LaneMask::lane(7);
        assert!(m.contains(7));
        assert!(!m.contains(6));
        assert_eq!(m.count(), 1);
        assert_eq!(m.leader(), Some(7));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lane_out_of_range_panics() {
        let _ = LaneMask::lane(32);
    }

    #[test]
    fn first_n() {
        assert_eq!(LaneMask::first_n(0), LaneMask::EMPTY);
        assert_eq!(LaneMask::first_n(32), LaneMask::FULL);
        let m = LaneMask::first_n(5);
        assert_eq!(m.count(), 5);
        assert!(m.contains(4));
        assert!(!m.contains(5));
    }

    #[test]
    fn iter_ascending() {
        let m = LaneMask::lane(31) | LaneMask::lane(0) | LaneMask::lane(16);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 16, 31]);
        assert_eq!(m.iter().len(), 3);
    }

    #[test]
    fn bit_operations() {
        let a = LaneMask::first_n(4);
        let b = LaneMask::lane(3) | LaneMask::lane(10);
        assert_eq!((a & b).iter().collect::<Vec<_>>(), vec![3]);
        assert_eq!((a | b).count(), 5);
        assert_eq!((a ^ b).iter().collect::<Vec<_>>(), vec![0, 1, 2, 10]);
        assert!((!a).contains(10));
        assert!(!(!a).contains(2));
    }

    #[test]
    fn with_without() {
        let m = LaneMask::EMPTY.with(4).with(9).without(4);
        assert_eq!(m, LaneMask::lane(9));
    }

    #[test]
    fn filter_predicate() {
        let m = LaneMask::FULL.filter(|lane| lane % 2 == 0);
        assert_eq!(m.count(), 16);
        assert!(m.contains(0) && m.contains(30) && !m.contains(1));
    }

    #[test]
    fn leader_of_empty() {
        assert_eq!(LaneMask::EMPTY.leader(), None);
    }

    #[test]
    fn from_iterator() {
        let m: LaneMask = [1usize, 2, 2, 30].into_iter().collect();
        assert_eq!(m.count(), 3);
        assert!(m.contains(30));
    }

    #[test]
    fn display_and_debug_nonempty() {
        assert!(!format!("{:?}", LaneMask::EMPTY).is_empty());
        assert_eq!(format!("{}", LaneMask::lane(0)), "0x00000001");
    }
}
