//! Structured SIMT divergence helpers.
//!
//! Warp-synchronous code manipulates [`LaneMask`]s directly; these helpers
//! capture the common patterns — predicated branching with reconvergence
//! (the hardware's SIMT stack) and intra-warp serialisation (Scheme #2 of
//! the paper's Algorithm 1).

use crate::mask::LaneMask;

/// A software model of the hardware SIMT reconvergence stack.
///
/// `push` records the mask to restore at the reconvergence point; `pop`
/// reconverges. This mirrors how the hardware handles nested divergent
/// branches, and is what GPU-STM *cannot* touch from software — the reason
/// each transaction carries an explicit opacity flag (Section 3.2.2).
#[derive(Clone, Debug, Default)]
pub struct SimtStack {
    stack: Vec<LaneMask>,
}

impl SimtStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        SimtStack::default()
    }

    /// Current nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Enters a divergent branch: saves `reconverge` (the mask to restore)
    /// and returns the pair `(taken, not_taken)` of sub-masks for a
    /// predicate evaluated per lane.
    pub fn branch(&mut self, active: LaneMask, taken: LaneMask) -> (LaneMask, LaneMask) {
        self.stack.push(active);
        let t = active & taken;
        (t, active & !t)
    }

    /// Reconverges: restores the mask active before the matching
    /// [`branch`](Self::branch).
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty (unmatched reconvergence).
    pub fn reconverge(&mut self) -> LaneMask {
        self.stack.pop().expect("reconverge without matching branch")
    }
}

/// Iterator that yields one single-lane mask per active lane, in ascending
/// lane order — intra-warp serialisation, Scheme #2 of Algorithm 1.
///
/// # Examples
///
/// ```
/// use gpu_sim::{simt::serialize_lanes, LaneMask};
///
/// let turns: Vec<_> = serialize_lanes(LaneMask::first_n(3)).collect();
/// assert_eq!(turns.len(), 3);
/// assert_eq!(turns[1], LaneMask::lane(1));
/// ```
pub fn serialize_lanes(mask: LaneMask) -> impl Iterator<Item = LaneMask> {
    mask.iter().map(LaneMask::lane)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_splits_and_reconverges() {
        let mut st = SimtStack::new();
        let active = LaneMask::first_n(8);
        let pred = LaneMask::from_bits(0b1010_1010);
        let (t, e) = st.branch(active, pred);
        assert_eq!(t.bits(), 0b1010_1010 & 0xff);
        assert_eq!(e.bits(), 0b0101_0101);
        assert_eq!((t | e), active);
        assert_eq!((t & e), LaneMask::EMPTY);
        assert_eq!(st.depth(), 1);
        assert_eq!(st.reconverge(), active);
        assert_eq!(st.depth(), 0);
    }

    #[test]
    fn nested_branches() {
        let mut st = SimtStack::new();
        let (t1, _) = st.branch(LaneMask::FULL, LaneMask::first_n(16));
        let (t2, _) = st.branch(t1, LaneMask::first_n(4));
        assert_eq!(t2, LaneMask::first_n(4));
        assert_eq!(st.reconverge(), t1);
        assert_eq!(st.reconverge(), LaneMask::FULL);
    }

    #[test]
    #[should_panic(expected = "without matching branch")]
    fn unmatched_reconverge_panics() {
        SimtStack::new().reconverge();
    }

    #[test]
    fn serialization_order() {
        let m = LaneMask::lane(5) | LaneMask::lane(1) | LaneMask::lane(31);
        let turns: Vec<_> = serialize_lanes(m).collect();
        assert_eq!(turns, vec![LaneMask::lane(1), LaneMask::lane(5), LaneMask::lane(31)]);
    }

    #[test]
    fn serialize_empty_is_empty() {
        assert_eq!(serialize_lanes(LaneMask::EMPTY).count(), 0);
    }
}
