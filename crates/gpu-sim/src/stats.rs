//! Execution statistics collected by the simulator.

use crate::json::JsonWriter;

/// Counters accumulated over a kernel launch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Warp instructions issued (every awaited operation).
    pub instructions: u64,
    /// Warp load instructions.
    pub loads: u64,
    /// Warp store instructions.
    pub stores: u64,
    /// Warp atomic instructions.
    pub atomics: u64,
    /// `threadfence` instructions.
    pub fences: u64,
    /// Coalesced memory transactions issued (after merging).
    pub mem_transactions: u64,
    /// Memory transactions that would have been issued had no coalescing
    /// occurred (one per active lane). `mem_transactions /
    /// uncoalesced_transactions` measures coalescing effectiveness.
    pub uncoalesced_transactions: u64,
    /// L2 hits among memory transactions.
    pub l2_hits: u64,
    /// L2 misses (DRAM accesses).
    pub l2_misses: u64,
    /// Warp instructions that executed with a partial (non-full,
    /// non-empty relative to launch width) active mask — a proxy for
    /// SIMT divergence.
    pub divergent_instructions: u64,
    /// Total active-lane slots across all instructions.
    pub active_lanes: u64,
    /// Total lane slots (instructions × warp width) — `active_lanes /
    /// lane_slots` is SIMT efficiency.
    pub lane_slots: u64,
    /// Explicit idle/backoff cycles charged via `WarpCtx::idle`.
    pub idle_cycles: u64,
    /// Thread blocks that completed.
    pub blocks_completed: u64,
    /// CAS lane-operations forced to fail by the fault plan.
    pub spurious_cas_failures: u64,
    /// Extra latency cycles injected by the fault plan's jitter.
    pub injected_jitter_cycles: u64,
    /// Times a warp parked itself on the waker registry path
    /// (`WarpCtx::park`). While parked a warp burns no cycles.
    pub parks: u64,
    /// Times a parked warp was made runnable again (explicit wakes plus
    /// park-budget timeouts).
    pub wakes: u64,
}

impl SimStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        SimStats::default()
    }

    /// Fraction of lane slots that were active, in `[0, 1]`.
    /// Returns 1.0 for an empty run.
    pub fn simt_efficiency(&self) -> f64 {
        if self.lane_slots == 0 {
            1.0
        } else {
            self.active_lanes as f64 / self.lane_slots as f64
        }
    }

    /// L2 hit rate in `[0, 1]`. Returns 0.0 when no transactions occurred.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// Average transactions saved by coalescing (1.0 = nothing saved).
    pub fn coalescing_ratio(&self) -> f64 {
        if self.uncoalesced_transactions == 0 {
            1.0
        } else {
            self.mem_transactions as f64 / self.uncoalesced_transactions as f64
        }
    }

    /// Coalescing efficiency in `[0, 1]`: fraction of per-lane
    /// transactions *eliminated* by coalescing (the complement of
    /// [`coalescing_ratio`](Self::coalescing_ratio)). 1.0 means every
    /// warp access merged into a single transaction's worth of traffic;
    /// 0.0 means nothing merged. Returns 0.0 for an empty run.
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.uncoalesced_transactions == 0 {
            0.0
        } else {
            1.0 - self.coalescing_ratio()
        }
    }

    /// Accumulates another launch's counters into this one (multi-kernel
    /// workloads report one merged `SimStats`).
    pub fn merge(&mut self, other: &SimStats) {
        self.instructions += other.instructions;
        self.loads += other.loads;
        self.stores += other.stores;
        self.atomics += other.atomics;
        self.fences += other.fences;
        self.mem_transactions += other.mem_transactions;
        self.uncoalesced_transactions += other.uncoalesced_transactions;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.divergent_instructions += other.divergent_instructions;
        self.active_lanes += other.active_lanes;
        self.lane_slots += other.lane_slots;
        self.idle_cycles += other.idle_cycles;
        self.blocks_completed += other.blocks_completed;
        self.spurious_cas_failures += other.spurious_cas_failures;
        self.injected_jitter_cycles += other.injected_jitter_cycles;
        self.parks += other.parks;
        self.wakes += other.wakes;
    }

    /// Serializes the counters plus derived metrics into `w` as a JSON
    /// object, in a stable field order (raw counters first, derived rates
    /// last) so report diffs are reviewable.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("instructions", self.instructions);
        w.field_u64("loads", self.loads);
        w.field_u64("stores", self.stores);
        w.field_u64("atomics", self.atomics);
        w.field_u64("fences", self.fences);
        w.field_u64("mem_transactions", self.mem_transactions);
        w.field_u64("uncoalesced_transactions", self.uncoalesced_transactions);
        w.field_u64("l2_hits", self.l2_hits);
        w.field_u64("l2_misses", self.l2_misses);
        w.field_u64("divergent_instructions", self.divergent_instructions);
        w.field_u64("active_lanes", self.active_lanes);
        w.field_u64("lane_slots", self.lane_slots);
        w.field_u64("idle_cycles", self.idle_cycles);
        w.field_u64("blocks_completed", self.blocks_completed);
        w.field_u64("spurious_cas_failures", self.spurious_cas_failures);
        w.field_u64("injected_jitter_cycles", self.injected_jitter_cycles);
        w.field_u64("parks", self.parks);
        w.field_u64("wakes", self.wakes);
        w.field_f64("simt_efficiency", self.simt_efficiency());
        w.field_f64("l2_hit_rate", self.l2_hit_rate());
        w.field_f64("coalescing_efficiency", self.coalescing_efficiency());
        w.end_object();
    }

    /// The counters as a standalone JSON object (see
    /// [`write_json`](Self::write_json)).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rates_are_sane() {
        let s = SimStats::new();
        assert_eq!(s.simt_efficiency(), 1.0);
        assert_eq!(s.l2_hit_rate(), 0.0);
        assert_eq!(s.coalescing_ratio(), 1.0);
    }

    #[test]
    fn rates_compute() {
        let s = SimStats {
            active_lanes: 16,
            lane_slots: 32,
            l2_hits: 3,
            l2_misses: 1,
            mem_transactions: 2,
            uncoalesced_transactions: 8,
            ..SimStats::default()
        };
        assert!((s.simt_efficiency() - 0.5).abs() < 1e-12);
        assert!((s.l2_hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.coalescing_ratio() - 0.25).abs() < 1e-12);
        assert!((s.coalescing_efficiency() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_every_counter() {
        let a = SimStats { instructions: 1, loads: 2, idle_cycles: 3, ..SimStats::default() };
        let b = SimStats { instructions: 10, loads: 20, l2_hits: 5, ..SimStats::default() };
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.instructions, 11);
        assert_eq!(m.loads, 22);
        assert_eq!(m.idle_cycles, 3);
        assert_eq!(m.l2_hits, 5);
    }

    #[test]
    fn json_has_stable_field_order() {
        let s = SimStats { instructions: 7, l2_hits: 3, l2_misses: 1, ..SimStats::default() };
        let j = s.to_json();
        assert!(j.starts_with(r#"{"instructions":7,"#), "{j}");
        assert!(j.contains(r#""l2_hit_rate":0.750000"#), "{j}");
        assert!(j.ends_with(r#""coalescing_efficiency":0.000000}"#), "{j}");
    }
}
