//! Execution statistics collected by the simulator.

/// Counters accumulated over a kernel launch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Warp instructions issued (every awaited operation).
    pub instructions: u64,
    /// Warp load instructions.
    pub loads: u64,
    /// Warp store instructions.
    pub stores: u64,
    /// Warp atomic instructions.
    pub atomics: u64,
    /// `threadfence` instructions.
    pub fences: u64,
    /// Coalesced memory transactions issued (after merging).
    pub mem_transactions: u64,
    /// Memory transactions that would have been issued had no coalescing
    /// occurred (one per active lane). `mem_transactions /
    /// uncoalesced_transactions` measures coalescing effectiveness.
    pub uncoalesced_transactions: u64,
    /// L2 hits among memory transactions.
    pub l2_hits: u64,
    /// L2 misses (DRAM accesses).
    pub l2_misses: u64,
    /// Warp instructions that executed with a partial (non-full,
    /// non-empty relative to launch width) active mask — a proxy for
    /// SIMT divergence.
    pub divergent_instructions: u64,
    /// Total active-lane slots across all instructions.
    pub active_lanes: u64,
    /// Total lane slots (instructions × warp width) — `active_lanes /
    /// lane_slots` is SIMT efficiency.
    pub lane_slots: u64,
    /// Explicit idle/backoff cycles charged via `WarpCtx::idle`.
    pub idle_cycles: u64,
    /// Thread blocks that completed.
    pub blocks_completed: u64,
    /// CAS lane-operations forced to fail by the fault plan.
    pub spurious_cas_failures: u64,
    /// Extra latency cycles injected by the fault plan's jitter.
    pub injected_jitter_cycles: u64,
}

impl SimStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        SimStats::default()
    }

    /// Fraction of lane slots that were active, in `[0, 1]`.
    /// Returns 1.0 for an empty run.
    pub fn simt_efficiency(&self) -> f64 {
        if self.lane_slots == 0 {
            1.0
        } else {
            self.active_lanes as f64 / self.lane_slots as f64
        }
    }

    /// L2 hit rate in `[0, 1]`. Returns 0.0 when no transactions occurred.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// Average transactions saved by coalescing (1.0 = nothing saved).
    pub fn coalescing_ratio(&self) -> f64 {
        if self.uncoalesced_transactions == 0 {
            1.0
        } else {
            self.mem_transactions as f64 / self.uncoalesced_transactions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rates_are_sane() {
        let s = SimStats::new();
        assert_eq!(s.simt_efficiency(), 1.0);
        assert_eq!(s.l2_hit_rate(), 0.0);
        assert_eq!(s.coalescing_ratio(), 1.0);
    }

    #[test]
    fn rates_compute() {
        let s = SimStats {
            active_lanes: 16,
            lane_slots: 32,
            l2_hits: 3,
            l2_misses: 1,
            mem_transactions: 2,
            uncoalesced_transactions: 8,
            ..SimStats::default()
        };
        assert!((s.simt_efficiency() - 0.5).abs() < 1e-12);
        assert!((s.l2_hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.coalescing_ratio() - 0.25).abs() < 1e-12);
    }
}
