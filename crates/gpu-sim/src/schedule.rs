//! External schedule control: a hook that hands every scheduling decision
//! to an outside controller.
//!
//! The default event loop orders warps by `(ready_cycle, issue_seq)` (or a
//! seeded shuffle under a [`FaultPlan`](crate::FaultPlan)). Either way the
//! simulator itself decides the interleaving. A [`SchedulePolicy`] inverts
//! that: when [`SimConfig::schedule`](crate::SimConfig) is set, the
//! executor presents the full set of runnable warps at every decision
//! point — i.e. before every warp instruction: global loads/stores,
//! atomics, fences, ALU and idle steps alike — and the policy picks which
//! warp issues next. Simulated time is collapsed to a monotonic counter
//! (the chosen warp's ready cycle, clamped to never regress), so a policy
//! explores *orderings*, not timings.
//!
//! After each executed instruction the policy observes a [`StepRecord`]
//! describing the warp's memory [`StepEffect`] — the raw material for
//! happens-before analysis and dynamic partial-order reduction in the
//! `tm-verify` crate, which is the intended consumer of this hook.

use crate::mask::LaneMask;
use crate::memory::Addr;
use crate::warp::LaneAddrs;
use std::cell::RefCell;
use std::rc::Rc;

/// The shared-memory effect of one executed warp instruction, as observed
/// by a [`SchedulePolicy`].
///
/// Address lists are the *active lanes'* addresses, sorted and
/// deduplicated, so effects compare cheaply.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum StepEffect {
    /// No global-memory effect (ALU, idle, thread-local metadata access).
    Local,
    /// A global load by the active lanes.
    Load(Vec<Addr>),
    /// A global store by the active lanes.
    Store(Vec<Addr>),
    /// An atomic read-modify-write / compare-and-swap by the active lanes.
    Atomic(Vec<Addr>),
    /// A memory fence.
    Fence,
    /// The warp's future completed; it will issue no further steps.
    Retire,
}

impl StepEffect {
    /// The addresses this effect touches (empty for non-memory effects).
    pub fn addrs(&self) -> &[Addr] {
        match self {
            StepEffect::Load(a) | StepEffect::Store(a) | StepEffect::Atomic(a) => a,
            _ => &[],
        }
    }

    /// Whether the effect may change memory (store or atomic).
    pub fn writes(&self) -> bool {
        matches!(self, StepEffect::Store(_) | StepEffect::Atomic(_))
    }

    /// Whether two effects *from different warps* conflict under the
    /// verifier's independence relation: same-address pairs where at least
    /// one side writes conflict, reads commute, and fences conservatively
    /// order against every memory effect (and each other). `Local` and
    /// `Retire` commute with everything.
    pub fn conflicts(&self, other: &StepEffect) -> bool {
        use StepEffect::*;
        match (self, other) {
            (Local | Retire, _) | (_, Local | Retire) => false,
            (Fence, _) | (_, Fence) => true,
            (Load(_), Load(_)) => false,
            _ => intersects(self.addrs(), other.addrs()),
        }
    }
}

/// Merge-walk intersection test over two sorted address lists.
fn intersects(a: &[Addr], b: &[Addr]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Collects the active lanes' addresses of a warp instruction, sorted and
/// deduplicated, for effect recording.
pub(crate) fn effect_addrs(mask: LaneMask, addrs: &LaneAddrs) -> Vec<Addr> {
    let mut out: Vec<Addr> = mask.iter().map(|l| addrs[l]).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// One warp the policy may schedule next.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RunnableWarp {
    /// Block index within the grid.
    pub block: u32,
    /// Warp index within the block.
    pub warp_in_block: u32,
    /// Cycle at which the default scheduler would consider it ready.
    pub ready: u64,
}

/// One executed warp instruction, reported to the policy after the fact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepRecord {
    /// Block index within the grid.
    pub block: u32,
    /// Warp index within the block.
    pub warp_in_block: u32,
    /// The instruction's observable memory effect.
    pub effect: StepEffect,
}

/// An external warp-scheduling controller.
///
/// Installed via [`SimConfig::schedule`](crate::SimConfig); see the
/// [module docs](self) for the execution model.
pub trait SchedulePolicy {
    /// Picks the next warp to issue one instruction, as an index into
    /// `runnable`. The slice is non-empty and sorted by
    /// `(block, warp_in_block)`; the same warp keeps the same identity for
    /// the whole launch. Out-of-range indices panic.
    fn pick(&mut self, now: u64, runnable: &[RunnableWarp]) -> usize;

    /// Observes the instruction the picked warp just executed (including
    /// its [`StepEffect::Retire`] when the warp finishes).
    fn observe(&mut self, _step: &StepRecord) {}
}

/// A cloneable, shareable handle to a [`SchedulePolicy`], installable in
/// [`SimConfig::schedule`](crate::SimConfig).
///
/// Clones share the same underlying policy, so a controller can keep one
/// handle to inspect state it accumulated during the run.
#[derive(Clone)]
pub struct PolicyHandle(Rc<RefCell<dyn SchedulePolicy>>);

impl PolicyHandle {
    /// Wraps a policy in a fresh shared handle.
    pub fn new(policy: impl SchedulePolicy + 'static) -> Self {
        PolicyHandle(Rc::new(RefCell::new(policy)))
    }

    /// Wraps an already-shared policy, letting the caller keep access to
    /// it while the simulator drives it.
    pub fn shared(policy: Rc<RefCell<dyn SchedulePolicy>>) -> Self {
        PolicyHandle(policy)
    }

    pub(crate) fn pick(&self, now: u64, runnable: &[RunnableWarp]) -> usize {
        self.0.borrow_mut().pick(now, runnable)
    }

    pub(crate) fn observe(&self, step: &StepRecord) {
        self.0.borrow_mut().observe(step);
    }
}

impl std::fmt::Debug for PolicyHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PolicyHandle(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr_list(xs: &[u32]) -> Vec<Addr> {
        xs.iter().map(|&x| Addr(x)).collect()
    }

    #[test]
    fn reads_commute_writes_conflict() {
        let r = StepEffect::Load(addr_list(&[4, 8]));
        let r2 = StepEffect::Load(addr_list(&[4]));
        let w = StepEffect::Store(addr_list(&[8]));
        let a = StepEffect::Atomic(addr_list(&[2, 4]));
        assert!(!r.conflicts(&r2));
        assert!(r.conflicts(&w));
        assert!(w.conflicts(&r));
        assert!(r.conflicts(&a));
        assert!(!w.conflicts(&a));
        assert!(a.conflicts(&StepEffect::Atomic(addr_list(&[4]))));
    }

    #[test]
    fn fences_order_everything_but_local() {
        let f = StepEffect::Fence;
        assert!(f.conflicts(&StepEffect::Fence));
        assert!(f.conflicts(&StepEffect::Load(addr_list(&[1]))));
        assert!(!f.conflicts(&StepEffect::Local));
        assert!(!f.conflicts(&StepEffect::Retire));
        assert!(!StepEffect::Local.conflicts(&f));
    }

    #[test]
    fn effect_addrs_sorted_deduped() {
        let mut addrs = [Addr::NULL; crate::WARP_SIZE];
        addrs[0] = Addr(9);
        addrs[1] = Addr(3);
        addrs[2] = Addr(9);
        let got = effect_addrs(LaneMask::first_n(3), &addrs);
        assert_eq!(got, addr_list(&[3, 9]));
    }
}
