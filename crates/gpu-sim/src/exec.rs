//! The deterministic discrete-event executor.
//!
//! Each warp of a kernel launch is one Rust [`Future`]. Every awaited
//! [`WarpCtx`](crate::warp::WarpCtx) operation is one *warp instruction*:
//! its memory effects are applied synchronously (giving a global total order
//! of warp instructions — a legal interleaving of the machine), its latency
//! is computed from the timing and cache models, and the warp then yields to
//! the scheduler until `now + latency`.
//!
//! The scheduler is a single-threaded event loop over a priority queue keyed
//! by `(ready_cycle, issue_seq)`, so runs are fully deterministic — a
//! property the GPU lacks but which makes livelock/deadlock reproductions
//! and correctness checking exact.
//!
//! Thread blocks are admitted to the GPU respecting SM residency limits
//! (blocks per SM, warps per SM), like hardware block dispatch.

use crate::cache::{CacheCheckpoint, CacheConfig, L2Cache};
use crate::error::{SimError, WarpProgress};
use crate::fault::{splitmix64, FaultPlan, FaultState};
use crate::mask::{LaneMask, WARP_SIZE};
use crate::memory::{Addr, GlobalMemory};
use crate::race::{RaceDetector, RaceSink};
use crate::schedule::{PolicyHandle, RunnableWarp, StepEffect, StepRecord};
use crate::stats::SimStats;
use crate::timing::TimingModel;
use crate::trace::{SimEvent, SimEventKind, TraceSink};
use crate::warp::{ParkSignal, WarpCtx};
use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

/// GPU-level resource limits (block/warp residency), Fermi C2070 defaults.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
}

impl GpuConfig {
    /// NVIDIA C2070 (Fermi): 14 SMs, 48 warps/SM, 8 blocks/SM.
    pub fn fermi_c2070() -> Self {
        GpuConfig { sm_count: 14, max_warps_per_sm: 48, max_blocks_per_sm: 8 }
    }

    fn warp_slots(&self) -> u64 {
        self.sm_count as u64 * self.max_warps_per_sm as u64
    }

    fn block_slots(&self) -> u64 {
        self.sm_count as u64 * self.max_blocks_per_sm as u64
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::fermi_c2070()
    }
}

/// Full simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Capacity of device global memory, in 32-bit words.
    pub mem_words: usize,
    /// L2 cache geometry.
    pub cache: CacheConfig,
    /// Instruction/memory latencies.
    pub timing: TimingModel,
    /// SM residency limits.
    pub gpu: GpuConfig,
    /// Abort a launch after this many simulated cycles (deadlock/livelock
    /// watchdog).
    pub watchdog_cycles: u64,
    /// Abort a launch when no warp has made progress (committed or
    /// explicitly marked via [`WarpCtx::mark_progress`]) for this many
    /// cycles. `u64::MAX` disables stall detection, leaving only the
    /// total-cycle budget.
    pub stall_cycles: u64,
    /// Seed-controlled fault injection (schedule shuffle, latency jitter,
    /// spurious CAS failures). Defaults to no faults.
    pub fault: FaultPlan,
    /// When set, a happens-before race detector observes every
    /// global-memory access and publishes unordered conflicting pairs to
    /// this sink (see [`crate::race`]). Detection is pure observation:
    /// it charges no cycles, so enabling it never perturbs a run.
    /// Defaults to `None` (off).
    pub race: Option<RaceSink>,
    /// When set, the executor and [`WarpCtx`] emit cycle-timestamped
    /// structured events (warp scheduling, memory/coalescing, atomics,
    /// fences, idle spans) into this bounded ring buffer (see
    /// [`crate::trace`]). Like race detection, tracing is pure
    /// observation: it charges no cycles, so enabling it never perturbs
    /// a run. Defaults to `None` (off).
    pub trace: Option<TraceSink>,
    /// When set, an external [`SchedulePolicy`](crate::SchedulePolicy)
    /// picks the next runnable warp at every scheduling decision point
    /// (i.e. before every warp instruction: loads, stores, atomics,
    /// fences, ALU/idle steps) and observes each executed instruction's
    /// memory effect. Overrides both the default `(ready, seq)` order and
    /// a [`FaultPlan`] schedule shuffle; simulated time degenerates to a
    /// monotonic counter. Defaults to `None` (the simulator schedules).
    pub schedule: Option<PolicyHandle>,
}

impl SimConfig {
    /// A configuration with `mem_words` words of memory and Fermi defaults.
    pub fn with_memory(mem_words: usize) -> Self {
        SimConfig { mem_words, ..SimConfig::default() }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mem_words: 1 << 22, // 16 MiB
            cache: CacheConfig::default(),
            timing: TimingModel::default(),
            gpu: GpuConfig::default(),
            watchdog_cycles: 1 << 40,
            stall_cycles: u64::MAX,
            fault: FaultPlan::none(),
            race: None,
            trace: None,
            schedule: None,
        }
    }
}

/// Kernel launch geometry: `<<<blocks, threads_per_block>>>`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Thread blocks in the grid.
    pub blocks: u32,
    /// Threads per block (need not be a multiple of 32; the tail warp runs
    /// with a partial launch mask).
    pub threads_per_block: u32,
}

impl LaunchConfig {
    /// Creates a launch of `blocks` × `threads_per_block` threads.
    pub fn new(blocks: u32, threads_per_block: u32) -> Self {
        LaunchConfig { blocks, threads_per_block }
    }

    /// Warps per block (rounded up).
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block.div_ceil(WARP_SIZE as u32)
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> u64 {
        self.blocks as u64 * self.threads_per_block as u64
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.blocks == 0 {
            return Err(SimError::BadLaunch("grid has zero blocks".into()));
        }
        if self.threads_per_block == 0 {
            return Err(SimError::BadLaunch("block has zero threads".into()));
        }
        if self.threads_per_block > 1024 {
            return Err(SimError::BadLaunch(format!(
                "{} threads per block exceeds the 1024 hardware limit",
                self.threads_per_block
            )));
        }
        Ok(())
    }
}

/// Identity of a warp within a launch, visible to kernel code.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WarpId {
    /// Block index within the grid.
    pub block: u32,
    /// Warp index within the block.
    pub warp_in_block: u32,
    /// Threads per block of the launch (for computing global thread ids).
    pub threads_per_block: u32,
    /// Lanes that correspond to real threads (partial for a tail warp).
    pub launch_mask: LaneMask,
}

impl WarpId {
    /// Global warp index within the grid.
    pub fn global_warp(&self, warps_per_block: u32) -> u32 {
        self.block * warps_per_block + self.warp_in_block
    }

    /// Global thread id of `lane` in this warp.
    pub fn thread_id(&self, lane: usize) -> u32 {
        self.block * self.threads_per_block + self.warp_in_block * WARP_SIZE as u32 + lane as u32
    }
}

/// Outcome of a completed kernel launch.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Simulated cycles from launch to the last warp's completion.
    pub cycles: u64,
    /// Counters for this launch.
    pub stats: SimStats,
}

/// Everything a [`Sim`] carries across launches, captured by
/// [`Sim::checkpoint`]: the allocated memory image, the L2 state and the
/// lifetime counters. Plain data — serializable by the caller.
#[derive(Clone, Debug)]
pub struct SimCheckpoint {
    /// Image of every allocated device word, from address 0.
    pub memory: Vec<u32>,
    /// L2 tag/LRU state (persists across launches, affects timing).
    pub cache: CacheCheckpoint,
    /// Lifetime statistics accumulated over completed launches.
    pub stats: SimStats,
    /// Sum of completion cycles over all launches.
    pub cycles: u64,
    /// Number of completed launches.
    pub launches: u64,
}

pub(crate) struct SimState {
    pub(crate) mem: GlobalMemory,
    pub(crate) cache: L2Cache,
    pub(crate) timing: TimingModel,
    pub(crate) stats: SimStats,
    pub(crate) now: u64,
    pub(crate) fault: FaultState,
    pub(crate) progress: ProgressBoard,
    pub(crate) race: Option<RaceDetector>,
    pub(crate) trace: Option<TraceSink>,
    /// Whether warp ops should record their [`StepEffect`] (true iff a
    /// schedule policy is installed; keeps uncontrolled runs allocation-free).
    pub(crate) observe_effects: bool,
    /// The effect of the instruction currently being executed, taken by the
    /// event loop after each poll and reported to the schedule policy.
    pub(crate) last_effect: Option<StepEffect>,
    /// Wakes for parked warps (progress-board slot indices), enqueued by
    /// [`WakeHandle`](crate::WakeHandle)s and drained by the event loop
    /// before every scheduling decision. Fresh per launch.
    pub(crate) wake_queue: Rc<RefCell<Vec<usize>>>,
}

impl SimState {
    /// Emits a trace event when a sink is attached. Pure observation:
    /// never charges cycles.
    pub(crate) fn emit(&self, block: u32, warp: u32, kind: SimEventKind) {
        if let Some(t) = self.trace.as_ref() {
            t.borrow_mut().push(SimEvent { cycle: self.now, block, warp, kind });
        }
    }
}

/// Per-warp progress accounting for one launch: who issued what, and when
/// each warp (and the launch as a whole) last made forward progress.
#[derive(Clone, Debug, Default)]
pub(crate) struct ProgressBoard {
    pub(crate) warps: Vec<WarpProgressEntry>,
    /// Last cycle any warp committed/marked progress or retired.
    pub(crate) last_progress_cycle: u64,
    /// Last cycle a device word actually changed value.
    pub(crate) last_mutation_cycle: u64,
}

#[derive(Clone, Debug, Default)]
pub(crate) struct WarpProgressEntry {
    pub(crate) block: u32,
    pub(crate) warp_in_block: u32,
    pub(crate) instructions: u64,
    pub(crate) instructions_at_progress: u64,
    pub(crate) progress_marks: u64,
    pub(crate) last_progress_cycle: u64,
    pub(crate) retired: bool,
    /// Whether the warp is currently descheduled on the parked set.
    pub(crate) parked: bool,
    /// The device addresses a parked warp is waiting on (diagnostics).
    pub(crate) parked_addrs: Vec<Addr>,
}

impl ProgressBoard {
    /// Registers a warp; returns its index for [`WarpCtx`] accounting.
    pub(crate) fn register(&mut self, block: u32, warp_in_block: u32, now: u64) -> usize {
        self.warps.push(WarpProgressEntry {
            block,
            warp_in_block,
            last_progress_cycle: now,
            ..WarpProgressEntry::default()
        });
        self.warps.len() - 1
    }

    pub(crate) fn mark(&mut self, pslot: usize, now: u64) {
        let w = &mut self.warps[pslot];
        w.progress_marks += 1;
        w.last_progress_cycle = now;
        w.instructions_at_progress = w.instructions;
        self.last_progress_cycle = self.last_progress_cycle.max(now);
    }

    fn unfinished(&self, now: u64) -> Vec<WarpProgress> {
        self.warps
            .iter()
            .filter(|w| !w.retired)
            .map(|w| WarpProgress {
                block: w.block,
                warp_in_block: w.warp_in_block,
                instructions: w.instructions,
                instructions_since_progress: w.instructions - w.instructions_at_progress,
                progress_marks: w.progress_marks,
                cycles_since_progress: now.saturating_sub(w.last_progress_cycle),
                parked_addrs: w.parked_addrs.clone(),
            })
            .collect()
    }
}

/// The simulated GPU: device memory plus the launch engine.
///
/// # Examples
///
/// ```
/// use gpu_sim::{LaneMask, LaunchConfig, Sim, SimConfig};
///
/// # fn main() -> Result<(), gpu_sim::SimError> {
/// let mut sim = Sim::new(SimConfig::with_memory(1 << 16));
/// let out = sim.alloc(64)?;
/// let report = sim.launch(LaunchConfig::new(2, 32), move |ctx| async move {
///     let mask = ctx.id().launch_mask;
///     let addrs = std::array::from_fn(|lane| out.offset(ctx.id().thread_id(lane)));
///     let vals = std::array::from_fn(|lane| ctx.id().thread_id(lane) * 10);
///     ctx.store(mask, &addrs, &vals).await;
/// })?;
/// assert!(report.cycles > 0);
/// assert_eq!(sim.read(out.offset(63)), 630);
/// # Ok(())
/// # }
/// ```
pub struct Sim {
    state: Rc<RefCell<SimState>>,
    config: SimConfig,
    /// Counters accumulated over every launch this simulator has run
    /// (per-launch counters reset at each [`Sim::launch`]; these do not).
    lifetime: SimStats,
    /// Sum of completion cycles over all launches.
    lifetime_cycles: u64,
    /// Number of completed launches.
    launches: u64,
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim").field("config", &self.config).finish_non_exhaustive()
    }
}

impl Sim {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        let state = SimState {
            mem: GlobalMemory::new(config.mem_words),
            cache: L2Cache::new(config.cache),
            timing: config.timing,
            stats: SimStats::new(),
            now: 0,
            fault: FaultState::new(config.fault),
            progress: ProgressBoard::default(),
            race: config.race.clone().map(RaceDetector::new),
            trace: config.trace.clone(),
            observe_effects: config.schedule.is_some(),
            last_effect: None,
            wake_queue: Rc::new(RefCell::new(Vec::new())),
        };
        Sim {
            state: Rc::new(RefCell::new(state)),
            config,
            lifetime: SimStats::new(),
            lifetime_cycles: 0,
            launches: 0,
        }
    }

    /// The configuration this simulator was built with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Counters accumulated across every completed launch — the view a
    /// long-lived engine (one simulator serving many kernel batches, as
    /// in `tm-serve`) reports, where per-launch stats are too granular.
    pub fn lifetime_stats(&self) -> &SimStats {
        &self.lifetime
    }

    /// Total simulated cycles summed over all completed launches.
    pub fn lifetime_cycles(&self) -> u64 {
        self.lifetime_cycles
    }

    /// Number of launches this simulator has completed.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Allocates `n` zeroed device words.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] when capacity is exhausted.
    pub fn alloc(&mut self, n: u32) -> Result<Addr, SimError> {
        self.state.borrow_mut().mem.alloc(n)
    }

    /// Host-side read of one device word.
    pub fn read(&self, a: Addr) -> u32 {
        self.state.borrow().mem.read(a)
    }

    /// Host-side write of one device word.
    pub fn write(&mut self, a: Addr, v: u32) {
        self.state.borrow_mut().mem.write(a, v);
    }

    /// Host-side bulk copy into device memory.
    pub fn write_slice(&mut self, a: Addr, data: &[u32]) {
        self.state.borrow_mut().mem.write_slice(a, data);
    }

    /// Host-side bulk copy out of device memory.
    pub fn read_slice(&self, a: Addr, n: u32) -> Vec<u32> {
        self.state.borrow().mem.read_slice(a, n)
    }

    /// Fills `n` device words starting at `a` with `v`.
    pub fn fill(&mut self, a: Addr, n: u32, v: u32) {
        self.state.borrow_mut().mem.fill(a, n, v);
    }

    /// Captures everything that persists across launches: the allocated
    /// device memory image, the L2 tag/LRU state (the cache is *not*
    /// reset per launch, so it shapes the cycle counts of later
    /// launches), and the lifetime counters. Restoring this checkpoint
    /// into a freshly constructed, identically allocated simulator makes
    /// subsequent launches byte-identical to the original timeline —
    /// the foundation of `tm-serve` crash recovery.
    pub fn checkpoint(&self) -> SimCheckpoint {
        let st = self.state.borrow();
        SimCheckpoint {
            memory: st.mem.read_slice(Addr(0), st.mem.allocated() as u32),
            cache: st.cache.checkpoint(),
            stats: self.lifetime.clone(),
            cycles: self.lifetime_cycles,
            launches: self.launches,
        }
    }

    /// Restores a [`checkpoint`](Self::checkpoint) taken from a
    /// simulator with the same configuration and allocation history.
    ///
    /// # Panics
    ///
    /// Panics if the memory image or cache geometry does not match
    /// (checkpoints are only meaningful across identically built sims).
    pub fn restore_checkpoint(&mut self, ck: &SimCheckpoint) {
        let mut st = self.state.borrow_mut();
        assert_eq!(
            ck.memory.len(),
            st.mem.allocated(),
            "checkpoint memory image does not match this sim's allocations"
        );
        st.mem.write_slice(Addr(0), &ck.memory);
        st.cache.restore(&ck.cache);
        drop(st);
        self.lifetime = ck.stats.clone();
        self.lifetime_cycles = ck.cycles;
        self.launches = ck.launches;
    }

    /// Launches a kernel and runs it to completion.
    ///
    /// `kernel` is invoked once per warp to build that warp's future; the
    /// returned futures are interleaved by the event loop at warp-instruction
    /// granularity. Per-launch statistics and the completion cycle are
    /// returned; device memory persists across launches.
    ///
    /// # Errors
    ///
    /// - [`SimError::BadLaunch`] for an invalid geometry.
    /// - [`SimError::Deadlock`] / [`SimError::Livelock`] /
    ///   [`SimError::BudgetExceeded`] when the cycle budget
    ///   (`watchdog_cycles`) or the progress stall limit (`stall_cycles`)
    ///   is exhausted before all warps finish, classified by the progress
    ///   monitor with per-warp diagnostics.
    pub fn launch<F, Fut>(&mut self, grid: LaunchConfig, kernel: F) -> Result<RunReport, SimError>
    where
        F: Fn(WarpCtx) -> Fut,
        Fut: Future<Output = ()> + 'static,
    {
        grid.validate()?;
        {
            let st = &mut *self.state.borrow_mut();
            st.now = 0;
            st.stats = SimStats::new();
            st.fault = FaultState::new(self.config.fault);
            st.progress = ProgressBoard::default();
            // Fresh vector clocks per launch (warp slots are per-launch);
            // the sinks keep accumulating across launches.
            st.race = self.config.race.clone().map(RaceDetector::new);
            st.trace = self.config.trace.clone();
            st.observe_effects = self.config.schedule.is_some();
            st.last_effect = None;
            // Fresh wake queue per launch: wake handles are scoped to the
            // launch whose warps created them.
            st.wake_queue = Rc::new(RefCell::new(Vec::new()));
        }

        let wpb = grid.warps_per_block();
        let tail_threads = grid.threads_per_block - (wpb - 1) * WARP_SIZE as u32;
        let gpu = self.config.gpu;

        let shuffle_seed = self
            .config
            .fault
            .shuffle_schedule
            .then_some(self.config.fault.seed ^ 0x3c6e_f372_fe94_f82b);
        let policy = self.config.schedule.clone();
        let mut scheduler = Scheduler::new(shuffle_seed, policy.clone());
        let mut next_block: u32 = 0;
        let mut resident_blocks: u64 = 0;
        let mut resident_warps: u64 = 0;
        // Live warp count per resident block, indexed by block id.
        let mut block_live: Vec<u32> = vec![0; grid.blocks as usize];

        let admit = |scheduler: &mut Scheduler,
                     next_block: &mut u32,
                     resident_blocks: &mut u64,
                     resident_warps: &mut u64,
                     block_live: &mut Vec<u32>,
                     now: u64| {
            while *next_block < grid.blocks
                && *resident_blocks < gpu.block_slots()
                && *resident_warps + wpb as u64 <= gpu.warp_slots()
            {
                let b = *next_block;
                *next_block += 1;
                *resident_blocks += 1;
                *resident_warps += wpb as u64;
                block_live[b as usize] = wpb;
                for w in 0..wpb {
                    let launch_mask = if w + 1 == wpb {
                        LaneMask::first_n(tail_threads as usize)
                    } else {
                        LaneMask::FULL
                    };
                    let id = WarpId {
                        block: b,
                        warp_in_block: w,
                        threads_per_block: grid.threads_per_block,
                        launch_mask,
                    };
                    let pending = Rc::new(Cell::new(0u64));
                    let park = Rc::new(Cell::new(ParkSignal::None));
                    let pslot = {
                        let st = &mut *self.state.borrow_mut();
                        st.emit(b, w, SimEventKind::WarpStart);
                        st.progress.register(b, w, now)
                    };
                    let ctx = WarpCtx::new(
                        Rc::clone(&self.state),
                        id,
                        Rc::clone(&pending),
                        Rc::clone(&park),
                        pslot,
                    );
                    let fut: Pin<Box<dyn Future<Output = ()>>> = Box::pin(kernel(ctx));
                    let entry = WarpSlot {
                        fut,
                        pending_cost: pending,
                        pending_park: park,
                        block: b,
                        warp_in_block: w,
                        pslot,
                    };
                    scheduler.spawn(entry, now);
                }
            }
        };

        admit(
            &mut scheduler,
            &mut next_block,
            &mut resident_blocks,
            &mut resident_warps,
            &mut block_live,
            0,
        );

        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        let mut last_cycle = 0u64;

        loop {
            // Deliver wakes enqueued by WakeHandles (commit-side notify)
            // before every scheduling decision; wakes for warps that are
            // not parked are consumed as no-ops, making wake/park races
            // safe by construction.
            let pending_wakes = {
                let st = self.state.borrow();
                let taken = std::mem::take(&mut *st.wake_queue.borrow_mut());
                taken
            };
            for pslot in pending_wakes {
                scheduler.unpark(pslot, ParkSignal::Woken, last_cycle);
            }
            // A finite park budget expiring no later than the next
            // runnable warp's ready time fires first — a busy run queue
            // must not starve timeouts until it drains.
            if let Some((deadline, pslot)) = scheduler.earliest_parked() {
                if deadline != u64::MAX && scheduler.next_ready().is_some_and(|r| deadline <= r) {
                    scheduler.unpark(pslot, ParkSignal::TimedOut, deadline.max(last_cycle));
                    continue;
                }
            }
            let Some((ready, slot)) = scheduler.pop() else {
                match scheduler.earliest_parked() {
                    // Every live warp is parked and at least one has a
                    // finite budget: advance the clock straight to the
                    // nearest deadline (the interval costs the parked
                    // warps nothing) and resume that warp with a timeout.
                    Some((deadline, pslot)) if deadline != u64::MAX => {
                        let wake_at = deadline.max(last_cycle);
                        self.check_progress(wake_at)?;
                        self.state.borrow_mut().now = wake_at;
                        last_cycle = wake_at;
                        scheduler.unpark(pslot, ParkSignal::TimedOut, wake_at);
                        continue;
                    }
                    // Every live warp is parked forever: the wakes they
                    // wait for can no longer arrive (only warps produce
                    // wakes). Report the deadlock immediately — with the
                    // watched addresses in the per-warp diagnostics —
                    // instead of burning the watchdog budget.
                    Some(_) => {
                        let st = self.state.borrow();
                        return Err(SimError::Deadlock {
                            cycle: last_cycle,
                            unfinished: st.progress.unfinished(last_cycle),
                        });
                    }
                    None => break,
                }
            };
            let now = ready;
            self.check_progress(now)?;
            self.state.borrow_mut().now = now;
            last_cycle = last_cycle.max(now);

            let poll = scheduler.poll_slot(slot, &mut cx);
            if let Some(p) = &policy {
                let (block, warp_in_block) = scheduler.identity(slot);
                let effect = match poll {
                    Poll::Pending => {
                        self.state.borrow_mut().last_effect.take().unwrap_or(StepEffect::Local)
                    }
                    Poll::Ready(()) => StepEffect::Retire,
                };
                p.observe(&StepRecord { block, warp_in_block, effect });
            }
            match poll {
                Poll::Pending => {
                    let cost = scheduler.take_pending_cost(slot);
                    if let Some(deadline) = scheduler.take_park_request(slot) {
                        // The instruction was a park: deschedule instead of
                        // requeueing. Its cost is dropped — a parked warp
                        // burns zero cycles by definition.
                        scheduler.park(slot, deadline);
                    } else {
                        let jitter = {
                            let st = &mut *self.state.borrow_mut();
                            let j = st.fault.jitter();
                            st.stats.injected_jitter_cycles += j;
                            j
                        };
                        scheduler.requeue(slot, now + cost + jitter);
                    }
                }
                Poll::Ready(()) => {
                    let (block, pslot) = scheduler.retire(slot);
                    {
                        // Retiring is progress: a finished warp can never
                        // be part of a deadlock or livelock.
                        let st = &mut *self.state.borrow_mut();
                        st.progress.mark(pslot, now);
                        st.progress.warps[pslot].retired = true;
                        let w = st.progress.warps[pslot].warp_in_block;
                        st.emit(block, w, SimEventKind::WarpRetire);
                    }
                    let live = &mut block_live[block as usize];
                    *live -= 1;
                    if *live == 0 {
                        resident_blocks -= 1;
                        resident_warps -= wpb as u64;
                        self.state.borrow_mut().stats.blocks_completed += 1;
                        admit(
                            &mut scheduler,
                            &mut next_block,
                            &mut resident_blocks,
                            &mut resident_warps,
                            &mut block_live,
                            now,
                        );
                    }
                }
            }
        }

        let stats = self.state.borrow().stats.clone();
        self.lifetime.merge(&stats);
        self.lifetime_cycles += last_cycle;
        self.launches += 1;
        Ok(RunReport { cycles: last_cycle, stats })
    }

    /// Aborts the launch with a classified non-progress error once the
    /// cycle budget is spent or the stall limit (if configured) is hit.
    ///
    /// Diagnosis: if warps progressed recently the budget is simply too
    /// small ([`SimError::BudgetExceeded`]); otherwise recent device-memory
    /// mutation distinguishes busy-but-stuck ([`SimError::Livelock`], e.g.
    /// lockstep retry churn) from fully blocked ([`SimError::Deadlock`],
    /// e.g. spinning on a lock that can never be released — spinning
    /// reads/failed CASes mutate nothing).
    fn check_progress(&self, now: u64) -> Result<(), SimError> {
        let budget = self.config.watchdog_cycles;
        let stall = self.config.stall_cycles;
        let st = self.state.borrow();
        let board = &st.progress;
        let since_progress = now.saturating_sub(board.last_progress_cycle);
        let budget_hit = now > budget;
        let stalled = stall != u64::MAX && since_progress > stall;
        if !budget_hit && !stalled {
            return Ok(());
        }
        // How far back "recent" reaches for classification: the stall
        // limit when configured, else half the budget.
        let window = if stall != u64::MAX { stall } else { (budget / 2).max(1) };
        let unfinished = board.unfinished(now);
        if budget_hit && since_progress <= window {
            return Err(SimError::BudgetExceeded { cycle: now, budget, unfinished });
        }
        if board.last_mutation_cycle > 0 && now.saturating_sub(board.last_mutation_cycle) <= window
        {
            return Err(SimError::Livelock {
                cycle: now,
                last_mutation_cycle: board.last_mutation_cycle,
                unfinished,
            });
        }
        Err(SimError::Deadlock { cycle: now, unfinished })
    }
}

struct WarpSlot {
    fut: Pin<Box<dyn Future<Output = ()>>>,
    pending_cost: Rc<Cell<u64>>,
    pending_park: Rc<Cell<ParkSignal>>,
    block: u32,
    warp_in_block: u32,
    pslot: usize,
}

struct Scheduler {
    slots: Vec<Option<WarpSlot>>,
    free: Vec<usize>,
    // Min-heap on (ready_cycle, key): FIFO among equal ready times, unless
    // a fault plan shuffles same-cycle dispatch with seeded-random keys.
    heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
    seq: u64,
    shuffle_rng: Option<u64>,
    live: usize,
    // External schedule control: when set, queued warps go to `ctl_queue`
    // and the policy picks the next one; the heap (and shuffle) are unused.
    policy: Option<PolicyHandle>,
    ctl_queue: Vec<(u64, usize)>,
    // Monotonic clock for controlled mode: picking a warp whose ready cycle
    // lies before an already-issued instruction must not rewind time.
    ctl_now: u64,
    // Warps descheduled by [`WarpCtx::park`], keyed by progress-board slot
    // (the identity WakeHandles carry), holding (deadline, scheduler slot).
    // A parked warp is in neither the heap nor `ctl_queue`: it consumes no
    // scheduling decisions and burns no cycles until unparked.
    parked: BTreeMap<usize, (u64, usize)>,
}

impl Scheduler {
    fn new(shuffle_seed: Option<u64>, policy: Option<PolicyHandle>) -> Self {
        Scheduler {
            slots: Vec::new(),
            free: Vec::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            shuffle_rng: shuffle_seed,
            live: 0,
            policy,
            ctl_queue: Vec::new(),
            ctl_now: 0,
            parked: BTreeMap::new(),
        }
    }

    fn spawn(&mut self, entry: WarpSlot, ready: u64) {
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(entry);
                i
            }
            None => {
                self.slots.push(Some(entry));
                self.slots.len() - 1
            }
        };
        self.live += 1;
        self.push(slot, ready);
    }

    fn push(&mut self, slot: usize, ready: u64) {
        if self.policy.is_some() {
            self.ctl_queue.push((ready, slot));
            return;
        }
        let key = match &mut self.shuffle_rng {
            Some(state) => splitmix64(state),
            None => self.seq,
        };
        self.heap.push(Reverse((ready, key, slot)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, usize)> {
        if let Some(policy) = self.policy.clone() {
            return self.pop_controlled(&policy);
        }
        self.heap.pop().map(|Reverse((ready, _, slot))| (ready, slot))
    }

    /// Ready time of the next runnable warp, if any. `None` under an
    /// external schedule policy: controlled time is artificial, so park
    /// budgets there only fire through the all-parked path.
    fn next_ready(&self) -> Option<u64> {
        if self.policy.is_some() {
            return None;
        }
        self.heap.peek().map(|Reverse((ready, _, _))| *ready)
    }

    /// One scheduling decision under external control: present the queued
    /// warps sorted by identity, let the policy pick, and advance the
    /// monotonic clock to the pick's ready cycle.
    fn pop_controlled(&mut self, policy: &PolicyHandle) -> Option<(u64, usize)> {
        if self.ctl_queue.is_empty() {
            return None;
        }
        let Scheduler { slots, ctl_queue, ctl_now, .. } = self;
        let ident = |slot: usize| {
            let s = slots[slot].as_ref().expect("queued warp has a slot");
            (s.block, s.warp_in_block)
        };
        ctl_queue.sort_by_key(|&(_, slot)| ident(slot));
        let runnable: Vec<RunnableWarp> = ctl_queue
            .iter()
            .map(|&(ready, slot)| {
                let (block, warp_in_block) = ident(slot);
                RunnableWarp { block, warp_in_block, ready }
            })
            .collect();
        let idx = policy.pick(*ctl_now, &runnable);
        assert!(idx < runnable.len(), "SchedulePolicy::pick returned {idx} of {}", runnable.len());
        let (ready, slot) = ctl_queue.remove(idx);
        *ctl_now = (*ctl_now).max(ready);
        Some((*ctl_now, slot))
    }

    fn identity(&self, slot: usize) -> (u32, u32) {
        let s = self.slots[slot].as_ref().expect("identity of retired warp");
        (s.block, s.warp_in_block)
    }

    fn requeue(&mut self, slot: usize, ready: u64) {
        self.push(slot, ready);
    }

    fn poll_slot(&mut self, slot: usize, cx: &mut Context<'_>) -> Poll<()> {
        let entry = self.slots[slot].as_mut().expect("polling retired warp");
        entry.fut.as_mut().poll(cx)
    }

    fn take_pending_cost(&mut self, slot: usize) -> u64 {
        let entry = self.slots[slot].as_ref().expect("retired warp");
        entry.pending_cost.take()
    }

    /// Consumes a park request armed by the warp's last instruction, if
    /// any, returning its deadline.
    fn take_park_request(&mut self, slot: usize) -> Option<u64> {
        let entry = self.slots[slot].as_ref().expect("retired warp");
        match entry.pending_park.get() {
            ParkSignal::Request { deadline } => {
                entry.pending_park.set(ParkSignal::None);
                Some(deadline)
            }
            _ => None,
        }
    }

    /// Moves a pending warp onto the parked set instead of requeueing it.
    fn park(&mut self, slot: usize, deadline: u64) {
        let pslot = self.slots[slot].as_ref().expect("parking retired warp").pslot;
        self.parked.insert(pslot, (deadline, slot));
    }

    /// Makes a parked warp runnable again at `ready`, storing `signal` for
    /// its suspended `park` call to read. Waking a warp that is not parked
    /// (a wake/park race, or a duplicate wake) is a no-op.
    fn unpark(&mut self, pslot: usize, signal: ParkSignal, ready: u64) {
        if let Some((_, slot)) = self.parked.remove(&pslot) {
            let entry = self.slots[slot].as_ref().expect("parked warp has a slot");
            entry.pending_park.set(signal);
            self.push(slot, ready);
        }
    }

    /// The parked warp with the nearest deadline (ties by pslot, so the
    /// order is deterministic), if any warp is parked.
    fn earliest_parked(&self) -> Option<(u64, usize)> {
        self.parked.iter().map(|(&pslot, &(deadline, _))| (deadline, pslot)).min()
    }

    fn retire(&mut self, slot: usize) -> (u32, usize) {
        let entry = self.slots[slot].take().expect("double retire");
        self.free.push(slot);
        self.live -= 1;
        (entry.block, entry.pslot)
    }
}

fn noop_waker() -> Waker {
    fn raw() -> RawWaker {
        RawWaker::new(std::ptr::null(), &VTABLE)
    }
    unsafe fn clone(_: *const ()) -> RawWaker {
        raw()
    }
    unsafe fn noop(_: *const ()) {}
    static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, noop, noop, noop);
    // SAFETY: all vtable functions are no-ops; the waker is never used to
    // actually wake anything (the scheduler polls explicitly).
    unsafe { Waker::from_raw(raw()) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sim() -> Sim {
        Sim::new(SimConfig::with_memory(1 << 16))
    }

    #[test]
    fn empty_grid_rejected() {
        let mut sim = small_sim();
        let err = sim.launch(LaunchConfig::new(0, 32), |_| async {}).unwrap_err();
        assert!(matches!(err, SimError::BadLaunch(_)));
        let err = sim.launch(LaunchConfig::new(1, 0), |_| async {}).unwrap_err();
        assert!(matches!(err, SimError::BadLaunch(_)));
        let err = sim.launch(LaunchConfig::new(1, 2048), |_| async {}).unwrap_err();
        assert!(matches!(err, SimError::BadLaunch(_)));
    }

    #[test]
    fn trivial_kernel_completes() {
        let mut sim = small_sim();
        let report = sim.launch(LaunchConfig::new(4, 64), |_| async {}).unwrap();
        assert_eq!(report.cycles, 0);
        assert_eq!(report.stats.blocks_completed, 4);
    }

    #[test]
    fn stores_visible_after_launch() {
        let mut sim = small_sim();
        let buf = sim.alloc(256).unwrap();
        sim.launch(LaunchConfig::new(2, 64), move |ctx| async move {
            let mask = ctx.id().launch_mask;
            let addrs = std::array::from_fn(|l| buf.offset(ctx.id().thread_id(l)));
            let vals = std::array::from_fn(|l| ctx.id().thread_id(l) + 1);
            ctx.store(mask, &addrs, &vals).await;
        })
        .unwrap();
        for t in 0..128 {
            assert_eq!(sim.read(buf.offset(t)), t + 1, "thread {t}");
        }
    }

    #[test]
    fn tail_warp_has_partial_mask() {
        let mut sim = small_sim();
        let buf = sim.alloc(64).unwrap();
        // 40 threads = one full warp + one 8-lane warp.
        sim.launch(LaunchConfig::new(1, 40), move |ctx| async move {
            let mask = ctx.id().launch_mask;
            let addrs = std::array::from_fn(|l| buf.offset(ctx.id().thread_id(l)));
            let vals = [1u32; 32];
            ctx.store(mask, &addrs, &vals).await;
        })
        .unwrap();
        let written: u32 = sim.read_slice(buf, 64).iter().sum();
        assert_eq!(written, 40);
    }

    #[test]
    fn atomic_add_counts_all_threads() {
        let mut sim = small_sim();
        let counter = sim.alloc(1).unwrap();
        sim.launch(LaunchConfig::new(8, 128), move |ctx| async move {
            let mask = ctx.id().launch_mask;
            ctx.atomic_add_uniform(mask, counter, 1).await;
        })
        .unwrap();
        assert_eq!(sim.read(counter), 8 * 128);
    }

    #[test]
    fn watchdog_fires_on_infinite_loop() {
        let mut cfg = SimConfig::with_memory(1 << 12);
        cfg.watchdog_cycles = 50_000;
        let mut sim = Sim::new(cfg);
        let err = sim
            .launch(LaunchConfig::new(1, 32), move |ctx| async move {
                loop {
                    ctx.idle(100).await;
                }
            })
            .unwrap_err();
        // An idle loop never touches memory and never marks progress:
        // indistinguishable from a deadlock.
        assert!(matches!(err, SimError::Deadlock { .. }), "got {err:?}");
        assert_eq!(err.unfinished_warps().len(), 1);
    }

    #[test]
    fn budget_exceeded_when_warps_keep_progressing() {
        let mut cfg = SimConfig::with_memory(1 << 12);
        cfg.watchdog_cycles = 50_000;
        let mut sim = Sim::new(cfg);
        let buf = sim.alloc(1).unwrap();
        let err = sim
            .launch(LaunchConfig::new(1, 32), move |ctx| async move {
                let mut v = 0;
                loop {
                    v += 1;
                    ctx.store_one(0, buf, v).await;
                    ctx.mark_progress();
                    ctx.idle(100).await;
                }
            })
            .unwrap_err();
        assert!(matches!(err, SimError::BudgetExceeded { .. }), "got {err:?}");
        let w = &err.unfinished_warps()[0];
        assert!(w.progress_marks > 0);
    }

    #[test]
    fn livelock_detected_on_busy_non_progress() {
        // Warps keep toggling memory (mutations) but never mark progress.
        let mut cfg = SimConfig::with_memory(1 << 12);
        cfg.watchdog_cycles = 50_000;
        let mut sim = Sim::new(cfg);
        let buf = sim.alloc(1).unwrap();
        let err = sim
            .launch(LaunchConfig::new(1, 32), move |ctx| async move {
                let mut v = 0;
                loop {
                    v += 1;
                    ctx.store_one(0, buf, v).await;
                    ctx.idle(50).await;
                }
            })
            .unwrap_err();
        assert!(matches!(err, SimError::Livelock { .. }), "got {err:?}");
    }

    #[test]
    fn stall_limit_fires_before_budget() {
        let mut cfg = SimConfig::with_memory(1 << 12);
        cfg.watchdog_cycles = 1 << 40;
        cfg.stall_cycles = 10_000;
        let mut sim = Sim::new(cfg);
        let err = sim
            .launch(LaunchConfig::new(1, 32), move |ctx| async move {
                loop {
                    ctx.idle(100).await;
                }
            })
            .unwrap_err();
        match err {
            SimError::Deadlock { cycle, .. } => assert!(cycle < 20_000, "cycle {cycle}"),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn schedule_shuffle_is_deterministic_per_seed() {
        let run = |plan: crate::fault::FaultPlan| {
            let mut cfg = SimConfig::with_memory(1 << 16);
            cfg.fault = plan;
            let mut sim = Sim::new(cfg);
            let buf = sim.alloc(65).unwrap();
            sim.launch(LaunchConfig::new(8, 64), move |ctx| async move {
                let id = ctx.id();
                let slot = id.global_warp(2);
                for i in 0..4 {
                    // The ticket each warp draws records its position in
                    // the global dispatch order.
                    let t = ctx.atomic_add_uniform(id.launch_mask, buf, 1).await;
                    ctx.store_one(0, buf.offset(1 + slot * 4 + i), t).await;
                }
            })
            .unwrap();
            sim.read_slice(buf, 65)
        };
        let base = run(crate::fault::FaultPlan::none());
        let s1 = run(crate::fault::FaultPlan::schedule_shuffle(1));
        let s1_again = run(crate::fault::FaultPlan::schedule_shuffle(1));
        let s2 = run(crate::fault::FaultPlan::schedule_shuffle(2));
        assert_eq!(s1, s1_again, "same seed must reproduce exactly");
        // Different seeds (and the unshuffled order) should disagree
        // somewhere; the counter total is unchanged either way.
        assert_eq!(base[0], s1[0]);
        assert_eq!(s1[0], s2[0]);
        assert!(s1 != base || s2 != base, "shuffle changed nothing");
    }

    #[test]
    fn latency_jitter_counted_and_deterministic() {
        let run = |seed| {
            let mut cfg = SimConfig::with_memory(1 << 16);
            cfg.fault = crate::fault::FaultPlan::latency_jitter(seed, 32);
            let mut sim = Sim::new(cfg);
            let buf = sim.alloc(1).unwrap();
            let report = sim
                .launch(LaunchConfig::new(4, 64), move |ctx| async move {
                    for _ in 0..8 {
                        ctx.atomic_add_uniform(ctx.id().launch_mask, buf, 1).await;
                    }
                })
                .unwrap();
            (report.cycles, report.stats.injected_jitter_cycles, sim.read(buf))
        };
        let (c1, j1, v1) = run(5);
        let (c1b, j1b, _) = run(5);
        assert_eq!((c1, j1), (c1b, j1b));
        assert!(j1 > 0);
        assert_eq!(v1, 4 * 64 * 8);
        let unjittered = {
            let mut sim = Sim::new(SimConfig::with_memory(1 << 16));
            let buf = sim.alloc(1).unwrap();
            sim.launch(LaunchConfig::new(4, 64), move |ctx| async move {
                for _ in 0..8 {
                    ctx.atomic_add_uniform(ctx.id().launch_mask, buf, 1).await;
                }
            })
            .unwrap()
            .cycles
        };
        assert!(c1 > unjittered, "jitter must lengthen the run");
    }

    #[test]
    fn spurious_cas_failures_only_delay_lock_free_progress() {
        // A lock-free fetch-add built on CAS: spurious failures force
        // retries but the final count must still be exact.
        let mut cfg = SimConfig::with_memory(1 << 16);
        cfg.fault = crate::fault::FaultPlan::cas_failures(11, 1, 4);
        let mut sim = Sim::new(cfg);
        let buf = sim.alloc(1).unwrap();
        let report = sim
            .launch(LaunchConfig::new(2, 64), move |ctx| async move {
                let launch = ctx.id().launch_mask;
                for l in launch.iter() {
                    let mut done = false;
                    while !done {
                        let cur = ctx.load_one(l, buf).await;
                        done = ctx.atomic_cas_one(l, buf, cur, cur + 1).await == cur;
                    }
                }
            })
            .unwrap();
        assert_eq!(sim.read(buf), 2 * 64);
        assert!(report.stats.spurious_cas_failures > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = small_sim();
            let buf = sim.alloc(1).unwrap();
            let report = sim
                .launch(LaunchConfig::new(16, 64), move |ctx| async move {
                    let mask = ctx.id().launch_mask;
                    for _ in 0..4 {
                        ctx.atomic_add_uniform(mask, buf, 1).await;
                    }
                })
                .unwrap();
            (report.cycles, sim.read(buf))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn block_residency_limits_respected() {
        // 1 block slot per SM, 1 SM: blocks strictly serialise.
        let mut cfg = SimConfig::with_memory(1 << 12);
        cfg.gpu = GpuConfig { sm_count: 1, max_warps_per_sm: 2, max_blocks_per_sm: 1 };
        let mut sim = Sim::new(cfg);
        let flag = sim.alloc(4).unwrap();
        let report = sim
            .launch(LaunchConfig::new(4, 32), move |ctx| async move {
                let mask = ctx.id().launch_mask;
                ctx.idle(100).await;
                ctx.atomic_add_uniform(mask, flag, 1).await;
            })
            .unwrap();
        assert_eq!(sim.read(flag), 4 * 32);
        // Serialised blocks: total time at least 4 × the idle period.
        assert!(report.cycles >= 400, "cycles={}", report.cycles);
    }

    #[test]
    fn launch_resets_stats_but_keeps_memory() {
        let mut sim = small_sim();
        let a = sim.alloc(1).unwrap();
        sim.write(a, 5);
        let r1 = sim
            .launch(LaunchConfig::new(1, 32), move |ctx| async move {
                ctx.atomic_add_uniform(ctx.id().launch_mask, a, 1).await;
            })
            .unwrap();
        assert!(r1.stats.atomics > 0);
        let r2 = sim.launch(LaunchConfig::new(1, 32), |_| async {}).unwrap();
        assert_eq!(r2.stats.atomics, 0);
        assert_eq!(sim.read(a), 5 + 32);
    }

    #[test]
    fn thread_ids_are_dense_and_unique() {
        let grid = LaunchConfig::new(3, 96);
        let id = WarpId {
            block: 2,
            warp_in_block: 1,
            threads_per_block: 96,
            launch_mask: LaneMask::FULL,
        };
        assert_eq!(id.thread_id(0), 2 * 96 + 32);
        assert_eq!(id.thread_id(31), 2 * 96 + 63);
        assert_eq!(grid.warps_per_block(), 3);
        assert_eq!(grid.total_threads(), 288);
    }

    #[test]
    fn parked_warp_woken_by_handle() {
        let mut sim = small_sim();
        let handoff: Rc<RefCell<Option<crate::WakeHandle>>> = Rc::default();
        let outcome: Rc<Cell<Option<crate::ParkOutcome>>> = Rc::default();
        let (h2, o2) = (Rc::clone(&handoff), Rc::clone(&outcome));
        let report = sim
            .launch(LaunchConfig::new(1, 64), move |ctx| {
                let handoff = Rc::clone(&h2);
                let outcome = Rc::clone(&o2);
                async move {
                    if ctx.id().warp_in_block == 0 {
                        // Publish the handle, then park forever: only the
                        // sibling warp's wake can resume us.
                        *handoff.borrow_mut() = Some(ctx.wake_handle());
                        let got = ctx.park(ctx.id().launch_mask, &[Addr(7)], u64::MAX).await;
                        outcome.set(Some(got));
                        ctx.mark_progress();
                    } else {
                        ctx.idle(500).await;
                        handoff.borrow_mut().take().expect("warp 0 parked first").wake();
                    }
                }
            })
            .unwrap();
        assert_eq!(outcome.get(), Some(crate::ParkOutcome::Woken));
        assert_eq!(report.stats.parks, 1);
        assert_eq!(report.stats.wakes, 1);
        // The parked warp burned no cycles of its own: the run is bounded
        // by the waker's 500-cycle idle plus small instruction costs.
        assert!(report.cycles < 1000, "cycles={}", report.cycles);
    }

    #[test]
    fn park_budget_expires_as_timeout() {
        let mut sim = small_sim();
        let outcome: Rc<Cell<Option<crate::ParkOutcome>>> = Rc::default();
        let o2 = Rc::clone(&outcome);
        let report = sim
            .launch(LaunchConfig::new(1, 32), move |ctx| {
                let outcome = Rc::clone(&o2);
                async move {
                    let got = ctx.park(ctx.id().launch_mask, &[], 10_000).await;
                    outcome.set(Some(got));
                    ctx.mark_progress();
                }
            })
            .unwrap();
        assert_eq!(outcome.get(), Some(crate::ParkOutcome::TimedOut));
        // The clock jumped straight to the deadline — the parked interval
        // is not simulated step by step.
        assert!(report.cycles >= 10_000, "cycles={}", report.cycles);
        assert!(report.cycles < 11_000, "cycles={}", report.cycles);
    }

    #[test]
    fn all_parked_forever_is_immediate_deadlock_with_addrs() {
        // Default watchdog is ~10^12 cycles: an immediate report proves the
        // executor detected the all-parked state rather than burning budget.
        let mut sim = small_sim();
        let err = sim
            .launch(LaunchConfig::new(1, 64), move |ctx| async move {
                let watched = [Addr(0x10), Addr(0xff)];
                ctx.park(ctx.id().launch_mask, &watched, u64::MAX).await;
            })
            .unwrap_err();
        match &err {
            SimError::Deadlock { cycle, unfinished } => {
                assert!(*cycle < 1_000, "immediate, got cycle {cycle}");
                assert_eq!(unfinished.len(), 2);
                for w in unfinished {
                    assert_eq!(w.parked_addrs, vec![Addr(0x10), Addr(0xff)]);
                    assert!(w.to_string().contains("parked on [0x10 0xff]"));
                }
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn wake_before_park_is_a_noop() {
        // A wake delivered while the target is still runnable is consumed
        // and dropped; the warp then parks and must rely on its budget.
        let mut sim = small_sim();
        let handoff: Rc<RefCell<Option<crate::WakeHandle>>> = Rc::default();
        let outcome: Rc<Cell<Option<crate::ParkOutcome>>> = Rc::default();
        let (h2, o2) = (Rc::clone(&handoff), Rc::clone(&outcome));
        sim.launch(LaunchConfig::new(1, 64), move |ctx| {
            let handoff = Rc::clone(&h2);
            let outcome = Rc::clone(&o2);
            async move {
                if ctx.id().warp_in_block == 0 {
                    *handoff.borrow_mut() = Some(ctx.wake_handle());
                    // Stay runnable long enough for the early wake to be
                    // drained as a no-op, then park.
                    ctx.idle(1_000).await;
                    let got = ctx.park(ctx.id().launch_mask, &[], 5_000).await;
                    outcome.set(Some(got));
                    ctx.mark_progress();
                } else {
                    // Fire immediately, long before warp 0 parks.
                    handoff.borrow_mut().take().expect("published first").wake();
                }
            }
        })
        .unwrap();
        assert_eq!(outcome.get(), Some(crate::ParkOutcome::TimedOut));
    }

    #[test]
    fn park_wake_is_deterministic() {
        let run = || {
            let mut sim = small_sim();
            let handoff: Rc<RefCell<Option<crate::WakeHandle>>> = Rc::default();
            let h2 = Rc::clone(&handoff);
            sim.launch(LaunchConfig::new(2, 64), move |ctx| {
                let handoff = Rc::clone(&h2);
                async move {
                    if ctx.id().block == 0 && ctx.id().warp_in_block == 0 {
                        *handoff.borrow_mut() = Some(ctx.wake_handle());
                        ctx.park(ctx.id().launch_mask, &[Addr(1)], 50_000).await;
                        ctx.mark_progress();
                    } else {
                        ctx.idle(200).await;
                        if let Some(h) = handoff.borrow_mut().take() {
                            h.wake();
                        }
                    }
                }
            })
            .unwrap()
            .cycles
        };
        assert_eq!(run(), run());
    }

    /// Picks a fixed runnable index each decision and logs every step.
    struct FixedPick {
        index: usize,
        steps: Rc<RefCell<Vec<StepRecord>>>,
    }

    impl crate::schedule::SchedulePolicy for FixedPick {
        fn pick(&mut self, _now: u64, runnable: &[RunnableWarp]) -> usize {
            self.index.min(runnable.len() - 1)
        }

        fn observe(&mut self, step: &StepRecord) {
            self.steps.borrow_mut().push(step.clone());
        }
    }

    fn ticket_order_under(index: usize) -> (Vec<u32>, Vec<StepRecord>) {
        let steps: Rc<RefCell<Vec<StepRecord>>> = Rc::default();
        let mut cfg = SimConfig::with_memory(1 << 16);
        cfg.schedule =
            Some(crate::schedule::PolicyHandle::new(FixedPick { index, steps: Rc::clone(&steps) }));
        let mut sim = Sim::new(cfg);
        let counter = sim.alloc(1).unwrap();
        let tickets = sim.alloc(4).unwrap();
        sim.launch(LaunchConfig::new(4, 1), move |ctx| async move {
            let mask = ctx.id().launch_mask;
            let t = ctx.atomic_add_uniform(mask, counter, 1).await;
            ctx.store_one(0, tickets.offset(ctx.id().block), t).await;
        })
        .unwrap();
        let order = sim.read_slice(tickets, 4);
        let log = steps.borrow().clone();
        (order, log)
    }

    #[test]
    fn schedule_policy_controls_interleaving() {
        // Always picking the first runnable warp runs blocks in order;
        // always picking the last reverses the ticket order.
        let (first, _) = ticket_order_under(0);
        assert_eq!(first, vec![0, 1, 2, 3]);
        let (last, _) = ticket_order_under(usize::MAX);
        assert_eq!(last, vec![3, 2, 1, 0]);
    }

    #[test]
    fn schedule_policy_observes_effects_and_retires() {
        let (_, log) = ticket_order_under(0);
        let atomics = log
            .iter()
            .filter(|s| matches!(s.effect, crate::schedule::StepEffect::Atomic(_)))
            .count();
        let stores = log
            .iter()
            .filter(|s| matches!(s.effect, crate::schedule::StepEffect::Store(_)))
            .count();
        let retires =
            log.iter().filter(|s| matches!(s.effect, crate::schedule::StepEffect::Retire)).count();
        assert_eq!(atomics, 4);
        assert_eq!(stores, 4);
        assert_eq!(retires, 4);
        // Every observed step names a real warp of the 4×1 grid.
        assert!(log.iter().all(|s| s.block < 4 && s.warp_in_block == 0));
    }
}
