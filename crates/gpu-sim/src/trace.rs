//! Cycle-timestamped structured event tracing for the simulator.
//!
//! Observability substrate for the telemetry layer (DESIGN.md §10): the
//! executor and [`WarpCtx`](crate::WarpCtx) emit one [`SimEvent`] per
//! interesting warp instruction — scheduling (spawn/retire), memory
//! accesses with their coalescing and cache outcome, atomics, fences and
//! idle/backoff spans — into a bounded ring buffer shared through a
//! [`TraceSink`].
//!
//! Tracing follows the same contract as the race detector
//! ([`crate::race`]): it is **pure observation**. Emission charges no
//! cycles and perturbs no schedules, so a run with a sink attached is
//! cycle-identical to the same run without one, and the default
//! (`SimConfig::trace == None`) makes every hook a no-op. The buffer is
//! bounded: once `capacity` events are held, the oldest event is dropped
//! and counted, so a pathological run cannot exhaust host memory.
//!
//! Consumers (the Chrome-trace exporter and the contention profiler) live
//! in `gpu-stm::trace` / `gpu-stm::profile`, where simulator events can be
//! merged with transaction-lifecycle events.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// The flavour of a traced memory instruction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MemOp {
    /// Warp load (coalesced or broadcast).
    Load,
    /// Warp store.
    Store,
    /// Warp atomic (CAS or read-modify-write).
    Atomic,
}

impl MemOp {
    /// Short lowercase label, used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            MemOp::Load => "load",
            MemOp::Store => "store",
            MemOp::Atomic => "atomic",
        }
    }
}

/// What happened (the payload of a [`SimEvent`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SimEventKind {
    /// The warp's future was created and admitted to the GPU.
    WarpStart,
    /// The warp ran to completion and released its residency slot.
    WarpRetire,
    /// A memory instruction, with its coalescing and cache outcome.
    Mem {
        /// Load, store or atomic.
        op: MemOp,
        /// Active lanes participating in the instruction.
        lanes: u32,
        /// 128-byte transactions the lane addresses coalesced into.
        transactions: u32,
        /// Transactions served from L2.
        l2_hits: u32,
        /// Transactions that went to DRAM.
        l2_misses: u32,
    },
    /// A `threadfence`.
    Fence,
    /// Busy/idle time explicitly charged by the kernel (pipeline work,
    /// backoff delays); `cycles` is the charged span.
    Idle {
        /// Length of the idle span in cycles.
        cycles: u64,
    },
    /// The warp descheduled itself onto the parked set (see
    /// [`WarpCtx::park`](crate::WarpCtx::park)): it burns no cycles until
    /// a wake or its park budget expires.
    Park {
        /// Number of device addresses the warp is waiting on.
        watched: u32,
    },
    /// The warp left the parked set and became runnable again.
    Wake {
        /// Whether the wake was a park-budget timeout rather than an
        /// explicit wake from a committer.
        timed_out: bool,
    },
}

/// One cycle-timestamped simulator event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SimEvent {
    /// Simulated cycle at which the instruction was issued.
    pub cycle: u64,
    /// Block index of the emitting warp.
    pub block: u32,
    /// Warp index within its block.
    pub warp: u32,
    /// Event payload.
    pub kind: SimEventKind,
}

/// Bounded ring buffer of [`SimEvent`]s.
///
/// `push` is O(1); once full, the oldest event is discarded and counted in
/// [`dropped`](TraceBuffer::dropped), so consumers can tell a complete
/// trace from a truncated one.
#[derive(Debug)]
pub struct TraceBuffer {
    events: VecDeque<SimEvent>,
    capacity: usize,
    emitted: u64,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceBuffer {
            events: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity,
            emitted: 0,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, ev: SimEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
        self.emitted += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &SimEvent> {
        self.events.iter()
    }

    /// Copies the retained events out, oldest first.
    pub fn snapshot(&self) -> Vec<SimEvent> {
        self.events.iter().copied().collect()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever pushed (including later-dropped ones).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Discards all retained events (counters keep accumulating).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Moves the retained events out, oldest first, leaving the buffer
    /// empty (counters keep accumulating). The epoch-windowed tap used
    /// by live observability: drain once per window and ship the slice.
    pub fn drain(&mut self) -> Vec<SimEvent> {
        self.events.drain(..).collect()
    }
}

/// Shared handle to a [`TraceBuffer`], cloned into
/// [`SimConfig::trace`](crate::SimConfig) and retained by the caller for
/// inspection after the run.
pub type TraceSink = Rc<RefCell<TraceBuffer>>;

/// Creates a [`TraceSink`] with the given ring capacity.
pub fn trace_sink(capacity: usize) -> TraceSink {
    Rc::new(RefCell::new(TraceBuffer::new(capacity)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{LaunchConfig, Sim, SimConfig};

    fn ev(cycle: u64) -> SimEvent {
        SimEvent { cycle, block: 0, warp: 0, kind: SimEventKind::Fence }
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let mut b = TraceBuffer::new(2);
        b.push(ev(1));
        b.push(ev(2));
        b.push(ev(3));
        assert_eq!(b.len(), 2);
        assert_eq!(b.emitted(), 3);
        assert_eq!(b.dropped(), 1);
        let cycles: Vec<u64> = b.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3]);
    }

    #[test]
    fn sim_emits_scheduling_memory_and_fence_events() {
        let sink = trace_sink(1 << 16);
        let mut cfg = SimConfig::with_memory(1 << 16);
        cfg.trace = Some(Rc::clone(&sink));
        let mut sim = Sim::new(cfg);
        let buf = sim.alloc(64).unwrap();
        sim.launch(LaunchConfig::new(1, 32), move |ctx| async move {
            let mask = ctx.id().launch_mask;
            let addrs = std::array::from_fn(|l| buf.offset(l as u32));
            let vals = [7u32; 32];
            ctx.store(mask, &addrs, &vals).await;
            let _ = ctx.load(mask, &addrs).await;
            ctx.fence(mask).await;
            ctx.atomic_add_uniform(mask, buf, 1).await;
            ctx.idle(10).await;
        })
        .unwrap();
        let b = sink.borrow();
        assert_eq!(b.dropped(), 0);
        let kinds: Vec<&SimEventKind> = b.events().map(|e| &e.kind).collect();
        assert!(matches!(kinds.first(), Some(SimEventKind::WarpStart)));
        assert!(matches!(kinds.last(), Some(SimEventKind::WarpRetire)));
        let mems = b.events().filter(|e| matches!(e.kind, SimEventKind::Mem { .. })).count();
        assert_eq!(mems, 3, "store + load + atomic");
        assert_eq!(b.events().filter(|e| e.kind == SimEventKind::Fence).count(), 1);
        assert!(b.events().any(|e| matches!(e.kind, SimEventKind::Idle { cycles: 10 })));
        // Timestamps are monotone: events are pushed in event-loop order.
        let cycles: Vec<u64> = b.events().map(|e| e.cycle).collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn tracing_does_not_change_cycle_counts() {
        let run = |traced: bool| {
            let mut cfg = SimConfig::with_memory(1 << 16);
            if traced {
                cfg.trace = Some(trace_sink(1 << 12));
            }
            let mut sim = Sim::new(cfg);
            let buf = sim.alloc(1).unwrap();
            sim.launch(LaunchConfig::new(8, 64), move |ctx| async move {
                for _ in 0..4 {
                    ctx.atomic_add_uniform(ctx.id().launch_mask, buf, 1).await;
                }
            })
            .unwrap()
            .cycles
        };
        assert_eq!(run(false), run(true));
    }
}
