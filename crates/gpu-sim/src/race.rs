//! Happens-before data-race detection over global memory.
//!
//! A FastTrack-style vector-clock detector adapted to the simulator's
//! warp-synchronous execution model (paper Section 3.2.1 motivates it:
//! GPU-STM is *weakly isolated*, so any non-transactional access that
//! conflicts with a transactional one is a correctness hazard that commit
//! history replay cannot see).
//!
//! Design choices, in the order they matter:
//!
//! - **Warps are the "threads".** A warp executes its lanes in lockstep
//!   and the simulator applies each warp instruction's memory effects
//!   atomically, so intra-warp conflicts (e.g. the deterministic
//!   highest-lane-wins store) are ordered by construction. Vector clocks
//!   are indexed by the warp's progress-board slot.
//! - **Sync addresses are learned, not declared.** Any word ever touched
//!   by an atomic instruction is permanently classified as a
//!   synchronization variable: an atomic access joins the warp's clock
//!   with the address's clock and publishes the result (acquire +
//!   release), a plain store to it publishes the warp's clock (release —
//!   the STM's lock-release and version-unlock idiom), and a plain load
//!   from it joins (acquire — spin-wait observation). Sync addresses are
//!   never race-checked themselves.
//! - **Speculative accesses are scoped, not ignored.** Kernels bracket
//!   transactions with [`WarpCtx::set_speculative`](crate::WarpCtx::set_speculative);
//!   a conflict in which *both* accesses are speculative is suppressed,
//!   because optimistic STMs race benignly on data words and resolve the
//!   conflict by validation/abort (tm-check's opacity replay covers
//!   those). A conflict with at least one *non-speculative* side is
//!   exactly the weak-isolation hazard and is reported.
//! - **Fences add no edges.** The simulator is sequentially consistent
//!   per warp instruction, so `threadfence` only orders a warp against
//!   itself, which program order already provides.
//!
//! Detection is pure observation: hooks charge no cycles and perturb no
//! schedules, so a run with detection enabled is cycle-identical to the
//! same run without it.

use crate::exec::WarpId;
use crate::memory::Addr;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// What an access did to the word.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Plain (non-atomic) load.
    Read,
    /// Plain (non-atomic) store.
    Write,
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        })
    }
}

/// One side of a racing pair.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct RaceAccess {
    /// Block index of the accessing warp.
    pub block: u32,
    /// Warp index within its block.
    pub warp_in_block: u32,
    /// Lane within the warp that issued the access (the lowest active
    /// lane for broadcast/uniform operations).
    pub lane: u32,
    /// Load or store.
    pub kind: AccessKind,
    /// Whether the access was inside a transaction's speculative scope.
    pub speculative: bool,
    /// Simulated cycle at which the access was issued.
    pub cycle: u64,
}

/// An unordered conflicting pair of global-memory accesses.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct DataRace {
    /// The contended word.
    pub addr: Addr,
    /// The earlier access (already recorded when the race was found).
    pub prior: RaceAccess,
    /// The access that completed the racing pair.
    pub current: RaceAccess,
}

impl std::fmt::Display for DataRace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tag = |s: bool| if s { " (tx)" } else { "" };
        write!(
            f,
            "data race on {:?}: {}{} by warp {}.{} lane {} at cycle {} is unordered with {}{} by warp {}.{} lane {} at cycle {}",
            self.addr,
            self.prior.kind,
            tag(self.prior.speculative),
            self.prior.block,
            self.prior.warp_in_block,
            self.prior.lane,
            self.prior.cycle,
            self.current.kind,
            tag(self.current.speculative),
            self.current.block,
            self.current.warp_in_block,
            self.current.lane,
            self.current.cycle,
        )
    }
}

/// Collected races for a launch (one report per contended word).
#[derive(Clone, Debug, Default)]
pub struct RaceLog {
    /// Races in detection order.
    pub races: Vec<DataRace>,
}

impl RaceLog {
    /// True when no race was observed.
    pub fn is_empty(&self) -> bool {
        self.races.is_empty()
    }
}

/// Shared handle through which the detector publishes races.
///
/// Store a clone in [`SimConfig::race`](crate::SimConfig) and inspect it
/// after the launch.
pub type RaceSink = Rc<RefCell<RaceLog>>;

/// Creates an empty [`RaceSink`].
pub fn race_sink() -> RaceSink {
    Rc::new(RefCell::new(RaceLog::default()))
}

type VectorClock = Vec<u64>;

fn join(into: &mut VectorClock, from: &VectorClock) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (i, v) in from.iter().enumerate() {
        into[i] = into[i].max(*v);
    }
}

#[derive(Clone, Debug)]
struct WarpClock {
    vc: VectorClock,
    speculative: bool,
    block: u32,
    warp_in_block: u32,
}

/// A recorded access epoch: warp `pslot` at its local time `clock`.
#[derive(Copy, Clone, Debug)]
struct Epoch {
    pslot: usize,
    clock: u64,
    lane: u32,
    speculative: bool,
    cycle: u64,
}

#[derive(Clone, Debug, Default)]
struct WordState {
    write: Option<Epoch>,
    /// Last read per warp slot (kept sparse; warps re-reading overwrite).
    reads: Vec<Epoch>,
}

/// The per-launch detector state. Owned by the simulator; reset on every
/// launch while the sink accumulates across launches.
#[derive(Debug)]
pub(crate) struct RaceDetector {
    sink: RaceSink,
    warps: Vec<WarpClock>,
    /// Addresses ever touched by an atomic: permanent sync variables.
    sync_addrs: HashSet<u32>,
    /// Release clocks of sync variables.
    sync_clocks: HashMap<u32, VectorClock>,
    /// Read/write history of ordinary data words.
    words: HashMap<u32, WordState>,
    /// Words already reported (one report per word keeps logs readable).
    reported: HashSet<u32>,
}

impl RaceDetector {
    pub(crate) fn new(sink: RaceSink) -> Self {
        RaceDetector {
            sink,
            warps: Vec::new(),
            sync_addrs: HashSet::new(),
            sync_clocks: HashMap::new(),
            words: HashMap::new(),
            reported: HashSet::new(),
        }
    }

    fn ensure(&mut self, pslot: usize, id: WarpId) {
        while self.warps.len() <= pslot {
            let p = self.warps.len();
            let mut vc = vec![0; p + 1];
            vc[p] = 1;
            self.warps.push(WarpClock {
                vc,
                speculative: false,
                block: id.block,
                warp_in_block: id.warp_in_block,
            });
        }
    }

    pub(crate) fn set_speculative(&mut self, pslot: usize, id: WarpId, on: bool) {
        self.ensure(pslot, id);
        self.warps[pslot].speculative = on;
    }

    /// `epoch` happens-before the current state of warp `pslot`.
    fn ordered(&self, pslot: usize, epoch: &Epoch) -> bool {
        epoch.pslot == pslot
            || self.warps[pslot].vc.get(epoch.pslot).copied().unwrap_or(0) >= epoch.clock
    }

    fn access(&self, pslot: usize, lane: u32, kind: AccessKind, cycle: u64) -> RaceAccess {
        let w = &self.warps[pslot];
        RaceAccess {
            block: w.block,
            warp_in_block: w.warp_in_block,
            lane,
            kind,
            speculative: w.speculative,
            cycle,
        }
    }

    fn epoch_access(&self, epoch: &Epoch, kind: AccessKind) -> RaceAccess {
        let w = &self.warps[epoch.pslot];
        RaceAccess {
            block: w.block,
            warp_in_block: w.warp_in_block,
            lane: epoch.lane,
            kind,
            speculative: epoch.speculative,
            cycle: epoch.cycle,
        }
    }

    fn report(&mut self, addr: u32, prior: RaceAccess, current: RaceAccess) {
        if self.reported.insert(addr) {
            self.sink.borrow_mut().races.push(DataRace { addr: Addr(addr), prior, current });
        }
    }

    /// Atomic instruction on `addr`: classify it as a sync variable and
    /// perform acquire + release (join both ways), then advance the warp's
    /// local clock so later accesses are distinguishable from this one.
    pub(crate) fn on_atomic(&mut self, pslot: usize, id: WarpId, addr: Addr, _cycle: u64) {
        self.ensure(pslot, id);
        let a = addr.0;
        if self.sync_addrs.insert(a) {
            // Newly classified: its plain-access history is retroactively
            // synchronization traffic, not data.
            self.words.remove(&a);
        }
        let lock = self.sync_clocks.entry(a).or_default();
        join(&mut self.warps[pslot].vc, lock);
        lock.clone_from(&self.warps[pslot].vc);
        self.tick(pslot);
    }

    /// Plain load of `addr` by warp `pslot` (issued by `lane`).
    pub(crate) fn on_read(&mut self, pslot: usize, id: WarpId, lane: u32, addr: Addr, cycle: u64) {
        self.ensure(pslot, id);
        let a = addr.0;
        if self.sync_addrs.contains(&a) {
            // Acquire: observing a sync word orders this warp after its
            // releasers (spin-wait on a lock or a published flag).
            if let Some(lock) = self.sync_clocks.get(&a) {
                let lock = lock.clone();
                join(&mut self.warps[pslot].vc, &lock);
            }
            return;
        }
        let spec = self.warps[pslot].speculative;
        let entry = self.words.entry(a).or_default();
        let write = entry.write;
        if let Some(wr) = write {
            if !(self.ordered(pslot, &wr) || (wr.speculative && spec)) {
                let prior = self.epoch_access(&wr, AccessKind::Write);
                let current = self.access(pslot, lane, AccessKind::Read, cycle);
                self.report(a, prior, current);
            }
        }
        let clock = self.warps[pslot].vc[pslot];
        let entry = self.words.entry(a).or_default();
        match entry.reads.iter_mut().find(|e| e.pslot == pslot) {
            Some(e) => *e = Epoch { pslot, clock, lane, speculative: spec, cycle },
            None => entry.reads.push(Epoch { pslot, clock, lane, speculative: spec, cycle }),
        }
    }

    /// Plain store to `addr` by warp `pslot` (issued by `lane`).
    pub(crate) fn on_write(&mut self, pslot: usize, id: WarpId, lane: u32, addr: Addr, cycle: u64) {
        self.ensure(pslot, id);
        let a = addr.0;
        if self.sync_addrs.contains(&a) {
            // Release: publishing to a sync word (lock release, version
            // unlock) makes this warp's history visible to later acquirers.
            let vc = self.warps[pslot].vc.clone();
            join(self.sync_clocks.entry(a).or_default(), &vc);
            self.tick(pslot);
            return;
        }
        let spec = self.warps[pslot].speculative;
        let state = self.words.entry(a).or_default();
        let write = state.write;
        let reads = state.reads.clone();
        if let Some(wr) = write {
            if !(self.ordered(pslot, &wr) || (wr.speculative && spec)) {
                let prior = self.epoch_access(&wr, AccessKind::Write);
                let current = self.access(pslot, lane, AccessKind::Write, cycle);
                self.report(a, prior, current);
            }
        }
        for rd in &reads {
            if rd.pslot != pslot && !self.ordered(pslot, rd) && !(rd.speculative && spec) {
                let prior = self.epoch_access(rd, AccessKind::Read);
                let current = self.access(pslot, lane, AccessKind::Write, cycle);
                self.report(a, prior, current);
            }
        }
        let clock = self.warps[pslot].vc[pslot];
        let state = self.words.entry(a).or_default();
        state.write = Some(Epoch { pslot, clock, lane, speculative: spec, cycle });
        state.reads.clear();
    }

    fn tick(&mut self, pslot: usize) {
        let w = &mut self.warps[pslot];
        w.vc[pslot] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{LaunchConfig, Sim, SimConfig};
    use crate::mask::LaneMask;
    use crate::memory::AtomicOp;

    fn traced_sim() -> (Sim, RaceSink) {
        let sink = race_sink();
        let mut cfg = SimConfig::with_memory(1 << 16);
        cfg.race = Some(sink.clone());
        (Sim::new(cfg), sink)
    }

    #[test]
    fn unordered_cross_warp_writes_race() {
        let (mut sim, sink) = traced_sim();
        let word = sim.alloc(1).unwrap();
        sim.launch(LaunchConfig::new(1, 64), move |ctx| async move {
            ctx.store_one(0, word, ctx.id().warp_in_block + 1).await;
        })
        .unwrap();
        let log = sink.borrow();
        assert_eq!(log.races.len(), 1, "{:?}", log.races);
        let r = &log.races[0];
        assert_eq!(r.addr, word);
        assert_eq!(r.prior.kind, AccessKind::Write);
        assert_eq!(r.current.kind, AccessKind::Write);
        assert!(!r.prior.speculative && !r.current.speculative);
    }

    #[test]
    fn read_write_conflict_races_and_read_read_does_not() {
        let (mut sim, sink) = traced_sim();
        let a = sim.alloc(2).unwrap();
        sim.launch(LaunchConfig::new(1, 64), move |ctx| async move {
            // Every warp reads word 0 (read/read: fine); warp 1 also
            // writes word 1 that warp 0 read (read/write: race).
            let _ = ctx.load_one(0, a).await;
            if ctx.id().warp_in_block == 0 {
                let _ = ctx.load_one(0, a.offset(1)).await;
            } else {
                ctx.store_one(0, a.offset(1), 7).await;
            }
        })
        .unwrap();
        let log = sink.borrow();
        assert_eq!(log.races.len(), 1, "{:?}", log.races);
        assert_eq!(log.races[0].addr, a.offset(1));
    }

    #[test]
    fn intra_warp_conflicts_are_ordered_by_lockstep() {
        let (mut sim, sink) = traced_sim();
        let word = sim.alloc(1).unwrap();
        sim.launch(LaunchConfig::new(1, 32), move |ctx| async move {
            // All 32 lanes store the same word in one instruction
            // (highest lane wins) and then read it back.
            let mask = ctx.id().launch_mask;
            let addrs = [word; crate::mask::WARP_SIZE];
            let vals: [u32; crate::mask::WARP_SIZE] = std::array::from_fn(|l| l as u32);
            ctx.store(mask, &addrs, &vals).await;
            let _ = ctx.load(mask, &addrs).await;
        })
        .unwrap();
        assert!(sink.borrow().is_empty(), "{:?}", sink.borrow().races);
    }

    #[test]
    fn atomic_handoff_orders_accesses() {
        let (mut sim, sink) = traced_sim();
        let word = sim.alloc(1).unwrap();
        let flag = sim.alloc(1).unwrap();
        sim.launch(LaunchConfig::new(1, 64), move |ctx| async move {
            if ctx.id().warp_in_block == 0 {
                ctx.store_one(0, word, 42).await;
                // Release: atomically publish the flag.
                ctx.atomic_rmw(
                    LaneMask::lane(0),
                    AtomicOp::Or,
                    &[flag; crate::mask::WARP_SIZE],
                    &[1; crate::mask::WARP_SIZE],
                )
                .await;
            } else {
                // Acquire: spin on the flag, then read the word.
                while ctx.load_one(0, flag).await == 0 {
                    ctx.idle(50).await;
                }
                let v = ctx.load_one(0, word).await;
                assert_eq!(v, 42);
            }
        })
        .unwrap();
        assert!(sink.borrow().is_empty(), "{:?}", sink.borrow().races);
    }

    #[test]
    fn speculative_pairs_are_suppressed_but_mixed_pairs_flagged() {
        let (mut sim, sink) = traced_sim();
        let a = sim.alloc(2).unwrap();
        sim.launch(LaunchConfig::new(1, 96), move |ctx| async move {
            match ctx.id().warp_in_block {
                0 => {
                    // Transaction racing with warp 1's transaction on
                    // word 0 (benign: validation arbitrates) and with
                    // warp 2's *plain* write on word 1 (weak-isolation
                    // hazard).
                    ctx.set_speculative(true);
                    ctx.store_one(0, a, 1).await;
                    ctx.store_one(0, a.offset(1), 5).await;
                    ctx.set_speculative(false);
                }
                1 => {
                    ctx.set_speculative(true);
                    ctx.store_one(0, a, 2).await;
                    ctx.set_speculative(false);
                }
                _ => {
                    ctx.store_one(0, a.offset(1), 6).await;
                }
            }
        })
        .unwrap();
        let log = sink.borrow();
        assert_eq!(log.races.len(), 1, "{:?}", log.races);
        assert_eq!(log.races[0].addr, a.offset(1));
        assert!(log.races[0].prior.speculative != log.races[0].current.speculative);
    }

    #[test]
    fn sync_addresses_are_never_race_checked() {
        let (mut sim, sink) = traced_sim();
        let lock = sim.alloc(1).unwrap();
        sim.launch(LaunchConfig::new(1, 64), move |ctx| async move {
            // Acquire-by-atomic, release-by-plain-store: the STM's lock
            // idiom. The lock word itself must not be reported.
            loop {
                let old = ctx.atomic_cas_one(0, lock, 0, 1).await;
                if old == 0 {
                    break;
                }
                ctx.idle(30).await;
            }
            ctx.store_one(0, lock, 0).await;
        })
        .unwrap();
        assert!(sink.borrow().is_empty(), "{:?}", sink.borrow().races);
    }

    #[test]
    fn detection_is_cycle_invariant() {
        let run = |race: Option<RaceSink>| {
            let mut cfg = SimConfig::with_memory(1 << 16);
            cfg.race = race;
            let mut sim = Sim::new(cfg);
            let buf = sim.alloc(64).unwrap();
            sim.launch(LaunchConfig::new(4, 64), move |ctx| async move {
                let mask = ctx.id().launch_mask;
                for i in 0..8 {
                    ctx.atomic_add_uniform(mask, buf.offset(i), 1).await;
                    let addrs = std::array::from_fn(|l| buf.offset(32 + ((l as u32 + i) % 32)));
                    let _ = ctx.load(mask, &addrs).await;
                }
            })
            .unwrap()
            .cycles
        };
        assert_eq!(run(None), run(Some(race_sink())));
    }
}
