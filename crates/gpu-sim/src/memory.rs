//! Word-addressed simulated global memory (GPU DRAM) with atomic primitives.
//!
//! GPU-STM is a *word-based* STM, so the simulator exposes memory as an array
//! of 32-bit words. Addresses are word indices wrapped in the [`Addr`]
//! newtype. A simple bump allocator hands out zero-initialised regions, like
//! `cudaMalloc` on a fresh device.
//!
//! Atomic read-modify-write operations are executed at a single point in the
//! simulation's global order (the executor totally orders warp instructions),
//! which models the GPU's L2-atomic semantics.

use crate::error::SimError;
use std::fmt;

/// A word address in simulated global memory.
///
/// One `Addr` unit is one 32-bit word (i.e. byte address / 4). The newtype
/// prevents mixing raw indices and device addresses.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u32);

impl Addr {
    /// The null address. The allocator never returns it for user data
    /// (word 0 is reserved), so it is usable as a sentinel.
    pub const NULL: Addr = Addr(0);

    /// Returns the address `words` words past `self`.
    #[inline]
    pub const fn offset(self, words: u32) -> Addr {
        Addr(self.0 + words)
    }

    /// Word index of this address.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The 128-byte (32-word) memory segment this address falls in.
    /// Coalescing and the L2 cache both operate on these segments.
    #[inline]
    pub const fn segment(self) -> u32 {
        self.0 / crate::coalesce::SEGMENT_WORDS
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// An atomic read-modify-write operation, as provided by GPU load/store
/// units. All return the *old* word value.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AtomicOp {
    /// `old = *a; *a = old + v`
    Add,
    /// `old = *a; *a = old | v`
    Or,
    /// `old = *a; *a = old & v`
    And,
    /// `old = *a; *a = v`
    Exch,
    /// `old = *a; *a = max(old, v)`
    Max,
}

/// Simulated device global memory.
///
/// Host-side code (the test/benchmark harness) may freely read and write via
/// [`GlobalMemory::read`]/[`GlobalMemory::write`] before and after kernel
/// launches; during a launch all traffic flows through the executor so that
/// it is timed and totally ordered.
#[derive(Debug)]
pub struct GlobalMemory {
    words: Vec<u32>,
    brk: u32,
    mutations: u64,
}

impl GlobalMemory {
    /// Creates a memory of `capacity_words` zeroed words.
    ///
    /// Word 0 is reserved so that [`Addr::NULL`] never aliases user data.
    pub fn new(capacity_words: usize) -> Self {
        GlobalMemory { words: vec![0; capacity_words.max(1)], brk: 1, mutations: 0 }
    }

    /// Count of word writes that actually *changed* a value. The progress
    /// monitor uses this to tell a livelock (busy mutation without
    /// progress) from a deadlock (no mutation at all): spinning on a held
    /// lock — failed CASes, re-`Or`ing an already-set bit — changes
    /// nothing and therefore registers no mutation.
    #[inline]
    pub fn mutations(&self) -> u64 {
        self.mutations
    }

    /// Number of words of capacity.
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    /// Words currently allocated (including the reserved word 0).
    pub fn allocated(&self) -> usize {
        self.brk as usize
    }

    /// Allocates `n` zero-initialised words and returns their base address.
    ///
    /// Allocations are aligned to 128-byte coalescing segments, as
    /// `cudaMalloc` guarantees (it aligns to at least 256 bytes).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] if the region does not fit.
    pub fn alloc(&mut self, n: u32) -> Result<Addr, SimError> {
        let seg = crate::coalesce::SEGMENT_WORDS;
        let base = self.brk.div_ceil(seg) * seg;
        let end = base.checked_add(n).ok_or(SimError::OutOfMemory { requested: n as usize })?;
        if end as usize > self.words.len() {
            return Err(SimError::OutOfMemory { requested: n as usize });
        }
        self.brk = end;
        Ok(Addr(base))
    }

    /// Reads the word at `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of bounds (an address never produced by
    /// [`alloc`](Self::alloc)).
    #[inline]
    pub fn read(&self, a: Addr) -> u32 {
        self.words[a.index()]
    }

    /// Writes `v` to the word at `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of bounds.
    #[inline]
    pub fn write(&mut self, a: Addr, v: u32) {
        let slot = &mut self.words[a.index()];
        self.mutations += u64::from(*slot != v);
        *slot = v;
    }

    /// Fills `n` words starting at `a` with `v`.
    pub fn fill(&mut self, a: Addr, n: u32, v: u32) {
        let s = a.index();
        self.words[s..s + n as usize].fill(v);
    }

    /// Copies a host slice into device memory at `a`.
    pub fn write_slice(&mut self, a: Addr, data: &[u32]) {
        let s = a.index();
        self.words[s..s + data.len()].copy_from_slice(data);
    }

    /// Copies `n` device words starting at `a` to a host vector.
    pub fn read_slice(&self, a: Addr, n: u32) -> Vec<u32> {
        let s = a.index();
        self.words[s..s + n as usize].to_vec()
    }

    /// Compare-and-swap: if `*a == cmp`, store `new`. Returns the old value.
    #[inline]
    pub fn atomic_cas(&mut self, a: Addr, cmp: u32, new: u32) -> u32 {
        let old = self.words[a.index()];
        if old == cmp {
            self.mutations += u64::from(old != new);
            self.words[a.index()] = new;
        }
        old
    }

    /// Applies `op` with operand `v` at `a`; returns the old value.
    #[inline]
    pub fn atomic_rmw(&mut self, op: AtomicOp, a: Addr, v: u32) -> u32 {
        let slot = &mut self.words[a.index()];
        let old = *slot;
        *slot = match op {
            AtomicOp::Add => old.wrapping_add(v),
            AtomicOp::Or => old | v,
            AtomicOp::And => old & v,
            AtomicOp::Exch => v,
            AtomicOp::Max => old.max(v),
        };
        self.mutations += u64::from(*slot != old);
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_disjoint_zeroed_regions() {
        let mut m = GlobalMemory::new(128);
        let a = m.alloc(8).unwrap();
        let b = m.alloc(8).unwrap();
        assert_ne!(a, b);
        assert!(b.0 >= a.0 + 8);
        for i in 0..8 {
            assert_eq!(m.read(a.offset(i)), 0);
        }
    }

    #[test]
    fn alloc_never_returns_null() {
        let mut m = GlobalMemory::new(128);
        let a = m.alloc(1).unwrap();
        assert_ne!(a, Addr::NULL);
    }

    #[test]
    fn out_of_memory() {
        let mut m = GlobalMemory::new(128);
        assert!(m.alloc(2).is_ok());
        let err = m.alloc(100).unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }));
    }

    #[test]
    fn allocations_are_segment_aligned() {
        let mut m = GlobalMemory::new(256);
        let a = m.alloc(5).unwrap();
        let b = m.alloc(5).unwrap();
        assert_eq!(a.0 % crate::coalesce::SEGMENT_WORDS, 0);
        assert_eq!(b.0 % crate::coalesce::SEGMENT_WORDS, 0);
        assert_ne!(a.segment(), b.segment());
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = GlobalMemory::new(128);
        let a = m.alloc(4).unwrap();
        m.write(a.offset(2), 0xdead_beef);
        assert_eq!(m.read(a.offset(2)), 0xdead_beef);
    }

    #[test]
    fn cas_success_and_failure() {
        let mut m = GlobalMemory::new(128);
        let a = m.alloc(1).unwrap();
        assert_eq!(m.atomic_cas(a, 0, 7), 0);
        assert_eq!(m.read(a), 7);
        // Failing CAS leaves the value untouched and reports the old value.
        assert_eq!(m.atomic_cas(a, 0, 9), 7);
        assert_eq!(m.read(a), 7);
    }

    #[test]
    fn rmw_semantics() {
        let mut m = GlobalMemory::new(128);
        let a = m.alloc(1).unwrap();
        assert_eq!(m.atomic_rmw(AtomicOp::Add, a, 5), 0);
        assert_eq!(m.atomic_rmw(AtomicOp::Or, a, 0b1010), 5);
        assert_eq!(m.read(a), 5 | 0b1010);
        assert_eq!(m.atomic_rmw(AtomicOp::Exch, a, 42), 5 | 0b1010);
        assert_eq!(m.atomic_rmw(AtomicOp::And, a, 0b10), 42);
        assert_eq!(m.read(a), 42 & 0b10);
        assert_eq!(m.atomic_rmw(AtomicOp::Max, a, 100), 2);
        assert_eq!(m.read(a), 100);
    }

    #[test]
    fn add_wraps() {
        let mut m = GlobalMemory::new(128);
        let a = m.alloc(1).unwrap();
        m.write(a, u32::MAX);
        assert_eq!(m.atomic_rmw(AtomicOp::Add, a, 1), u32::MAX);
        assert_eq!(m.read(a), 0);
    }

    #[test]
    fn slice_roundtrip() {
        let mut m = GlobalMemory::new(128);
        let a = m.alloc(8).unwrap();
        m.write_slice(a, &[1, 2, 3, 4]);
        assert_eq!(m.read_slice(a, 4), vec![1, 2, 3, 4]);
        m.fill(a, 4, 9);
        assert_eq!(m.read_slice(a, 5), vec![9, 9, 9, 9, 0]);
    }

    #[test]
    fn addr_segment() {
        assert_eq!(Addr(0).segment(), 0);
        assert_eq!(Addr(31).segment(), 0);
        assert_eq!(Addr(32).segment(), 1);
    }
}
