//! The simulator's timing model.
//!
//! Latencies are in shader-core cycles, calibrated to published Fermi-class
//! figures (global memory ~400–800 cycles, L2 hit ~120–200, ALU pipeline a
//! few cycles). The evaluation compares *ratios* of simulated cycle counts
//! (speedup over CGL), so the model needs the right order relationships —
//! memory ≫ L2 ≫ local ≫ ALU, extra coalesced transactions serialise —
//! rather than exact magnitudes.

use crate::cache::CacheOutcome;
use crate::json::JsonWriter;

/// Cycle costs charged per warp instruction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TimingModel {
    /// Pipeline latency of an arithmetic warp instruction.
    pub alu: u64,
    /// Latency of a global access whose line hits in L2.
    pub l2_hit: u64,
    /// Latency of a global access that goes to DRAM.
    pub dram: u64,
    /// Additional issue cycles for each coalesced transaction past the
    /// first (address-divergence serialisation in the load/store unit).
    pub extra_transaction: u64,
    /// Base latency of an atomic operation (executed at the L2).
    pub atomic: u64,
    /// Extra serialisation per additional lane hitting the *same word*
    /// in one atomic warp instruction.
    pub atomic_same_word: u64,
    /// Cost of `threadfence()`.
    pub fence: u64,
    /// Cost of one warp access to thread-local metadata (L1-cached
    /// read-/write-set storage: the paper keeps local metadata cacheable
    /// at L1 and L2).
    pub local_access: u64,
}

impl TimingModel {
    /// Fermi C2070-like defaults.
    pub fn fermi() -> Self {
        TimingModel {
            alu: 4,
            l2_hit: 130,
            dram: 440,
            extra_transaction: 20,
            atomic: 160,
            atomic_same_word: 40,
            fence: 60,
            local_access: 28,
        }
    }

    /// A uniform unit-cost model: every instruction costs 1 cycle.
    /// Useful in tests where only the interleaving matters.
    pub fn unit() -> Self {
        TimingModel {
            alu: 1,
            l2_hit: 1,
            dram: 1,
            extra_transaction: 0,
            atomic: 1,
            atomic_same_word: 0,
            fence: 1,
            local_access: 1,
        }
    }

    /// Latency of a memory instruction that issued `transactions`
    /// transactions with the given per-transaction cache outcomes.
    ///
    /// The slowest transaction dominates the latency; each extra
    /// transaction adds issue serialisation on top.
    pub fn memory_cost(&self, outcomes: &[CacheOutcome]) -> u64 {
        if outcomes.is_empty() {
            return self.alu;
        }
        let worst = if outcomes.contains(&CacheOutcome::Miss) { self.dram } else { self.l2_hit };
        worst + (outcomes.len() as u64 - 1) * self.extra_transaction
    }

    /// Latency of an atomic warp instruction: `transactions` distinct
    /// lines, `depth` = max lanes contending on one word.
    pub fn atomic_cost(&self, transactions: u32, depth: u32) -> u64 {
        if transactions == 0 {
            return self.alu;
        }
        self.atomic
            + (transactions as u64 - 1) * self.extra_transaction
            + depth.saturating_sub(1) as u64 * self.atomic_same_word
    }

    /// Serializes the latency table into `w` as a JSON object (stable
    /// field order), so run reports record the model they were produced
    /// under.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("alu", self.alu);
        w.field_u64("l2_hit", self.l2_hit);
        w.field_u64("dram", self.dram);
        w.field_u64("extra_transaction", self.extra_transaction);
        w.field_u64("atomic", self.atomic);
        w.field_u64("atomic_same_word", self.atomic_same_word);
        w.field_u64("fence", self.fence);
        w.field_u64("local_access", self.local_access);
        w.end_object();
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::fermi()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheOutcome::{Hit, Miss};

    #[test]
    fn memory_cost_orders_hit_below_miss() {
        let t = TimingModel::fermi();
        assert!(t.memory_cost(&[Hit]) < t.memory_cost(&[Miss]));
    }

    #[test]
    fn one_miss_dominates() {
        let t = TimingModel::fermi();
        assert_eq!(t.memory_cost(&[Hit, Miss]), t.dram + t.extra_transaction);
    }

    #[test]
    fn empty_access_costs_alu() {
        let t = TimingModel::fermi();
        assert_eq!(t.memory_cost(&[]), t.alu);
        assert_eq!(t.atomic_cost(0, 0), t.alu);
    }

    #[test]
    fn uncoalesced_costs_more() {
        let t = TimingModel::fermi();
        let one = t.memory_cost(&[Hit]);
        let many = t.memory_cost(&[Hit; 32]);
        assert_eq!(many - one, 31 * t.extra_transaction);
    }

    #[test]
    fn atomic_contention_serialises() {
        let t = TimingModel::fermi();
        let free = t.atomic_cost(1, 1);
        let contended = t.atomic_cost(1, 32);
        assert_eq!(contended - free, 31 * t.atomic_same_word);
    }

    #[test]
    fn unit_model_is_unit() {
        let t = TimingModel::unit();
        assert_eq!(t.memory_cost(&[Miss; 4]), 1);
        assert_eq!(t.atomic_cost(4, 8), 1);
    }
}
