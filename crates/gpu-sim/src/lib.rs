//! # gpu-sim — a deterministic SIMT GPU simulator
//!
//! This crate is the execution substrate for the GPU-STM reproduction
//! (Xu et al., *Software Transactional Memory for GPU Architectures*,
//! CGO 2014). It models the architectural features the paper's design
//! responds to:
//!
//! - **Massive multithreading**: grids of thread blocks dispatched onto
//!   SMs with residency limits ([`GpuConfig`]).
//! - **SIMT lockstep execution**: kernels are written warp-wide; every
//!   operation takes a [`LaneMask`] and executes for all active lanes in
//!   one warp instruction. Divergence = narrowing masks ([`simt`]).
//! - **Memory-access coalescing**: the 32 lane addresses of an instruction
//!   merge into 128-byte transactions ([`coalesce`]), which the timing
//!   model charges.
//! - **Atomics and fences**: CAS/ADD/OR/… executed in a single global
//!   total order of warp instructions, as at the GPU's L2.
//!
//! Execution is single-threaded and fully deterministic: warps are futures
//! interleaved by a discrete-event scheduler at warp-instruction
//! granularity, and performance is reported in simulated cycles.
//!
//! ## Example
//!
//! ```
//! use gpu_sim::{LaunchConfig, Sim, SimConfig};
//!
//! # fn main() -> Result<(), gpu_sim::SimError> {
//! let mut sim = Sim::new(SimConfig::with_memory(1 << 16));
//! let counter = sim.alloc(1)?;
//! sim.launch(LaunchConfig::new(4, 128), move |ctx| async move {
//!     ctx.atomic_add_uniform(ctx.id().launch_mask, counter, 1).await;
//! })?;
//! assert_eq!(sim.read(counter), 4 * 128);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod coalesce;
mod error;
mod exec;
pub mod fault;
pub mod json;
pub mod mask;
pub mod memory;
pub mod race;
pub mod rng;
pub mod schedule;
pub mod simt;
pub mod stats;
pub mod timing;
pub mod trace;
mod warp;

pub use cache::{CacheCheckpoint, CacheConfig, L2Cache};
pub use error::{SimError, WarpProgress};
pub use exec::{GpuConfig, LaunchConfig, RunReport, Sim, SimCheckpoint, SimConfig, WarpId};
pub use fault::FaultPlan;
pub use json::JsonWriter;
pub use mask::{LaneMask, WARP_SIZE};
pub use memory::{Addr, AtomicOp, GlobalMemory};
pub use race::{race_sink, AccessKind, DataRace, RaceAccess, RaceLog, RaceSink};
pub use rng::WarpRng;
pub use schedule::{PolicyHandle, RunnableWarp, SchedulePolicy, StepEffect, StepRecord};
pub use stats::SimStats;
pub use timing::TimingModel;
pub use trace::{trace_sink, MemOp, SimEvent, SimEventKind, TraceBuffer, TraceSink};
pub use warp::{LaneAddrs, LaneVals, ParkOutcome, WakeHandle, WarpCtx};
