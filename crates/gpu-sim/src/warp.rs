//! The warp-wide kernel programming interface.
//!
//! Kernels are written in *warp-synchronous* style, the same discipline CUDA
//! warp-level programming uses: one [`WarpCtx`] represents a whole warp, and
//! every operation takes a [`LaneMask`] naming the active lanes. Each
//! `await` is one warp instruction executed in lockstep by those lanes —
//! exactly the granularity at which the paper's Algorithm 3 is specified.
//!
//! Lane-divergent control flow is expressed by narrowing masks (see
//! [`crate::simt`] for structured helpers); because a masked-off lane simply
//! does not participate in subsequent instructions until its sub-mask is
//! re-activated, the model reproduces SIMT pathologies such as the
//! spin-lock deadlock and multi-lock livelock of the paper's Section 2.2.

use crate::coalesce::{atomic_conflict_depth, coalesce, coalesce_uniform, Coalesced};
use crate::exec::{SimState, WarpId};
use crate::mask::{LaneMask, WARP_SIZE};
use crate::memory::{Addr, AtomicOp};
use crate::schedule::{effect_addrs, StepEffect};
use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

/// Per-lane values for one warp instruction (one slot per lane).
pub type LaneVals = [u32; WARP_SIZE];
/// Per-lane addresses for one warp instruction.
pub type LaneAddrs = [Addr; WARP_SIZE];

/// Park/wake handshake between a warp and the event loop, carried in a
/// shared cell exactly like `pending_cost`: [`WarpCtx::park`] writes
/// `Request`, the executor moves the warp onto the parked set, and the
/// eventual unpark writes `Woken`/`TimedOut` before requeueing.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub(crate) enum ParkSignal {
    /// No park in flight.
    #[default]
    None,
    /// The warp asked to park until `deadline` (`u64::MAX` = no timeout).
    Request {
        /// Absolute cycle at which the park times out.
        deadline: u64,
    },
    /// The executor woke the warp because a [`WakeHandle`] fired.
    Woken,
    /// The executor woke the warp because its park budget expired.
    TimedOut,
}

/// Why a parked warp resumed (the return value of [`WarpCtx::park`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ParkOutcome {
    /// A [`WakeHandle`] for this warp fired (a committer touched a watched
    /// address, or an injected spurious wake).
    Woken,
    /// The park budget expired with no wake: the caller must re-check its
    /// condition (a timeout is indistinguishable from a spurious wake).
    TimedOut,
}

/// A host-side handle that makes one parked warp runnable again.
///
/// Obtained from [`WarpCtx::wake_handle`] *by the warp that will park* and
/// handed to whoever watches for the wake condition (e.g. an address-keyed
/// waker registry). Firing it is idempotent and cheap; waking a warp that
/// is not parked is a no-op at the executor (the wake is consumed and
/// dropped), so wake/park races are safe by construction.
#[derive(Clone, Debug)]
pub struct WakeHandle {
    queue: Rc<RefCell<Vec<usize>>>,
    pslot: usize,
}

impl WakeHandle {
    /// Enqueues a wake for the associated warp. Delivered by the event
    /// loop before its next scheduling decision.
    pub fn wake(&self) {
        self.queue.borrow_mut().push(self.pslot);
    }
}

/// Handle through which a warp issues instructions to the simulator.
///
/// Obtained as the argument of the kernel closure passed to
/// [`Sim::launch`](crate::Sim::launch). Cheap to clone (it is a pair of
/// reference-counted pointers).
#[derive(Clone)]
pub struct WarpCtx {
    st: Rc<RefCell<SimState>>,
    id: WarpId,
    pending_cost: Rc<Cell<u64>>,
    pending_park: Rc<Cell<ParkSignal>>,
    /// Index of this warp's entry on the launch's progress board.
    pslot: usize,
}

impl std::fmt::Debug for WarpCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarpCtx").field("id", &self.id).finish_non_exhaustive()
    }
}

enum MemKind {
    Load,
    Store,
    Atomic,
}

impl WarpCtx {
    pub(crate) fn new(
        st: Rc<RefCell<SimState>>,
        id: WarpId,
        pending_cost: Rc<Cell<u64>>,
        pending_park: Rc<Cell<ParkSignal>>,
        pslot: usize,
    ) -> Self {
        WarpCtx { st, id, pending_cost, pending_park, pslot }
    }

    /// This warp's identity (block, warp index, launch mask, thread ids).
    pub fn id(&self) -> WarpId {
        self.id
    }

    /// Current simulated cycle (the issue time of the next instruction).
    pub fn now(&self) -> u64 {
        self.st.borrow().now
    }

    fn note_instruction(&self, mask: LaneMask) {
        let st = &mut *self.st.borrow_mut();
        st.stats.instructions += 1;
        st.stats.active_lanes += mask.count() as u64;
        st.stats.lane_slots += WARP_SIZE as u64;
        if mask != self.id.launch_mask && mask.any() {
            st.stats.divergent_instructions += 1;
        }
        st.progress.warps[self.pslot].instructions += 1;
    }

    /// Declares that this warp made forward progress (e.g. committed a
    /// transaction or completed a work item). The progress monitor uses
    /// these marks to tell a kernel that is merely slow
    /// ([`SimError::BudgetExceeded`](crate::SimError::BudgetExceeded))
    /// from one that is deadlocked or livelocked; see
    /// [`SimConfig::stall_cycles`](crate::SimConfig::stall_cycles).
    pub fn mark_progress(&self) {
        let st = &mut *self.st.borrow_mut();
        let now = st.now;
        st.progress.mark(self.pslot, now);
    }

    /// Records a device-memory mutation (a word actually changed value)
    /// for deadlock/livelock discrimination, given the mutation counter
    /// observed before the operation.
    fn note_mutation(st: &mut SimState, mutations_before: u64) {
        if st.mem.mutations() != mutations_before {
            let now = st.now;
            st.progress.last_mutation_cycle = st.progress.last_mutation_cycle.max(now);
        }
    }

    /// Marks the warp's subsequent accesses as speculative (inside a
    /// transaction) or not, for happens-before race classification: a
    /// conflict where *both* sides are speculative is the STM's to
    /// resolve (validation/abort), while a speculative/non-speculative
    /// conflict is the weak-isolation hazard the detector reports. A
    /// no-op when no race sink is configured; never charges cycles.
    pub fn set_speculative(&self, on: bool) {
        let st = &mut *self.st.borrow_mut();
        if let Some(r) = st.race.as_mut() {
            r.set_speculative(self.pslot, self.id, on);
        }
    }

    fn charge(&self, cost: u64) -> YieldOnce {
        self.pending_cost.set(self.pending_cost.get() + cost);
        YieldOnce(false)
    }

    fn mem_access(&self, kind: MemKind, mask: LaneMask, co: &Coalesced, depth: u32) -> u64 {
        let st = &mut *self.st.borrow_mut();
        let outcomes: Vec<_> = co.segments.iter().map(|s| st.cache.access(*s)).collect();
        st.stats.mem_transactions += co.transactions() as u64;
        st.stats.uncoalesced_transactions += mask.count() as u64;
        let mut hits = 0u32;
        let mut misses = 0u32;
        for o in &outcomes {
            match o {
                crate::cache::CacheOutcome::Hit => hits += 1,
                crate::cache::CacheOutcome::Miss => misses += 1,
            }
        }
        st.stats.l2_hits += hits as u64;
        st.stats.l2_misses += misses as u64;
        let op = match kind {
            MemKind::Load => {
                st.stats.loads += 1;
                crate::trace::MemOp::Load
            }
            MemKind::Store => {
                st.stats.stores += 1;
                crate::trace::MemOp::Store
            }
            MemKind::Atomic => {
                st.stats.atomics += 1;
                crate::trace::MemOp::Atomic
            }
        };
        st.emit(
            self.id.block,
            self.id.warp_in_block,
            crate::trace::SimEventKind::Mem {
                op,
                lanes: mask.count(),
                transactions: co.transactions(),
                l2_hits: hits,
                l2_misses: misses,
            },
        );
        match kind {
            MemKind::Atomic => st.timing.atomic_cost(co.transactions(), depth),
            _ => st.timing.memory_cost(&outcomes),
        }
    }

    /// Warp load: each active lane reads its address. Returns per-lane
    /// values (inactive lanes read 0).
    pub async fn load(&self, mask: LaneMask, addrs: &LaneAddrs) -> LaneVals {
        self.note_instruction(mask);
        let mut out = [0u32; WARP_SIZE];
        let cost = {
            let co = coalesce(mask, addrs);
            let cost = self.mem_access(MemKind::Load, mask, &co, 0);
            let st = &mut *self.st.borrow_mut();
            for lane in mask.iter() {
                out[lane] = st.mem.read(addrs[lane]);
            }
            if let Some(r) = st.race.as_mut() {
                for lane in mask.iter() {
                    r.on_read(self.pslot, self.id, lane as u32, addrs[lane], st.now);
                }
            }
            if st.observe_effects {
                st.last_effect = Some(StepEffect::Load(effect_addrs(mask, addrs)));
            }
            cost
        };
        self.charge(cost).await;
        out
    }

    /// Warp load where every active lane reads the same address
    /// (a hardware broadcast). Returns the value.
    pub async fn load_uniform(&self, mask: LaneMask, addr: Addr) -> u32 {
        self.note_instruction(mask);
        let cost = {
            let co = coalesce_uniform(mask, addr);
            self.mem_access(MemKind::Load, mask, &co, 0)
        };
        let v = {
            let st = &mut *self.st.borrow_mut();
            if let Some(r) = st.race.as_mut() {
                let lane = mask.iter().next().unwrap_or(0) as u32;
                r.on_read(self.pslot, self.id, lane, addr, st.now);
            }
            if st.observe_effects {
                st.last_effect = Some(StepEffect::Load(vec![addr]));
            }
            st.mem.read(addr)
        };
        self.charge(cost).await;
        v
    }

    /// Warp store: each active lane writes its value to its address.
    /// If several active lanes target the same word, the highest lane wins
    /// (hardware leaves the winner unspecified; we fix lane order for
    /// determinism).
    pub async fn store(&self, mask: LaneMask, addrs: &LaneAddrs, vals: &LaneVals) {
        self.note_instruction(mask);
        let cost = {
            let co = coalesce(mask, addrs);
            let cost = self.mem_access(MemKind::Store, mask, &co, 0);
            let st = &mut *self.st.borrow_mut();
            let m0 = st.mem.mutations();
            for lane in mask.iter() {
                st.mem.write(addrs[lane], vals[lane]);
            }
            if let Some(r) = st.race.as_mut() {
                for lane in mask.iter() {
                    r.on_write(self.pslot, self.id, lane as u32, addrs[lane], st.now);
                }
            }
            Self::note_mutation(st, m0);
            if st.observe_effects {
                st.last_effect = Some(StepEffect::Store(effect_addrs(mask, addrs)));
            }
            cost
        };
        self.charge(cost).await;
    }

    /// Warp compare-and-swap: per lane, if `*addr == cmp` store `new`.
    /// Returns per-lane old values. Same-word lanes serialise in lane
    /// order within the instruction.
    pub async fn atomic_cas(
        &self,
        mask: LaneMask,
        addrs: &LaneAddrs,
        cmps: &LaneVals,
        news: &LaneVals,
    ) -> LaneVals {
        self.note_instruction(mask);
        let mut out = [0u32; WARP_SIZE];
        let cost = {
            let co = coalesce(mask, addrs);
            let depth = atomic_conflict_depth(mask, addrs);
            let cost = self.mem_access(MemKind::Atomic, mask, &co, depth);
            let st = &mut *self.st.borrow_mut();
            let m0 = st.mem.mutations();
            for lane in mask.iter() {
                if st.fault.cas_should_fail() {
                    // Injected spurious failure: perform no store and report
                    // an old value that cannot equal `cmp`, so the caller
                    // observes an ordinary failed CAS. Conservative by
                    // construction — a victim can retry or abort, but never
                    // falsely believes it succeeded.
                    let cur = st.mem.read(addrs[lane]);
                    out[lane] = if cur == cmps[lane] { cur ^ 1 } else { cur };
                    st.stats.spurious_cas_failures += 1;
                    continue;
                }
                out[lane] = st.mem.atomic_cas(addrs[lane], cmps[lane], news[lane]);
            }
            if let Some(r) = st.race.as_mut() {
                for lane in mask.iter() {
                    r.on_atomic(self.pslot, self.id, addrs[lane], st.now);
                }
            }
            Self::note_mutation(st, m0);
            if st.observe_effects {
                st.last_effect = Some(StepEffect::Atomic(effect_addrs(mask, addrs)));
            }
            cost
        };
        self.charge(cost).await;
        out
    }

    /// Warp atomic read-modify-write. Returns per-lane old values.
    pub async fn atomic_rmw(
        &self,
        mask: LaneMask,
        op: AtomicOp,
        addrs: &LaneAddrs,
        vals: &LaneVals,
    ) -> LaneVals {
        self.note_instruction(mask);
        let mut out = [0u32; WARP_SIZE];
        let cost = {
            let co = coalesce(mask, addrs);
            let depth = atomic_conflict_depth(mask, addrs);
            let cost = self.mem_access(MemKind::Atomic, mask, &co, depth);
            let st = &mut *self.st.borrow_mut();
            let m0 = st.mem.mutations();
            for lane in mask.iter() {
                // The fault plan's spurious-failure injection also covers
                // Or-based test-and-set (the STM's lock-acquisition idiom):
                // perform no store and report the requested bits as already
                // held. Like an injected CAS failure this is conservative —
                // the caller sees "lock busy" and retries or aborts; no
                // lock is left dangling because nothing was written.
                if matches!(op, AtomicOp::Or) && vals[lane] != 0 && st.fault.cas_should_fail() {
                    out[lane] = st.mem.read(addrs[lane]) | vals[lane];
                    st.stats.spurious_cas_failures += 1;
                    continue;
                }
                out[lane] = st.mem.atomic_rmw(op, addrs[lane], vals[lane]);
            }
            if let Some(r) = st.race.as_mut() {
                for lane in mask.iter() {
                    r.on_atomic(self.pslot, self.id, addrs[lane], st.now);
                }
            }
            Self::note_mutation(st, m0);
            if st.observe_effects {
                st.last_effect = Some(StepEffect::Atomic(effect_addrs(mask, addrs)));
            }
            cost
        };
        self.charge(cost).await;
        out
    }

    /// Uniform-address atomic add: every active lane adds `v` to `addr`.
    /// Returns the old value seen by the *first* active lane.
    pub async fn atomic_add_uniform(&self, mask: LaneMask, addr: Addr, v: u32) -> u32 {
        let addrs = [addr; WARP_SIZE];
        let vals = [v; WARP_SIZE];
        let old = self.atomic_rmw(mask, AtomicOp::Add, &addrs, &vals).await;
        mask.leader().map_or(0, |l| old[l])
    }

    /// Single-lane load convenience wrapper.
    pub async fn load_one(&self, lane: usize, addr: Addr) -> u32 {
        let mut addrs = [Addr::NULL; WARP_SIZE];
        addrs[lane] = addr;
        self.load(LaneMask::lane(lane), &addrs).await[lane]
    }

    /// Single-lane store convenience wrapper.
    pub async fn store_one(&self, lane: usize, addr: Addr, v: u32) {
        let mut addrs = [Addr::NULL; WARP_SIZE];
        let mut vals = [0u32; WARP_SIZE];
        addrs[lane] = addr;
        vals[lane] = v;
        self.store(LaneMask::lane(lane), &addrs, &vals).await;
    }

    /// Single-lane CAS convenience wrapper. Returns the old value.
    pub async fn atomic_cas_one(&self, lane: usize, addr: Addr, cmp: u32, new: u32) -> u32 {
        let mut addrs = [Addr::NULL; WARP_SIZE];
        addrs[lane] = addr;
        let mut cmps = [0u32; WARP_SIZE];
        cmps[lane] = cmp;
        let mut news = [0u32; WARP_SIZE];
        news[lane] = new;
        self.atomic_cas(LaneMask::lane(lane), &addrs, &cmps, &news).await[lane]
    }

    /// `threadfence()`: orders this warp's prior memory accesses before its
    /// later ones. The simulator's global instruction order is already
    /// sequentially consistent, so the fence only costs time — but STM code
    /// issues it wherever the paper's algorithm does, so fence traffic is
    /// faithfully accounted.
    pub async fn fence(&self, mask: LaneMask) {
        self.note_instruction(mask);
        let cost = {
            let st = &mut *self.st.borrow_mut();
            st.stats.fences += 1;
            st.emit(self.id.block, self.id.warp_in_block, crate::trace::SimEventKind::Fence);
            if st.observe_effects {
                st.last_effect = Some(StepEffect::Fence);
            }
            st.timing.fence
        };
        self.charge(cost).await;
    }

    /// Charges `cycles` of busy/idle time (pipeline work, backoff delays).
    pub async fn idle(&self, cycles: u64) {
        {
            let st = &mut *self.st.borrow_mut();
            st.stats.idle_cycles += cycles;
            st.emit(
                self.id.block,
                self.id.warp_in_block,
                crate::trace::SimEventKind::Idle { cycles },
            );
        }
        self.charge(cycles).await;
    }

    /// Charges the cost of an arithmetic warp instruction.
    pub async fn alu(&self, mask: LaneMask) {
        self.note_instruction(mask);
        let cost = self.st.borrow().timing.alu;
        self.charge(cost).await;
    }

    /// Charges `ops` accesses to thread-local (L1-cached) metadata, such as
    /// read-/write-set entries. With GPU-STM's coalesced set organisation a
    /// warp-wide set append is one such access; uncoalesced layouts charge
    /// one per lane (see the ablation benches).
    pub async fn local_access(&self, mask: LaneMask, ops: u32) {
        self.note_instruction(mask);
        let cost = self.st.borrow().timing.local_access * ops as u64;
        self.charge(cost).await;
    }

    /// A handle that makes *this* warp runnable again after it parks.
    /// Create it before parking and hand it to the wake-condition watcher.
    pub fn wake_handle(&self) -> WakeHandle {
        WakeHandle { queue: Rc::clone(&self.st.borrow().wake_queue), pslot: self.pslot }
    }

    /// Deschedules this warp until a [`WakeHandle`] fires or
    /// `budget_cycles` elapse (`u64::MAX` = wait forever). While parked
    /// the warp burns **zero** cycles — it leaves the run queue entirely,
    /// unlike an [`idle`](Self::idle) backoff spin.
    ///
    /// `watched` names the device addresses whose writers the warp is
    /// waiting on; it is pure diagnostics (reported per-warp by
    /// [`SimError::Deadlock`](crate::SimError::Deadlock) when every live
    /// warp is parked forever, which the executor detects *immediately*
    /// rather than burning the watchdog budget).
    ///
    /// Wake/park races are resolved by the event loop: wakes enqueued
    /// while the warp is still runnable are consumed as no-ops, so callers
    /// must check their wake condition once more *after* the instruction
    /// that registers their interest and before calling `park` (the
    /// check and the park request execute in one synchronous region —
    /// the executor only switches warps at awaits — so no wake can slip
    /// between them unobserved).
    pub async fn park(&self, mask: LaneMask, watched: &[Addr], budget_cycles: u64) -> ParkOutcome {
        self.note_instruction(mask);
        let deadline = {
            let st = &mut *self.st.borrow_mut();
            let e = &mut st.progress.warps[self.pslot];
            e.parked = true;
            e.parked_addrs = watched.to_vec();
            st.stats.parks += 1;
            st.emit(
                self.id.block,
                self.id.warp_in_block,
                crate::trace::SimEventKind::Park { watched: watched.len() as u32 },
            );
            if st.observe_effects {
                st.last_effect = Some(StepEffect::Local);
            }
            if budget_cycles == u64::MAX {
                u64::MAX
            } else {
                st.now.saturating_add(budget_cycles.max(1))
            }
        };
        self.pending_park.set(ParkSignal::Request { deadline });
        let signal = ParkWait { cell: Rc::clone(&self.pending_park), polled: false }.await;
        let outcome = match signal {
            ParkSignal::TimedOut => ParkOutcome::TimedOut,
            // `Woken` is the expected resume; treat anything unexpected as
            // a wake so the caller re-checks its condition (conservative).
            _ => ParkOutcome::Woken,
        };
        {
            let st = &mut *self.st.borrow_mut();
            let e = &mut st.progress.warps[self.pslot];
            e.parked = false;
            e.parked_addrs = Vec::new();
            st.stats.wakes += 1;
            st.emit(
                self.id.block,
                self.id.warp_in_block,
                crate::trace::SimEventKind::Wake { timed_out: outcome == ParkOutcome::TimedOut },
            );
        }
        outcome
    }
}

/// The suspension point of [`WarpCtx::park`]: yields once with the park
/// request armed, then reads the outcome the executor stored in the cell.
struct ParkWait {
    cell: Rc<Cell<ParkSignal>>,
    polled: bool,
}

impl Future for ParkWait {
    type Output = ParkSignal;

    fn poll(mut self: Pin<&mut Self>, _: &mut Context<'_>) -> Poll<ParkSignal> {
        if self.polled {
            Poll::Ready(self.cell.replace(ParkSignal::None))
        } else {
            self.polled = true;
            Poll::Pending
        }
    }
}

/// A future that yields control to the scheduler exactly once.
struct YieldOnce(bool);

impl Future for YieldOnce {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _: &mut Context<'_>) -> Poll<()> {
        if self.0 {
            Poll::Ready(())
        } else {
            self.0 = true;
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{LaunchConfig, Sim, SimConfig};

    fn sim() -> Sim {
        Sim::new(SimConfig::with_memory(1 << 16))
    }

    #[test]
    fn load_returns_stored_values() {
        let mut s = sim();
        let buf = s.alloc(32).unwrap();
        for i in 0..32 {
            s.write(buf.offset(i), i * 7);
        }
        let out = s.alloc(32).unwrap();
        s.launch(LaunchConfig::new(1, 32), move |ctx| async move {
            let mask = ctx.id().launch_mask;
            let addrs = std::array::from_fn(|l| buf.offset(l as u32));
            let vals = ctx.load(mask, &addrs).await;
            let oaddrs = std::array::from_fn(|l| out.offset(l as u32));
            ctx.store(mask, &oaddrs, &vals).await;
        })
        .unwrap();
        for i in 0..32 {
            assert_eq!(s.read(out.offset(i)), i * 7);
        }
    }

    #[test]
    fn masked_lanes_do_not_access_memory() {
        let mut s = sim();
        let buf = s.alloc(32).unwrap();
        s.launch(LaunchConfig::new(1, 32), move |ctx| async move {
            let addrs = std::array::from_fn(|l| buf.offset(l as u32));
            let vals = [9u32; 32];
            ctx.store(LaneMask::first_n(4), &addrs, &vals).await;
        })
        .unwrap();
        assert_eq!(s.read(buf.offset(3)), 9);
        assert_eq!(s.read(buf.offset(4)), 0);
    }

    #[test]
    fn cas_same_word_lane_order() {
        let mut s = sim();
        let word = s.alloc(1).unwrap();
        let winners = s.alloc(32).unwrap();
        s.launch(LaunchConfig::new(1, 32), move |ctx| async move {
            let mask = ctx.id().launch_mask;
            let addrs = [word; 32];
            let cmps = [0u32; 32];
            let news: [u32; 32] = std::array::from_fn(|l| l as u32 + 1);
            let old = ctx.atomic_cas(mask, &addrs, &cmps, &news).await;
            // Exactly lane 0 should have won (old value 0).
            let waddrs = std::array::from_fn(|l| winners.offset(l as u32));
            let flags: [u32; 32] = std::array::from_fn(|l| u32::from(old[l] == 0));
            ctx.store(mask, &waddrs, &flags).await;
        })
        .unwrap();
        assert_eq!(s.read(word), 1); // lane 0's value
        assert_eq!(s.read(winners.offset(0)), 1);
        for l in 1..32 {
            assert_eq!(s.read(winners.offset(l)), 0, "lane {l}");
        }
    }

    #[test]
    fn coalesced_access_is_cheaper_than_strided() {
        let run = |stride: u32| {
            let mut s = sim();
            let buf = s.alloc(32 * stride.max(1)).unwrap();
            let report = s
                .launch(LaunchConfig::new(1, 32), move |ctx| async move {
                    let mask = ctx.id().launch_mask;
                    let addrs = std::array::from_fn(|l| buf.offset(l as u32 * stride));
                    let _ = ctx.load(mask, &addrs).await;
                })
                .unwrap();
            (report.cycles, report.stats.mem_transactions)
        };
        let (coalesced_cycles, coalesced_tx) = run(1);
        let (strided_cycles, strided_tx) = run(32);
        assert_eq!(coalesced_tx, 1);
        assert_eq!(strided_tx, 32);
        assert!(strided_cycles > coalesced_cycles);
    }

    #[test]
    fn l2_hit_faster_than_miss() {
        let mut s = sim();
        let buf = s.alloc(32).unwrap();
        let report = s
            .launch(LaunchConfig::new(1, 32), move |ctx| async move {
                let mask = ctx.id().launch_mask;
                let addrs = std::array::from_fn(|l| buf.offset(l as u32));
                let t0 = ctx.now();
                let _ = ctx.load(mask, &addrs).await;
                let t1 = ctx.now();
                let _ = ctx.load(mask, &addrs).await;
                let t2 = ctx.now();
                assert!(t2 - t1 < t1 - t0, "hit {} vs miss {}", t2 - t1, t1 - t0);
            })
            .unwrap();
        assert_eq!(report.stats.l2_hits, 1);
        assert_eq!(report.stats.l2_misses, 1);
    }

    #[test]
    fn single_lane_helpers() {
        let mut s = sim();
        let a = s.alloc(4).unwrap();
        s.launch(LaunchConfig::new(1, 32), move |ctx| async move {
            ctx.store_one(3, a, 11).await;
            let v = ctx.load_one(3, a).await;
            ctx.store_one(3, a.offset(1), v + 1).await;
            let old = ctx.atomic_cas_one(5, a.offset(2), 0, 99).await;
            ctx.store_one(5, a.offset(3), old).await;
        })
        .unwrap();
        assert_eq!(s.read(a), 11);
        assert_eq!(s.read(a.offset(1)), 12);
        assert_eq!(s.read(a.offset(2)), 99);
        assert_eq!(s.read(a.offset(3)), 0);
    }

    #[test]
    fn stats_count_instruction_mix() {
        let mut s = sim();
        let a = s.alloc(64).unwrap();
        let report = s
            .launch(LaunchConfig::new(1, 32), move |ctx| async move {
                let mask = ctx.id().launch_mask;
                let addrs = std::array::from_fn(|l| a.offset(l as u32));
                let vals = [1u32; 32];
                ctx.store(mask, &addrs, &vals).await;
                let _ = ctx.load(mask, &addrs).await;
                ctx.fence(mask).await;
                ctx.atomic_add_uniform(mask, a, 1).await;
                ctx.alu(mask).await;
                ctx.local_access(mask, 2).await;
            })
            .unwrap();
        assert_eq!(report.stats.stores, 1);
        assert_eq!(report.stats.loads, 1);
        assert_eq!(report.stats.fences, 1);
        assert_eq!(report.stats.atomics, 1);
        assert!(report.stats.instructions >= 6);
    }

    #[test]
    fn divergence_counted() {
        let mut s = sim();
        let a = s.alloc(32).unwrap();
        let report = s
            .launch(LaunchConfig::new(1, 32), move |ctx| async move {
                let addrs = std::array::from_fn(|l| a.offset(l as u32));
                let _ = ctx.load(LaneMask::first_n(7), &addrs).await;
            })
            .unwrap();
        assert_eq!(report.stats.divergent_instructions, 1);
        assert!(report.stats.simt_efficiency() < 1.0);
    }
}
