//! A minimal deterministic JSON emitter.
//!
//! The workspace is deliberately dependency-free (CI builds fully
//! offline), so instead of `serde` every machine-readable artifact —
//! `SimStats`/`TxStats` run reports, Chrome traces, contention profiles —
//! is serialized through this writer. Two properties matter more than
//! generality:
//!
//! 1. **Stable field order** — fields appear exactly in the order the
//!    caller writes them, so JSON diffs between runs and PRs are
//!    reviewable line-by-line.
//! 2. **Deterministic formatting** — floats are emitted with a fixed
//!    precision (6 decimal places, trailing zeros kept), integers
//!    verbatim, so the same run produces byte-identical output on every
//!    platform. Golden-file tests rely on this.

/// Streaming JSON writer with explicit begin/end calls.
///
/// The writer tracks, per nesting level, whether a comma is needed before
/// the next element; callers are responsible for matching `begin_*`/`end_*`
/// pairs and for writing a key before each value inside an object.
///
/// # Examples
///
/// ```
/// use gpu_sim::json::JsonWriter;
///
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.field_u64("cycles", 1200);
/// w.field_f64("rate", 0.25);
/// w.key("tags");
/// w.begin_array();
/// w.string("ht");
/// w.end_array();
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"cycles":1200,"rate":0.250000,"tags":["ht"]}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` once a separator is needed.
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn separate(&mut self) {
        if let Some(top) = self.needs_comma.last_mut() {
            if *top {
                self.out.push(',');
            }
            *top = true;
        }
    }

    /// Opens a `{` object (as a value: separated from any sibling).
    pub fn begin_object(&mut self) {
        self.separate();
        self.out.push('{');
        self.needs_comma.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        self.needs_comma.pop();
        self.out.push('}');
    }

    /// Opens a `[` array (as a value: separated from any sibling).
    pub fn begin_array(&mut self) {
        self.separate();
        self.out.push('[');
        self.needs_comma.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        self.needs_comma.pop();
        self.out.push(']');
    }

    /// Writes an object key; the next `string`/`u64`/… call is its value.
    pub fn key(&mut self, k: &str) {
        self.separate();
        self.push_escaped(k);
        self.out.push(':');
        // The value that follows must not emit another comma.
        if let Some(top) = self.needs_comma.last_mut() {
            *top = false;
        }
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) {
        self.separate();
        self.push_escaped(s);
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.separate();
        self.out.push_str(&v.to_string());
    }

    /// Writes a float value with fixed 6-decimal formatting (NaN and
    /// infinities become `null`, which JSON cannot represent otherwise).
    pub fn f64(&mut self, v: f64) {
        self.separate();
        if v.is_finite() {
            self.out.push_str(&format!("{v:.6}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.separate();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Convenience: `key` + string value.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.string(v);
    }

    /// Convenience: `key` + unsigned integer value.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.u64(v);
    }

    /// Convenience: `key` + float value.
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.f64(v);
    }

    /// Convenience: `key` + boolean value.
    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.bool(v);
    }

    fn push_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Consumes the writer and returns the JSON text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structures() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.begin_array();
        w.u64(1);
        w.u64(2);
        w.begin_object();
        w.field_bool("ok", true);
        w.end_object();
        w.end_array();
        w.field_str("b", "x");
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":[1,2,{"ok":true}],"b":"x"}"#);
    }

    #[test]
    fn escapes_specials() {
        let mut w = JsonWriter::new();
        w.string("a\"b\\c\nd\u{1}");
        assert_eq!(w.finish(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn floats_fixed_precision_and_nonfinite() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.f64(0.5);
        w.f64(f64::NAN);
        w.f64(f64::INFINITY);
        w.end_array();
        assert_eq!(w.finish(), "[0.500000,null,null]");
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("xs");
        w.begin_array();
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), r#"{"xs":[]}"#);
    }
}
