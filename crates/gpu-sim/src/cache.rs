//! Set-associative L2 cache model (tags only).
//!
//! On Fermi GPUs the L2 is the coherence point: the paper stores GPU-STM's
//! global metadata so that it is cached at L2 only (the non-coherent L1 is
//! bypassed with `volatile`). The simulator therefore routes every global
//! memory transaction through this L2 model to decide between the L2-hit
//! and DRAM latencies. Data correctness is unaffected — the backing
//! [`GlobalMemory`](crate::memory::GlobalMemory) is always authoritative —
//! so only tags are tracked.

/// Configuration of the L2 model.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets. Must be a power of two.
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Fermi C2070-like 768 KiB L2 with 128-byte lines, 16-way:
    /// 768 KiB / 128 B / 16 ways = 384 sets (rounded to 512 for power of 2).
    pub fn fermi_l2() -> Self {
        CacheConfig { sets: 512, ways: 16 }
    }

    /// A tiny cache, useful to exercise eviction paths in tests.
    pub fn tiny() -> Self {
        CacheConfig { sets: 2, ways: 2 }
    }

    /// Total lines (capacity / line size).
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::fermi_l2()
    }
}

/// Outcome of a cache access.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Line present in L2.
    Hit,
    /// Line fetched from DRAM (and now resident).
    Miss,
}

/// LRU set-associative tag store over 128-byte segments.
#[derive(Clone, Debug)]
pub struct L2Cache {
    cfg: CacheConfig,
    /// `tags[set * ways + way]`: segment id + 1, or 0 for invalid.
    tags: Vec<u64>,
    /// LRU stamps, parallel to `tags`.
    stamps: Vec<u64>,
    tick: u64,
}

impl L2Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.sets` is not a power of two or `cfg.ways == 0`.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.ways > 0, "ways must be nonzero");
        L2Cache { cfg, tags: vec![0; cfg.lines()], stamps: vec![0; cfg.lines()], tick: 0 }
    }

    /// Configuration in use.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accesses `segment` (a 128-byte line id), updating LRU state and
    /// allocating on miss.
    pub fn access(&mut self, segment: u32) -> CacheOutcome {
        self.tick += 1;
        let set = (segment as usize) & (self.cfg.sets - 1);
        let base = set * self.cfg.ways;
        let key = segment as u64 + 1;
        let mut victim = base;
        let mut victim_stamp = u64::MAX;
        for i in base..base + self.cfg.ways {
            if self.tags[i] == key {
                self.stamps[i] = self.tick;
                return CacheOutcome::Hit;
            }
            if self.stamps[i] < victim_stamp {
                victim_stamp = self.stamps[i];
                victim = i;
            }
        }
        self.tags[victim] = key;
        self.stamps[victim] = self.tick;
        CacheOutcome::Miss
    }

    /// Drops all cached lines.
    pub fn clear(&mut self) {
        self.tags.fill(0);
        self.stamps.fill(0);
        self.tick = 0;
    }

    /// Captures the full tag/LRU state for crash-recovery snapshots.
    /// The L2 persists across launches, so replaying a batch stream on a
    /// fresh simulator only reproduces cycle counts byte-exactly when
    /// the cache is restored along with memory.
    pub fn checkpoint(&self) -> CacheCheckpoint {
        CacheCheckpoint { tags: self.tags.clone(), stamps: self.stamps.clone(), tick: self.tick }
    }

    /// Restores state captured by [`checkpoint`](Self::checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint geometry does not match this cache.
    pub fn restore(&mut self, ck: &CacheCheckpoint) {
        assert_eq!(ck.tags.len(), self.tags.len(), "cache checkpoint geometry mismatch");
        assert_eq!(ck.stamps.len(), self.stamps.len(), "cache checkpoint geometry mismatch");
        self.tags.copy_from_slice(&ck.tags);
        self.stamps.copy_from_slice(&ck.stamps);
        self.tick = ck.tick;
    }
}

/// Serializable L2 tag/LRU state (see [`L2Cache::checkpoint`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheCheckpoint {
    /// Tag words, `sets × ways` entries.
    pub tags: Vec<u64>,
    /// LRU stamps, parallel to `tags`.
    pub stamps: Vec<u64>,
    /// LRU tick counter.
    pub tick: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = L2Cache::new(CacheConfig::tiny());
        assert_eq!(c.access(3), CacheOutcome::Miss);
        assert_eq!(c.access(3), CacheOutcome::Hit);
    }

    #[test]
    fn lru_eviction() {
        // tiny: 2 sets, 2 ways. Segments 0, 2, 4 all map to set 0.
        let mut c = L2Cache::new(CacheConfig::tiny());
        assert_eq!(c.access(0), CacheOutcome::Miss);
        assert_eq!(c.access(2), CacheOutcome::Miss);
        // Touch 0 so 2 becomes LRU.
        assert_eq!(c.access(0), CacheOutcome::Hit);
        assert_eq!(c.access(4), CacheOutcome::Miss); // evicts 2
        assert_eq!(c.access(0), CacheOutcome::Hit);
        assert_eq!(c.access(2), CacheOutcome::Miss);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = L2Cache::new(CacheConfig::tiny());
        assert_eq!(c.access(0), CacheOutcome::Miss); // set 0
        assert_eq!(c.access(1), CacheOutcome::Miss); // set 1
        assert_eq!(c.access(0), CacheOutcome::Hit);
        assert_eq!(c.access(1), CacheOutcome::Hit);
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = L2Cache::new(CacheConfig::tiny());
        c.access(7);
        c.clear();
        assert_eq!(c.access(7), CacheOutcome::Miss);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = L2Cache::new(CacheConfig { sets: 3, ways: 1 });
    }

    #[test]
    fn fermi_config_capacity() {
        let cfg = CacheConfig::fermi_l2();
        assert_eq!(cfg.lines(), 512 * 16);
    }
}
