//! Error types for simulator construction and kernel execution.

use std::error::Error;
use std::fmt;

/// Errors raised by the simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A device allocation did not fit in configured memory.
    OutOfMemory {
        /// Words requested.
        requested: usize,
    },
    /// The watchdog limit was reached before all warps finished — the
    /// kernel deadlocked, livelocked, or simply needs a larger budget.
    Watchdog {
        /// Simulated cycle at which the run was abandoned.
        cycle: u64,
        /// Warps that had not finished.
        unfinished_warps: usize,
    },
    /// An invalid launch configuration.
    BadLaunch(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory { requested } => {
                write!(f, "device allocation of {requested} words does not fit")
            }
            SimError::Watchdog { cycle, unfinished_warps } => write!(
                f,
                "watchdog fired at cycle {cycle} with {unfinished_warps} warps unfinished \
                 (deadlock, livelock, or budget too small)"
            ),
            SimError::BadLaunch(msg) => write!(f, "invalid launch configuration: {msg}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_nonempty_and_lowercase() {
        let errs = [
            SimError::OutOfMemory { requested: 8 },
            SimError::Watchdog { cycle: 100, unfinished_warps: 2 },
            SimError::BadLaunch("zero blocks".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("device"));
        }
    }

    #[test]
    fn error_trait_object() {
        fn takes_err(_: &dyn Error) {}
        takes_err(&SimError::BadLaunch("x".into()));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
