//! Error types for simulator construction and kernel execution.

use crate::memory::Addr;
use std::error::Error;
use std::fmt;

/// Progress diagnostics for one unfinished warp, attached to the
/// non-progress errors ([`SimError::Deadlock`], [`SimError::Livelock`],
/// [`SimError::BudgetExceeded`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WarpProgress {
    /// Block index of the warp.
    pub block: u32,
    /// Warp index within its block.
    pub warp_in_block: u32,
    /// Warp instructions the warp has issued in this launch.
    pub instructions: u64,
    /// Instructions issued since the warp last made progress — the depth
    /// of its current retry/spin episode.
    pub instructions_since_progress: u64,
    /// Progress marks (transaction commits or explicit
    /// [`mark_progress`](crate::WarpCtx::mark_progress) calls).
    pub progress_marks: u64,
    /// Cycles elapsed since the warp last made progress (since launch if
    /// it never did).
    pub cycles_since_progress: u64,
    /// When the warp is parked (see [`WarpCtx::park`](crate::WarpCtx::park)),
    /// the device addresses it is waiting on; empty for a running warp. Distinguishes "all warps
    /// parked forever" (a wakeup that can never arrive — a true deadlock)
    /// from livelock and budget exhaustion, and names the addresses whose
    /// writers went missing.
    pub parked_addrs: Vec<Addr>,
}

impl fmt::Display for WarpProgress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "warp {}/{}: {} instrs ({} since progress), {} marks, stalled {} cycles",
            self.block,
            self.warp_in_block,
            self.instructions,
            self.instructions_since_progress,
            self.progress_marks,
            self.cycles_since_progress
        )?;
        if !self.parked_addrs.is_empty() {
            write!(f, ", parked on [")?;
            for (i, a) in self.parked_addrs.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:#x}", a.0)?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// Errors raised by the simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A device allocation did not fit in configured memory.
    OutOfMemory {
        /// Words requested.
        requested: usize,
    },
    /// No warp made progress and device memory stopped changing: the
    /// kernel is blocked for good (e.g. the paper's Scheme #1 lockstep
    /// spin-lock deadlock).
    Deadlock {
        /// Simulated cycle at which the run was abandoned.
        cycle: u64,
        /// Progress accounting for each unfinished warp.
        unfinished: Vec<WarpProgress>,
    },
    /// No warp made progress but device memory kept changing: warps are
    /// doing work that never completes (e.g. the paper's circular
    /// multi-lock livelock, or an STM abort storm).
    Livelock {
        /// Simulated cycle at which the run was abandoned.
        cycle: u64,
        /// Last cycle at which a device word changed value.
        last_mutation_cycle: u64,
        /// Progress accounting for each unfinished warp.
        unfinished: Vec<WarpProgress>,
    },
    /// The cycle budget ran out while warps were still progressing — the
    /// kernel is healthy but `watchdog_cycles` is too small.
    BudgetExceeded {
        /// Simulated cycle at which the run was abandoned.
        cycle: u64,
        /// The configured `watchdog_cycles` budget.
        budget: u64,
        /// Progress accounting for each unfinished warp.
        unfinished: Vec<WarpProgress>,
    },
    /// An invalid launch configuration.
    BadLaunch(String),
}

impl SimError {
    /// Whether this error reports a failure to finish (deadlock, livelock
    /// or budget exhaustion) as opposed to a setup error.
    pub fn is_progress_failure(&self) -> bool {
        matches!(
            self,
            SimError::Deadlock { .. } | SimError::Livelock { .. } | SimError::BudgetExceeded { .. }
        )
    }

    /// Per-warp diagnostics for the non-progress errors, empty otherwise.
    pub fn unfinished_warps(&self) -> &[WarpProgress] {
        match self {
            SimError::Deadlock { unfinished, .. }
            | SimError::Livelock { unfinished, .. }
            | SimError::BudgetExceeded { unfinished, .. } => unfinished,
            _ => &[],
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory { requested } => {
                write!(f, "device allocation of {requested} words does not fit")
            }
            SimError::Deadlock { cycle, unfinished } => write!(
                f,
                "deadlock detected at cycle {cycle}: {} warps blocked with no memory activity",
                unfinished.len()
            ),
            SimError::Livelock { cycle, last_mutation_cycle, unfinished } => write!(
                f,
                "livelock detected at cycle {cycle}: {} warps busy (memory last changed at \
                 cycle {last_mutation_cycle}) but none progressing",
                unfinished.len()
            ),
            SimError::BudgetExceeded { cycle, budget, unfinished } => write!(
                f,
                "cycle budget of {budget} exceeded at cycle {cycle} with {} warps still \
                 progressing (raise watchdog_cycles)",
                unfinished.len()
            ),
            SimError::BadLaunch(msg) => write!(f, "invalid launch configuration: {msg}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        // Leaf error: no underlying cause. Implemented explicitly so every
        // error type in the workspace answers `source` deliberately.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_warp() -> WarpProgress {
        WarpProgress {
            block: 1,
            warp_in_block: 2,
            instructions: 400,
            instructions_since_progress: 100,
            progress_marks: 3,
            cycles_since_progress: 9000,
            parked_addrs: Vec::new(),
        }
    }

    #[test]
    fn display_messages_are_nonempty_and_lowercase() {
        let errs = [
            SimError::OutOfMemory { requested: 8 },
            SimError::Deadlock { cycle: 100, unfinished: vec![sample_warp()] },
            SimError::Livelock {
                cycle: 100,
                last_mutation_cycle: 99,
                unfinished: vec![sample_warp()],
            },
            SimError::BudgetExceeded { cycle: 100, budget: 90, unfinished: vec![] },
            SimError::BadLaunch("zero blocks".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("device"));
        }
    }

    #[test]
    fn progress_failures_carry_warp_detail() {
        let e = SimError::Livelock {
            cycle: 10_000,
            last_mutation_cycle: 9_999,
            unfinished: vec![sample_warp()],
        };
        assert!(e.is_progress_failure());
        assert_eq!(e.unfinished_warps().len(), 1);
        let w = &e.unfinished_warps()[0];
        assert_eq!((w.block, w.warp_in_block), (1, 2));
        let line = w.to_string();
        assert!(line.contains("warp 1/2"));
        assert!(line.contains("stalled 9000 cycles"));
        assert!(!line.contains("parked"), "running warp must not print a park note");
        assert!(!SimError::BadLaunch("x".into()).is_progress_failure());
        assert!(SimError::OutOfMemory { requested: 1 }.unfinished_warps().is_empty());
    }

    #[test]
    fn distinguishable_diagnoses() {
        // Each non-progress variant names its diagnosis in the message.
        let dead = SimError::Deadlock { cycle: 1, unfinished: vec![] }.to_string();
        let live =
            SimError::Livelock { cycle: 1, last_mutation_cycle: 0, unfinished: vec![] }.to_string();
        let budget =
            SimError::BudgetExceeded { cycle: 1, budget: 1, unfinished: vec![] }.to_string();
        assert!(dead.contains("deadlock"));
        assert!(live.contains("livelock"));
        assert!(budget.contains("budget"));
    }

    #[test]
    fn parked_warp_names_its_addresses() {
        let mut w = sample_warp();
        w.parked_addrs = vec![Addr(16), Addr(255)];
        let line = w.to_string();
        assert!(line.contains("parked on [0x10 0xff]"), "{line}");
    }

    #[test]
    fn error_trait_object() {
        fn takes_err(_: &dyn Error) {}
        takes_err(&SimError::BadLaunch("x".into()));
    }

    #[test]
    fn source_is_none_for_leaf_errors() {
        use std::error::Error;
        assert!(SimError::OutOfMemory { requested: 1 }.source().is_none());
        assert!(SimError::Deadlock { cycle: 0, unfinished: vec![] }.source().is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
