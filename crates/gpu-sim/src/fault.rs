//! Deterministic fault injection (seed-controlled adversarial execution).
//!
//! A GPU gives no scheduling guarantees: warps interleave arbitrarily,
//! memory latencies vary with contention, and atomics may fail spuriously
//! on some architectures. The simulator's determinism is what makes
//! correctness checking exact, but it also means each run explores exactly
//! one interleaving. A [`FaultPlan`] re-introduces the adversity *under
//! seed control*: every perturbation is drawn from a splitmix64 stream, so
//! a run with a given plan is still fully reproducible while exploring a
//! different (and deliberately hostile) schedule.
//!
//! Three perturbations are available, individually or combined:
//!
//! - **Schedule shuffle** — warps that become ready at the same cycle are
//!   dispatched in seeded-random order instead of FIFO issue order,
//!   breaking the round-robin tie-breaking that real hardware does not
//!   promise.
//! - **Latency jitter** — every warp-instruction latency gains a random
//!   extra delay in `[0, latency_jitter]` cycles, desynchronising warps
//!   the way DRAM contention and partition camping do.
//! - **Spurious CAS failure** — a compare-and-swap that would have
//!   succeeded instead fails (no store; a reported old value different
//!   from `cmp`) with probability `cas_fail_num / cas_fail_den` per lane.
//!   The same injection covers `Or`-based atomic test-and-set — the
//!   lock-acquisition idiom of the STM's version locks — by reporting
//!   the requested bits as already held without storing. Failures are
//!   always *conservative*: a victim retries or aborts, so correctness
//!   invariants (e.g. STM opacity) must survive, which is exactly what
//!   the stress harness asserts.

/// Seed-controlled fault-injection configuration, part of
/// [`SimConfig`](crate::SimConfig).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for every perturbation stream. Two runs with equal plans are
    /// identical.
    pub seed: u64,
    /// Dispatch same-cycle warps in seeded-random order instead of FIFO.
    pub shuffle_schedule: bool,
    /// Maximum extra latency (cycles) added to each warp instruction;
    /// 0 disables jitter.
    pub latency_jitter: u64,
    /// Numerator of the per-lane spurious atomic-failure probability
    /// (applies to CAS and to `Or`-based test-and-set).
    pub cas_fail_num: u32,
    /// Denominator of the failure probability; must be non-zero.
    pub cas_fail_den: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// No faults: the unperturbed deterministic schedule.
    pub const fn none() -> Self {
        FaultPlan {
            seed: 0,
            shuffle_schedule: false,
            latency_jitter: 0,
            cas_fail_num: 0,
            cas_fail_den: 1,
        }
    }

    /// Seeded shuffle of same-cycle warp dispatch order.
    pub const fn schedule_shuffle(seed: u64) -> Self {
        FaultPlan { seed, shuffle_schedule: true, ..FaultPlan::none() }
    }

    /// Seeded per-instruction latency jitter of up to `max_extra` cycles.
    pub const fn latency_jitter(seed: u64, max_extra: u64) -> Self {
        FaultPlan { seed, latency_jitter: max_extra, ..FaultPlan::none() }
    }

    /// Seeded spurious CAS failures at rate `num / den` per lane.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or `num > den`.
    pub const fn cas_failures(seed: u64, num: u32, den: u32) -> Self {
        assert!(den != 0, "cas_fail_den must be non-zero");
        assert!(num <= den, "failure probability must be at most 1");
        FaultPlan { seed, cas_fail_num: num, cas_fail_den: den, ..FaultPlan::none() }
    }

    /// Whether any perturbation is enabled.
    pub const fn is_active(&self) -> bool {
        self.shuffle_schedule || self.latency_jitter > 0 || self.cas_fail_num > 0
    }
}

/// splitmix64 step: the shared generator behind every fault stream.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-launch mutable fault state: the plan plus independent RNG streams
/// for each perturbation (so enabling one does not shift another's draws).
#[derive(Clone, Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    jitter_rng: u64,
    cas_rng: u64,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            jitter_rng: plan.seed ^ 0x6a09_e667_f3bc_c908, // sqrt(2) bits
            cas_rng: plan.seed ^ 0xbb67_ae85_84ca_a73b,    // sqrt(3) bits
        }
    }

    /// Extra latency for one warp instruction, in `[0, latency_jitter]`.
    pub(crate) fn jitter(&mut self) -> u64 {
        if self.plan.latency_jitter == 0 {
            return 0;
        }
        splitmix64(&mut self.jitter_rng) % (self.plan.latency_jitter + 1)
    }

    /// Whether the next CAS lane-operation should fail spuriously.
    pub(crate) fn cas_should_fail(&mut self) -> bool {
        if self.plan.cas_fail_num == 0 {
            return false;
        }
        (splitmix64(&mut self.cas_rng) % self.plan.cas_fail_den as u64)
            < self.plan.cas_fail_num as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::default();
        assert!(!p.is_active());
        let mut st = FaultState::new(p);
        for _ in 0..100 {
            assert_eq!(st.jitter(), 0);
            assert!(!st.cas_should_fail());
        }
    }

    #[test]
    fn constructors_enable_exactly_one_fault() {
        assert!(FaultPlan::schedule_shuffle(1).shuffle_schedule);
        assert_eq!(FaultPlan::schedule_shuffle(1).latency_jitter, 0);
        assert_eq!(FaultPlan::latency_jitter(1, 64).latency_jitter, 64);
        assert!(!FaultPlan::latency_jitter(1, 64).shuffle_schedule);
        let c = FaultPlan::cas_failures(1, 1, 8);
        assert_eq!((c.cas_fail_num, c.cas_fail_den), (1, 8));
        assert!(c.is_active());
    }

    #[test]
    fn jitter_bounded_and_deterministic() {
        let draw = || {
            let mut st = FaultState::new(FaultPlan::latency_jitter(42, 10));
            (0..1000).map(|_| st.jitter()).collect::<Vec<_>>()
        };
        let a = draw();
        assert_eq!(a, draw());
        assert!(a.iter().all(|&j| j <= 10));
        assert!(a.iter().any(|&j| j > 0));
    }

    #[test]
    fn cas_failure_rate_roughly_matches() {
        let mut st = FaultState::new(FaultPlan::cas_failures(7, 1, 4));
        let fails = (0..4000).filter(|_| st.cas_should_fail()).count();
        // 1/4 of 4000 = 1000; allow a broad deterministic tolerance.
        assert!((700..1300).contains(&fails), "fails = {fails}");
    }

    #[test]
    fn streams_are_independent() {
        // Enabling jitter must not change the CAS stream for the same seed.
        let mut only_cas = FaultState::new(FaultPlan::cas_failures(9, 1, 2));
        let mut both =
            FaultState::new(FaultPlan { latency_jitter: 5, ..FaultPlan::cas_failures(9, 1, 2) });
        for _ in 0..100 {
            let _ = both.jitter();
            assert_eq!(only_cas.cas_should_fail(), both.cas_should_fail());
        }
    }

    #[test]
    #[should_panic(expected = "cas_fail_den")]
    fn zero_denominator_rejected() {
        let _ = FaultPlan::cas_failures(0, 1, 0);
    }
}
