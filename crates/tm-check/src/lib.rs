//! # tm-check — history-based correctness checking for GPU-STM
//!
//! Opacity (Guerraoui & Kapalka, PPoPP 2008) requires that (1) committed
//! transactions appear to execute atomically in some total order, (2)
//! aborted transactions are invisible, and (3) every transaction observes a
//! consistent memory view. The STM variants in [`gpu_stm`] record every
//! committed transaction's full read- and write-set plus its commit version
//! (drawn from the global clock); this crate *replays* that history in
//! version order and verifies that each transaction's reads match the
//! replayed memory state at its serialization point.
//!
//! For writer transactions the serialization point is their commit version;
//! for read-only transactions it is their validated snapshot (they
//! linearise at their last read, Algorithm 3 line 68). Invisibility of
//! aborts and full atomicity follow from the final-state check: replaying
//! only committed writes must reproduce the simulator's actual final
//! memory.

#![warn(missing_docs)]

use gpu_sim::Addr;
use gpu_stm::history::{CommittedTx, History};
use std::collections::HashMap;
use std::fmt;

/// A violation of serializability/opacity found during replay.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Violation {
    /// Two committed writers claimed the same commit version.
    DuplicateVersion {
        /// The duplicated version.
        version: u32,
    },
    /// A committed transaction read a value inconsistent with the memory
    /// state at its serialization point.
    InconsistentRead {
        /// Thread that ran the transaction.
        tid: u32,
        /// Its serialization point (commit version or snapshot).
        point: u32,
        /// The address read.
        addr: Addr,
        /// Value the replay says it should have seen.
        expected: u32,
        /// Value it recorded.
        got: u32,
    },
    /// Replaying all committed writes did not reproduce the final memory.
    FinalStateMismatch {
        /// The diverging address.
        addr: Addr,
        /// Replayed value.
        expected: u32,
        /// Actual simulator memory value.
        got: u32,
    },
    /// The simulator's happens-before detector observed an unordered
    /// conflicting pair of global-memory accesses — the weak-isolation
    /// hazard of the paper's Section 3.2.1, invisible to commit-history
    /// replay because at least one side bypassed the STM.
    DataRace {
        /// The full detector report.
        race: gpu_sim::DataRace,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DuplicateVersion { version } => {
                write!(f, "duplicate commit version {version}")
            }
            Violation::InconsistentRead { tid, point, addr, expected, got } => write!(
                f,
                "tid {tid} serialized at {point} read {addr}: expected {expected}, got {got}"
            ),
            Violation::FinalStateMismatch { addr, expected, got } => {
                write!(f, "final state at {addr}: replay says {expected}, memory has {got}")
            }
            // `race` formats both sides with full warp.lane provenance.
            Violation::DataRace { race } => write!(f, "weak-isolation {race}"),
        }
    }
}

/// Lifts the simulator's race reports into [`Violation`]s so race-freedom
/// composes with the opacity checks in one violation list. Identical
/// reports (same address and same two access descriptions) collapse to
/// one violation.
pub fn races_to_violations(races: &[gpu_sim::DataRace]) -> Vec<Violation> {
    let mut vs: Vec<Violation> = races.iter().map(|r| Violation::DataRace { race: *r }).collect();
    dedup_violations(&mut vs);
    vs
}

/// Removes exact-duplicate violations in place, keeping first occurrences
/// in order. Duplicates arise when several detection passes (opacity
/// replay, final-state diff, race lifting) run over accumulating sinks or
/// when the same launch is checked more than once.
pub fn dedup_violations(violations: &mut Vec<Violation>) {
    let mut seen = std::collections::HashSet::new();
    violations.retain(|v| seen.insert(v.clone()));
}

/// Summary of a successful (or failed) check.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Committed writer transactions replayed.
    pub writers: usize,
    /// Committed read-only transactions verified.
    pub read_only: usize,
    /// Violations found (empty = history is opaque-serializable).
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// Whether the history passed all checks.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Replays `history` against `initial` memory and checks that every
/// committed transaction observed a consistent view at its serialization
/// point.
///
/// `initial` maps an address to its value before the kernel ran; pass
/// `|a| sim_snapshot[a.index()]` or similar.
pub fn check_history(history: &History, initial: impl Fn(Addr) -> u32) -> CheckReport {
    let mut report = CheckReport::default();

    // Split writers (versioned) from read-only transactions.
    let mut writers: Vec<&CommittedTx> = Vec::new();
    let mut read_only: Vec<&CommittedTx> = Vec::new();
    for tx in &history.commits {
        match tx.version {
            Some(_) => writers.push(tx),
            None => read_only.push(tx),
        }
    }
    writers.sort_by_key(|tx| tx.version.unwrap());
    for pair in writers.windows(2) {
        if pair[0].version == pair[1].version {
            report
                .violations
                .push(Violation::DuplicateVersion { version: pair[0].version.unwrap() });
        }
    }

    // Replay writers in version order, checking reads against the overlay.
    let mut overlay: HashMap<Addr, u32> = HashMap::new();
    // Snapshot states for read-only verification: we verify read-only
    // transactions lazily by replaying up to their snapshot; sort them by
    // snapshot so a single pass suffices.
    let mut ro_sorted: Vec<&CommittedTx> = read_only.clone();
    ro_sorted.sort_by_key(|tx| tx.snapshot);
    let mut ro_cursor = 0usize;

    let verify_reads =
        |tx: &CommittedTx, point: u32, overlay: &HashMap<Addr, u32>, report: &mut CheckReport| {
            for r in &tx.reads {
                let expected = overlay.get(&r.addr).copied().unwrap_or_else(|| initial(r.addr));
                if expected != r.val {
                    report.violations.push(Violation::InconsistentRead {
                        tid: tx.tid,
                        point,
                        addr: r.addr,
                        expected,
                        got: r.val,
                    });
                }
            }
        };

    for tx in &writers {
        let v = tx.version.unwrap();
        // Verify read-only transactions whose snapshot precedes this writer.
        while ro_cursor < ro_sorted.len() && ro_sorted[ro_cursor].snapshot < v {
            let ro = ro_sorted[ro_cursor];
            verify_reads(ro, ro.snapshot, &overlay, &mut report);
            report.read_only += 1;
            ro_cursor += 1;
        }
        verify_reads(tx, v, &overlay, &mut report);
        for w in &tx.writes {
            overlay.insert(w.addr, w.val);
        }
        report.writers += 1;
    }
    // Remaining read-only transactions see the final state.
    while ro_cursor < ro_sorted.len() {
        let ro = ro_sorted[ro_cursor];
        verify_reads(ro, ro.snapshot, &overlay, &mut report);
        report.read_only += 1;
        ro_cursor += 1;
    }

    report
}

/// After [`check_history`], verifies that replaying only committed writes
/// reproduces the actual final memory — i.e. aborted transactions leaked
/// nothing. `addrs` is the set of data addresses the workload may touch.
pub fn check_final_state(
    history: &History,
    initial: impl Fn(Addr) -> u32,
    final_mem: impl Fn(Addr) -> u32,
    addrs: impl IntoIterator<Item = Addr>,
) -> Vec<Violation> {
    let mut overlay: HashMap<Addr, u32> = HashMap::new();
    let mut writers: Vec<&CommittedTx> =
        history.commits.iter().filter(|t| t.version.is_some()).collect();
    writers.sort_by_key(|tx| tx.version.unwrap());
    for tx in writers {
        for w in &tx.writes {
            overlay.insert(w.addr, w.val);
        }
    }
    let mut violations = Vec::new();
    for a in addrs {
        let expected = overlay.get(&a).copied().unwrap_or_else(|| initial(a));
        let got = final_mem(a);
        if expected != got {
            violations.push(Violation::FinalStateMismatch { addr: a, expected, got });
        }
    }
    violations
}

/// The combined dynamic gate used by `txl fix`: opacity replay of the
/// commit history plus lifted happens-before races, deduplicated into
/// one violation list. Memory is assumed zero-initialised (freshly
/// allocated simulator arrays), which is how the fix-verify gate runs
/// its kernels.
pub fn gate_violations(history: &History, races: &[gpu_sim::DataRace]) -> Vec<Violation> {
    let mut vs = check_history(history, |_| 0).violations;
    vs.extend(races_to_violations(races));
    dedup_violations(&mut vs);
    vs
}

/// Panics with a readable message if the history fails the opacity check.
///
/// # Panics
///
/// Panics when `check_history` reports violations.
pub fn assert_opaque(history: &History, initial: impl Fn(Addr) -> u32) -> CheckReport {
    let report = check_history(history, initial);
    assert!(
        report.is_ok(),
        "history violates opacity ({} violations); first: {}",
        report.violations.len(),
        report.violations[0]
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_stm::history::{Access, CommittedTx};

    fn wtx(tid: u32, version: u32, reads: Vec<(u32, u32)>, writes: Vec<(u32, u32)>) -> CommittedTx {
        CommittedTx {
            tid,
            version: Some(version),
            snapshot: version.saturating_sub(1),
            reads: reads.into_iter().map(|(a, v)| Access { addr: Addr(a), val: v }).collect(),
            writes: writes.into_iter().map(|(a, v)| Access { addr: Addr(a), val: v }).collect(),
        }
    }

    fn history(commits: Vec<CommittedTx>, aborts: u64) -> History {
        let mut h = History::new();
        h.commits = commits;
        h.aborts = aborts;
        h
    }

    #[test]
    fn consistent_history_passes() {
        let h = history(
            vec![wtx(0, 1, vec![(10, 0)], vec![(10, 1)]), wtx(1, 2, vec![(10, 1)], vec![(10, 2)])],
            3,
        );
        let rep = check_history(&h, |_| 0);
        assert!(rep.is_ok(), "{:?}", rep.violations);
        assert_eq!(rep.writers, 2);
    }

    #[test]
    fn lost_update_detected() {
        // Both transactions read 0 and wrote 1: the second one's read is
        // inconsistent with its serialization point.
        let h = history(
            vec![wtx(0, 1, vec![(10, 0)], vec![(10, 1)]), wtx(1, 2, vec![(10, 0)], vec![(10, 1)])],
            0,
        );
        let rep = check_history(&h, |_| 0);
        assert!(!rep.is_ok());
        assert!(matches!(rep.violations[0], Violation::InconsistentRead { tid: 1, .. }));
    }

    #[test]
    fn duplicate_versions_detected() {
        let h = history(vec![wtx(0, 5, vec![], vec![(1, 1)]), wtx(1, 5, vec![], vec![(2, 2)])], 0);
        let rep = check_history(&h, |_| 0);
        assert!(rep
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DuplicateVersion { version: 5 })));
    }

    #[test]
    fn read_only_verified_at_snapshot() {
        let mut ro = CommittedTx {
            tid: 7,
            version: None,
            snapshot: 1,
            reads: vec![Access { addr: Addr(10), val: 1 }],
            writes: vec![],
        };
        let h = history(
            vec![wtx(0, 1, vec![], vec![(10, 1)]), ro.clone(), wtx(1, 2, vec![], vec![(10, 2)])],
            0,
        );
        let rep = check_history(&h, |_| 0);
        assert!(rep.is_ok(), "{:?}", rep.violations);
        assert_eq!(rep.read_only, 1);

        // Same read-only tx claiming snapshot 2 must fail: at snapshot 2
        // the value was 2, not 1.
        ro.snapshot = 2;
        let h2 = history(
            vec![wtx(0, 1, vec![], vec![(10, 1)]), ro, wtx(1, 2, vec![], vec![(10, 2)])],
            0,
        );
        let rep2 = check_history(&h2, |_| 0);
        assert!(!rep2.is_ok());
    }

    #[test]
    fn initial_values_respected() {
        let h = history(vec![wtx(0, 1, vec![(3, 42)], vec![])], 0);
        // version Some but writes empty — still replayed as writer.
        assert!(check_history(&h, |a| if a == Addr(3) { 42 } else { 0 }).is_ok());
        assert!(!check_history(&h, |_| 0).is_ok());
    }

    #[test]
    fn final_state_check_detects_dirty_writes() {
        let h = history(vec![wtx(0, 1, vec![], vec![(10, 5)])], 1);
        // Memory shows 9 at address 10 — an aborted transaction leaked.
        let violations = check_final_state(
            &h,
            |_| 0,
            |a| if a == Addr(10) { 9 } else { 0 },
            [Addr(10), Addr(11)],
        );
        assert_eq!(violations.len(), 1);
        assert!(matches!(violations[0], Violation::FinalStateMismatch { .. }));
    }

    #[test]
    fn final_state_check_passes_clean_history() {
        let h = history(vec![wtx(0, 1, vec![], vec![(10, 5)])], 0);
        let violations = check_final_state(
            &h,
            |_| 0,
            |a| if a == Addr(10) { 5 } else { 0 },
            [Addr(10), Addr(11)],
        );
        assert!(violations.is_empty());
    }

    #[test]
    #[should_panic(expected = "violates opacity")]
    fn assert_opaque_panics_on_bad_history() {
        let h = history(vec![wtx(0, 1, vec![(10, 99)], vec![])], 0);
        assert_opaque(&h, |_| 0);
    }

    #[test]
    fn display_messages() {
        let v =
            Violation::InconsistentRead { tid: 1, point: 2, addr: Addr(3), expected: 4, got: 5 };
        assert!(v.to_string().contains("tid 1"));
    }

    #[test]
    fn races_lift_to_violations() {
        use gpu_sim::{AccessKind, DataRace, RaceAccess};
        let acc = |kind, spec| RaceAccess {
            block: 0,
            warp_in_block: 1,
            lane: 3,
            kind,
            speculative: spec,
            cycle: 10,
        };
        let race = DataRace {
            addr: Addr(7),
            prior: acc(AccessKind::Write, true),
            current: acc(AccessKind::Read, false),
        };
        let vs = races_to_violations(&[race, race]);
        assert_eq!(vs.len(), 1, "identical race reports must collapse");
        assert!(matches!(&vs[0], Violation::DataRace { race: r } if r.addr == Addr(7)));
        let text = vs[0].to_string();
        assert!(text.contains("data race"), "{text}");
        assert!(text.contains("warp 0.1 lane 3"), "provenance missing: {text}");
    }

    #[test]
    fn dedup_preserves_order_and_distinct_violations() {
        let a = Violation::DuplicateVersion { version: 5 };
        let b = Violation::FinalStateMismatch { addr: Addr(1), expected: 2, got: 3 };
        let mut vs = vec![a.clone(), b.clone(), a.clone(), b.clone()];
        dedup_violations(&mut vs);
        assert_eq!(vs, vec![a, b]);
    }
}
