//! An adaptive transaction scheduler — the paper's stated future work
//! (Section 4.2): *"the increasing number of threads can result in more
//! conflicts among transactions thus higher abort rates. This is a
//! tradeoff between concurrency and efficiency … a transaction scheduler
//! that dynamically adjusts concurrency would simplify the optimization
//! of GPU-STM programs."*
//!
//! [`Scheduled`] wraps any [`Stm`] runtime and throttles how many
//! transactions may be in flight at once. Admission happens in `begin`
//! (lanes beyond the current limit are refused and retry later — the
//! kernel's pending-mask loop already handles that); the limit adapts by
//! additive-increase/multiplicative-decrease on the abort rate observed
//! over a sliding window. High-conflict workloads such as k-means collapse
//! to a small concurrency where they stop thrashing; low-conflict
//! workloads ramp to full parallelism.

use crate::api::Stm;
use crate::stats::StatsHandle;
use crate::warptx::WarpTx;
use gpu_sim::{LaneAddrs, LaneMask, LaneVals, WarpCtx};
use std::cell::RefCell;
use std::rc::Rc;

/// Tuning knobs for the adaptive scheduler.
#[derive(Copy, Clone, Debug)]
pub struct SchedulerConfig {
    /// Initial concurrency limit (in-flight transactions).
    pub initial_limit: u32,
    /// Lower bound on the limit (never throttle below this).
    pub min_limit: u32,
    /// Upper bound on the limit.
    pub max_limit: u32,
    /// Attempts per adaptation window.
    pub window: u64,
    /// Abort rate above which the limit is halved.
    pub high_water: f64,
    /// Abort rate below which the limit grows.
    pub low_water: f64,
    /// Additive increase step, applied when the abort rate sits between
    /// the watermarks' comfortable zone; below `low_water` the limit
    /// doubles (slow-start) so uncontended workloads reach full
    /// concurrency quickly.
    pub step: u32,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            initial_limit: 1024,
            min_limit: 8,
            max_limit: 1 << 20,
            window: 512,
            high_water: 0.5,
            low_water: 0.1,
            step: 32,
        }
    }
}

#[derive(Debug)]
struct SchedState {
    cfg: SchedulerConfig,
    limit: u32,
    in_flight: u32,
    window_commits: u64,
    window_aborts: u64,
    adaptations: u64,
}

impl SchedState {
    fn record(&mut self, committed: u32, aborted: u32) {
        self.window_commits += committed as u64;
        self.window_aborts += aborted as u64;
        let total = self.window_commits + self.window_aborts;
        if total >= self.cfg.window {
            let rate = self.window_aborts as f64 / total as f64;
            if rate > self.cfg.high_water {
                self.limit = (self.limit / 2).max(self.cfg.min_limit);
            } else if rate < self.cfg.low_water {
                // Slow-start: double while conflicts stay rare.
                self.limit = (self.limit * 2).min(self.cfg.max_limit);
            } else if rate < self.cfg.high_water / 2.0 {
                self.limit = (self.limit + self.cfg.step).min(self.cfg.max_limit);
            }
            self.window_commits = 0;
            self.window_aborts = 0;
            self.adaptations += 1;
        }
    }
}

/// Wraps an STM runtime with adaptive concurrency control.
///
/// The wrapper is transparent to kernels: refused lanes simply see an
/// empty mask from `begin` and retry, exactly like a contended CGL/EGPGV
/// admission.
#[derive(Clone)]
pub struct Scheduled<S> {
    inner: S,
    state: Rc<RefCell<SchedState>>,
}

impl<S: std::fmt::Debug> std::fmt::Debug for Scheduled<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduled").field("inner", &self.inner).finish_non_exhaustive()
    }
}

impl<S: Stm> Scheduled<S> {
    /// Wraps `inner` with the given scheduler configuration.
    pub fn new(inner: S, cfg: SchedulerConfig) -> Self {
        let state = SchedState {
            limit: cfg.initial_limit.clamp(cfg.min_limit, cfg.max_limit),
            cfg,
            in_flight: 0,
            window_commits: 0,
            window_aborts: 0,
            adaptations: 0,
        };
        Scheduled { inner, state: Rc::new(RefCell::new(state)) }
    }

    /// Wraps `inner` with default tuning.
    pub fn with_defaults(inner: S) -> Self {
        Scheduled::new(inner, SchedulerConfig::default())
    }

    /// Current concurrency limit (for tests and reporting).
    pub fn current_limit(&self) -> u32 {
        self.state.borrow().limit
    }

    /// Number of completed adaptation windows.
    pub fn adaptations(&self) -> u64 {
        self.state.borrow().adaptations
    }

    /// The wrapped runtime.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: Stm> Stm for Scheduled<S> {
    fn name(&self) -> &'static str {
        "Scheduled"
    }

    fn new_warp(&self) -> WarpTx {
        self.inner.new_warp()
    }

    fn stats(&self) -> StatsHandle {
        self.inner.stats()
    }

    async fn begin(&self, w: &mut WarpTx, ctx: &WarpCtx, want: LaneMask) -> LaneMask {
        // Admission control: take as many lanes as the limit allows.
        let granted = {
            let mut st = self.state.borrow_mut();
            let slots = st.limit.saturating_sub(st.in_flight);
            if slots == 0 {
                LaneMask::EMPTY
            } else {
                let mut granted = LaneMask::EMPTY;
                for l in want.iter().take(slots as usize) {
                    granted |= LaneMask::lane(l);
                }
                st.in_flight += granted.count();
                granted
            }
        };
        if granted.none() {
            // Refused: idle briefly so retries don't spin hot.
            ctx.idle(200).await;
            return LaneMask::EMPTY;
        }
        let admitted = self.inner.begin(w, ctx, granted).await;
        // If the inner runtime admitted fewer lanes, return the slots.
        let refused = granted & !admitted;
        if refused.any() {
            self.state.borrow_mut().in_flight -= refused.count();
        }
        admitted
    }

    async fn read(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
    ) -> LaneVals {
        self.inner.read(w, ctx, mask, addrs).await
    }

    async fn write(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
        vals: &LaneVals,
    ) {
        self.inner.write(w, ctx, mask, addrs, vals).await
    }

    async fn commit(&self, w: &mut WarpTx, ctx: &WarpCtx, mask: LaneMask) -> LaneMask {
        let committed = self.inner.commit(w, ctx, mask).await;
        let mut st = self.state.borrow_mut();
        st.in_flight = st.in_flight.saturating_sub(mask.count());
        st.record(committed.count(), (mask & !committed).count());
        committed
    }

    fn opaque(&self, w: &WarpTx) -> LaneMask {
        self.inner.opaque(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StmConfig;
    use crate::shared::StmShared;
    use crate::variants::LockStm;
    use gpu_sim::{LaunchConfig, Sim, SimConfig};

    fn setup(locks: u32) -> (Sim, StmShared, StmConfig) {
        let mut simcfg = SimConfig::with_memory(1 << 18);
        simcfg.watchdog_cycles = 1 << 33;
        let mut sim = Sim::new(simcfg);
        let cfg = StmConfig::new(locks);
        let shared = StmShared::init(&mut sim, &cfg).unwrap();
        (sim, shared, cfg)
    }

    /// Runs a contended counter workload under the scheduler; returns the
    /// wrapper for limit inspection plus total of counters.
    fn run_contended(
        sched_cfg: SchedulerConfig,
        n_counters: u32,
        grid: LaunchConfig,
        incr: u32,
    ) -> (Rc<Scheduled<LockStm>>, u64, u64) {
        let (mut sim, shared, cfg) = setup(1 << 6);
        let counters = sim.alloc(n_counters).unwrap();
        let stm = Rc::new(Scheduled::new(LockStm::hv_sorting(shared, cfg), sched_cfg));
        let kstm = Rc::clone(&stm);
        sim.launch(grid, move |ctx| {
            let stm = Rc::clone(&kstm);
            async move {
                let mut w = stm.new_warp();
                let mut rng = gpu_sim::WarpRng::new(1, ctx.id().thread_id(0));
                let mut remaining = [incr; 32];
                loop {
                    let pending = ctx.id().launch_mask.filter(|l| remaining[l] > 0);
                    if pending.none() {
                        break;
                    }
                    let active = stm.begin(&mut w, &ctx, pending).await;
                    if active.none() {
                        continue;
                    }
                    let addrs = crate::api::lane_addrs(active, |l| {
                        counters.offset(rng.below(l, n_counters))
                    });
                    let vals = stm.read(&mut w, &ctx, active, &addrs).await;
                    let ok = active & stm.opaque(&w);
                    let upd = crate::api::lane_vals(ok, |l| vals[l] + 1);
                    stm.write(&mut w, &ctx, ok, &addrs, &upd).await;
                    let committed = stm.commit(&mut w, &ctx, active).await;
                    for l in committed.iter() {
                        remaining[l] -= 1;
                    }
                }
            }
        })
        .unwrap();
        let total = sim.read_slice(counters, n_counters).iter().map(|v| *v as u64).sum();
        let expected = grid.total_threads() * incr as u64;
        (stm, total, expected)
    }

    #[test]
    fn scheduler_preserves_correctness() {
        let (_, total, expected) =
            run_contended(SchedulerConfig::default(), 64, LaunchConfig::new(4, 64), 3);
        assert_eq!(total, expected);
    }

    #[test]
    fn high_conflict_throttles_limit() {
        let cfg = SchedulerConfig {
            initial_limit: 1024,
            window: 64,
            ..SchedulerConfig::default()
        };
        // 2 counters, 256 threads: extreme conflict.
        let (stm, total, expected) = run_contended(cfg, 2, LaunchConfig::new(4, 64), 4);
        assert_eq!(total, expected);
        assert!(stm.adaptations() > 0, "windows must have completed");
        assert!(
            stm.current_limit() < 256,
            "limit should shrink under conflict, is {}",
            stm.current_limit()
        );
    }

    #[test]
    fn low_conflict_grows_limit() {
        let cfg = SchedulerConfig {
            initial_limit: 16,
            window: 64,
            ..SchedulerConfig::default()
        };
        // Many counters, few threads: nearly conflict-free.
        let (stm, total, expected) = run_contended(cfg, 4096, LaunchConfig::new(4, 64), 4);
        assert_eq!(total, expected);
        assert!(
            stm.current_limit() > 16,
            "limit should grow when aborts are rare, is {}",
            stm.current_limit()
        );
    }

    #[test]
    fn limit_respects_floor() {
        let cfg = SchedulerConfig {
            initial_limit: 16,
            min_limit: 8,
            window: 32,
            ..SchedulerConfig::default()
        };
        let (stm, total, expected) = run_contended(cfg, 1, LaunchConfig::new(4, 64), 2);
        assert_eq!(total, expected);
        assert!(stm.current_limit() >= 8);
    }
}
