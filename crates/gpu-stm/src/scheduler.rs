//! An adaptive transaction scheduler — the paper's stated future work
//! (Section 4.2): *"the increasing number of threads can result in more
//! conflicts among transactions thus higher abort rates. This is a
//! tradeoff between concurrency and efficiency … a transaction scheduler
//! that dynamically adjusts concurrency would simplify the optimization
//! of GPU-STM programs."*
//!
//! [`Scheduled`] wraps any [`Stm`] runtime and throttles how many
//! transactions may be in flight at once. Admission happens in `begin`
//! (lanes beyond the current limit are refused and retry later — the
//! kernel's pending-mask loop already handles that); the limit adapts by
//! additive-increase/multiplicative-decrease on the abort rate observed
//! over a sliding window. High-conflict workloads such as k-means collapse
//! to a small concurrency where they stop thrashing; low-conflict
//! workloads ramp to full parallelism.

use crate::api::Stm;
use crate::stats::StatsHandle;
use crate::trace::{TxEventKind, TxTrace, TxTraceSink};
use crate::warptx::WarpTx;
use gpu_sim::{LaneAddrs, LaneMask, LaneVals, WarpCtx};
use std::cell::RefCell;
use std::rc::Rc;

/// Tuning knobs for the adaptive scheduler.
#[derive(Copy, Clone, Debug)]
pub struct SchedulerConfig {
    /// Initial concurrency limit (in-flight transactions).
    pub initial_limit: u32,
    /// Lower bound on the limit (never throttle below this).
    pub min_limit: u32,
    /// Upper bound on the limit.
    pub max_limit: u32,
    /// Attempts per adaptation window.
    pub window: u64,
    /// Abort rate above which the limit is halved.
    pub high_water: f64,
    /// Abort rate below which the limit grows.
    pub low_water: f64,
    /// Additive increase step, applied when the abort rate sits between
    /// the watermarks' comfortable zone; below `low_water` the limit
    /// doubles (slow-start) so uncontended workloads reach full
    /// concurrency quickly.
    pub step: u32,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            initial_limit: 1024,
            min_limit: 8,
            max_limit: 1 << 20,
            window: 512,
            high_water: 0.5,
            low_water: 0.1,
            step: 32,
        }
    }
}

impl SchedulerConfig {
    /// Checks the configuration for internal consistency: non-zero window
    /// and limits, `min_limit <= max_limit`, and watermarks in `(0, 1)`
    /// with `low_water < high_water` (an inversion would make the AIMD
    /// loop oscillate between growing and halving on the same rate).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("scheduler window must be at least 1 attempt".into());
        }
        if self.min_limit == 0 {
            return Err("min_limit must be at least 1 (0 admits no lanes, ever)".into());
        }
        if self.min_limit > self.max_limit {
            return Err(format!(
                "min_limit ({}) exceeds max_limit ({})",
                self.min_limit, self.max_limit
            ));
        }
        if !(self.high_water > 0.0 && self.high_water <= 1.0) {
            return Err(format!("high_water ({}) must lie in (0, 1]", self.high_water));
        }
        if !(self.low_water >= 0.0 && self.low_water < 1.0) {
            return Err(format!("low_water ({}) must lie in [0, 1)", self.low_water));
        }
        if self.low_water >= self.high_water {
            return Err(format!(
                "low_water ({}) must be below high_water ({})",
                self.low_water, self.high_water
            ));
        }
        Ok(())
    }
}

#[derive(Debug)]
struct SchedState {
    cfg: SchedulerConfig,
    limit: u32,
    in_flight: u32,
    window_commits: u64,
    window_aborts: u64,
    adaptations: u64,
    /// Set while the last completed window's abort rate exceeded the
    /// high-water mark — the abort-storm signal `Stm::abort_storm`
    /// surfaces to the `Robust` degradation layer.
    storm: bool,
}

impl SchedState {
    /// Folds one resolved attempt into the window; at a window boundary
    /// the AIMD step runs and the new limit is returned when it changed.
    fn record(&mut self, committed: u32, aborted: u32) -> Option<u32> {
        self.window_commits += committed as u64;
        self.window_aborts += aborted as u64;
        let total = self.window_commits + self.window_aborts;
        let mut changed = None;
        if total >= self.cfg.window {
            let before = self.limit;
            let rate = self.window_aborts as f64 / total as f64;
            self.storm = rate > self.cfg.high_water;
            if rate > self.cfg.high_water {
                self.limit = (self.limit / 2).max(self.cfg.min_limit);
            } else if rate < self.cfg.low_water {
                // Slow-start: double while conflicts stay rare.
                self.limit = (self.limit * 2).min(self.cfg.max_limit);
            } else if rate < self.cfg.high_water / 2.0 {
                self.limit = (self.limit + self.cfg.step).min(self.cfg.max_limit);
            }
            self.window_commits = 0;
            self.window_aborts = 0;
            self.adaptations += 1;
            if self.limit != before {
                changed = Some(self.limit);
            }
        }
        changed
    }
}

/// Wraps an STM runtime with adaptive concurrency control.
///
/// The wrapper is transparent to kernels: refused lanes simply see an
/// empty mask from `begin` and retry, exactly like a contended CGL/EGPGV
/// admission.
#[derive(Clone)]
pub struct Scheduled<S> {
    inner: S,
    state: Rc<RefCell<SchedState>>,
    trace: TxTrace,
}

impl<S: std::fmt::Debug> std::fmt::Debug for Scheduled<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduled").field("inner", &self.inner).finish_non_exhaustive()
    }
}

impl<S: Stm> Scheduled<S> {
    /// Wraps `inner` with the given scheduler configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SchedulerConfig::validate`]
    /// (for fallible construction, validate first).
    pub fn new(inner: S, cfg: SchedulerConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid SchedulerConfig: {e}");
        }
        let state = SchedState {
            limit: cfg.initial_limit.clamp(cfg.min_limit, cfg.max_limit),
            cfg,
            in_flight: 0,
            window_commits: 0,
            window_aborts: 0,
            adaptations: 0,
            storm: false,
        };
        Scheduled { inner, state: Rc::new(RefCell::new(state)), trace: TxTrace::off() }
    }

    /// Wraps `inner` with default tuning.
    pub fn with_defaults(inner: S) -> Self {
        Scheduled::new(inner, SchedulerConfig::default())
    }

    /// Attaches a transaction-lifecycle trace sink: the wrapper emits
    /// [`TxEventKind::Throttle`] whenever an adaptation window changes the
    /// concurrency limit. (Attach the same sink to the inner runtime for
    /// its lifecycle events.)
    pub fn with_trace(mut self, sink: TxTraceSink) -> Self {
        self.trace = TxTrace::to(sink);
        self
    }

    /// Current concurrency limit (for tests and reporting).
    pub fn current_limit(&self) -> u32 {
        self.state.borrow().limit
    }

    /// Number of completed adaptation windows.
    pub fn adaptations(&self) -> u64 {
        self.state.borrow().adaptations
    }

    /// The wrapped runtime.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Captures the adaptive-control state (limit, in-flight count,
    /// window counters, storm flag) for crash-recovery snapshots. The
    /// AIMD loop is deterministic, so restoring this alongside the
    /// device state reproduces subsequent admission decisions exactly.
    pub fn checkpoint(&self) -> SchedulerCheckpoint {
        let st = self.state.borrow();
        SchedulerCheckpoint {
            limit: st.limit,
            in_flight: st.in_flight,
            window_commits: st.window_commits,
            window_aborts: st.window_aborts,
            adaptations: st.adaptations,
            storm: st.storm,
        }
    }

    /// Restores state captured by [`checkpoint`](Self::checkpoint). The
    /// scheduler configuration is not part of the checkpoint; the caller
    /// must rebuild the wrapper with the same [`SchedulerConfig`].
    pub fn restore_checkpoint(&self, ck: &SchedulerCheckpoint) {
        let mut st = self.state.borrow_mut();
        st.limit = ck.limit;
        st.in_flight = ck.in_flight;
        st.window_commits = ck.window_commits;
        st.window_aborts = ck.window_aborts;
        st.adaptations = ck.adaptations;
        st.storm = ck.storm;
    }
}

/// Serializable adaptive-scheduler state (see [`Scheduled::checkpoint`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SchedulerCheckpoint {
    /// Current concurrency limit.
    pub limit: u32,
    /// Transactions currently admitted.
    pub in_flight: u32,
    /// Commits folded into the open adaptation window.
    pub window_commits: u64,
    /// Aborts folded into the open adaptation window.
    pub window_aborts: u64,
    /// Completed adaptation windows.
    pub adaptations: u64,
    /// Abort-storm flag from the last completed window.
    pub storm: bool,
}

impl<S: Stm> Stm for Scheduled<S> {
    fn name(&self) -> &'static str {
        "Scheduled"
    }

    fn new_warp(&self) -> WarpTx {
        self.inner.new_warp()
    }

    fn stats(&self) -> StatsHandle {
        self.inner.stats()
    }

    async fn begin(&self, w: &mut WarpTx, ctx: &WarpCtx, want: LaneMask) -> LaneMask {
        // Admission control: take as many lanes as the limit allows.
        let granted = {
            let mut st = self.state.borrow_mut();
            let slots = st.limit.saturating_sub(st.in_flight);
            if slots == 0 {
                LaneMask::EMPTY
            } else {
                let mut granted = LaneMask::EMPTY;
                for l in want.iter().take(slots as usize) {
                    granted |= LaneMask::lane(l);
                }
                st.in_flight += granted.count();
                granted
            }
        };
        if granted.none() {
            // Refused: idle briefly so retries don't spin hot.
            ctx.idle(200).await;
            return LaneMask::EMPTY;
        }
        let admitted = self.inner.begin(w, ctx, granted).await;
        // If the inner runtime admitted fewer lanes, return the slots.
        let refused = granted & !admitted;
        if refused.any() {
            self.state.borrow_mut().in_flight -= refused.count();
        }
        admitted
    }

    async fn read(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
    ) -> LaneVals {
        self.inner.read(w, ctx, mask, addrs).await
    }

    async fn write(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
        vals: &LaneVals,
    ) {
        self.inner.write(w, ctx, mask, addrs, vals).await
    }

    async fn commit(&self, w: &mut WarpTx, ctx: &WarpCtx, mask: LaneMask) -> LaneMask {
        let committed = self.inner.commit(w, ctx, mask).await;
        let changed = {
            let mut st = self.state.borrow_mut();
            st.in_flight = st.in_flight.saturating_sub(mask.count());
            st.record(committed.count(), (mask & !committed).count())
        };
        if let Some(limit) = changed {
            self.trace.emit(ctx, TxEventKind::Throttle { limit });
        }
        committed
    }

    fn opaque(&self, w: &WarpTx) -> LaneMask {
        self.inner.opaque(w)
    }

    fn abort_storm(&self) -> bool {
        self.state.borrow().storm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StmConfig;
    use crate::shared::StmShared;
    use crate::variants::LockStm;
    use gpu_sim::{LaunchConfig, Sim, SimConfig};

    fn setup(locks: u32) -> (Sim, StmShared, StmConfig) {
        let mut simcfg = SimConfig::with_memory(1 << 18);
        simcfg.watchdog_cycles = 1 << 33;
        let mut sim = Sim::new(simcfg);
        let cfg = StmConfig::new(locks);
        let shared = StmShared::init(&mut sim, &cfg).unwrap();
        (sim, shared, cfg)
    }

    /// Runs a contended counter workload under the scheduler; returns the
    /// wrapper for limit inspection plus total of counters.
    fn run_contended(
        sched_cfg: SchedulerConfig,
        n_counters: u32,
        grid: LaunchConfig,
        incr: u32,
    ) -> (Rc<Scheduled<LockStm>>, u64, u64) {
        let (mut sim, shared, cfg) = setup(1 << 6);
        let counters = sim.alloc(n_counters).unwrap();
        let stm = Rc::new(Scheduled::new(LockStm::hv_sorting(shared, cfg), sched_cfg));
        let kstm = Rc::clone(&stm);
        sim.launch(grid, move |ctx| {
            let stm = Rc::clone(&kstm);
            async move {
                let mut w = stm.new_warp();
                let mut rng = gpu_sim::WarpRng::new(1, ctx.id().thread_id(0));
                let mut remaining = [incr; 32];
                loop {
                    let pending = ctx.id().launch_mask.filter(|l| remaining[l] > 0);
                    if pending.none() {
                        break;
                    }
                    let active = stm.begin(&mut w, &ctx, pending).await;
                    if active.none() {
                        continue;
                    }
                    let addrs = crate::api::lane_addrs(active, |l| {
                        counters.offset(rng.below(l, n_counters))
                    });
                    let vals = stm.read(&mut w, &ctx, active, &addrs).await;
                    let ok = active & stm.opaque(&w);
                    let upd = crate::api::lane_vals(ok, |l| vals[l] + 1);
                    stm.write(&mut w, &ctx, ok, &addrs, &upd).await;
                    let committed = stm.commit(&mut w, &ctx, active).await;
                    for l in committed.iter() {
                        remaining[l] -= 1;
                    }
                }
            }
        })
        .unwrap();
        let total = sim.read_slice(counters, n_counters).iter().map(|v| *v as u64).sum();
        let expected = grid.total_threads() * incr as u64;
        (stm, total, expected)
    }

    #[test]
    fn scheduler_preserves_correctness() {
        let (_, total, expected) =
            run_contended(SchedulerConfig::default(), 64, LaunchConfig::new(4, 64), 3);
        assert_eq!(total, expected);
    }

    #[test]
    fn high_conflict_throttles_limit() {
        let cfg = SchedulerConfig { initial_limit: 1024, window: 64, ..SchedulerConfig::default() };
        // 2 counters, 256 threads: extreme conflict.
        let (stm, total, expected) = run_contended(cfg, 2, LaunchConfig::new(4, 64), 4);
        assert_eq!(total, expected);
        assert!(stm.adaptations() > 0, "windows must have completed");
        assert!(
            stm.current_limit() < 256,
            "limit should shrink under conflict, is {}",
            stm.current_limit()
        );
    }

    #[test]
    fn low_conflict_grows_limit() {
        let cfg = SchedulerConfig { initial_limit: 16, window: 64, ..SchedulerConfig::default() };
        // Many counters, few threads: nearly conflict-free.
        let (stm, total, expected) = run_contended(cfg, 4096, LaunchConfig::new(4, 64), 4);
        assert_eq!(total, expected);
        assert!(
            stm.current_limit() > 16,
            "limit should grow when aborts are rare, is {}",
            stm.current_limit()
        );
    }

    #[test]
    fn validate_rejects_each_degenerate_knob() {
        let ok = SchedulerConfig::default();
        assert!(ok.validate().is_ok());

        let cases: &[(&str, SchedulerConfig)] = &[
            ("window", SchedulerConfig { window: 0, ..ok }),
            ("min_limit", SchedulerConfig { min_limit: 0, ..ok }),
            ("max_limit", SchedulerConfig { min_limit: 64, max_limit: 8, ..ok }),
            ("high_water", SchedulerConfig { high_water: 1.5, ..ok }),
            ("high_water", SchedulerConfig { high_water: 0.0, ..ok }),
            ("low_water", SchedulerConfig { low_water: -0.1, ..ok }),
            ("low_water", SchedulerConfig { low_water: 0.6, high_water: 0.5, ..ok }),
        ];
        for (field, cfg) in cases {
            let err = cfg.validate().expect_err(field);
            assert!(err.contains(field), "{field}: {err}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid SchedulerConfig")]
    fn inverted_watermarks_rejected_at_construction() {
        let (_, shared, cfg) = setup(1 << 6);
        let bad = SchedulerConfig { low_water: 0.9, high_water: 0.2, ..SchedulerConfig::default() };
        let _ = Scheduled::new(LockStm::hv_sorting(shared, cfg), bad);
    }

    #[test]
    fn initial_limit_is_clamped_into_bounds() {
        let (_, shared, cfg) = setup(1 << 6);
        let sched = SchedulerConfig {
            initial_limit: 1 << 30,
            max_limit: 128,
            ..SchedulerConfig::default()
        };
        let stm = Scheduled::new(LockStm::hv_sorting(shared, cfg), sched);
        assert_eq!(stm.current_limit(), 128);

        let (_, shared, cfg) = setup(1 << 6);
        let sched =
            SchedulerConfig { initial_limit: 1, min_limit: 16, ..SchedulerConfig::default() };
        let stm = Scheduled::new(LockStm::hv_sorting(shared, cfg), sched);
        assert_eq!(stm.current_limit(), 16);
    }

    /// Drives `SchedState::record` directly to pin the window-boundary
    /// semantics: adaptation happens exactly when the attempt count
    /// reaches the window, never before, and the counters reset after.
    #[test]
    fn adaptation_fires_exactly_at_window_boundary() {
        let cfg = SchedulerConfig { window: 10, ..SchedulerConfig::default() };
        let mut st = SchedState {
            limit: 64,
            cfg,
            in_flight: 0,
            window_commits: 0,
            window_aborts: 0,
            adaptations: 0,
            storm: false,
        };
        st.record(9, 0); // one short of the window
        assert_eq!(st.adaptations, 0);
        assert_eq!(st.limit, 64, "no adaptation before the boundary");
        st.record(1, 0); // 10th attempt: zero-abort window -> slow-start
        assert_eq!(st.adaptations, 1);
        assert_eq!(st.limit, 128);
        assert_eq!(st.window_commits + st.window_aborts, 0, "window must reset");
        // A single record() overshooting the window still counts once.
        st.record(25, 0);
        assert_eq!(st.adaptations, 2);
    }

    #[test]
    fn record_clamps_at_both_limits_and_flags_storms() {
        let cfg = SchedulerConfig {
            min_limit: 8,
            max_limit: 32,
            window: 4,
            ..SchedulerConfig::default()
        };
        let mut st = SchedState {
            limit: 8,
            cfg,
            in_flight: 0,
            window_commits: 0,
            window_aborts: 0,
            adaptations: 0,
            storm: false,
        };
        // All-abort windows: halving must not go below min_limit, and the
        // storm flag must latch on.
        st.record(0, 4);
        assert_eq!(st.limit, 8);
        assert!(st.storm, "an all-abort window is a storm");
        // Clean windows: doubling saturates at max_limit and clears storm.
        for _ in 0..4 {
            st.record(4, 0);
        }
        assert_eq!(st.limit, 32);
        assert!(!st.storm, "clean windows must clear the storm flag");
    }

    #[test]
    fn limit_respects_floor() {
        let cfg = SchedulerConfig {
            initial_limit: 16,
            min_limit: 8,
            window: 32,
            ..SchedulerConfig::default()
        };
        let (stm, total, expected) = run_contended(cfg, 1, LaunchConfig::new(4, 64), 2);
        assert_eq!(total, expected);
        assert!(stm.current_limit() >= 8);
    }
}
