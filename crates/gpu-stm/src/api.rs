//! The warp-wide transactional API implemented by every STM variant.
//!
//! Kernels are written against [`Stm`] generically, so a workload runs
//! unmodified under GPU-STM (any validation/locking combination), the
//! NOrec-like single-lock STM, the EGPGV per-block STM, or the
//! coarse-grained-lock baseline.
//!
//! ## The transaction loop
//!
//! A kernel drives transactions with a *pending-mask* retry loop:
//!
//! ```ignore
//! let mut w = stm.new_warp();
//! let mut pending = ctx.id().launch_mask; // lanes with a transaction to run
//! while pending.any() {
//!     let active = stm.begin(&mut w, &ctx, pending).await;
//!     if active.none() { continue; }      // e.g. CGL lock not yet available
//!     /* transactional body for `active` lanes, checking stm.opaque(&w) */
//!     let committed = stm.commit(&mut w, &ctx, active).await;
//!     pending &= !committed;              // aborted lanes retry
//! }
//! ```
//!
//! `begin` may admit only a subset of the requested lanes: optimistic STMs
//! admit everyone, while the CGL baseline admits one lane at a time (GPU
//! critical sections serialise) and the EGPGV STM admits one lane per
//! thread block. This single loop shape is what lets one workload body
//! serve every concurrency-control scheme in the evaluation.

use crate::stats::StatsHandle;
use crate::warptx::WarpTx;
use gpu_sim::{Addr, LaneAddrs, LaneMask, LaneVals, WarpCtx, WARP_SIZE};

/// A warp-wide software transactional memory runtime.
///
/// All methods are warp-collective: they must be called by the warp as a
/// whole with a mask of participating lanes, mirroring lockstep execution.
#[allow(async_fn_in_trait)] // single-threaded simulator: no Send bounds needed
pub trait Stm {
    /// Human-readable variant name (e.g. `"STM-HV-Sorting"`).
    fn name(&self) -> &'static str;

    /// Creates the warp-local transaction descriptor
    /// (`STM_NEW_WARP()` in the paper's Figure 1).
    fn new_warp(&self) -> WarpTx;

    /// Shared run statistics.
    fn stats(&self) -> StatsHandle;

    /// Begins a transaction on the lanes of `want`. Returns the lanes
    /// actually admitted; the kernel must re-request the rest later.
    async fn begin(&self, w: &mut WarpTx, ctx: &WarpCtx, want: LaneMask) -> LaneMask;

    /// Transactional read for each active lane. Inactive lanes get 0.
    async fn read(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
    ) -> LaneVals;

    /// Transactional write for each active lane.
    async fn write(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
        vals: &LaneVals,
    );

    /// Attempts to commit the lanes of `mask`. Returns the lanes that
    /// committed; the rest aborted and must re-run their transaction.
    async fn commit(&self, w: &mut WarpTx, ctx: &WarpCtx, mask: LaneMask) -> LaneMask;

    /// Lanes whose transaction still observes a consistent view. A lane
    /// absent from this mask has been doomed to abort; the kernel should
    /// stop issuing its transactional work (the paper's `isOpaque` flag,
    /// which programmers check because the hardware SIMT stack is not
    /// software-manageable).
    fn opaque(&self, w: &WarpTx) -> LaneMask {
        w.opaque
    }

    /// Whether the runtime currently observes an abort storm (a windowed
    /// abort rate above its high-water mark). The default runtime has no
    /// windowed view and reports `false`; the adaptive
    /// [`Scheduled`](crate::Scheduled) wrapper overrides this from its
    /// AIMD signal. The [`Robust`](crate::Robust) wrapper jumps straight
    /// to its backoff cap while a storm is in progress.
    fn abort_storm(&self) -> bool {
        false
    }

    /// Cumulative abort rate in permille (aborts per thousand attempts),
    /// computed from [`stats`](Stm::stats). Integer permille keeps the
    /// figure exact and platform-independent, so observability layers can
    /// fold it into byte-identical reports. Returns 0 before the first
    /// commit or abort.
    fn abort_permille(&self) -> u32 {
        let s = self.stats();
        let s = s.borrow();
        (s.aborts * 1000).checked_div(s.commits + s.aborts).unwrap_or(0) as u32
    }

    /// Single-lane transactional read convenience wrapper.
    async fn read_one(&self, w: &mut WarpTx, ctx: &WarpCtx, lane: usize, addr: Addr) -> u32 {
        let mut addrs = [Addr::NULL; WARP_SIZE];
        addrs[lane] = addr;
        self.read(w, ctx, LaneMask::lane(lane), &addrs).await[lane]
    }

    /// Single-lane transactional write convenience wrapper.
    async fn write_one(&self, w: &mut WarpTx, ctx: &WarpCtx, lane: usize, addr: Addr, val: u32) {
        let mut addrs = [Addr::NULL; WARP_SIZE];
        let mut vals = [0u32; WARP_SIZE];
        addrs[lane] = addr;
        vals[lane] = val;
        self.write(w, ctx, LaneMask::lane(lane), &addrs, &vals).await;
    }
}

/// Builds a per-lane address array from a function of the lane id
/// (inactive lanes get [`Addr::NULL`], which is never dereferenced because
/// warp operations are masked).
pub fn lane_addrs(mask: LaneMask, mut f: impl FnMut(usize) -> Addr) -> LaneAddrs {
    let mut out = [Addr::NULL; WARP_SIZE];
    for lane in mask.iter() {
        out[lane] = f(lane);
    }
    out
}

/// Builds a per-lane value array from a function of the lane id.
pub fn lane_vals(mask: LaneMask, mut f: impl FnMut(usize) -> u32) -> LaneVals {
    let mut out = [0u32; WARP_SIZE];
    for lane in mask.iter() {
        out[lane] = f(lane);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_addrs_masks_inactive() {
        let m = LaneMask::lane(2) | LaneMask::lane(5);
        let a = lane_addrs(m, |l| Addr(l as u32 * 10));
        assert_eq!(a[2], Addr(20));
        assert_eq!(a[5], Addr(50));
        assert_eq!(a[0], Addr::NULL);
    }

    #[test]
    fn lane_vals_masks_inactive() {
        let v = lane_vals(LaneMask::lane(7), |l| l as u32 + 1);
        assert_eq!(v[7], 8);
        assert_eq!(v[6], 0);
    }
}
