//! # gpu-stm — Software Transactional Memory for GPU Architectures
//!
//! A from-scratch reproduction of Xu, Wang, Goswami, Li, Gao and Qian,
//! *Software Transactional Memory for GPU Architectures* (CGO 2014),
//! running on the deterministic SIMT simulator of the [`gpu_sim`] crate.
//!
//! GPU-STM is a word- and lock-based STM supporting **per-thread
//! transactions** at GPU scale. Its three ideas (Section 3.1):
//!
//! 1. **Hierarchical validation** — timestamp-based validation against a
//!    table of global version locks, falling back to value-based
//!    validation only when the timestamp is stale, eliminating both the
//!    false conflicts of pure TBV and the standing overhead of pure VBV.
//! 2. **Encounter-time lock-sorting** — every transaction keeps its
//!    commit locks sorted (in an order-preserving hash table) as it
//!    encounters them, so all transactions acquire locks in one global
//!    order and SIMT lockstep execution cannot livelock.
//! 3. **Coalesced read-/write-set organisation** — warp-merged logs whose
//!    entry *i* belongs to lane *i mod 32*, keeping transactional
//!    bookkeeping memory-coalesced.
//!
//! ## Quick start
//!
//! ```
//! use gpu_sim::{LaunchConfig, Sim, SimConfig};
//! use gpu_stm::{lane_addrs, lane_vals, LockStm, Stm, StmConfig, StmShared};
//!
//! # fn main() -> Result<(), gpu_sim::SimError> {
//! let mut sim = Sim::new(SimConfig::with_memory(1 << 18));
//! let cfg = StmConfig::new(1 << 10);
//! let shared = StmShared::init(&mut sim, &cfg)?;      // STM_STARTUP()
//! let counters = sim.alloc(256)?;
//! let stm = std::rc::Rc::new(LockStm::hv_sorting(shared, cfg));
//!
//! let kernel_stm = std::rc::Rc::clone(&stm);
//! sim.launch(LaunchConfig::new(2, 64), move |ctx| {
//!     let stm = std::rc::Rc::clone(&kernel_stm);
//!     async move {
//!         let mut w = stm.new_warp();                  // STM_NEW_WARP()
//!         let mut pending = ctx.id().launch_mask;
//!         while pending.any() {
//!             let active = stm.begin(&mut w, &ctx, pending).await;
//!             // every thread increments a (shared) counter transactionally
//!             let addrs = lane_addrs(active, |l| {
//!                 counters.offset(ctx.id().thread_id(l) % 256)
//!             });
//!             let vals = stm.read(&mut w, &ctx, active, &addrs).await;
//!             let upd = lane_vals(active, |l| vals[l] + 1);
//!             stm.write(&mut w, &ctx, active, &addrs, &upd).await;
//!             let committed = stm.commit(&mut w, &ctx, active).await;
//!             pending &= !committed;
//!         }
//!     }
//! })?;
//! let total: u32 = sim.read_slice(counters, 256).iter().sum();
//! assert_eq!(total, 128);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod api;
mod config;
pub mod history;
pub mod locklog;
pub mod park;
pub mod profile;
pub mod robust;
pub mod scheduler;
pub mod sets;
mod shared;
pub mod stats;
pub mod trace;
pub mod validation;
pub mod variants;
mod version_lock;
mod warptx;

pub use api::{lane_addrs, lane_vals, Stm};
pub use config::{Locking, StmConfig, Validation};
pub use history::{
    recorder, recorder_with_hook, Access, CommitHook, CommittedTx, History, Recorder,
};
pub use park::{Blocking, BlockingMutation, TxOutcome, WakerRegistry};
pub use profile::ContentionProfile;
pub use robust::{Robust, RobustConfig};
pub use scheduler::{Scheduled, SchedulerCheckpoint, SchedulerConfig};
pub use shared::StmShared;
pub use stats::{
    phase_label, AbortCause, Breakdown, Phase, StatsHandle, TxStats, ABORT_CAUSES, PHASES,
};
pub use trace::{
    chrome_trace, tx_trace_sink, TxEvent, TxEventKind, TxTrace, TxTraceBuffer, TxTraceSink,
};
pub use variants::{CglStm, EgpgvStm, LockStm, Mutation, NorecStm, OptimizedStm};
pub use version_lock::VersionLock;
pub use warptx::WarpTx;
