//! Conflict-detection primitives: value-based validation (VBV) and the
//! hierarchical post-validation of Algorithm 3 lines 6–20.
//!
//! All routines are warp-collective and issue *real* simulated memory
//! traffic — re-reading the read-set is exactly the off-chip cost the
//! paper's hierarchical scheme tries to avoid paying unnecessarily.

use crate::api::lane_addrs;
use crate::shared::StmShared;
use crate::version_lock::VersionLock;
use crate::warptx::WarpTx;
use gpu_sim::{LaneMask, WarpCtx, WARP_SIZE};

/// Value-based validation (Algorithm 3 lines 62–66): re-reads every
/// read-set location of each active lane and compares with the logged
/// value. Returns the mask of lanes whose validation *failed*.
pub async fn vbv(w: &WarpTx, ctx: &WarpCtx, lanes: LaneMask) -> LaneMask {
    let mut failed = LaneMask::EMPTY;
    let mut checking = lanes;
    let rounds = w.reads.max_len();
    for k in 0..rounds {
        let m = checking.filter(|l| k < w.reads.len(l));
        if m.none() {
            break;
        }
        let addrs = lane_addrs(m, |l| w.reads.get(l, k).addr);
        let vals = ctx.load(m, &addrs).await;
        for l in m.iter() {
            if vals[l] != w.reads.get(l, k).val {
                failed |= LaneMask::lane(l);
                checking = checking.without(l);
            }
        }
    }
    failed
}

/// Hierarchical post-validation (Algorithm 3 lines 6–20), run by the read
/// barrier for lanes whose snapshot turned out stale.
///
/// Per lane: adopt the newer version as snapshot, value-validate the whole
/// read-set, fence, then confirm that no validated location's version lock
/// is held or newer than the adopted snapshot — restarting the validation
/// (with a further-advanced snapshot) if so.
///
/// Returns the mask of lanes that are *inconsistent* and must abort.
/// Lanes that pass have had their `snapshot` advanced and remain opaque.
pub async fn post_validation(
    shared: &StmShared,
    w: &mut WarpTx,
    ctx: &WarpCtx,
    lanes: LaneMask,
    new_versions: &[u32; WARP_SIZE],
) -> LaneMask {
    for l in lanes.iter() {
        w.snapshot[l] = new_versions[l]; // line 7
    }
    let mut failed = LaneMask::EMPTY;
    let mut active = lanes;

    // Each iteration is one execution of the `loop:` body (lines 8–19);
    // lanes re-enter when a location was locked or re-versioned mid-check.
    while active.any() {
        // Lines 9–11: value comparison over the read-set.
        let vbv_failed = vbv(w, ctx, active).await;
        failed |= vbv_failed;
        active &= !vbv_failed;
        if active.none() {
            break;
        }

        ctx.fence(active).await; // line 12

        // Lines 13–19: confirm version locks are quiescent at <= snapshot.
        let mut restart = LaneMask::EMPTY;
        let mut checking = active;
        let rounds = w.reads.max_len();
        for k in 0..rounds {
            let m = checking.filter(|l| k < w.reads.len(l));
            if m.none() {
                break;
            }
            let laddrs =
                lane_addrs(m, |l| shared.lock_addr(shared.lock_index(w.reads.get(l, k).addr)));
            let words = ctx.load(m, &laddrs).await;
            for l in m.iter() {
                let vl = VersionLock(words[l]);
                if vl.is_locked() || vl.version() > w.snapshot[l] {
                    w.snapshot[l] = vl.version(); // line 18
                    restart |= LaneMask::lane(l);
                    checking = checking.without(l); // abandon this pass
                }
            }
        }
        active = restart; // passed lanes exit; restarted lanes loop again
    }
    failed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StmConfig;
    use gpu_sim::{LaunchConfig, Sim, SimConfig};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn setup() -> (Sim, StmShared, StmConfig) {
        let mut sim = Sim::new(SimConfig::with_memory(1 << 16));
        let cfg = StmConfig::new(1 << 8);
        let shared = StmShared::init(&mut sim, &cfg).unwrap();
        (sim, shared, cfg)
    }

    /// Runs a single-warp kernel and returns a value computed inside it.
    fn run_warp<T: 'static>(
        sim: &mut Sim,
        f: impl Fn(WarpCtx) -> std::pin::Pin<Box<dyn std::future::Future<Output = T>>> + 'static,
    ) -> T {
        let out: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
        let out2 = Rc::clone(&out);
        let f = Rc::new(f);
        sim.launch(LaunchConfig::new(1, 32), move |ctx| {
            let out = Rc::clone(&out2);
            let f = Rc::clone(&f);
            async move {
                let v = f(ctx).await;
                *out.borrow_mut() = Some(v);
            }
        })
        .unwrap();
        Rc::try_unwrap(out).ok().unwrap().into_inner().unwrap()
    }

    #[test]
    fn vbv_passes_when_values_unchanged() {
        let (mut sim, _shared, cfg) = setup();
        let data = sim.alloc(8).unwrap();
        sim.write(data, 42);
        let failed = run_warp(&mut sim, move |ctx| {
            Box::pin(async move {
                let mut w = WarpTx::new(&StmConfig::new(1 << 8));
                w.reads.push(0, data, 42);
                vbv(&w, &ctx, LaneMask::lane(0)).await
            })
        });
        let _ = cfg;
        assert_eq!(failed, LaneMask::EMPTY);
    }

    #[test]
    fn vbv_fails_on_changed_value() {
        let (mut sim, _shared, _cfg) = setup();
        let data = sim.alloc(8).unwrap();
        sim.write(data, 1); // logged value will be 99 -> mismatch
        let failed = run_warp(&mut sim, move |ctx| {
            Box::pin(async move {
                let mut w = WarpTx::new(&StmConfig::new(1 << 8));
                w.reads.push(3, data, 99);
                w.reads.push(3, data.offset(1), 0); // second entry matches
                vbv(&w, &ctx, LaneMask::lane(3)).await
            })
        });
        assert_eq!(failed, LaneMask::lane(3));
    }

    #[test]
    fn vbv_checks_only_requested_lanes() {
        let (mut sim, _shared, _cfg) = setup();
        let data = sim.alloc(8).unwrap();
        let failed = run_warp(&mut sim, move |ctx| {
            Box::pin(async move {
                let mut w = WarpTx::new(&StmConfig::new(1 << 8));
                w.reads.push(0, data, 123); // would fail, but lane not asked
                vbv(&w, &ctx, LaneMask::lane(1)).await
            })
        });
        assert_eq!(failed, LaneMask::EMPTY);
    }

    #[test]
    fn post_validation_advances_snapshot_and_passes_unchanged_data() {
        let (mut sim, shared, _cfg) = setup();
        let data = sim.alloc(8).unwrap();
        sim.write(data, 7);
        // Stripe version is newer than the lane's snapshot, but the value
        // is unchanged: a FALSE conflict that post-validation filters.
        sim.write(shared.lock_addr(shared.lock_index(data)), VersionLock::unlocked(5).bits());
        let (failed, snap) = run_warp(&mut sim, move |ctx| {
            Box::pin(async move {
                let mut w = WarpTx::new(&StmConfig::new(1 << 8));
                w.snapshot[0] = 1;
                w.reads.push(0, data, 7);
                let mut vers = [0u32; WARP_SIZE];
                vers[0] = 5;
                let failed = post_validation(&shared, &mut w, &ctx, LaneMask::lane(0), &vers).await;
                (failed, w.snapshot[0])
            })
        });
        assert_eq!(failed, LaneMask::EMPTY);
        assert_eq!(snap, 5);
    }

    #[test]
    fn post_validation_aborts_on_changed_value() {
        let (mut sim, shared, _cfg) = setup();
        let data = sim.alloc(8).unwrap();
        sim.write(data, 100); // logged 7, now 100: true conflict
        sim.write(shared.lock_addr(shared.lock_index(data)), VersionLock::unlocked(5).bits());
        let failed = run_warp(&mut sim, move |ctx| {
            Box::pin(async move {
                let mut w = WarpTx::new(&StmConfig::new(1 << 8));
                w.snapshot[0] = 1;
                w.reads.push(0, data, 7);
                let mut vers = [0u32; WARP_SIZE];
                vers[0] = 5;
                post_validation(&shared, &mut w, &ctx, LaneMask::lane(0), &vers).await
            })
        });
        assert_eq!(failed, LaneMask::lane(0));
    }
}
