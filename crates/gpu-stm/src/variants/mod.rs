//! The STM variants of the paper's evaluation (Section 4.2).
//!
//! | Variant | Type | Summary |
//! |---|---|---|
//! | STM-VBV | [`NorecStm`] | NOrec-like, single global sequence lock |
//! | STM-TBV-Sorting | [`LockStm::tbv_sorting`] | timestamps + lock-sorting |
//! | STM-HV-Sorting | [`LockStm::hv_sorting`] | hierarchical validation + lock-sorting |
//! | STM-HV-Backoff | [`LockStm::hv_backoff`] | hierarchical validation + GPU backoff |
//! | STM-Optimized | [`OptimizedStm`] | adaptive HV/TBV selection |
//! | STM-EGPGV | [`EgpgvStm`] | per-thread-block blocking STM (prior art) |
//! | CGL | [`CglStm`] | coarse-grained lock baseline |

mod cgl;
mod egpgv;
mod lockstm;
mod norec;
mod optimized;

pub use cgl::CglStm;
pub use egpgv::EgpgvStm;
pub use lockstm::{LockStm, Mutation};
pub use norec::NorecStm;
pub use optimized::OptimizedStm;
