//! STM-VBV: a NOrec-like value-based STM with a single global sequence
//! lock (Dalessandro et al., PPoPP 2010), as re-implemented by the paper
//! for its evaluation baseline.
//!
//! One word — the global clock — doubles as a sequence lock: even means
//! unlocked, odd means a writer is committing. Reads post-validate the
//! whole read-set by value whenever the clock has moved; commits serialise
//! on a CAS of the clock. The design needs no other shared metadata, which
//! makes it fast on CPUs but unscalable under thousands of GPU
//! transactions: every commit contends on the one word and memory updates
//! of all transactions serialise behind it (Section 3.1).

use crate::api::Stm;
use crate::config::StmConfig;
use crate::history::{Access, CommittedTx, Recorder};
use crate::shared::StmShared;
use crate::stats::{stats_handle, AbortCause, Phase, StatsHandle};
use crate::trace::{TxEventKind, TxTrace, TxTraceSink};
use crate::validation::vbv;
use crate::warptx::WarpTx;
use gpu_sim::{LaneAddrs, LaneMask, LaneVals, WarpCtx, WARP_SIZE};

/// The NOrec-like single-sequence-lock STM (paper name: STM-VBV).
#[derive(Clone)]
pub struct NorecStm {
    shared: StmShared,
    cfg: StmConfig,
    stats: StatsHandle,
    recorder: Option<Recorder>,
    trace: TxTrace,
}

impl std::fmt::Debug for NorecStm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NorecStm").finish_non_exhaustive()
    }
}

impl NorecStm {
    /// Creates the variant. Only the global clock word of `shared` is
    /// used; the lock table is ignored (NOrec's defining property).
    pub fn new(shared: StmShared, cfg: StmConfig) -> Self {
        NorecStm { shared, cfg, stats: stats_handle(), recorder: None, trace: TxTrace::off() }
    }

    /// Attaches a history recorder.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Attaches a transaction-lifecycle trace sink (pure observation; see
    /// [`crate::trace`]).
    pub fn with_trace(mut self, sink: TxTraceSink) -> Self {
        self.trace = TxTrace::to(sink);
        self
    }

    /// Re-validates `lanes` against a moved sequence lock. Aborting lanes
    /// are marked inconsistent; survivors adopt `t` as their snapshot.
    /// Returns the failing lanes.
    async fn revalidate(&self, w: &mut WarpTx, ctx: &WarpCtx, lanes: LaneMask, t: u32) -> LaneMask {
        let failed = vbv(w, ctx, lanes).await;
        {
            let mut st = self.stats.borrow_mut();
            for _ in 0..failed.count() {
                st.record_abort(AbortCause::ReadValidation);
            }
        }
        if let Some(rec) = &self.recorder {
            rec.borrow_mut().aborts += failed.count() as u64;
        }
        // Events carry the initial (read-validation) cause even when the
        // stats later reclassify a commit-time failure; totals reconcile.
        if failed.any() {
            self.trace.emit(
                ctx,
                TxEventKind::Abort { cause: AbortCause::ReadValidation, lanes: failed.count() },
            );
        }
        self.trace
            .emit(ctx, TxEventKind::Validate { checked: lanes.count(), failed: failed.count() });
        for l in failed.iter() {
            w.mark_inconsistent(l);
        }
        for l in (lanes & !failed).iter() {
            w.snapshot[l] = t;
        }
        failed
    }

    /// Spins until the sequence lock is even, returning its value.
    async fn wait_even(&self, ctx: &WarpCtx, mask: LaneMask) -> u32 {
        loop {
            let t = ctx.load_uniform(mask, self.shared.clock).await;
            if t & 1 == 0 {
                return t;
            }
        }
    }
}

impl Stm for NorecStm {
    fn name(&self) -> &'static str {
        "STM-VBV"
    }

    fn new_warp(&self) -> WarpTx {
        WarpTx::new(&self.cfg)
    }

    fn stats(&self) -> StatsHandle {
        StatsHandle::clone(&self.stats)
    }

    async fn begin(&self, w: &mut WarpTx, ctx: &WarpCtx, want: LaneMask) -> LaneMask {
        w.enter_phase(ctx.now(), Phase::Init);
        for l in want.iter() {
            w.reset_lane(l);
        }
        ctx.local_access(want, 1).await;
        let t = self.wait_even(ctx, want).await;
        for l in want.iter() {
            w.snapshot[l] = t;
        }
        ctx.fence(want).await;
        w.enter_phase(ctx.now(), Phase::Native);
        if want.any() {
            self.trace.emit(ctx, TxEventKind::Begin { lanes: want.count() });
        }
        want
    }

    async fn read(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
    ) -> LaneVals {
        w.enter_phase(ctx.now(), Phase::Buffering);
        self.trace.emit(ctx, TxEventKind::Read { lanes: mask.count() });
        let mut out = [0u32; WARP_SIZE];
        let mut hits = LaneMask::EMPTY;
        for l in mask.iter() {
            if let Some(v) = w.writes.lookup(l, addrs[l]) {
                out[l] = v;
                hits |= LaneMask::lane(l);
            }
        }
        ctx.local_access(mask, 1).await;
        let need = mask & !hits;
        if need.none() {
            w.enter_phase(ctx.now(), Phase::Native);
            return out;
        }

        let mut vals = ctx.load(need, addrs).await;
        // NOrec read post-validation: while the sequence lock has moved,
        // re-validate all prior reads by value and re-read the target.
        w.enter_phase(ctx.now(), Phase::Consistency);
        let mut unsettled = need;
        loop {
            let t = ctx.load_uniform(unsettled, self.shared.clock).await;
            let moved = unsettled.filter(|l| t != w.snapshot[l] && w.opaque.contains(l));
            let settled = unsettled & !moved;
            unsettled = moved;
            let _ = settled;
            if unsettled.none() {
                break;
            }
            if t & 1 != 0 {
                continue; // writer committing: spin until even
            }
            let failed = self.revalidate(w, ctx, unsettled, t).await;
            let survivors = unsettled & !failed;
            if survivors.any() {
                let re = ctx.load(survivors, addrs).await;
                for l in survivors.iter() {
                    vals[l] = re[l];
                }
            }
            unsettled = survivors; // loop re-checks the clock
        }

        w.enter_phase(ctx.now(), Phase::Buffering);
        for l in need.iter() {
            out[l] = vals[l];
            w.reads.push(l, addrs[l], vals[l]);
        }
        ctx.local_access(need, 1).await;
        w.enter_phase(ctx.now(), Phase::Native);
        out
    }

    async fn write(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
        vals: &LaneVals,
    ) {
        w.enter_phase(ctx.now(), Phase::Buffering);
        self.trace.emit(ctx, TxEventKind::Write { lanes: mask.count() });
        for l in mask.iter() {
            w.writes.insert(l, addrs[l], vals[l]);
        }
        ctx.local_access(mask, 1).await;
        w.enter_phase(ctx.now(), Phase::Native);
    }

    async fn commit(&self, w: &mut WarpTx, ctx: &WarpCtx, mask: LaneMask) -> LaneMask {
        let mut committed = LaneMask::EMPTY;
        let doomed = mask & !w.opaque;
        for l in doomed.iter() {
            w.reset_lane(l);
        }
        let mut active = mask & !doomed;

        // Read-only transactions are already valid at their snapshot.
        let ro = active.filter(|l| w.is_read_only(l));
        if ro.any() {
            let mut st = self.stats.borrow_mut();
            st.commits += ro.count() as u64;
            st.read_only_commits += ro.count() as u64;
            for l in ro.iter() {
                st.reads_committed += w.reads.len(l) as u64;
            }
            drop(st);
            if let Some(rec) = &self.recorder {
                let mut h = rec.borrow_mut();
                for l in ro.iter() {
                    h.record(CommittedTx {
                        tid: ctx.id().thread_id(l),
                        version: None,
                        snapshot: w.snapshot[l],
                        reads: w
                            .reads
                            .iter_lane(l)
                            .map(|e| Access { addr: e.addr, val: e.val })
                            .collect(),
                        writes: Vec::new(),
                    });
                }
            }
            for l in ro.iter() {
                w.reset_lane(l);
            }
            committed |= ro;
            active &= !ro;
        }

        while active.any() {
            w.enter_phase(ctx.now(), Phase::Locking);
            // All active lanes CAS the sequence lock; at most one wins per
            // instruction (single global lock = serialised commits).
            let clock_addrs = [self.shared.clock; WARP_SIZE];
            let cmp_vals: [u32; WARP_SIZE] = std::array::from_fn(|l| w.snapshot[l]);
            let new_vals: [u32; WARP_SIZE] = std::array::from_fn(|l| w.snapshot[l].wrapping_add(1));
            let old = ctx.atomic_cas(active, &clock_addrs, &cmp_vals, &new_vals).await;
            let winner = active.filter(|l| old[l] == w.snapshot[l]);
            self.trace.emit(
                ctx,
                TxEventKind::Lock { lanes: active.count(), busy: (active & !winner).count() },
            );

            if let Some(l) = winner.leader() {
                let m = LaneMask::lane(l);
                w.enter_phase(ctx.now(), Phase::Commit);
                let version = w.snapshot[l] + 1; // odd: lock held
                                                 // Publish the write-set (serialised behind the one lock).
                for k in 0..w.writes.len(l) {
                    let e = w.writes.get(l, k);
                    ctx.store_one(l, e.addr, e.val).await;
                }
                ctx.fence(m).await;
                ctx.store_one(l, self.shared.clock, version + 1).await; // release: even
                {
                    let mut st = self.stats.borrow_mut();
                    st.commits += 1;
                    st.reads_committed += w.reads.len(l) as u64;
                    st.writes_committed += w.writes.len(l) as u64;
                }
                if let Some(rec) = &self.recorder {
                    rec.borrow_mut().record(CommittedTx {
                        tid: ctx.id().thread_id(l),
                        version: Some(version),
                        snapshot: w.snapshot[l],
                        reads: w
                            .reads
                            .iter_lane(l)
                            .map(|e| Access { addr: e.addr, val: e.val })
                            .collect(),
                        writes: w
                            .writes
                            .iter_lane(l)
                            .map(|e| Access { addr: e.addr, val: e.val })
                            .collect(),
                    });
                }
                w.reset_lane(l);
                committed |= m;
                active &= !m;
            }

            // Losers: wait for an even clock, then re-validate by value.
            if active.any() {
                w.enter_phase(ctx.now(), Phase::Consistency);
                let t = self.wait_even(ctx, active).await;
                let stale = active.filter(|l| t != w.snapshot[l]);
                if stale.any() {
                    let failed = self.revalidate(w, ctx, stale, t).await;
                    // Failed lanes were recorded as read-validation aborts;
                    // re-classify as commit-time for accounting accuracy.
                    if failed.any() {
                        let mut st = self.stats.borrow_mut();
                        st.aborts_read_validation -= failed.count() as u64;
                        st.aborts_commit_vbv += failed.count() as u64;
                    }
                    for l in failed.iter() {
                        w.reset_lane(l);
                    }
                    active &= !failed;
                }
            }
        }

        w.enter_phase(ctx.now(), Phase::Native);
        let aborted = (mask & !committed).count();
        {
            let mut st = self.stats.borrow_mut();
            w.flush_attempt(&mut st.breakdown, committed.count(), aborted);
        }
        self.trace.emit(ctx, TxEventKind::Commit { committed: committed.count(), aborted });
        if committed.any() {
            ctx.mark_progress();
        }
        committed
    }
}
