//! Coarse-grained locking (CGL): the paper's performance baseline.
//!
//! One global spinlock serialises every critical section on the GPU. Under
//! lockstep execution a naive per-lane spinlock deadlocks (Scheme #1 of
//! Algorithm 1), so CGL combines Scheme #3's divergent retry with
//! intra-warp serialisation: [`CglStm::begin`] admits at most one lane of
//! the warp — the critical-section owner — and other lanes (and other
//! warps) retry with deterministic exponential backoff.
//!
//! Reads and writes inside the critical section go straight to memory;
//! there is no speculation and commits never fail.

use crate::api::Stm;
use crate::history::{Access, CommittedTx, Recorder};
use crate::stats::{stats_handle, Phase, StatsHandle};
use crate::trace::{TxEventKind, TxTrace, TxTraceSink};
use crate::warptx::WarpTx;
use gpu_sim::{Addr, LaneAddrs, LaneMask, LaneVals, Sim, SimError, WarpCtx};

/// Maximum backoff delay (cycles) after a failed lock acquisition.
const MAX_BACKOFF: u64 = 4096;

/// The coarse-grained-lock "STM": a degenerate runtime in which `begin`
/// acquires a single global lock and `commit` releases it.
#[derive(Clone)]
pub struct CglStm {
    lock: Addr,
    stats: StatsHandle,
    recorder: Option<Recorder>,
    trace: TxTrace,
}

impl std::fmt::Debug for CglStm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CglStm").field("lock", &self.lock).finish_non_exhaustive()
    }
}

impl CglStm {
    /// Allocates the global lock word on the device.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] when the device is full.
    pub fn init(sim: &mut Sim) -> Result<Self, SimError> {
        Ok(CglStm {
            lock: sim.alloc(1)?,
            stats: stats_handle(),
            recorder: None,
            trace: TxTrace::off(),
        })
    }

    /// Attaches a history recorder.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Attaches a transaction-lifecycle trace sink (pure observation; see
    /// [`crate::trace`]).
    pub fn with_trace(mut self, sink: TxTraceSink) -> Self {
        self.trace = TxTrace::to(sink);
        self
    }
}

impl Stm for CglStm {
    fn name(&self) -> &'static str {
        "CGL"
    }

    fn new_warp(&self) -> WarpTx {
        // CGL keeps logs only so an attached recorder can verify it; the
        // lock-table parameters are irrelevant.
        let mut cfg = crate::config::StmConfig::new(16);
        cfg.locklog_buckets = 1;
        WarpTx::new(&cfg)
    }

    fn stats(&self) -> StatsHandle {
        StatsHandle::clone(&self.stats)
    }

    async fn begin(&self, w: &mut WarpTx, ctx: &WarpCtx, want: LaneMask) -> LaneMask {
        let Some(leader) = want.leader() else { return LaneMask::EMPTY };
        w.enter_phase(ctx.now(), Phase::Locking);
        let old = ctx.atomic_cas_one(leader, self.lock, 0, 1).await;
        if old != 0 {
            self.trace.emit(ctx, TxEventKind::Lock { lanes: 1, busy: 1 });
            // Contended: deterministic exponential backoff, seeded by the
            // thread id so warps desynchronise.
            let base = (w.backoff.max(32) * 2).min(MAX_BACKOFF);
            w.backoff = base;
            let jitter = (ctx.id().thread_id(leader) as u64).wrapping_mul(2654435761) % base;
            ctx.idle(base + jitter).await;
            w.enter_phase(ctx.now(), Phase::Native);
            return LaneMask::EMPTY;
        }
        w.backoff = 0;
        w.reset_lane(leader);
        w.enter_phase(ctx.now(), Phase::Native);
        self.trace.emit(ctx, TxEventKind::Lock { lanes: 1, busy: 0 });
        self.trace.emit(ctx, TxEventKind::Begin { lanes: 1 });
        LaneMask::lane(leader)
    }

    async fn read(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
    ) -> LaneVals {
        self.trace.emit(ctx, TxEventKind::Read { lanes: mask.count() });
        let vals = ctx.load(mask, addrs).await;
        if self.recorder.is_some() {
            for l in mask.iter() {
                // A read of a location this critical section already wrote
                // observes its own update, not pre-state: mirror TXRead's
                // write-set hit and keep it out of the recorded read-set.
                if w.writes.lookup(l, addrs[l]).is_none() {
                    w.reads.push(l, addrs[l], vals[l]);
                }
            }
        }
        vals
    }

    async fn write(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
        vals: &LaneVals,
    ) {
        // In-place update: the global lock is held.
        self.trace.emit(ctx, TxEventKind::Write { lanes: mask.count() });
        ctx.store(mask, addrs, vals).await;
        if self.recorder.is_some() {
            for l in mask.iter() {
                w.writes.insert(l, addrs[l], vals[l]);
            }
        }
    }

    async fn commit(&self, w: &mut WarpTx, ctx: &WarpCtx, mask: LaneMask) -> LaneMask {
        let Some(leader) = mask.leader() else { return LaneMask::EMPTY };
        debug_assert_eq!(mask.count(), 1, "CGL critical sections are single-lane");
        w.enter_phase(ctx.now(), Phase::Commit);
        ctx.fence(mask).await;
        ctx.store_one(leader, self.lock, 0).await; // release
        {
            let mut st = self.stats.borrow_mut();
            st.commits += 1;
            st.reads_committed += w.reads.len(leader) as u64;
            st.writes_committed += w.writes.len(leader) as u64;
        }
        if let Some(rec) = &self.recorder {
            let mut h = rec.borrow_mut();
            let version = h.commits.len() as u32 + 1; // lock order = serial order
            h.record(CommittedTx {
                tid: ctx.id().thread_id(leader),
                version: Some(version),
                snapshot: version.saturating_sub(1),
                reads: w
                    .reads
                    .iter_lane(leader)
                    .map(|e| Access { addr: e.addr, val: e.val })
                    .collect(),
                writes: w
                    .writes
                    .iter_lane(leader)
                    .map(|e| Access { addr: e.addr, val: e.val })
                    .collect(),
            });
        }
        w.reset_lane(leader);
        w.enter_phase(ctx.now(), Phase::Native);
        {
            let mut st = self.stats.borrow_mut();
            w.flush_attempt(&mut st.breakdown, 1, 0);
        }
        self.trace.emit(ctx, TxEventKind::Commit { committed: 1, aborted: 0 });
        ctx.mark_progress();
        mask
    }
}
