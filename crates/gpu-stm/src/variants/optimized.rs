//! STM-Optimized: adaptive selection between hierarchical and
//! timestamp-based validation (Section 4.2).
//!
//! When the amount of shared data exceeds the number of global version
//! locks, stripe aliasing makes false conflicts likely and hierarchical
//! validation pays off; otherwise false conflicts are rare and pure TBV
//! avoids unnecessary value-based validation. For GPU programs the amount
//! of shared data is usually known before the kernel launches (array
//! element counts), so the choice is made at construction time. Lock
//! acquisition always uses encounter-time lock-sorting.

use crate::api::Stm;
use crate::config::{StmConfig, Validation};
use crate::history::Recorder;
use crate::shared::StmShared;
use crate::stats::StatsHandle;
use crate::trace::TxTraceSink;
use crate::variants::LockStm;
use crate::warptx::WarpTx;
use gpu_sim::{LaneAddrs, LaneMask, LaneVals, WarpCtx};

/// The adaptive GPU-STM (paper name: STM-Optimized).
#[derive(Clone, Debug)]
pub struct OptimizedStm {
    inner: LockStm,
}

impl OptimizedStm {
    /// Creates the variant for a program whose transactions share
    /// `shared_data_words` words of data.
    ///
    /// Selects HV when `shared_data_words > cfg.n_locks`, TBV otherwise.
    pub fn new(shared: StmShared, cfg: StmConfig, shared_data_words: u64) -> Self {
        let inner = if shared_data_words > cfg.n_locks as u64 {
            LockStm::hv_sorting(shared, cfg).renamed("STM-Optimized")
        } else {
            LockStm::tbv_sorting(shared, cfg).renamed("STM-Optimized")
        };
        OptimizedStm { inner }
    }

    /// Attaches a history recorder.
    pub fn with_recorder(self, rec: Recorder) -> Self {
        OptimizedStm { inner: self.inner.with_recorder(rec) }
    }

    /// Attaches a transaction-lifecycle trace sink (pure observation; see
    /// [`crate::trace`]).
    pub fn with_trace(self, sink: TxTraceSink) -> Self {
        OptimizedStm { inner: self.inner.with_trace(sink) }
    }

    /// Which validation strategy the adaptation chose.
    pub fn chosen(&self) -> Validation {
        self.inner.validation()
    }
}

impl Stm for OptimizedStm {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn new_warp(&self) -> WarpTx {
        self.inner.new_warp()
    }

    fn stats(&self) -> StatsHandle {
        self.inner.stats()
    }

    async fn begin(&self, w: &mut WarpTx, ctx: &WarpCtx, want: LaneMask) -> LaneMask {
        self.inner.begin(w, ctx, want).await
    }

    async fn read(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
    ) -> LaneVals {
        self.inner.read(w, ctx, mask, addrs).await
    }

    async fn write(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
        vals: &LaneVals,
    ) {
        self.inner.write(w, ctx, mask, addrs, vals).await
    }

    async fn commit(&self, w: &mut WarpTx, ctx: &WarpCtx, mask: LaneMask) -> LaneMask {
        self.inner.commit(w, ctx, mask).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Sim, SimConfig};

    #[test]
    fn selects_hv_when_data_exceeds_locks() {
        let mut sim = Sim::new(SimConfig::with_memory(1 << 16));
        let cfg = StmConfig::new(1 << 8);
        let shared = StmShared::init(&mut sim, &cfg).unwrap();
        let big = OptimizedStm::new(shared, cfg, 1 << 12);
        assert_eq!(big.chosen(), Validation::Hv);
        let small = OptimizedStm::new(shared, cfg, 1 << 6);
        assert_eq!(small.chosen(), Validation::Tbv);
        // Boundary: equal amounts select TBV (no aliasing pressure).
        let eq = OptimizedStm::new(shared, cfg, 1 << 8);
        assert_eq!(eq.chosen(), Validation::Tbv);
    }

    #[test]
    fn reports_paper_name() {
        let mut sim = Sim::new(SimConfig::with_memory(1 << 16));
        let cfg = StmConfig::new(1 << 8);
        let shared = StmShared::init(&mut sim, &cfg).unwrap();
        assert_eq!(OptimizedStm::new(shared, cfg, 0).name(), "STM-Optimized");
    }
}
